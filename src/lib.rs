//! miniGiraffe: a pangenomic mapping proxy application, reproduced in Rust.
//!
//! This facade crate re-exports the public API of the workspace so examples
//! and downstream users need a single dependency. See the individual crates
//! for details:
//!
//! - [`support`]: succinct bit structures, varints, binary containers.
//! - [`graph`]: variation graphs and pangenome construction.
//! - [`gbwt`]: the GBWT haplotype index, `.mgz` (GBZ-analog) files, and the
//!   tunable `CachedGbwt`.
//! - [`index`]: minimizer and distance indices.
//! - [`workload`]: synthetic pangenomes, read simulation, the paper's four
//!   input-set profiles, and seed dumps.
//! - [`sched`]: parallel schedulers (dynamic, static, work-stealing, VG-style).
//! - [`obs`]: near-zero-overhead metrics (counters, histograms, stage spans)
//!   threaded through the mapping loop, with JSON/CSV export.
//! - [`core`]: the proxy itself — seed clustering and the seed-and-extend
//!   kernel, the mapping pipeline, and output validation.
//! - [`parent`]: the Giraffe-like parent pipeline the proxy is extracted from.
//! - [`server`]: the long-lived multi-tenant mapping server (`minigiraffe
//!   serve`), its wire protocol, and the concurrent-client test harness.
//! - [`perf`]: region profiling, cache simulation, machine models, and the
//!   simulated multicore executor.
//! - [`tuning`]: the autotuning harness and its statistics (ANOVA, geomean).
//!
//! # Quickstart
//!
//! ```
//! use minigiraffe::workload::{InputSetSpec, SyntheticInput};
//! use minigiraffe::core::{MappingOptions, run_mapping};
//!
//! // Generate a tiny synthetic input set and map it with default options.
//! let spec = InputSetSpec::tiny_for_tests();
//! let input = SyntheticInput::generate(&spec, 42);
//! let options = MappingOptions::default();
//! let results = run_mapping(&input.dump, &input.gbz, &options);
//! assert_eq!(results.per_read.len(), input.dump.reads.len());
//! ```

pub use mg_core as core;
pub use mg_gbwt as gbwt;
pub use mg_graph as graph;
pub use mg_index as index;
pub use mg_obs as obs;
pub use mg_parent as parent;
pub use mg_perf as perf;
pub use mg_sched as sched;
pub use mg_server as server;
pub use mg_support as support;
pub use mg_tuning as tuning;
pub use mg_workload as workload;
