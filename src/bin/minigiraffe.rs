//! The miniGiraffe command-line proxy application.
//!
//! Mirrors the paper's standalone executable: it loads a pangenome
//! (`.mgz`) and a seed dump (`.bin`), runs the mapping kernels under the
//! configured scheduler/batch/capacity, and writes the raw extension
//! results. Extra subcommands cover workload generation, dump export via
//! the parent pipeline, and output validation.
//!
//! ```sh
//! minigiraffe generate --input-set A-human --out data/
//! minigiraffe map data/A-human.bin data/A-human.mgz --threads 4 --batch 512 --capacity 256
//! minigiraffe validate data/A-human.bin data/A-human.mgz data/expected.csv
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use minigiraffe::core::{run_mapping, Mapper, MappingOptions, SeedDump};
use minigiraffe::gbwt::Gbz;
use minigiraffe::perf::Profiler;
use minigiraffe::sched::SchedulerKind;
use minigiraffe::workload::{InputSetSpec, SyntheticInput};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("build-mgi") => cmd_build_mgi(&args[1..]),
        Some("build-shards") => cmd_build_shards(&args[1..]),
        Some("map") => cmd_map(&args[1..]),
        Some("parent") => cmd_parent(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("tune") => cmd_tune(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
miniGiraffe: a pangenomic mapping proxy application

USAGE:
  minigiraffe generate --input-set <A-human|B-yeast|C-HPRC|D-HPRC|tiny>
                       [--seed N] [--scale F] --out <dir>
      Synthesize an input set: writes <set>.mgz (pangenome) and
      <set>.bin (reads + seeds).

  minigiraffe build-mgi <pangenome.mgz> [--out <index.mgi>]
                        [--k N] [--w N]
      Build the zero-copy index container: pangenome + minimizer index
      + distance index, persisted in their in-memory layouts. `map`,
      `parent`, and `serve` accept it via --mgi and then start by
      mmapping the file instead of decoding the pangenome and
      rebuilding both indexes. The file is reopened and fully
      verified (checksums + structural invariants + GBWT record
      decode) before the command reports success.

  minigiraffe build-shards <pangenome.mgz | --mgi <index.mgi>>
                           --out <dir> [--shard-count N]
                           [--resident-limit N] [--k N] [--w N]
      Partition the pangenome into per-region shards: writes one
      shard-NNN.mgi per shard plus the shards.mgsm routing manifest
      (core ranges + k-mer Bloom summaries) into <dir>. The directory
      is reopened and validated before the command reports success;
      map/parent/serve consume it via --shards.

  minigiraffe map <seeds.bin> <pangenome.mgz | --mgi <index.mgi>>
                  [--threads N] [--batch N] [--capacity N]
                  [--scheduler static|dynamic|ws|vg]
                  [--shards <dir>] [--adaptive true]
                  [--instrument <timeline.csv>] [--out <results.csv>]
      Run the proxy kernels; prints a summary and optionally writes
      per-extension results and a region timeline. With --shards,
      reads whose seeds stay inside one shard core run that shard's
      kernel only (identical output, shard-local working set). With
      --adaptive, a feedback controller drives batch/chunk/cache
      knobs from per-epoch deltas while mapping (identical output;
      prints the knob trajectory for A/B against a fixed run).

  minigiraffe parent <reads.fastq> <pangenome.mgz | --mgi <index.mgi>>
                     [--threads N] [--batch N] [--capacity N]
                     [--gaf <out.gaf>] [--dump <seeds.bin>]
                     [--stream <reads-per-batch>] [--shards <dir>]
                     [--adaptive true]
      Run the full Giraffe-like parent pipeline on raw reads: seeding,
      kernels, post-processing. Optionally writes GAF alignments and
      the seed dump the proxy consumes. With --stream, reads are
      ingested in batches of the given size through a bounded
      backpressure queue and GAF is written incrementally, so memory
      stays constant in the input size (--dump is unavailable: the
      whole point is never holding the full dump).

  minigiraffe serve <pangenome.mgz | --mgi <index.mgi>>
                    [--addr HOST] [--port N]
                    [--threads N] [--batch N] [--capacity N]
                    [--scheduler static|dynamic|ws|vg]
                    [--max-pending N] [--max-active N] [--client-cap N]
                    [--chunk-reads N] [--paired true] [--adaptive true]
                    [--write-timeout-ms N] [--shards <dir>]
      Run the long-lived mapping server: loads the pangenome and builds
      the minimizer index once (or mmaps everything from --mgi), then
      multiplexes concurrent FASTQ mapping jobs from TCP clients onto
      one resident worker pool, streaming GAF back per job. Admission
      control bounds the pending queue and per-client in-flight jobs;
      SHUTDOWN drains gracefully. A client that stops reading its GAF
      stream is disconnected after --write-timeout-ms (default 30000;
      0 disables). With --adaptive, a closed-loop controller tunes
      batch size, chunk window, and cache capacity from live metric
      epochs while serving (GAF stays byte-identical; STATS reports
      the knobs). See README \"server mode\" for the frame protocol.

  minigiraffe validate <seeds.bin> <pangenome.mgz> <expected.csv>
      Map the dump and compare against an expected-output CSV
      (written by `map --out`); exits nonzero on any mismatch.

  minigiraffe tune <seeds.bin> <pangenome.mgz>
                   [--threads N] [--subsample F] [--repeats N]
      Exhaustively sweep scheduler x batch size x CachedGBWT capacity on
      this machine (the paper's autotuning study) and report the best
      configuration against Giraffe's defaults.

  minigiraffe info <pangenome.mgz | seeds.bin>
      Print structural statistics of a data file.
";

fn parse_flags(args: &[String]) -> Result<(Vec<String>, std::collections::HashMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = iter
                .next()
                .ok_or_else(|| format!("--{name} requires a value"))?;
            flags.insert(name.to_string(), value.clone());
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, flags))
}

fn flag<T: std::str::FromStr>(
    flags: &std::collections::HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(name) {
        Some(raw) => raw
            .parse()
            .map_err(|e| format!("invalid --{name} {raw:?}: {e}")),
        None => Ok(default),
    }
}

fn minimizer_params_from_flags(
    flags: &std::collections::HashMap<String, String>,
) -> Result<minigiraffe::index::MinimizerParams, String> {
    let default = minigiraffe::index::MinimizerParams::default();
    let k: usize = flag(flags, "k", default.k)?;
    let w: usize = flag(flags, "w", default.w)?;
    if !(1..=31).contains(&k) {
        return Err(format!("--k {k} out of range (1..=31)"));
    }
    if w < 1 {
        return Err("--w must be >= 1".into());
    }
    Ok(minigiraffe::index::MinimizerParams { k, w })
}

/// Resolves the pangenome + indexes for `map`/`parent`/`serve`: either a
/// `--mgi` container mmapped with zero per-element decoding, or a `.mgz`
/// positional that is parsed and indexed from scratch.
fn load_bundle(
    mgz_path: Option<&String>,
    flags: &std::collections::HashMap<String, String>,
) -> Result<minigiraffe::core::MgiBundle, String> {
    use minigiraffe::core::MgiBundle;
    match (flags.get("mgi"), mgz_path) {
        (Some(mgi), None) => {
            let start = std::time::Instant::now();
            let bundle =
                MgiBundle::open(mgi).map_err(|e| format!("opening {mgi}: {e}"))?;
            eprintln!("mapped {mgi} in {:.3}s (zero-copy)", start.elapsed().as_secs_f64());
            Ok(bundle)
        }
        (None, Some(mgz)) => {
            let gbz = Gbz::load(mgz).map_err(|e| format!("loading {mgz}: {e}"))?;
            eprintln!(
                "building minimizer + distance indexes from {} haplotypes...",
                gbz.gbwt().path_count()
            );
            MgiBundle::build(gbz, minimizer_params_from_flags(flags)?).map_err(|e| e.to_string())
        }
        (Some(_), Some(_)) => Err("pass either <pangenome.mgz> or --mgi, not both".into()),
        (None, None) => Err("expected <pangenome.mgz> or --mgi <index.mgi>".into()),
    }
}

fn cmd_build_mgi(args: &[String]) -> Result<(), String> {
    use minigiraffe::core::MgiBundle;

    let (positional, flags) = parse_flags(args)?;
    let [mgz_path] = &positional[..] else {
        return Err("expected <pangenome.mgz>".into());
    };
    let out: String = match flags.get("out") {
        Some(path) => path.clone(),
        None => {
            let mut p = PathBuf::from(mgz_path);
            p.set_extension("mgi");
            p.to_string_lossy().into_owned()
        }
    };
    let params = minimizer_params_from_flags(&flags)?;

    let start = std::time::Instant::now();
    let gbz = Gbz::load(mgz_path).map_err(|e| format!("loading {mgz_path}: {e}"))?;
    eprintln!(
        "loaded {mgz_path} in {:.3}s; indexing {} haplotypes (k={}, w={})...",
        start.elapsed().as_secs_f64(),
        gbz.gbwt().path_count(),
        params.k,
        params.w
    );
    let build_start = std::time::Instant::now();
    let bundle = MgiBundle::build(gbz, params).map_err(|e| e.to_string())?;
    eprintln!("built indexes in {:.3}s", build_start.elapsed().as_secs_f64());
    bundle.save(&out).map_err(|e| format!("writing {out}: {e}"))?;

    // Reopen and verify the file we just wrote: checksums + structural
    // invariants via open, then the deep GBWT record decode.
    let verify_start = std::time::Instant::now();
    let reopened = MgiBundle::open(&out).map_err(|e| format!("verifying {out}: {e}"))?;
    reopened
        .gbz()
        .gbwt()
        .validate_records()
        .map_err(|e| format!("verifying {out}: {e}"))?;
    let bytes = std::fs::metadata(&out).map_err(|e| e.to_string())?.len();
    println!(
        "wrote {out} ({bytes} bytes); verified in {:.3}s ({} distinct k-mers, {} nodes)",
        verify_start.elapsed().as_secs_f64(),
        reopened.minimizer().distinct_kmers(),
        reopened.gbz().graph().node_count()
    );
    Ok(())
}

fn cmd_build_shards(args: &[String]) -> Result<(), String> {
    use minigiraffe::core::shard::{ShardParams, ShardSet};

    let (positional, flags) = parse_flags(args)?;
    let gbz_path = match &positional[..] {
        [] => None,
        [p] => Some(p),
        _ => return Err("expected <pangenome.mgz> or --mgi <index.mgi>".into()),
    };
    let out = flags.get("out").ok_or("--out is required")?.clone();
    let bundle = load_bundle(gbz_path, &flags)?;
    let defaults = ShardParams::default();
    let params = ShardParams {
        shard_count: flag(&flags, "shard-count", defaults.shard_count)?,
        resident_limit: flag(&flags, "resident-limit", defaults.resident_limit)?,
    };
    if params.shard_count == 0 {
        return Err("--shard-count must be >= 1".into());
    }
    let start = std::time::Instant::now();
    let set = ShardSet::build(bundle.gbz(), bundle.minimizer(), bundle.distance(), &params)
        .map_err(|e| format!("partitioning: {e}"))?;
    eprintln!(
        "partitioned {} nodes into {} shards in {:.3}s",
        bundle.gbz().graph().node_count(),
        set.shard_count(),
        start.elapsed().as_secs_f64()
    );
    std::fs::create_dir_all(&out).map_err(|e| format!("creating {out}: {e}"))?;
    set.save_dir(&out).map_err(|e| format!("writing {out}: {e}"))?;

    // Reopen and fully validate what we just wrote (manifest invariants,
    // per-shard container checksums, geometry vs manifest).
    let verify_start = std::time::Instant::now();
    let reopened = ShardSet::open_dir(&out).map_err(|e| format!("verifying {out}: {e}"))?;
    for (i, shard) in reopened.shards.iter().enumerate() {
        println!(
            "  shard {i}: core {}..={} window {}..={} ({} nodes, {} k-mers)",
            shard.meta.core.lo,
            shard.meta.core.hi,
            shard.meta.window.lo,
            shard.meta.window.hi,
            shard.bundle.gbz().graph().node_count(),
            shard.bundle.minimizer().distinct_kmers()
        );
    }
    println!(
        "wrote {} shards + manifest to {out}; verified in {:.3}s",
        reopened.shard_count(),
        verify_start.elapsed().as_secs_f64()
    );
    Ok(())
}

/// Loads (and validates) a `--shards` directory when the flag is present.
fn load_shards(
    flags: &std::collections::HashMap<String, String>,
) -> Result<Option<minigiraffe::core::shard::ShardSet>, String> {
    match flags.get("shards") {
        Some(dir) => {
            let start = std::time::Instant::now();
            let set = minigiraffe::core::shard::ShardSet::open_dir(dir)
                .map_err(|e| format!("opening shards {dir}: {e}"))?;
            eprintln!(
                "opened {} shards from {dir} in {:.3}s",
                set.shard_count(),
                start.elapsed().as_secs_f64()
            );
            Ok(Some(set))
        }
        None => Ok(None),
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use minigiraffe::core::Workflow;
    use minigiraffe::parent::{Parent, ParentOptions};
    use minigiraffe::server::{MappingServer, ServerConfig};

    let (positional, flags) = parse_flags(args)?;
    let gbz_path = match &positional[..] {
        [] => None,
        [p] => Some(p),
        _ => return Err("expected <pangenome.mgz> or --mgi <index.mgi>".into()),
    };
    let bundle = load_bundle(gbz_path, &flags)?;
    let source = gbz_path.or_else(|| flags.get("mgi")).cloned().unwrap_or_default();
    let workflow = if flag(&flags, "paired", false)? { Workflow::Paired } else { Workflow::Single };
    let options = ParentOptions {
        mapping: options_from_flags(&flags)?,
        ..Default::default()
    };
    let config = ServerConfig {
        options,
        chunk_reads: flag(&flags, "chunk-reads", 0)?,
        max_pending: flag(&flags, "max-pending", 16)?,
        max_active: flag(&flags, "max-active", 4)?,
        per_client_cap: flag(&flags, "client-cap", 4)?,
        fault_job: None,
        write_timeout: std::time::Duration::from_millis(flag(&flags, "write-timeout-ms", 30_000u64)?),
    };
    let addr: String = flag(&flags, "addr", "127.0.0.1".to_string())?;
    let port: u16 = flag(&flags, "port", 7777)?;
    let listener = std::net::TcpListener::bind((addr.as_str(), port))
        .map_err(|e| format!("binding {addr}:{port}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;

    eprintln!(
        "serving {} on {local} ({} threads, {} scheduler); SHUTDOWN frame drains and exits",
        source,
        config.options.mapping.threads,
        config.options.mapping.scheduler
    );
    let parent = Parent::with_distance(
        bundle.gbz(),
        bundle.minimizer(),
        bundle.distance().clone(),
        workflow,
    );
    let shards = load_shards(&flags)?;
    let sharded = match &shards {
        Some(set) => Some(
            minigiraffe::parent::ShardedParent::new(&parent, set).map_err(|e| e.to_string())?,
        ),
        None => None,
    };
    let mut server = MappingServer::new(&parent, config);
    if let Some(sharded) = &sharded {
        server = server.with_sharded(sharded);
    }
    if flag(&flags, "adaptive", false)? {
        eprintln!("adaptive tuning on: batch, chunk window, and cache capacity follow live metrics");
        server = server.with_adaptive(minigiraffe::server::ControllerConfig::default());
    }
    server.serve_tcp(listener).map_err(|e| format!("serving: {e}"))?;
    println!("{}", server.stats_json());
    Ok(())
}

fn cmd_parent(args: &[String]) -> Result<(), String> {
    use minigiraffe::core::Workflow;
    use minigiraffe::parent::{run_to_gaf, Parent, ParentOptions};

    let (positional, flags) = parse_flags(args)?;
    let (reads_path, gbz_path) = match &positional[..] {
        [reads] => (reads, None),
        [reads, gbz] => (reads, Some(gbz)),
        _ => return Err("expected <reads.fastq> <pangenome.mgz | --mgi index.mgi>".into()),
    };
    let bundle = load_bundle(gbz_path, &flags)?;
    let options = ParentOptions {
        mapping: options_from_flags(&flags)?,
        ..Default::default()
    };
    let parent = Parent::with_distance(
        bundle.gbz(),
        bundle.minimizer(),
        bundle.distance().clone(),
        Workflow::Single,
    );
    let shards = load_shards(&flags)?;
    let sharded = match &shards {
        Some(set) => Some(
            minigiraffe::parent::ShardedParent::new(&parent, set).map_err(|e| e.to_string())?,
        ),
        None => None,
    };

    if let Some(raw) = flags.get("stream") {
        use minigiraffe::core::StreamOptions;
        use minigiraffe::workload::FastqReader;
        let ingest: usize = raw
            .parse()
            .map_err(|e| format!("invalid --stream {raw:?}: {e}"))?;
        if flags.contains_key("dump") {
            return Err("--dump requires the batch path (drop --stream)".into());
        }
        let file = std::fs::File::open(reads_path)
            .map_err(|e| format!("opening {reads_path}: {e}"))?;
        let batches = FastqReader::new(std::io::BufReader::new(file))
            .batches(ingest.max(1))
            .map(|item| item.map(|recs| recs.into_iter().map(|r| r.bases).collect()));
        let mut gaf_out: Box<dyn std::io::Write> = match flags.get("gaf") {
            Some(path) => Box::new(std::io::BufWriter::new(
                std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?,
            )),
            None => Box::new(std::io::sink()),
        };
        eprintln!("streaming reads in batches of {ingest}...");
        let stream = StreamOptions::default();
        let summary = match &sharded {
            Some(sp) => sp.run_streaming(batches, &options, &stream, "read", &mut gaf_out),
            None => parent.run_streaming(batches, &options, &stream, "read", &mut gaf_out),
        }
        .map_err(|e| e.to_string())?;
        use std::io::Write as _;
        gaf_out.flush().map_err(|e| format!("flushing GAF: {e}"))?;
        println!(
            "mapped {} reads in {:.3}s ({} batches, {} chunks; queue high water {}, producer blocked {:.1} ms)",
            summary.reads,
            summary.wall.as_secs_f64(),
            summary.batches,
            summary.chunks,
            summary.queue_high_water,
            summary.producer_blocked_ns as f64 / 1e6
        );
        if let Some(gaf) = flags.get("gaf") {
            println!("wrote alignments to {gaf}");
        }
        return Ok(());
    }

    let reads = minigiraffe::workload::fastq::load_read_bases(reads_path)
        .map_err(|e| format!("loading {reads_path}: {e}"))?;

    if flag(&flags, "adaptive", false)? {
        use minigiraffe::obs::Metrics;
        use minigiraffe::tuning::{run_adaptive_parent, ControllerConfig};
        if sharded.is_some() {
            return Err("--adaptive requires the monolithic path (drop --shards)".into());
        }
        eprintln!("mapping {} reads with adaptive knobs...", reads.len());
        let metrics = Metrics::new();
        let run = run_adaptive_parent(
            &parent,
            "read",
            &reads,
            &options,
            ControllerConfig::default(),
            8,
            &metrics,
        );
        println!(
            "mapped {} reads in {:.3}s ({} chunks, {} epochs: {} accepted / {} reverted moves; final knobs {})",
            run.reads,
            run.wall.as_secs_f64(),
            run.chunks,
            run.report.stats.epochs,
            run.report.stats.accepted,
            run.report.stats.reverted,
            run.report.knobs,
        );
        if let Some(gaf) = flags.get("gaf") {
            std::fs::write(gaf, &run.gaf).map_err(|e| format!("writing {gaf}: {e}"))?;
            println!("wrote alignments to {gaf}");
        }
        if flags.contains_key("dump") {
            return Err("--dump requires the fixed-knob batch path (drop --adaptive)".into());
        }
        return Ok(());
    }

    eprintln!("mapping {} reads...", reads.len());
    let run = match &sharded {
        Some(sp) => sp.run(&reads, &options),
        None => parent.run(&reads, &options),
    };
    let aligned = run.alignments.iter().filter(|a| !a.is_empty()).count();
    println!(
        "aligned {aligned}/{} reads ({} alignments) in {:.3}s",
        reads.len(),
        run.total_alignments(),
        run.wall.as_secs_f64()
    );
    if let Some(gaf) = flags.get("gaf") {
        std::fs::write(gaf, run_to_gaf(bundle.gbz().graph(), &run, "read"))
            .map_err(|e| format!("writing {gaf}: {e}"))?;
        println!("wrote alignments to {gaf}");
    }
    if let Some(dump) = flags.get("dump") {
        run.dump.save(dump).map_err(|e| format!("writing {dump}: {e}"))?;
        println!("wrote seed dump to {dump}");
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (_, flags) = parse_flags(args)?;
    let set = flags
        .get("input-set")
        .ok_or("--input-set is required")?
        .as_str();
    let spec = match set {
        "A-human" => InputSetSpec::a_human(),
        "B-yeast" => InputSetSpec::b_yeast(),
        "C-HPRC" => InputSetSpec::c_hprc(),
        "D-HPRC" => InputSetSpec::d_hprc(),
        "tiny" => InputSetSpec::tiny_for_tests(),
        other => return Err(format!("unknown input set {other:?}")),
    };
    let seed: u64 = flag(&flags, "seed", 42)?;
    let scale: f64 = flag(&flags, "scale", 1.0)?;
    let out: PathBuf = flags.get("out").ok_or("--out is required")?.into();
    std::fs::create_dir_all(&out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    let spec = spec.scaled(scale);
    eprintln!("generating {} ({} reads, seed {seed})...", spec.name, spec.reads);
    let input = SyntheticInput::generate(&spec, seed);
    let gbz_path = out.join(format!("{}.mgz", spec.name));
    let dump_path = out.join(format!("{}.bin", spec.name));
    let fastq_path = out.join(format!("{}.fastq", spec.name));
    input.gbz.save(&gbz_path).map_err(|e| e.to_string())?;
    input.dump.save(&dump_path).map_err(|e| e.to_string())?;
    minigiraffe::workload::fastq::save_reads_fastq(&fastq_path, &input.sim_reads, spec.name)
        .map_err(|e| e.to_string())?;
    println!("wrote {}", gbz_path.display());
    println!("wrote {}", dump_path.display());
    println!("wrote {}", fastq_path.display());
    Ok(())
}

fn load_inputs(positional: &[String]) -> Result<(SeedDump, Gbz), String> {
    let [dump_path, gbz_path] = positional else {
        return Err("expected <seeds.bin> <pangenome.mgz>".into());
    };
    let dump = SeedDump::load(dump_path).map_err(|e| format!("loading {dump_path}: {e}"))?;
    let gbz = Gbz::load(gbz_path).map_err(|e| format!("loading {gbz_path}: {e}"))?;
    Ok((dump, gbz))
}

fn options_from_flags(
    flags: &std::collections::HashMap<String, String>,
) -> Result<MappingOptions, String> {
    let scheduler: SchedulerKind = match flags.get("scheduler") {
        Some(raw) => raw.parse()?,
        None => SchedulerKind::Dynamic,
    };
    Ok(MappingOptions {
        threads: flag(flags, "threads", 1)?,
        batch_size: flag(flags, "batch", 512)?,
        cache_capacity: flag(flags, "capacity", 256)?,
        scheduler,
        ..Default::default()
    })
}

fn results_csv(results: &minigiraffe::core::MappingResults) -> String {
    let mut out = String::from("read_id,read_start,read_end,handle,offset,score,mismatches\n");
    for read in &results.per_read {
        for e in &read.extensions {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                e.read_id,
                e.read_start,
                e.read_end,
                e.pos.handle.packed(),
                e.pos.offset,
                e.score,
                e.mismatches
            ));
        }
    }
    out
}

fn cmd_map(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let (dump_path, gbz_path) = match &positional[..] {
        [dump] => (dump, None),
        [dump, gbz] => (dump, Some(gbz)),
        _ => return Err("expected <seeds.bin> <pangenome.mgz | --mgi index.mgi>".into()),
    };
    if gbz_path.is_none() && !flags.contains_key("mgi") {
        return Err("expected <seeds.bin> <pangenome.mgz | --mgi index.mgi>".into());
    }
    let dump = SeedDump::load(dump_path).map_err(|e| format!("loading {dump_path}: {e}"))?;
    let bundle = load_bundle(gbz_path, &flags)?;
    let options = options_from_flags(&flags)?;
    eprintln!(
        "mapping {} reads ({} seeds) with {} threads, batch {}, capacity {}, {} scheduler",
        dump.reads.len(),
        dump.total_seeds(),
        options.threads,
        options.batch_size,
        options.cache_capacity,
        options.scheduler
    );
    if let Some(set) = load_shards(&flags)? {
        if flags.contains_key("instrument") {
            return Err("--instrument requires the monolithic path (drop --shards)".into());
        }
        let results = minigiraffe::core::shard::run_mapping_sharded(
            &dump,
            bundle.gbz(),
            bundle.distance().clone(),
            &set,
            &options,
            minigiraffe::obs::Metrics::off_ref(),
        );
        println!(
            "mapped {:.2}% of reads; {} extensions; makespan {:.3}s ({} shards)",
            results.mapped_fraction() * 100.0,
            results.total_extensions(),
            results.wall.as_secs_f64(),
            set.shard_count()
        );
        if let Some(out) = flags.get("out") {
            std::fs::write(out, results_csv(&results))
                .map_err(|e| format!("writing {out}: {e}"))?;
            println!("wrote extensions to {out}");
        }
        return Ok(());
    }
    let mapper = Mapper::with_distance(bundle.gbz(), bundle.distance().clone());
    if flag(&flags, "adaptive", false)? {
        use minigiraffe::tuning::{run_adaptive_map, ControllerConfig};
        if flags.contains_key("instrument") {
            return Err("--instrument requires the fixed-knob path (drop --adaptive)".into());
        }
        let run = run_adaptive_map(
            &mapper,
            &dump,
            &options,
            ControllerConfig::default(),
            8,
            minigiraffe::obs::Metrics::off_ref(),
        );
        println!(
            "mapped {:.2}% of reads; {} extensions; makespan {:.3}s ({} chunks, {} epochs: {} accepted / {} reverted; final knobs {})",
            run.results.mapped_fraction() * 100.0,
            run.results.total_extensions(),
            run.results.wall.as_secs_f64(),
            run.chunks,
            run.report.stats.epochs,
            run.report.stats.accepted,
            run.report.stats.reverted,
            run.report.knobs,
        );
        if let Some(out) = flags.get("out") {
            std::fs::write(out, results_csv(&run.results))
                .map_err(|e| format!("writing {out}: {e}"))?;
            println!("wrote extensions to {out}");
        }
        return Ok(());
    }
    let results = if let Some(timeline) = flags.get("instrument") {
        let profiler = Profiler::new();
        let results = mapper.run_with_sink(&dump, &options, &profiler);
        std::fs::write(timeline, profiler.timeline_csv())
            .map_err(|e| format!("writing {timeline}: {e}"))?;
        eprintln!("wrote region timeline to {timeline}");
        results
    } else {
        mapper.run(&dump, &options)
    };
    println!(
        "mapped {:.2}% of reads; {} extensions; makespan {:.3}s",
        results.mapped_fraction() * 100.0,
        results.total_extensions(),
        results.wall.as_secs_f64()
    );
    println!(
        "CachedGBWT: {} hits / {} misses ({:.1}% hit rate), {} rehashes",
        results.cache.hits,
        results.cache.misses,
        results.cache.hit_rate() * 100.0,
        results.cache.rehashes
    );
    if let Some(out) = flags.get("out") {
        std::fs::write(out, results_csv(&results)).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote extensions to {out}");
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let [dump_path, gbz_path, expected_path] = &positional[..] else {
        return Err("expected <seeds.bin> <pangenome.mgz> <expected.csv>".into());
    };
    let (dump, gbz) = load_inputs(&[dump_path.clone(), gbz_path.clone()])?;
    let options = options_from_flags(&flags)?;
    let results = run_mapping(&dump, &gbz, &options);
    let actual = results_csv(&results);
    let expected = std::fs::read_to_string(expected_path)
        .map_err(|e| format!("reading {expected_path}: {e}"))?;
    // Order-independent comparison of the CSV rows (multiset).
    fn canon(s: &str) -> Vec<&str> {
        let mut rows: Vec<&str> = s.lines().skip(1).filter(|l| !l.is_empty()).collect();
        rows.sort_unstable();
        rows
    }
    let (want, got) = (canon(&expected), canon(&actual));
    let missing = want.iter().filter(|r| !got.contains(r)).count();
    let extra = got.iter().filter(|r| !want.contains(r)).count();
    println!(
        "expected {} extensions, produced {}; missing {missing}, extra {extra}",
        want.len(),
        got.len()
    );
    if missing == 0 && extra == 0 {
        println!("PASS: 100% match");
        Ok(())
    } else {
        Err("outputs differ from expected".into())
    }
}

fn cmd_tune(args: &[String]) -> Result<(), String> {
    use minigiraffe::tuning::{run_host_sweep, ParamSpace, TuningPoint};

    let (positional, flags) = parse_flags(args)?;
    let (dump, gbz) = load_inputs(&positional)?;
    let threads: usize = flag(&flags, "threads", 4)?;
    let subsample: f64 = flag(&flags, "subsample", 0.1)?;
    let repeats: usize = flag(&flags, "repeats", 2)?;
    let dump = dump.subsample(subsample);
    let space = ParamSpace::default();
    eprintln!(
        "sweeping {} configurations over {} reads with {threads} threads ({repeats} repeats)...",
        space.len(),
        dump.reads.len()
    );
    let sweep = run_host_sweep(&gbz, &dump, threads, &space, repeats, &MappingOptions::default());
    let Some(best) = sweep.best() else {
        return Err("sweep produced no measurable configurations".into());
    };
    println!(
        "best:    {}  {:.4}s",
        best.point, best.makespan_s
    );
    match sweep.find(TuningPoint::default_config()) {
        Some(default) => println!(
            "default: {}  {:.4}s  (tuning speedup {:.2}x)",
            default.point,
            default.makespan_s,
            default.makespan_s / best.makespan_s
        ),
        None => println!("default configuration not in the sweep space"),
    }
    let (sched, batch, capacity, hot, extend) = sweep.anova_by_parameter();
    for (name, a) in [
        ("scheduler", sched),
        ("batch", batch),
        ("capacity", capacity),
        ("hot-tier", hot),
        ("extend-batch", extend),
    ] {
        if let Some(a) = a {
            println!(
                "anova {name:<9} F={:<8.2} p={:.3} {}",
                a.f_statistic,
                a.p_value,
                if a.is_significant() { "(significant)" } else { "" }
            );
        }
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let (positional, _) = parse_flags(args)?;
    let [path] = &positional[..] else {
        return Err("expected one data file".into());
    };
    if path.ends_with(".mgz") {
        let gbz = Gbz::load(path).map_err(|e| format!("loading {path}: {e}"))?;
        println!("pangenome {path}");
        println!("  nodes:        {}", gbz.graph().node_count());
        println!("  edges:        {}", gbz.graph().edge_count());
        println!("  sequence:     {} bp", gbz.graph().total_sequence_len());
        println!("  haplotypes:   {}", gbz.gbwt().path_count());
        println!("  gbwt visits:  {}", gbz.gbwt().total_visits());
        println!("  compressed:   {} bytes", gbz.gbwt().compressed_bytes());
        let stats = gbz.gbwt().statistics();
        println!("  bwt runs:     {} ({:.2}/record)", stats.total_runs, stats.avg_runs_per_record);
        println!("  bytes/visit:  {:.2}", stats.bytes_per_visit);
    } else {
        let dump = SeedDump::load(path).map_err(|e| format!("loading {path}: {e}"))?;
        println!("seed dump {path}");
        println!("  workflow:     {}", dump.workflow);
        println!("  reads:        {}", dump.reads.len());
        println!("  bases:        {}", dump.total_bases());
        println!("  seeds:        {}", dump.total_seeds());
        let mean = if dump.reads.is_empty() {
            0.0
        } else {
            dump.total_seeds() as f64 / dump.reads.len() as f64
        };
        println!("  seeds/read:   {mean:.1}");
    }
    Ok(())
}
