//! Integration tests of the performance apparatus: counter validation,
//! cross-machine simulation shapes, and the tuning sweep — the invariants
//! behind Tables IV–VIII and Figures 5–8.

use minigiraffe::core::{Mapper, MappingOptions};
use minigiraffe::gbwt::CachedGbwt;
use minigiraffe::perf::{
    collect_features, cosine_similarity, simulate, CacheSimProbe, MachineModel, SimSched, TopDown,
};
use minigiraffe::support::regions::NullSink;
use minigiraffe::tuning::{run_sim_sweep, ParamSpace, TuningPoint};
use minigiraffe::workload::{InputSetSpec, SyntheticInput};

fn tiny_input() -> SyntheticInput {
    SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), 42)
}

/// Run the proxy kernels under the cache simulator, single-threaded.
fn proxy_counters(input: &SyntheticInput) -> minigiraffe::perf::HwCounters {
    let mapper = Mapper::new(&input.gbz);
    let machine = MachineModel::local_intel();
    let mut probe = CacheSimProbe::new(&machine);
    let mut cache = CachedGbwt::new(input.gbz.gbwt(), 256);
    let options = MappingOptions::default();
    for (i, read) in input.dump.reads.iter().enumerate() {
        let _ = mapper.map_read(&mut cache, i as u64, read, &options, &NullSink, 0, &mut probe);
    }
    probe.counters()
}

#[test]
fn counter_validation_proxy_vs_parent_kernels() {
    // The Table V experiment: the proxy's counter vector must be nearly
    // identical (cosine similarity ~1) to the parent's *kernel region*
    // counters, because they run the same kernels on the same inputs.
    let input = tiny_input();
    let proxy = proxy_counters(&input);

    // Parent kernels: map through the parent but only the kernel stages
    // carry the probe (map_read is the kernel region).
    let parent = minigiraffe::parent::Parent::new(
        &input.gbz,
        &input.minimizer_index,
        input.spec.workflow,
    );
    let machine = MachineModel::local_intel();
    let mut probe = CacheSimProbe::new(&machine);
    let mut cache = CachedGbwt::new(input.gbz.gbwt(), 256);
    let options = minigiraffe::parent::ParentOptions::default();
    let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
    for (i, bases) in reads.iter().enumerate() {
        let _ = parent.map_read_full(
            &mut cache,
            i as u64,
            bases,
            &options,
            &NullSink,
            0,
            &mut probe,
        );
    }
    let parent_counters = probe.counters();

    let sim = cosine_similarity(
        &proxy.validation_vector(),
        &parent_counters.validation_vector(),
    );
    assert!(sim > 0.99, "cosine similarity {sim}");
    // Instruction counts within 10% (paper: "similar").
    let ratio = proxy.instructions as f64 / parent_counters.instructions as f64;
    assert!((0.9..1.1).contains(&ratio), "instruction ratio {ratio}");
}

#[test]
fn topdown_breakdown_is_sane_for_real_kernels() {
    let input = tiny_input();
    let counters = proxy_counters(&input);
    let td = TopDown::from_counters(&counters);
    let [fe, be, bs, ret] = td.percentages();
    let sum = fe + be + bs + ret;
    assert!((sum - 100.0).abs() < 1e-6, "sum {sum}");
    // A real mapping profile: meaningful retiring, nonzero stalls.
    assert!(ret > 15.0, "retiring {ret}");
    assert!(ret < 95.0, "retiring {ret}");
    assert!(be >= 0.0 && fe >= 0.0 && bs >= 0.0);
}

#[test]
fn figure5_shapes_hold_in_simulation() {
    // The qualitative claims of §VII-A: amd fastest, arm slowest;
    // near-linear scaling on amd/arm physical cores; Intel plateaus with
    // SMT.
    let input = tiny_input();
    let mapper = Mapper::new(&input.gbz);
    let workload = collect_features(&mapper, &input.dump, &MappingOptions::default(), 40.0, "t")
        .tiled(2000);
    let mk = |m: &MachineModel, threads: usize| {
        simulate(m, &workload, threads, SimSched::Dynamic { batch: 512 })
            .makespan_s
            .unwrap()
    };
    let amd = MachineModel::local_amd();
    let arm = MachineModel::chi_arm();
    let intel = MachineModel::local_intel();

    // Absolute ranking at full physical cores.
    let amd_full = mk(&amd, 64);
    let arm_full = mk(&arm, 64);
    let intel_full = mk(&intel, 48);
    assert!(amd_full < intel_full, "amd {amd_full} vs intel {intel_full}");
    assert!(intel_full < arm_full, "intel {intel_full} vs arm {arm_full}");

    // Scaling: amd near-linear to 64 cores.
    let amd_speedup = mk(&amd, 1) / amd_full;
    assert!(amd_speedup > 45.0, "amd speedup {amd_speedup}");
    // arm scales well too (no SMT, just cores).
    let arm_speedup = mk(&arm, 1) / arm_full;
    assert!(arm_speedup > 40.0, "arm speedup {arm_speedup}");
    // Intel SMT beyond 48 cores gives < 1.5x more.
    let intel_smt = mk(&intel, 96);
    assert!(intel_full / intel_smt < 1.5, "SMT gain {}", intel_full / intel_smt);
    assert!(intel_full / intel_smt > 0.85, "SMT not harmful beyond reason");
}

#[test]
fn oom_only_on_small_memory_machines() {
    // Figure 5: D-HPRC (≈290 GB) OOMs on the 256 GB machines only.
    let input = tiny_input();
    let mapper = Mapper::new(&input.gbz);
    let workload =
        collect_features(&mapper, &input.dump, &MappingOptions::default(), 290.0, "D");
    for machine in MachineModel::all() {
        let out = simulate(&machine, &workload, 8, SimSched::Dynamic { batch: 64 });
        let expect_oom = machine.dram_gb < 290;
        assert_eq!(out.is_oom(), expect_oom, "{}", machine.name);
    }
}

#[test]
fn oversized_cache_capacity_degrades_simulated_makespan() {
    // Figure 6's right side: huge initial capacities pollute the private
    // caches and slow the run down.
    let input = tiny_input();
    let mapper = Mapper::new(&input.gbz);
    let machine = MachineModel::local_intel();
    let mk = |capacity: usize| {
        let options = MappingOptions { cache_capacity: capacity, ..Default::default() };
        let w = collect_features(&mapper, &input.dump, &options, 40.0, "cap").tiled(500);
        simulate(&machine, &w, 48, SimSched::Dynamic { batch: 128 })
            .makespan_s
            .unwrap()
    };
    let moderate = mk(1024);
    let huge = mk(1 << 20);
    assert!(
        huge > moderate * 1.1,
        "huge capacity must degrade: {huge} vs {moderate}"
    );
}

#[test]
fn tuning_sweep_beats_or_matches_default() {
    let input = tiny_input();
    let mapper = Mapper::new(&input.gbz);
    let machine = MachineModel::chi_intel();
    let sweep = run_sim_sweep(
        &machine,
        &mapper,
        &input.dump,
        &ParamSpace::default(),
        machine.total_threads(),
        &MappingOptions::default(),
        40.0,
        "tiny",
        2000,
    );
    assert_eq!(sweep.records.len(), ParamSpace::default().len());
    let speedup = sweep.speedup_over(TuningPoint::default_config()).unwrap();
    assert!(speedup >= 1.0, "best can never lose to default: {speedup}");
    assert!(speedup < 20.0, "plausible tuning speedup: {speedup}");
    // The heat map has real spread (Figure 8's best-vs-worst gap).
    let spread = sweep.worst().unwrap().makespan_s / sweep.best().unwrap().makespan_s;
    assert!(spread > 1.01, "parameters must matter: spread {spread}");
}
