//! End-to-end integration tests spanning the whole workspace: synthetic
//! pangenome -> GBZ -> seeding -> proxy/parent mapping -> validation.

use minigiraffe::core::{run_mapping, validate, Mapper, MappingOptions};
use minigiraffe::gbwt::Gbz;
use minigiraffe::parent::{Parent, ParentOptions};
use minigiraffe::sched::SchedulerKind;
use minigiraffe::workload::{InputSetSpec, SyntheticInput};

fn tiny(seed: u64) -> SyntheticInput {
    SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), seed)
}

#[test]
fn proxy_matches_parent_on_every_input_workflow() {
    // Single- and paired-end workflows, several seeds: the proxy must
    // reproduce the parent's kernel output exactly (paper §VI-a).
    for seed in [1u64, 77] {
        for paired in [false, true] {
            let mut spec = InputSetSpec::tiny_for_tests();
            if paired {
                spec.workflow = minigiraffe::core::Workflow::Paired;
                spec.reads = 30;
                spec.read_sim.fragment_len = 250;
                spec.read_sim.fragment_jitter = 25;
            }
            let input = SyntheticInput::generate(&spec, seed);
            let parent = Parent::new(&input.gbz, &input.minimizer_index, spec.workflow);
            let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
            let options = ParentOptions::default();
            let run = parent.run(&reads, &options);
            let proxy = run_mapping(&run.dump, &input.gbz, &options.mapping);
            let report = validate(&run.kernel_results, &proxy.per_read);
            assert!(
                report.is_exact(),
                "seed {seed} paired {paired}: {report}"
            );
        }
    }
}

#[test]
fn gbz_file_roundtrip_preserves_mapping_results() {
    let input = tiny(9);
    let dir = std::env::temp_dir().join(format!("mg-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let gbz_path = dir.join("pangenome.mgz");
    let dump_path = dir.join("seeds.bin");
    input.gbz.save(&gbz_path).unwrap();
    input.dump.save(&dump_path).unwrap();

    let gbz = Gbz::load(&gbz_path).unwrap();
    let dump = minigiraffe::core::SeedDump::load(&dump_path).unwrap();
    let from_disk = run_mapping(&dump, &gbz, &MappingOptions::default());
    let from_memory = run_mapping(&input.dump, &input.gbz, &MappingOptions::default());
    assert_eq!(from_disk.per_read, from_memory.per_read);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn results_invariant_under_all_tuning_parameters() {
    // Tuning parameters change performance, never results.
    let input = tiny(21);
    let reference = run_mapping(&input.dump, &input.gbz, &MappingOptions::default());
    for scheduler in SchedulerKind::ALL {
        for (threads, batch, capacity) in [(1, 16, 0), (3, 4, 64), (4, 1000, 8192)] {
            let options = MappingOptions {
                threads,
                batch_size: batch,
                cache_capacity: capacity,
                scheduler,
                ..Default::default()
            };
            let got = run_mapping(&input.dump, &input.gbz, &options);
            assert_eq!(
                got.per_read, reference.per_read,
                "{scheduler} threads={threads} batch={batch} capacity={capacity}"
            );
        }
    }
}

#[test]
fn no_cache_baseline_misses_everything_but_matches() {
    let input = tiny(33);
    let cached = run_mapping(&input.dump, &input.gbz, &MappingOptions::default());
    let uncached = run_mapping(
        &input.dump,
        &input.gbz,
        &MappingOptions { cache_capacity: 0, ..Default::default() },
    );
    assert_eq!(cached.per_read, uncached.per_read);
    assert_eq!(uncached.cache.hits, 0);
    assert!(uncached.cache.misses > cached.cache.misses);
}

#[test]
fn most_error_free_reads_map_perfectly() {
    let mut spec = InputSetSpec::tiny_for_tests();
    spec.read_sim.error_rate = 0.0;
    spec.read_sim.n_rate = 0.0;
    let input = SyntheticInput::generate(&spec, 5);
    let results = run_mapping(&input.dump, &input.gbz, &MappingOptions::default());
    let read_len = spec.read_sim.read_len as u32;
    let perfect = results
        .per_read
        .iter()
        .filter(|r| r.has_perfect_match(read_len))
        .count();
    // Nearly all clean reads should align full-length somewhere (the rare
    // exceptions fall in seed-free windows).
    assert!(
        perfect * 10 >= results.per_read.len() * 8,
        "{perfect}/{} perfect",
        results.per_read.len()
    );
}

#[test]
fn extensions_are_faithful_walks() {
    // Every reported extension must spell a real walk: path edges exist,
    // and the claimed mismatch count matches a re-comparison of the read
    // against the path sequence.
    let input = tiny(55);
    let results = run_mapping(&input.dump, &input.gbz, &MappingOptions::default());
    let graph = input.gbz.graph();
    for (read, result) in input.dump.reads.iter().zip(&results.per_read) {
        for ext in &result.extensions {
            // Path edges exist in the graph.
            for pair in ext.path.windows(2) {
                assert!(
                    graph.has_edge(pair[0], pair[1]),
                    "read {}: path edge {} -> {} missing",
                    result.read_id,
                    pair[0],
                    pair[1]
                );
            }
            // Re-spell the path from the start position and compare.
            assert_eq!(ext.path.first().copied(), Some(ext.pos.handle));
            let mut spelled = Vec::new();
            for (i, &h) in ext.path.iter().enumerate() {
                let seq = graph.sequence(h);
                let from = if i == 0 { ext.pos.offset as usize } else { 0 };
                spelled.extend_from_slice(&seq[from.min(seq.len())..]);
            }
            let span = &read.bases[ext.read_start as usize..ext.read_end as usize];
            assert!(
                spelled.len() >= span.len(),
                "read {}: path too short",
                result.read_id
            );
            let mismatches = span
                .iter()
                .zip(&spelled[..span.len()])
                .filter(|(a, b)| a != b)
                .count() as u32;
            assert_eq!(
                mismatches, ext.mismatches,
                "read {}: mismatch count diverges",
                result.read_id
            );
            // Score consistency.
            let matches = span.len() as i32 - mismatches as i32;
            assert_eq!(ext.score, matches - 4 * mismatches as i32);
        }
    }
}

#[test]
fn mapper_reuse_is_consistent() {
    let input = tiny(66);
    let mapper = Mapper::new(&input.gbz);
    let a = mapper.run(&input.dump, &MappingOptions::default());
    let b = mapper.run(&input.dump, &MappingOptions::default());
    assert_eq!(a.per_read, b.per_read);
}
