//! Property suite for every on-disk reader: `.min` (minimizer index),
//! `.mgz` (pangenome container), and `.mgi` (zero-copy index bundle).
//!
//! These files cross a trust boundary — they arrive from disks, object
//! stores, and other machines — so the decoding contract is absolute:
//! any corruption (truncation, bit flips, oversized length fields,
//! trailing garbage, raw noise) must come back as a typed
//! [`mg_support::Error`], never a panic and never an allocation sized by
//! attacker-controlled counts. For the checksummed `.mgi` format the
//! contract is stronger: *every* single-bit flip must be detected.

use std::sync::OnceLock;

use minigiraffe::core::MgiBundle;
use minigiraffe::gbwt::Gbz;
use minigiraffe::index::{DistanceIndex, MinimizerIndex};
use minigiraffe::workload::{InputSetSpec, SyntheticInput};
use proptest::prelude::*;

fn sample_input() -> &'static SyntheticInput {
    static INPUT: OnceLock<SyntheticInput> = OnceLock::new();
    INPUT.get_or_init(|| SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), 17))
}

fn min_image() -> &'static [u8] {
    static IMG: OnceLock<Vec<u8>> = OnceLock::new();
    IMG.get_or_init(|| sample_input().minimizer_index.to_bytes())
}

fn mgz_image() -> &'static [u8] {
    static IMG: OnceLock<Vec<u8>> = OnceLock::new();
    IMG.get_or_init(|| sample_input().gbz.to_bytes().unwrap())
}

fn mgi_image() -> &'static [u8] {
    static IMG: OnceLock<Vec<u8>> = OnceLock::new();
    IMG.get_or_init(|| {
        let input = sample_input();
        MgiBundle::from_parts(
            input.gbz.clone(),
            input.minimizer_index.clone(),
            DistanceIndex::build(input.gbz.graph()),
        )
        .to_bytes()
    })
}

/// Feeds `bytes` to each decoder. Returns whether each accepted the input;
/// a panic anywhere fails the property.
fn decode_min(bytes: &[u8]) -> bool {
    MinimizerIndex::from_bytes(bytes).is_ok()
}

fn decode_mgz(bytes: &[u8]) -> bool {
    Gbz::from_bytes(bytes).is_ok()
}

fn decode_mgi(bytes: Vec<u8>) -> bool {
    MgiBundle::open_bytes(bytes).is_ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Truncation at any point is rejected by every format (length fields
    /// and section tables make a strict prefix structurally incomplete).
    #[test]
    fn truncations_are_rejected(frac in 0.0f64..1.0) {
        for (image, is_mgi) in [(min_image(), false), (mgz_image(), false), (mgi_image(), true)] {
            let cut = ((image.len() as f64 * frac) as usize).min(image.len() - 1);
            let prefix = &image[..cut];
            if is_mgi {
                prop_assert!(!decode_mgi(prefix.to_vec()));
            } else {
                prop_assert!(!decode_min(prefix) || cut == 0);
                prop_assert!(!decode_mgz(prefix));
            }
        }
        // `.min` of zero bytes: an empty index may be legal; anything else
        // truncated must fail, which the loop above asserts for cut > 0.
    }

    /// A single flipped bit never panics any decoder, and the checksummed
    /// `.mgi` always detects it.
    #[test]
    fn single_bit_flips_never_panic_and_mgi_detects_them(
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        for (image, kind) in [(min_image(), 0), (mgz_image(), 1), (mgi_image(), 2)] {
            let mut bytes = image.to_vec();
            let idx = ((bytes.len() as f64 * byte_frac) as usize).min(bytes.len() - 1);
            bytes[idx] ^= 1 << bit;
            match kind {
                0 => { let _ = decode_min(&bytes); }
                1 => { let _ = decode_mgz(&bytes); }
                _ => prop_assert!(
                    !decode_mgi(bytes),
                    "mgi accepted a bit flip at byte {idx} bit {bit}"
                ),
            }
        }
    }

    /// Stamping a huge little-endian length/count over any 8 aligned bytes
    /// must be rejected (or survive harmlessly) without the decoder
    /// allocating anywhere near that much — the suite itself would die on
    /// an allocation abort.
    #[test]
    fn oversized_length_fields_do_not_allocate(
        word_frac in 0.0f64..1.0,
        huge in (1u64 << 40)..(1u64 << 62),
    ) {
        for (image, kind) in [(min_image(), 0), (mgz_image(), 1), (mgi_image(), 2)] {
            let mut bytes = image.to_vec();
            if bytes.len() < 8 {
                continue;
            }
            let words = bytes.len() / 8;
            let w = ((words as f64 * word_frac) as usize).min(words - 1);
            bytes[w * 8..w * 8 + 8].copy_from_slice(&huge.to_le_bytes());
            match kind {
                0 => { let _ = decode_min(&bytes); }
                1 => { let _ = decode_mgz(&bytes); }
                _ => prop_assert!(!decode_mgi(bytes)),
            }
        }
    }

    /// Appending trailing garbage is detected everywhere: `.min` checks
    /// its cursor drained, `.mgz` checks the end-of-container marker is
    /// final, and the `.mgi` preamble records the exact file length.
    #[test]
    fn trailing_garbage_is_rejected(
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        for (image, kind) in [(min_image(), 0), (mgz_image(), 1), (mgi_image(), 2)] {
            let mut bytes = image.to_vec();
            bytes.extend_from_slice(&garbage);
            match kind {
                0 => prop_assert!(!decode_min(&bytes)),
                1 => prop_assert!(!decode_mgz(&bytes)),
                _ => prop_assert!(!decode_mgi(bytes)),
            }
        }
    }

    /// Raw noise is never a valid file and never a panic.
    #[test]
    fn random_noise_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_min(&bytes);
        let _ = decode_mgz(&bytes);
        prop_assert!(!decode_mgi(bytes));
    }
}
