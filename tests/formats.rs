//! Integration tests of the interchange formats: GFA, FASTQ, GAF, `.mgz`,
//! `.min`, and seed dumps, exercised across crate boundaries.

use minigiraffe::gbwt::{Gbz, GbwtBuilder};
use minigiraffe::graph::gfa::{parse_gfa, pangenome_to_gfa};
use minigiraffe::index::MinimizerIndex;
use minigiraffe::parent::{run_to_gaf, Parent, ParentOptions};
use minigiraffe::workload::fastq::{load_read_bases, save_reads_fastq};
use minigiraffe::workload::{InputSetSpec, SyntheticInput};

#[test]
fn gfa_roundtrip_rebuilds_an_equivalent_mappable_pangenome() {
    // Generate a pangenome, dump it as GFA, parse it back, rebuild GBWT +
    // minimizer index from the parsed paths, and map reads against the
    // rebuilt reference: results must match the original.
    let input = SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), 77);
    let spec = &input.spec;

    // Reconstruct haplotype paths from the original GBWT to dump as GFA.
    let gbwt = input.gbz.gbwt();
    let mut paths = Vec::new();
    for p in 0..gbwt.path_count() {
        let symbols = gbwt.sequence(2 * p).unwrap();
        let handles: Vec<minigiraffe::graph::Handle> = symbols
            .into_iter()
            .map(|s| minigiraffe::graph::Handle::from_gbwt(s).unwrap())
            .collect();
        paths.push(handles);
    }
    // Render GFA by hand (graph + P lines) and parse it back.
    let mut text = pangenome_to_gfa(&rebuild_pangenome_for_gfa(&input, &paths));
    text.push('\n');
    let (graph, parsed_paths) = parse_gfa(&text).unwrap();
    assert_eq!(&graph, input.gbz.graph());
    assert_eq!(parsed_paths.len(), paths.len());

    // Rebuild the searchable reference from the parsed artifacts.
    let mut builder = GbwtBuilder::new();
    for (_, handles) in &parsed_paths {
        builder = builder.insert(handles);
    }
    let rebuilt = Gbz::new(graph, builder.build().unwrap());
    let index = MinimizerIndex::build(
        rebuilt.graph(),
        parsed_paths.iter().map(|(_, h)| h.as_slice()),
        spec.minimizer,
    );

    // Map the same reads against original and rebuilt references.
    let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
    let options = ParentOptions::default();
    let original = Parent::new(&input.gbz, &input.minimizer_index, spec.workflow)
        .run(&reads, &options);
    let roundtripped = Parent::new(&rebuilt, &index, spec.workflow).run(&reads, &options);
    assert_eq!(original.kernel_results, roundtripped.kernel_results);
}

/// Rebuild a `Pangenome`-shaped value purely for the GFA writer (which
/// wants paths); uses the generated graph and GBWT-reconstructed paths.
fn rebuild_pangenome_for_gfa(
    input: &SyntheticInput,
    paths: &[Vec<minigiraffe::graph::Handle>],
) -> minigiraffe::graph::Pangenome {
    // The pangenome builder is the only constructor; easiest is to re-run
    // generation deterministically. (The test already asserts equality via
    // the graph, so regenerating is sound.)
    let reference_like = SyntheticInput::generate(&input.spec, 77);
    let _ = paths;
    regenerate_pangenome(&reference_like)
}

fn regenerate_pangenome(input: &SyntheticInput) -> minigiraffe::graph::Pangenome {
    use minigiraffe::workload::genome::{random_genome, random_panel, random_variants};
    let reference = random_genome(&input.spec.genome, 77);
    let variants = random_variants(&reference, &input.spec.variants, 77);
    let panel = random_panel(input.spec.haplotypes, &variants, 77);
    minigiraffe::graph::pangenome::PangenomeBuilder::new(reference)
        .variants(variants)
        .haplotypes(panel)
        .build()
        .unwrap()
}

#[test]
fn fastq_to_gaf_pipeline_via_files() {
    let input = SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), 3);
    let dir = std::env::temp_dir().join(format!("mg-fmt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let fq = dir.join("reads.fastq");
    save_reads_fastq(&fq, &input.sim_reads, "t").unwrap();
    let reads = load_read_bases(&fq).unwrap();
    assert_eq!(reads.len(), input.sim_reads.len());

    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    let run = parent.run(&reads, &ParentOptions::default());
    let gaf = run_to_gaf(input.gbz.graph(), &run, "t");
    assert_eq!(gaf.lines().count(), run.total_alignments());
    // GAF read names index into the FASTQ order.
    for line in gaf.lines().take(5) {
        let name = line.split('\t').next().unwrap();
        let idx: usize = name.strip_prefix("t.").unwrap().parse().unwrap();
        assert!(idx < reads.len());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn all_binary_formats_reject_cross_loading() {
    // Loading one format's file as another must fail cleanly (distinct
    // container kinds), never misparse.
    let input = SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), 5);
    let dir = std::env::temp_dir().join(format!("mg-kinds-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let gbz_path = dir.join("x.mgz");
    let dump_path = dir.join("x.bin");
    let min_path = dir.join("x.min");
    input.gbz.save(&gbz_path).unwrap();
    input.dump.save(&dump_path).unwrap();
    input.minimizer_index.save(&min_path).unwrap();

    assert!(Gbz::load(&dump_path).is_err());
    assert!(Gbz::load(&min_path).is_err());
    assert!(minigiraffe::core::SeedDump::load(&gbz_path).is_err());
    assert!(minigiraffe::core::SeedDump::load(&min_path).is_err());
    assert!(MinimizerIndex::load(&gbz_path).is_err());
    assert!(MinimizerIndex::load(&dump_path).is_err());
    // And each loads as itself.
    assert!(Gbz::load(&gbz_path).is_ok());
    assert!(minigiraffe::core::SeedDump::load(&dump_path).is_ok());
    assert!(MinimizerIndex::load(&min_path).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}
