//! End-to-end tests of the `minigiraffe` command-line application: the
//! complete toolchain generate → parent → map → validate, driven through
//! the real binary.

use std::path::PathBuf;
use std::process::Command;

fn binary() -> PathBuf {
    // Integration tests live next to the binary under target/<profile>/.
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop();
    if path.ends_with("deps") {
        path.pop();
    }
    path.join("minigiraffe")
}

fn run(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(binary())
        .args(args)
        .output()
        .expect("spawn minigiraffe");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("mg-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn full_toolchain_generate_parent_map_validate() {
    let dir = TempDir::new("chain");
    // generate
    let (ok, stdout, stderr) = run(&[
        "generate", "--input-set", "tiny", "--seed", "9", "--out", &dir.path(""),
    ]);
    assert!(ok, "generate failed: {stderr}");
    assert!(stdout.contains("tiny.mgz"));
    assert!(stdout.contains("tiny.fastq"));

    // info on both artifacts
    let (ok, stdout, _) = run(&["info", &dir.path("tiny.mgz")]);
    assert!(ok);
    assert!(stdout.contains("haplotypes:   4"));
    let (ok, stdout, _) = run(&["info", &dir.path("tiny.bin")]);
    assert!(ok);
    assert!(stdout.contains("reads:        40"));

    // parent: FASTQ -> GAF + exported dump
    let (ok, stdout, stderr) = run(&[
        "parent",
        &dir.path("tiny.fastq"),
        &dir.path("tiny.mgz"),
        "--gaf",
        &dir.path("out.gaf"),
        "--dump",
        &dir.path("exported.bin"),
    ]);
    assert!(ok, "parent failed: {stderr}");
    assert!(stdout.contains("aligned 40/40"), "{stdout}");
    let gaf = std::fs::read_to_string(dir.path("out.gaf")).unwrap();
    assert!(gaf.lines().count() >= 40);
    assert!(gaf.contains("AS:i:"));

    // proxy map on the exported dump, writing results
    let (ok, stdout, stderr) = run(&[
        "map",
        &dir.path("exported.bin"),
        &dir.path("tiny.mgz"),
        "--threads",
        "2",
        "--out",
        &dir.path("results.csv"),
    ]);
    assert!(ok, "map failed: {stderr}");
    assert!(stdout.contains("mapped 100.00%"), "{stdout}");

    // validate against its own output: exact match, exit 0
    let (ok, stdout, _) = run(&[
        "validate",
        &dir.path("exported.bin"),
        &dir.path("tiny.mgz"),
        &dir.path("results.csv"),
    ]);
    assert!(ok);
    assert!(stdout.contains("PASS: 100% match"));

    // validate with a different scheduler still matches (results are
    // parameter-invariant)
    let (ok, stdout, _) = run(&[
        "validate",
        &dir.path("exported.bin"),
        &dir.path("tiny.mgz"),
        &dir.path("results.csv"),
        "--scheduler",
        "ws",
        "--threads",
        "3",
        "--capacity",
        "0",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("PASS"));
}

#[test]
fn validate_detects_tampered_expectations() {
    let dir = TempDir::new("tamper");
    let (ok, _, _) = run(&[
        "generate", "--input-set", "tiny", "--out", &dir.path(""),
    ]);
    assert!(ok);
    let (ok, _, _) = run(&[
        "map",
        &dir.path("tiny.bin"),
        &dir.path("tiny.mgz"),
        "--out",
        &dir.path("results.csv"),
    ]);
    assert!(ok);
    // Tamper with one expected row's score.
    let csv = std::fs::read_to_string(dir.path("results.csv")).unwrap();
    let mut lines: Vec<String> = csv.lines().map(String::from).collect();
    let last = lines.last_mut().unwrap();
    *last = last.rsplit_once(',').map(|(head, _)| format!("{head},999")).unwrap();
    std::fs::write(dir.path("tampered.csv"), lines.join("\n") + "\n").unwrap();
    let (ok, stdout, stderr) = run(&[
        "validate",
        &dir.path("tiny.bin"),
        &dir.path("tiny.mgz"),
        &dir.path("tampered.csv"),
    ]);
    assert!(!ok, "tampered expectations must fail validation");
    assert!(stdout.contains("missing 1, extra 1") || stderr.contains("differ"), "{stdout}{stderr}");
}

#[test]
fn bad_usage_fails_cleanly() {
    // Unknown subcommand.
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
    // Missing required positional.
    let (ok, _, stderr) = run(&["map", "/nonexistent.bin"]);
    assert!(!ok);
    assert!(stderr.contains("expected"));
    // Bad flag value.
    let dir = TempDir::new("badflag");
    let (genok, _, _) = run(&["generate", "--input-set", "tiny", "--out", &dir.path("")]);
    assert!(genok);
    let (ok, _, stderr) = run(&[
        "map", &dir.path("tiny.bin"), &dir.path("tiny.mgz"), "--threads", "lots",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--threads"));
    // Nonexistent input file.
    let (ok, _, stderr) = run(&["info", "/nonexistent.mgz"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
    // Help exits zero.
    let (ok, stdout, _) = run(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}
