//! Differential oracle: the proxy kernels, post-processed through the
//! parent's own rescoring path, must reproduce the parent pipeline's GAF
//! output byte for byte — the paper's functional-validation boundary,
//! pushed all the way to the interchange format.
//!
//! Each seeded workload is also pinned to a golden snapshot under
//! `tests/golden/`, so behavior drift in *either* pipeline (kernels,
//! rescoring, gapped fallback, GAF rendering) fails loudly. Regenerate the
//! snapshots with `MG_BLESS=1 cargo test --test oracle` after an
//! intentional change, and review the diff.

use std::path::PathBuf;

use minigiraffe::core::{run_mapping, StreamOptions};
use minigiraffe::parent::{run_to_gaf, Parent, ParentOptions, ParentRun};
use minigiraffe::support::regions::NullSink;
use minigiraffe::workload::{write_fastq, FastqReader, FastqRecord, InputSetSpec, SyntheticInput};

/// The seeded workloads the oracle covers. Distinct seeds give distinct
/// pangenomes, haplotype walks, and read errors; the error-dense spec
/// exercises trimmed extensions and the gapped tail fallback.
fn workloads() -> Vec<(String, SyntheticInput)> {
    let mut out = Vec::new();
    for seed in [11u64, 23, 47] {
        out.push((format!("tiny-{seed}"), SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), seed)));
    }
    let mut dense = InputSetSpec::tiny_for_tests();
    dense.read_sim.error_rate = 0.03;
    out.push(("dense-29".to_string(), SyntheticInput::generate(&dense, 29)));
    out
}

/// Runs the parent end-to-end and renders its GAF.
fn parent_gaf<'a>(input: &'a SyntheticInput, name: &str) -> (Parent<'a>, ParentRun, String) {
    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
    let run = parent.run(&reads, &ParentOptions::default());
    let gaf = run_to_gaf(input.gbz.graph(), &run, name);
    (parent, run, gaf)
}

/// Replays the parent's captured dump through the proxy kernels, then
/// post-processes the raw kernel output with the parent's own rescoring
/// path, and renders the same GAF.
fn proxy_gaf(
    parent: &Parent<'_>,
    run: &ParentRun,
    input: &SyntheticInput,
    name: &str,
    options: &ParentOptions,
) -> String {
    let proxy = run_mapping(&run.dump, &input.gbz, &options.mapping);
    let alignments: Vec<_> = run
        .dump
        .reads
        .iter()
        .zip(&proxy.per_read)
        .map(|(read_input, result)| parent.post_process(read_input, result, options, &NullSink, 0))
        .collect();
    let proxy_run = ParentRun {
        kernel_results: proxy.per_read.clone(),
        alignments,
        dump: run.dump.clone(),
        rescued: vec![None; run.dump.reads.len()],
        wall: proxy.wall,
    };
    run_to_gaf(input.gbz.graph(), &proxy_run, name)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/oracle_{name}.gaf"))
}

#[test]
fn proxy_reproduces_parent_gaf_byte_for_byte() {
    for (name, input) in workloads() {
        let (parent, run, expected) = parent_gaf(&input, &name);
        let got = proxy_gaf(&parent, &run, &input, &name, &ParentOptions::default());
        assert!(!expected.is_empty(), "{name}: parent emitted no alignments");
        assert_eq!(
            got, expected,
            "{name}: proxy GAF diverged from the parent pipeline"
        );
    }
}

#[test]
fn parent_gaf_matches_golden_snapshot() {
    let bless = std::env::var_os("MG_BLESS").is_some();
    for (name, input) in workloads() {
        let (_, _, gaf) = parent_gaf(&input, &name);
        let path = golden_path(&name);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &gaf).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden snapshot {} ({e}); run MG_BLESS=1 cargo test --test oracle",
                path.display()
            )
        });
        assert_eq!(
            gaf, golden,
            "{name}: GAF drifted from the committed snapshot; if intentional, \
             re-bless with MG_BLESS=1 cargo test --test oracle and review the diff"
        );
    }
}

/// Serializes a workload's simulated reads as FASTQ bytes, the wire form
/// the streaming entry point ingests.
fn fastq_bytes(input: &SyntheticInput) -> Vec<u8> {
    let records: Vec<FastqRecord> = input
        .sim_reads
        .iter()
        .enumerate()
        .map(|(i, r)| FastqRecord {
            name: format!("r{i}"),
            quality: vec![b'I'; r.bases.len()],
            bases: r.bases.clone(),
        })
        .collect();
    let mut bytes = Vec::new();
    write_fastq(&mut bytes, &records).expect("in-memory FASTQ write");
    bytes
}

#[test]
fn streaming_ingestion_reproduces_golden_gaf_across_schedulers() {
    // The full streaming shape — FASTQ bytes through the chunked reader,
    // across the bounded hand-off queue, mapped chunk by chunk, GAF
    // rendered incrementally — must land on the same bytes as the batch
    // pipeline (and therefore the committed golden snapshots) for every
    // workload under every scheduler. Ingestion batches (5 records),
    // mapping chunks (7 reads), and scheduler batches (3) are deliberately
    // misaligned so chunk boundaries land everywhere.
    for (name, input) in workloads() {
        let (_, _, expected) = parent_gaf(&input, &name);
        let fastq = fastq_bytes(&input);
        if let Ok(golden) = std::fs::read_to_string(golden_path(&name)) {
            assert_eq!(expected, golden, "{name}: batch GAF drifted from snapshot");
        }
        for kind in minigiraffe::sched::SchedulerKind::ALL {
            let mut options = ParentOptions::default();
            options.mapping.scheduler = kind;
            options.mapping.threads = 4;
            options.mapping.batch_size = 3;
            let stream = StreamOptions { queue_batches: 2, chunk_reads: 7 };
            let batches = FastqReader::new(&fastq[..])
                .batches(5)
                .map(|item| item.map(|recs| recs.into_iter().map(|r| r.bases).collect()));
            let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
            let mut gaf = Vec::new();
            let summary = parent
                .run_streaming(batches, &options, &stream, &name, &mut gaf)
                .unwrap_or_else(|e| panic!("{name}: streaming run failed under {kind}: {e}"));
            assert_eq!(summary.reads as usize, input.sim_reads.len());
            assert!(
                summary.queue_high_water <= stream.queue_batches,
                "{name}: queue overflowed its bound under {kind}"
            );
            let got = String::from_utf8(gaf).expect("GAF is UTF-8");
            assert_eq!(
                got, expected,
                "{name}: streaming GAF diverged from the batch pipeline under {kind}"
            );
        }
    }
}

#[test]
fn packed_extension_matches_scalar_oracle_gaf_across_schedulers() {
    // The word-parallel packed extension path (the production default —
    // pooled workers map with no active probe) must land on the same GAF
    // bytes as the scalar comparison loop, for every golden workload under
    // every scheduler. `force_scalar` flips only the comparison loop; any
    // divergence in span, score, path, or rescoring shows up byte-for-byte.
    for (name, input) in workloads() {
        let (parent, run, _) = parent_gaf(&input, &name);
        for kind in minigiraffe::sched::SchedulerKind::ALL {
            let mut packed_options = ParentOptions::default();
            packed_options.mapping.scheduler = kind;
            packed_options.mapping.threads = 4;
            packed_options.mapping.batch_size = 3;
            let mut scalar_options = packed_options.clone();
            scalar_options.mapping.extend.force_scalar = true;
            let packed = proxy_gaf(&parent, &run, &input, &name, &packed_options);
            let scalar = proxy_gaf(&parent, &run, &input, &name, &scalar_options);
            assert!(!packed.is_empty(), "{name}: no alignments under {kind}");
            assert_eq!(
                packed, scalar,
                "{name}: packed extension diverged from the scalar oracle under {kind}"
            );
        }
    }
}

#[test]
fn hot_tier_leaves_gaf_byte_identical_across_schedulers() {
    // The shared pre-decoded hot tier is a pure cache: enabling it must not
    // move a single GAF byte relative to the per-thread-only baseline, for
    // every golden workload under every scheduler, in both the batch replay
    // and the streaming pipeline.
    for (name, input) in workloads() {
        let (parent, run, _) = parent_gaf(&input, &name);
        let fastq = fastq_bytes(&input);
        for kind in minigiraffe::sched::SchedulerKind::ALL {
            let mut baseline = ParentOptions::default();
            baseline.mapping.scheduler = kind;
            baseline.mapping.threads = 4;
            baseline.mapping.batch_size = 3;
            baseline.mapping.hot_tier_budget = 0;
            let mut tiered = baseline.clone();
            tiered.mapping.hot_tier_budget = 512;

            let flat = proxy_gaf(&parent, &run, &input, &name, &baseline);
            let hot = proxy_gaf(&parent, &run, &input, &name, &tiered);
            assert!(!flat.is_empty(), "{name}: no alignments under {kind}");
            assert_eq!(
                hot, flat,
                "{name}: hot tier changed batch GAF under {kind}"
            );

            let stream = StreamOptions { queue_batches: 2, chunk_reads: 7 };
            let mut stream_gafs = Vec::new();
            for options in [&baseline, &tiered] {
                let batches = FastqReader::new(&fastq[..])
                    .batches(5)
                    .map(|item| item.map(|recs| recs.into_iter().map(|r| r.bases).collect()));
                let p = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
                let mut gaf = Vec::new();
                p.run_streaming(batches, options, &stream, &name, &mut gaf)
                    .unwrap_or_else(|e| panic!("{name}: streaming run failed under {kind}: {e}"));
                stream_gafs.push(gaf);
            }
            assert_eq!(
                stream_gafs[1], stream_gafs[0],
                "{name}: hot tier changed streaming GAF under {kind}"
            );
        }
    }
}

#[test]
fn simd_tiers_and_batching_leave_gaf_byte_identical_across_schedulers() {
    // The explicit-SIMD dispatch ladder and the batched extension dataflow
    // are pure locality/throughput transforms: every dispatch tier the host
    // supports, batched or unbatched, must land on the same GAF bytes as
    // the scalar comparison loop with batching disabled, for every golden
    // workload under every scheduler — in both the batch replay and the
    // streaming pipeline.
    let top = mg_kernels::hardware_tier();
    let tiers: Vec<mg_kernels::SimdTier> = [
        mg_kernels::SimdTier::Scalar,
        mg_kernels::SimdTier::Swar,
        mg_kernels::SimdTier::Avx2,
    ]
    .into_iter()
    .filter(|&t| t <= top)
    .collect();
    for (name, input) in workloads() {
        let (parent, run, _) = parent_gaf(&input, &name);
        let fastq = fastq_bytes(&input);
        for kind in minigiraffe::sched::SchedulerKind::ALL {
            let mut oracle = ParentOptions::default();
            oracle.mapping.scheduler = kind;
            oracle.mapping.threads = 4;
            oracle.mapping.batch_size = 3;
            oracle.mapping.extend.force_scalar = true;
            oracle.mapping.process.extend_batch = 1;
            let expected = proxy_gaf(&parent, &run, &input, &name, &oracle);
            assert!(!expected.is_empty(), "{name}: no alignments under {kind}");
            for &tier in &tiers {
                for batch in [1usize, 16, 64] {
                    let mut options = oracle.clone();
                    options.mapping.extend.force_scalar = false;
                    options.mapping.extend.simd_override = Some(tier);
                    options.mapping.process.extend_batch = batch;
                    let got = proxy_gaf(&parent, &run, &input, &name, &options);
                    assert_eq!(
                        got, expected,
                        "{name}: {} tier with extend_batch {batch} diverged \
                         from the scalar unbatched oracle under {kind}",
                        tier.name()
                    );
                }
            }

            // Streaming: top tier, batched, against the scalar unbatched
            // oracle through the same chunked entry point.
            let stream = StreamOptions { queue_batches: 2, chunk_reads: 7 };
            let mut stream_gafs = Vec::new();
            let mut top_options = oracle.clone();
            top_options.mapping.extend.force_scalar = false;
            top_options.mapping.extend.simd_override = Some(top);
            top_options.mapping.process.extend_batch = 16;
            for options in [&oracle, &top_options] {
                let batches = FastqReader::new(&fastq[..])
                    .batches(5)
                    .map(|item| item.map(|recs| recs.into_iter().map(|r| r.bases).collect()));
                let p = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
                let mut gaf = Vec::new();
                p.run_streaming(batches, options, &stream, &name, &mut gaf)
                    .unwrap_or_else(|e| panic!("{name}: streaming run failed under {kind}: {e}"));
                stream_gafs.push(gaf);
            }
            assert_eq!(
                stream_gafs[1], stream_gafs[0],
                "{name}: SIMD batched streaming GAF diverged from the scalar \
                 unbatched oracle under {kind}"
            );
        }
    }
}

#[test]
fn distance_prefilter_leaves_gaf_byte_identical() {
    // `maybe_within` is a conservative bound: pairs it screens out are
    // provably beyond the clustering limit, so disabling the prefilter must
    // reproduce the same GAF bytes on every golden workload.
    for (name, input) in workloads() {
        let (parent, run, _) = parent_gaf(&input, &name);
        let on = ParentOptions::default();
        assert!(on.mapping.cluster.use_prefilter);
        let mut off = on.clone();
        off.mapping.cluster.use_prefilter = false;
        let filtered = proxy_gaf(&parent, &run, &input, &name, &on);
        let exhaustive = proxy_gaf(&parent, &run, &input, &name, &off);
        assert!(!filtered.is_empty(), "{name}: parent emitted no alignments");
        assert_eq!(
            filtered, exhaustive,
            "{name}: distance prefilter changed the GAF output"
        );
    }
}

#[test]
fn oracle_holds_across_schedulers_and_threads() {
    // The dump replay must be bit-stable under every scheduler the proxy
    // sweeps — otherwise the oracle would only pin one configuration.
    let (name, input) = workloads().swap_remove(0);
    let (parent, run, expected) = parent_gaf(&input, &name);
    for kind in minigiraffe::sched::SchedulerKind::ALL {
        let mut options = ParentOptions::default();
        options.mapping.scheduler = kind;
        options.mapping.threads = 4;
        options.mapping.batch_size = 3;
        let proxy = run_mapping(&run.dump, &input.gbz, &options.mapping);
        let alignments: Vec<_> = run
            .dump
            .reads
            .iter()
            .zip(&proxy.per_read)
            .map(|(ri, r)| parent.post_process(ri, r, &options, &NullSink, 0))
            .collect();
        let proxy_run = ParentRun {
            kernel_results: proxy.per_read.clone(),
            alignments,
            dump: run.dump.clone(),
            rescued: vec![None; run.dump.reads.len()],
            wall: proxy.wall,
        };
        let got = run_to_gaf(input.gbz.graph(), &proxy_run, &name);
        assert_eq!(got, expected, "{name}: {kind} with 4 threads diverged");
    }
}
