//! Differential oracle for the zero-copy `.mgi` container: a bundle
//! roundtripped through a real file and mmapped back must drive the parent
//! pipeline to the *byte-identical* GAF the owned, freshly-built indexes
//! produce — on every golden workload. The mapped structures are not
//! "equivalent"; they are the same arrays served from the page cache, and
//! this test pins that all the way to the interchange format (and to the
//! committed golden snapshots when present).

use std::path::PathBuf;

use minigiraffe::core::MgiBundle;
use minigiraffe::index::DistanceIndex;
use minigiraffe::parent::{run_to_gaf, Parent, ParentOptions};
use minigiraffe::workload::{InputSetSpec, SyntheticInput};

/// Same seeded workloads as `tests/oracle.rs`.
fn workloads() -> Vec<(String, SyntheticInput)> {
    let mut out = Vec::new();
    for seed in [11u64, 23, 47] {
        out.push((
            format!("tiny-{seed}"),
            SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), seed),
        ));
    }
    let mut dense = InputSetSpec::tiny_for_tests();
    dense.read_sim.error_rate = 0.03;
    out.push(("dense-29".to_string(), SyntheticInput::generate(&dense, 29)));
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/oracle_{name}.gaf"))
}

/// Runs the parent over `reads` with the given backing and renders GAF.
fn gaf_of(parent: &Parent<'_>, reads: &[Vec<u8>], graph: &minigiraffe::graph::VariationGraph, name: &str) -> String {
    let run = parent.run(reads, &ParentOptions::default());
    run_to_gaf(graph, &run, name)
}

#[test]
fn mapped_bundle_reproduces_parent_gaf_byte_for_byte() {
    let dir = std::env::temp_dir().join(format!("mgi-oracle-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (name, input) in workloads() {
        let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();

        // Owned baseline: the indexes exactly as the generator built them.
        let owned_parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let expected = gaf_of(&owned_parent, &reads, input.gbz.graph(), &name);
        assert!(!expected.is_empty(), "{name}: parent emitted no alignments");

        // Persist those same indexes and mmap them back.
        let bundle = MgiBundle::from_parts(
            input.gbz.clone(),
            input.minimizer_index.clone(),
            DistanceIndex::build(input.gbz.graph()),
        );
        let path = dir.join(format!("{name}.mgi"));
        bundle.save(&path).unwrap();
        let mapped = MgiBundle::open(&path).unwrap();
        assert!(mapped.is_mapped(), "{name}: open() fell back to owned storage");
        assert_eq!(bundle, mapped, "{name}: mapped bundle differs structurally");
        mapped.gbz().gbwt().validate_records().unwrap();

        let mapped_parent = Parent::with_distance(
            mapped.gbz(),
            mapped.minimizer(),
            mapped.distance().clone(),
            input.spec.workflow,
        );
        let got = gaf_of(&mapped_parent, &reads, mapped.gbz().graph(), &name);
        assert_eq!(
            got, expected,
            "{name}: GAF from the mapped bundle diverged from the owned pipeline"
        );

        // And against the committed snapshot, when one exists: the mapped
        // path must not be merely self-consistent but pinned to history.
        if let Ok(golden) = std::fs::read_to_string(golden_path(&name)) {
            assert_eq!(
                got, golden,
                "{name}: mapped-bundle GAF drifted from the golden snapshot"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_bytes_and_trusted_open_agree_with_checked_open() {
    let (name, input) = workloads().swap_remove(0);
    let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
    let bundle = MgiBundle::from_parts(
        input.gbz.clone(),
        input.minimizer_index.clone(),
        DistanceIndex::build(input.gbz.graph()),
    );
    let image = bundle.to_bytes();

    let from_bytes = MgiBundle::open_bytes(image.clone()).unwrap();
    assert_eq!(bundle, from_bytes);

    let dir = std::env::temp_dir().join(format!("mgi-oracle-trusted-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("w.mgi");
    std::fs::write(&path, &image).unwrap();
    let checked = MgiBundle::open(&path).unwrap();
    let trusted = MgiBundle::open_trusted(&path).unwrap();
    assert_eq!(checked, trusted);

    // All three backings answer the pipeline identically.
    let mut gafs = Vec::new();
    for b in [&from_bytes, &checked, &trusted] {
        let parent = Parent::with_distance(
            b.gbz(),
            b.minimizer(),
            b.distance().clone(),
            input.spec.workflow,
        );
        gafs.push(gaf_of(&parent, &reads, b.gbz().graph(), &name));
    }
    assert!(!gafs[0].is_empty());
    assert_eq!(gafs[0], gafs[1]);
    assert_eq!(gafs[1], gafs[2]);
    std::fs::remove_dir_all(&dir).unwrap();
}
