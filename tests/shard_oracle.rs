//! Sharded-mapping oracle: routing reads to per-region shards is an
//! execution strategy, never a result change. For every golden workload,
//! every shard count, batch and streaming, the sharded pipeline must land
//! on the exact GAF bytes of the monolithic run — and the proxy's
//! dump-replay entry point must return identical kernel results when it
//! routes by seed-core ownership.

use minigiraffe::core::shard::{run_mapping_sharded, ShardParams, ShardSet};
use minigiraffe::core::{run_mapping, StreamOptions, Workflow};
use minigiraffe::index::DistanceIndex;
use minigiraffe::obs::{Ctr, Metrics};
use minigiraffe::parent::{run_to_gaf, Parent, ParentOptions, ShardedParent};
use minigiraffe::workload::{write_fastq, FastqReader, FastqRecord, InputSetSpec, SyntheticInput};

/// The same seeded workloads the monolithic oracle covers (`tests/oracle.rs`).
fn workloads() -> Vec<(String, SyntheticInput)> {
    let mut out = Vec::new();
    for seed in [11u64, 23, 47] {
        out.push((
            format!("tiny-{seed}"),
            SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), seed),
        ));
    }
    let mut dense = InputSetSpec::tiny_for_tests();
    dense.read_sim.error_rate = 0.03;
    out.push(("dense-29".to_string(), SyntheticInput::generate(&dense, 29)));
    out
}

fn build_set(input: &SyntheticInput, shard_count: usize) -> ShardSet {
    let distance = DistanceIndex::build(input.gbz.graph());
    ShardSet::build(
        &input.gbz,
        &input.minimizer_index,
        &distance,
        &ShardParams { shard_count, ..Default::default() },
    )
    .expect("shard build failed")
}

fn reads_of(input: &SyntheticInput) -> Vec<Vec<u8>> {
    input.sim_reads.iter().map(|r| r.bases.clone()).collect()
}

fn fastq_bytes(input: &SyntheticInput) -> Vec<u8> {
    let records: Vec<FastqRecord> = input
        .sim_reads
        .iter()
        .enumerate()
        .map(|(i, r)| FastqRecord {
            name: format!("r{i}"),
            quality: vec![b'I'; r.bases.len()],
            bases: r.bases.clone(),
        })
        .collect();
    let mut bytes = Vec::new();
    write_fastq(&mut bytes, &records).expect("in-memory FASTQ write");
    bytes
}

#[test]
fn sharded_batch_matches_monolithic_gaf_for_every_shard_count() {
    for (name, input) in workloads() {
        let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let reads = reads_of(&input);
        let options = ParentOptions::default();
        let mono = parent.run(&reads, &options);
        let expected = run_to_gaf(input.gbz.graph(), &mono, &name);
        assert!(!expected.is_empty(), "{name}: parent emitted no alignments");
        for k in 1..=4usize {
            let set = build_set(&input, k);
            assert_eq!(set.shard_count(), k, "{name}: builder dropped a shard");
            let sharded = ShardedParent::new(&parent, &set).expect("wire sharded parent");
            let metrics = Metrics::new();
            let run = sharded.run_with_metrics(&reads, &options, &metrics);
            let got = run_to_gaf(input.gbz.graph(), &run, &name);
            assert_eq!(
                got, expected,
                "{name}: sharded GAF (K={k}) diverged from the monolithic run"
            );
            let report = metrics.report();
            assert_eq!(
                report.counter(Ctr::RouteReadsTotal),
                reads.len() as u64,
                "{name}: router skipped reads at K={k}"
            );
            assert_eq!(
                report.counter(Ctr::RouteResidentReads) + report.counter(Ctr::RouteFallbackReads),
                reads.len() as u64,
                "{name}: routing outcomes don't partition the reads at K={k}"
            );
        }
    }
}

#[test]
fn sharded_streaming_matches_monolithic_gaf_across_schedulers() {
    // The full streaming shape — FASTQ bytes through the chunked reader,
    // across the bounded hand-off queue, mapped chunk by chunk — with the
    // sharded dispatcher swapped in for the monolithic one. Ingestion
    // batches (5), mapping chunks (7) and scheduler batches (3) are
    // misaligned exactly as in the monolithic streaming oracle.
    for (name, input) in workloads() {
        let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let reads = reads_of(&input);
        let expected = run_to_gaf(
            input.gbz.graph(),
            &parent.run(&reads, &ParentOptions::default()),
            &name,
        );
        let fastq = fastq_bytes(&input);
        for k in [2usize, 4] {
            let set = build_set(&input, k);
            let sharded = ShardedParent::new(&parent, &set).expect("wire sharded parent");
            for kind in minigiraffe::sched::SchedulerKind::ALL {
                let mut options = ParentOptions::default();
                options.mapping.scheduler = kind;
                options.mapping.threads = 4;
                options.mapping.batch_size = 3;
                let stream = StreamOptions { queue_batches: 2, chunk_reads: 7 };
                let batches = FastqReader::new(&fastq[..])
                    .batches(5)
                    .map(|item| item.map(|recs| recs.into_iter().map(|r| r.bases).collect()));
                let mut gaf = Vec::new();
                let summary = sharded
                    .run_streaming(batches, &options, &stream, &name, &mut gaf)
                    .unwrap_or_else(|e| panic!("{name}: sharded streaming failed under {kind}: {e}"));
                assert_eq!(summary.reads as usize, reads.len());
                let got = String::from_utf8(gaf).expect("GAF is UTF-8");
                assert_eq!(
                    got, expected,
                    "{name}: sharded streaming GAF (K={k}) diverged under {kind}"
                );
            }
        }
    }
}

#[test]
fn routing_miss_falls_back_and_rescue_still_fires() {
    // Regression: a read the router cannot place (seeds straddling a core
    // boundary, or no surviving seeds at all) must take the monolithic
    // fallback — and when that read is half of a pair whose mate mapped,
    // the rescue path must recover it exactly as the unsharded pipeline
    // does. An early routing bug that dropped missed reads instead of
    // falling back would show up here as a GAF diff or a dead rescue lane.
    // Rescue's edge over normal seeding is the relaxed hit cap, so the
    // workload needs repeats dense enough that a mate's seeds get
    // suppressed under a tight cap while its partner still maps.
    let mut spec = InputSetSpec::tiny_for_tests();
    spec.workflow = Workflow::Paired;
    spec.genome.repeat_fraction = 0.3;
    spec.genome.repeat_len = 150;
    spec.hard_hit_cap = 2;
    let options = ParentOptions { hard_hit_cap: 2, ..Default::default() };
    assert!(options.enable_rescue);
    // Deterministic scan: the first seed whose monolithic run rescues a
    // mate (and, checked below, sends reads down the fallback lane).
    let input = [5u64, 41, 97]
        .into_iter()
        .map(|seed| SyntheticInput::generate(&spec, seed))
        .find(|input| {
            let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
            let run = parent.run(&reads_of(input), &options);
            run.rescued.iter().any(Option::is_some)
        })
        .expect("no candidate seed exercises rescue; densify the repeats");
    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    let reads = reads_of(&input);
    let mono = parent.run(&reads, &options);
    let expected = run_to_gaf(input.gbz.graph(), &mono, "rescue");
    assert!(mono.rescued.iter().any(Option::is_some));

    let set = build_set(&input, 3);
    let sharded = ShardedParent::new(&parent, &set).expect("wire sharded parent");
    let metrics = Metrics::new();
    let run = sharded.run_with_metrics(&reads, &options, &metrics);
    let got = run_to_gaf(input.gbz.graph(), &run, "rescue");
    assert_eq!(got, expected, "sharded paired GAF diverged from the monolithic run");
    assert_eq!(run.rescued, mono.rescued, "rescue outcomes diverged under sharding");
    let report = metrics.report();
    assert!(
        report.counter(Ctr::RouteFallbackReads) > 0,
        "workload never exercises the routing-miss fallback"
    );
    assert!(
        report.counter(Ctr::RouteResidentReads) > 0,
        "workload never exercises the resident path"
    );
}

#[test]
fn proxy_dump_replay_matches_monolithic_kernels() {
    // The proxy entry point (captured seed dumps, no minimizer extraction)
    // routes by seed-core ownership instead; kernel results must be
    // identical to the unsharded replay for every workload and shard count.
    for (name, input) in workloads() {
        let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let reads = reads_of(&input);
        let options = ParentOptions::default();
        let run = parent.run(&reads, &options);
        let mono = run_mapping(&run.dump, &input.gbz, &options.mapping);
        let distance = DistanceIndex::build(input.gbz.graph());
        for k in [2usize, 4] {
            let set = build_set(&input, k);
            let metrics = Metrics::new();
            let sharded = run_mapping_sharded(
                &run.dump,
                &input.gbz,
                distance.clone(),
                &set,
                &options.mapping,
                &metrics,
            );
            assert_eq!(
                sharded.per_read, mono.per_read,
                "{name}: sharded dump replay (K={k}) diverged from the monolithic kernels"
            );
            assert_eq!(
                metrics.report().counter(Ctr::RouteReadsTotal),
                run.dump.reads.len() as u64,
                "{name}: proxy router skipped reads at K={k}"
            );
        }
    }
}
