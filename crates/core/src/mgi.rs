//! The `.mgi` bundle: every index miniGiraffe needs, in one mappable file.
//!
//! A `.mgz` pangenome stores *compressed* serializations that must be
//! decoded element-by-element at startup, and the minimizer and distance
//! indexes are rebuilt from scratch on every run. [`MgiBundle`] instead
//! persists the **in-memory layouts** of all four structures — packed
//! 2-bit sequence arenas, CSR adjacency, flat minimizer table, distance /
//! chain index, and the compressed GBWT — into one
//! [`mg_support::mgi`] container. Opening it is `mmap` + bounds/checksum
//! validation: no per-element decoding, no index rebuilds, and the page
//! cache shares the arenas across processes.
//!
//! The owned and mapped paths produce interchangeable values: every
//! component type is backed by [`mg_support::mgi::Storage`], so a bundle
//! loaded from disk compares equal to (and maps byte-identically with)
//! the same bundle built in memory.
//!
//! # Examples
//!
//! ```
//! use mg_core::mgi::MgiBundle;
//! use mg_gbwt::Gbz;
//! use mg_graph::pangenome::{PangenomeBuilder, Variant};
//! use mg_index::MinimizerParams;
//!
//! # fn main() -> mg_support::Result<()> {
//! let p = PangenomeBuilder::new(b"ACGTACGTACGTACGT".to_vec())
//!     .variants(vec![Variant::snp(4, b'T')])
//!     .haplotypes(vec![vec![0], vec![1]])
//!     .build()?;
//! let gbz = Gbz::from_pangenome(p)?;
//! let bundle = MgiBundle::build(gbz, MinimizerParams { k: 5, w: 3 })?;
//! let image = bundle.to_bytes();
//! let mapped = MgiBundle::open_bytes(image)?;
//! assert_eq!(&bundle, &mapped);
//! # Ok(())
//! # }
//! ```

use std::path::Path;

use mg_gbwt::Gbz;
use mg_graph::Handle;
use mg_index::{DistanceIndex, MinimizerIndex, MinimizerParams};
use mg_support::mgi::{MgiFile, MgiWriter};
use mg_support::{Error, Result};

/// The complete mapping state persisted in a `.mgi` file: pangenome
/// (graph + GBWT), minimizer index, and distance index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MgiBundle {
    gbz: Gbz,
    minimizer: MinimizerIndex,
    distance: DistanceIndex,
}

/// Builds a minimizer index over every haplotype path of a pangenome
/// (forward sequences; the index adds the reverse orientation itself).
///
/// This is the canonical construction shared by `minigiraffe build-mgi`,
/// `parent`, and `serve`: one forward walk per path, symbols decoded to
/// [`Handle`]s, indexed with `params`.
///
/// # Errors
///
/// Returns an error if a GBWT sequence cannot be extracted or contains a
/// symbol that is not a real node visit.
pub fn build_minimizer_index(gbz: &Gbz, params: MinimizerParams) -> Result<MinimizerIndex> {
    let mut paths = Vec::with_capacity(gbz.gbwt().path_count() as usize);
    for p in 0..gbz.gbwt().path_count() {
        let seq_id = if gbz.gbwt().is_bidirectional() { 2 * p } else { p };
        let symbols = gbz.gbwt().sequence(seq_id)?;
        let mut handles = Vec::with_capacity(symbols.len());
        for s in symbols {
            let h = Handle::from_gbwt(s).ok_or_else(|| {
                Error::Corrupt(format!("path {p}: symbol {s} is not a node visit"))
            })?;
            handles.push(h);
        }
        paths.push(handles);
    }
    Ok(MinimizerIndex::build(
        gbz.graph(),
        paths.iter().map(|p| p.as_slice()),
        params,
    ))
}

impl MgiBundle {
    /// Builds the bundle from a pangenome: indexes every haplotype path
    /// with `params` and computes the distance index.
    ///
    /// # Errors
    ///
    /// Returns an error if minimizer indexing fails (see
    /// [`build_minimizer_index`]).
    pub fn build(gbz: Gbz, params: MinimizerParams) -> Result<Self> {
        let minimizer = build_minimizer_index(&gbz, params)?;
        let distance = DistanceIndex::build(gbz.graph());
        Ok(MgiBundle {
            gbz,
            minimizer,
            distance,
        })
    }

    /// Assembles a bundle from already-constructed parts.
    pub fn from_parts(gbz: Gbz, minimizer: MinimizerIndex, distance: DistanceIndex) -> Self {
        MgiBundle {
            gbz,
            minimizer,
            distance,
        }
    }

    /// The pangenome (graph + GBWT).
    pub fn gbz(&self) -> &Gbz {
        &self.gbz
    }

    /// The minimizer index over the haplotype paths.
    pub fn minimizer(&self) -> &MinimizerIndex {
        &self.minimizer
    }

    /// The distance index over the graph.
    pub fn distance(&self) -> &DistanceIndex {
        &self.distance
    }

    /// Decomposes into `(gbz, minimizer, distance)`.
    pub fn into_parts(self) -> (Gbz, MinimizerIndex, DistanceIndex) {
        (self.gbz, self.minimizer, self.distance)
    }

    /// True when the components borrow a mapped `.mgi` file rather than
    /// owning heap copies.
    pub fn is_mapped(&self) -> bool {
        self.minimizer.is_mapped() || self.gbz.gbwt().is_mapped()
    }

    /// Appends every component to a `.mgi` writer.
    pub fn write_mgi(&self, w: &mut MgiWriter) {
        self.gbz.write_mgi(w);
        self.minimizer.write_mgi(w);
        self.distance.write_mgi(w);
    }

    /// Serializes to an in-memory `.mgi` image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = MgiWriter::new();
        self.write_mgi(&mut w);
        w.finish()
    }

    /// Writes a `.mgi` file.
    ///
    /// # Errors
    ///
    /// Returns IO errors from the filesystem.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut w = MgiWriter::new();
        self.write_mgi(&mut w);
        w.write_to(path.as_ref())
    }

    /// Borrows every component out of a validated `.mgi` container.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] for any structural inconsistency; a
    /// bundle that loads successfully cannot make a later query panic.
    pub fn from_mgi(f: &MgiFile) -> Result<Self> {
        let gbz = Gbz::from_mgi(f)?;
        let minimizer = MinimizerIndex::from_mgi(f)?;
        let distance = DistanceIndex::from_mgi(f)?;
        Ok(MgiBundle {
            gbz,
            minimizer,
            distance,
        })
    }

    /// Maps a `.mgi` file and validates layout, checksums, and structural
    /// invariants. Zero per-element decoding: the arenas are borrowed
    /// straight from the mapping.
    ///
    /// # Errors
    ///
    /// Returns IO errors and [`Error::Corrupt`] for malformed files.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::from_mgi(&MgiFile::open(path.as_ref())?)
    }

    /// Like [`MgiBundle::open`] but skips per-section checksum
    /// verification (structural validation still runs). For repeated
    /// opens of a file already verified once.
    ///
    /// # Errors
    ///
    /// Returns IO errors and [`Error::Corrupt`] for malformed files.
    pub fn open_trusted(path: impl AsRef<Path>) -> Result<Self> {
        Self::from_mgi(&MgiFile::open_trusted(path.as_ref())?)
    }

    /// Opens an in-memory `.mgi` image (checksums verified).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] for malformed images.
    pub fn open_bytes(bytes: Vec<u8>) -> Result<Self> {
        Self::from_mgi(&MgiFile::open_bytes(bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_graph::pangenome::{PangenomeBuilder, Variant};

    fn sample_bundle() -> MgiBundle {
        let p = PangenomeBuilder::new(b"ACGTACGTACGTACGTAACCGGTT".to_vec())
            .variants(vec![Variant::snp(4, b'T'), Variant::deletion(10, 2)])
            .haplotypes(vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![1, 1]])
            .max_node_len(6)
            .build()
            .unwrap();
        let gbz = Gbz::from_pangenome(p).unwrap();
        MgiBundle::build(gbz, MinimizerParams { k: 5, w: 3 }).unwrap()
    }

    #[test]
    fn bytes_roundtrip_preserves_everything() {
        let bundle = sample_bundle();
        assert!(!bundle.is_mapped());
        let mapped = MgiBundle::open_bytes(bundle.to_bytes()).unwrap();
        assert!(mapped.is_mapped());
        assert_eq!(bundle, mapped);
        // A re-serialization of the mapped bundle is byte-identical.
        assert_eq!(bundle.to_bytes(), mapped.to_bytes());
    }

    #[test]
    fn file_roundtrip_and_trusted_open() {
        let bundle = sample_bundle();
        let dir = std::env::temp_dir().join(format!("mgi-bundle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.mgi");
        bundle.save(&path).unwrap();
        let mapped = MgiBundle::open(&path).unwrap();
        assert_eq!(bundle, mapped);
        let trusted = MgiBundle::open_trusted(&path).unwrap();
        assert_eq!(bundle, trusted);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_is_corrupt_not_panic() {
        let bundle = sample_bundle();
        let bytes = bundle.to_bytes();
        for cut in [0, 7, 48, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                MgiBundle::open_bytes(bytes[..cut].to_vec()).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }
}
