//! The seed-and-extend kernel: Giraffe's hottest region
//! (`process_until_threshold_c`).
//!
//! Each seed anchors a read offset to a graph position. The gapless
//! extension walks the graph from that anchor in both directions, comparing
//! read bases with node bases, following only haplotype-consistent edges
//! (tracked with a bidirectional GBWT search state through the per-thread
//! [`CachedGbwt`]), tolerating a bounded number of mismatches, and keeping
//! the best-scoring span. [`process_until_threshold`] drives the kernel
//! over a read's clusters in score order.

use mg_gbwt::gbwt::record_extend_forward_with_counts;
use mg_gbwt::{BidirState, CachedGbwt};
use mg_graph::packed::{self, BASES_PER_WORD};
use mg_graph::{Handle, PackedReadPair, VariationGraph};
use mg_index::GraphPos;
use mg_kernels::{SimdTier, WORDS_PER_BLOCK};
use mg_support::probe::MemProbe;

use crate::cluster::Cluster;
use crate::types::{Extension, Seed};

/// Logical address region of read bases (for the cache simulator).
pub const REGION_READ: u64 = 0x4000_0000_0000;
/// Logical address region of graph sequence bytes. Each node gets a
/// 256-byte window; pangenome nodes are capped well below that
/// (`PangenomeBuilder::max_node_len` defaults to 32), so windows never
/// alias.
pub const REGION_GRAPH_SEQ: u64 = 0x3000_0000_0000;
/// Bytes reserved per node in [`REGION_GRAPH_SEQ`].
const GRAPH_SEQ_STRIDE: u64 = 256;

/// Scoring and search parameters of the gapless extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtendParams {
    /// Score added per matching base.
    pub match_score: i32,
    /// Score subtracted per mismatching base.
    pub mismatch_penalty: i32,
    /// Maximum mismatches tolerated inside one extension.
    pub max_mismatches: u32,
    /// Node-crossing budget per direction per seed: bounds the DFS over
    /// haplotype-consistent branches.
    pub max_branch_steps: usize,
    /// Force the byte-at-a-time comparison loop even when no active probe
    /// requires it. The scalar loop is the oracle the word-parallel packed
    /// path is validated against; benches and differential tests flip this
    /// to compare the two on otherwise identical pipelines.
    pub force_scalar: bool,
    /// Caps the SIMD dispatch tier for this pipeline instead of the
    /// process-global `MG_SIMD`/`MG_FORCE_SCALAR` environment dispatch
    /// (`None`). Clamped to the hardware tier, so `Some(Avx2)` on a
    /// non-AVX2 host degrades to SWAR rather than faulting; benches use
    /// this to compare tiers inside one process.
    pub simd_override: Option<SimdTier>,
    /// Branch-and-bound pruning of DFS subtrees that provably cannot beat
    /// the running best prefix (see `subtree_is_dead`). Applied identically
    /// by the scalar and packed walks, so differential tests stay exact;
    /// exposed so benches can A/B the pruning inside one process.
    pub prune: bool,
}

impl Default for ExtendParams {
    fn default() -> Self {
        ExtendParams {
            match_score: 1,
            mismatch_penalty: 4,
            max_mismatches: 4,
            max_branch_steps: 64,
            force_scalar: false,
            simd_override: None,
            prune: true,
        }
    }
}

/// The comparison tier the extension walk will actually run for a pipeline
/// instantiated with probe `P` and `params`: [`SimdTier::Scalar`] whenever
/// the probe consumes per-base traffic or the oracle path is forced,
/// otherwise the dispatched tier (see [`mg_kernels::effective_tier`]).
pub fn active_tier<P: MemProbe>(params: &ExtendParams) -> SimdTier {
    if P::ACTIVE || params.force_scalar {
        SimdTier::Scalar
    } else {
        mg_kernels::effective_tier(params.simd_override)
    }
}

/// Cluster-processing parameters (the `process_until_threshold_c` policy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessParams {
    /// At most this many clusters are extended per read.
    pub max_clusters: usize,
    /// Clusters scoring below `cutoff × best_cluster_score` are skipped.
    pub cluster_score_cutoff: f64,
    /// At most this many extensions are reported per read.
    pub max_extensions_per_read: usize,
    /// Extensions scoring below this are discarded.
    pub min_extension_score: i32,
    /// Anchor batch size of the extension dataflow: after deduplication a
    /// cluster's anchors are processed in batches of this size, each batch
    /// sorted by graph position so consecutive extensions walk the same
    /// packed node words and GBWT records while they are hot. `0` or `1`
    /// disables batching (the pre-batching anchor order). Output is
    /// invariant: extensions are canonicalized across the whole read, so
    /// batch size only changes locality, never the GAF (pinned by tests).
    pub extend_batch: usize,
}

impl Default for ProcessParams {
    fn default() -> Self {
        ProcessParams {
            max_clusters: 8,
            cluster_score_cutoff: 0.5,
            max_extensions_per_read: 16,
            min_extension_score: 1,
            extend_batch: 16,
        }
    }
}

/// Sentinel path-arena index: the frame is still on the anchor node.
const NO_PATH: u32 = u32::MAX;

/// One DFS frame of a directional walk. `Copy`: the walked path lives in
/// the scratch arena as a parent-pointer chain, not in the frame.
#[derive(Debug, Clone, Copy)]
struct Frame {
    state: BidirState,
    handle: Handle,
    node_off: usize,
    consumed: u32,
    score: i32,
    mismatches: u32,
    /// Arena index of the last node entered, or [`NO_PATH`] on the anchor.
    path: u32,
}

/// Result of walking one direction from the anchor: the best-scoring
/// prefix seen (also used as the running best during the walk).
#[derive(Debug, Clone, Copy)]
struct DirectionResult {
    score: i32,
    /// Read bases consumed in this direction.
    consumed: u32,
    mismatches: u32,
    /// Arena index of the best prefix's last node ([`NO_PATH`]: anchor only).
    path: u32,
    state: BidirState,
}

/// Reusable per-thread storage of the extension kernel.
///
/// The DFS over haplotype-consistent branches keeps its frame stack, the
/// walked paths (a parent-pointer arena instead of one `Vec<Handle>` clone
/// per frame), the branch enumeration buffers, and the per-cluster anchor
/// list here. A worker allocates one `ExtendScratch` and reuses it for
/// every read it maps, so the hot kernel performs no per-frame — and after
/// warm-up, no per-read — heap allocation beyond the returned extensions.
#[derive(Debug, Default)]
pub struct ExtendScratch {
    /// DFS frame stack of the current directional walk.
    stack: Vec<Frame>,
    /// Path arena: `(parent index or NO_PATH, handle entered)`. Paths are
    /// reconstructed by chasing parents only when a walk finishes.
    arena: Vec<(u32, Handle)>,
    /// Branch states enumerated at the current node boundary.
    branches: Vec<(BidirState, Handle)>,
    /// Per-edge visit counts before/inside the current range.
    before: Vec<u64>,
    counts: Vec<u64>,
    /// Reconstructed paths of the two directional walks, in walk order.
    left_path: Vec<Handle>,
    right_path: Vec<Handle>,
    /// Deduplicated anchors of the cluster being processed.
    anchors: Vec<Seed>,
    /// The current read packed 2 bits/base, both strands, with `N` lane
    /// masks — packed once per read (every seed of the read reuses it).
    packed: PackedReadPair,
    /// Kernel activity accumulated since the last [`ExtendScratch::take_stats`].
    stats: KernelStats,
}

/// Counters of SIMD and batching activity inside the extension kernel,
/// accumulated in the scratch (plain `u64`s — the kernel never touches an
/// observability shard directly) and drained per read into mg-obs by the
/// mapping pipeline.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// 256-bit comparison blocks executed by the wide walk.
    pub wide_blocks: u64,
    /// Base lanes compared inside those wide blocks.
    pub wide_lanes: u64,
    /// Anchor batches formed by the batched extension dataflow.
    pub batches: u64,
    /// Anchors summed over those batches (`batch_anchors / batches` is the
    /// mean batch fill).
    pub batch_anchors: u64,
    /// DFS subtrees skipped by branch-and-bound pruning (`subtree_is_dead`).
    pub pruned_frames: u64,
}

impl ExtendScratch {
    /// Returns and resets the kernel activity counters.
    pub fn take_stats(&mut self) -> KernelStats {
        std::mem::take(&mut self.stats)
    }
}

/// Reconstructs a walk path from the arena's parent chain into `out`, in
/// walk order (anchor outward).
fn reconstruct_path(arena: &[(u32, Handle)], mut idx: u32, out: &mut Vec<Handle>) {
    out.clear();
    while idx != NO_PATH {
        let (parent, handle) = arena[idx as usize];
        out.push(handle);
        idx = parent;
    }
    out.reverse();
}

/// Extends one seed bidirectionally; returns `None` when the anchor is not
/// on any haplotype.
///
/// Convenience wrapper over [`extend_seed_with_scratch`] that allocates a
/// fresh [`ExtendScratch`]; loops should hold one scratch and call the
/// `_with_scratch` variant.
pub fn extend_seed<P: MemProbe>(
    graph: &VariationGraph,
    cache: &mut CachedGbwt<'_>,
    read: &[u8],
    read_id: u64,
    seed: Seed,
    params: &ExtendParams,
    probe: &mut P,
) -> Option<Extension> {
    let mut scratch = ExtendScratch::default();
    extend_seed_with_scratch(graph, cache, read, read_id, seed, params, probe, &mut scratch)
}

/// [`extend_seed`] reusing caller-provided scratch storage.
///
/// The walk extends right from the anchor first (including the anchor
/// base), then left from the resulting haplotype state, each direction
/// keeping its best-scoring prefix. Mismatch budget is shared: the left
/// walk gets whatever the right walk left over.
#[allow(clippy::too_many_arguments)]
pub fn extend_seed_with_scratch<P: MemProbe>(
    graph: &VariationGraph,
    cache: &mut CachedGbwt<'_>,
    read: &[u8],
    read_id: u64,
    seed: Seed,
    params: &ExtendParams,
    probe: &mut P,
    scratch: &mut ExtendScratch,
) -> Option<Extension> {
    let anchor = seed.pos;
    if seed.read_offset as usize >= read.len() {
        return None;
    }
    if anchor.offset as usize >= graph.node_len(anchor.handle.node()) {
        return None;
    }
    // Initial haplotype state at the anchor node.
    let sym = anchor.handle.to_gbwt();
    let fwd_total = cache.record_with_probe(sym, probe).total_visits();
    let bwd_total = cache.record_with_probe(sym ^ 1, probe).total_visits();
    probe.instret(8);
    if fwd_total == 0 {
        return None;
    }
    let init = BidirState {
        forward: mg_gbwt::SearchState { node: sym, start: 0, end: fwd_total },
        backward: mg_gbwt::SearchState { node: sym ^ 1, start: 0, end: bwd_total },
    };

    if active_tier::<P>(params) != SimdTier::Scalar {
        // The packed walk compares word-parallel; pack both strands of the
        // read once (a no-op for every seed of the read after the first).
        scratch.packed.prepare(read);
    }

    // Right: consume read[read_offset..], graph bases from anchor.offset.
    let right = walk(
        Dir::Right, graph, cache, read, seed, init, params, params.max_mismatches, probe, scratch,
    );
    // The left walk reuses (and clears) the arena, so materialize the right
    // path first.
    let mut right_path = std::mem::take(&mut scratch.right_path);
    reconstruct_path(&scratch.arena, right.path, &mut right_path);
    let budget_left = params.max_mismatches - right.mismatches.min(params.max_mismatches);
    // Left: consume read[..read_offset] backwards, graph bases left of the
    // anchor, continuing the haplotype state of the chosen right prefix.
    let left = walk(
        Dir::Left, graph, cache, read, seed, right.state, params, budget_left, probe, scratch,
    );
    let mut left_path = std::mem::take(&mut scratch.left_path);
    reconstruct_path(&scratch.arena, left.path, &mut left_path);

    let result = (|| {
        let read_start = seed.read_offset - left.consumed;
        let read_end = seed.read_offset + right.consumed;
        if read_end <= read_start {
            return None;
        }
        // Start position: `left.consumed` bases before the anchor, on the
        // first node of the left path (or the anchor node).
        let (start_handle, start_offset) =
            start_position(graph, anchor, left.consumed, &left_path);
        let mut path: Vec<Handle> =
            Vec::with_capacity(left_path.len() + 1 + right_path.len());
        path.extend(left_path.iter().rev().copied());
        path.push(anchor.handle);
        path.extend_from_slice(&right_path);
        Some(Extension {
            read_id,
            read_start,
            read_end,
            pos: GraphPos::new(start_handle, start_offset),
            path,
            score: left.score + right.score,
            mismatches: left.mismatches + right.mismatches,
        })
    })();
    scratch.right_path = right_path;
    scratch.left_path = left_path;
    result
}

/// Computes the graph position of the extension's first read base.
fn start_position(
    graph: &VariationGraph,
    anchor: GraphPos,
    left_consumed: u32,
    left_path: &[Handle],
) -> (Handle, u32) {
    if left_path.is_empty() {
        (anchor.handle, anchor.offset - left_consumed)
    } else {
        // The left walk consumed `anchor.offset` bases on the anchor node
        // and then walked into `left_path`; the final node holds the rest.
        let mut remaining = left_consumed - anchor.offset;
        for (i, &h) in left_path.iter().enumerate() {
            let len = graph.node_len(h.node()) as u32;
            if remaining <= len {
                return (h, len - remaining);
            }
            debug_assert!(i + 1 < left_path.len(), "left walk accounting");
            remaining -= len;
        }
        let last = *left_path.last().expect("nonempty path");
        (last, 0)
    }
}

/// The direction a walk consumes the read in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// Rightward from the anchor: read offsets grow, graph offsets grow.
    Right,
    /// Leftward from the anchor: read offsets shrink, graph offsets shrink
    /// (predecessors explored via the backward record).
    Left,
}

/// Walks one direction from the anchor: a DFS over haplotype-consistent
/// branches, comparing read bases with node bases under a shared mismatch
/// budget, keeping the best-scoring prefix. Both directions share one
/// body; only index arithmetic and the branch record differ (see [`Dir`]).
///
/// Two interchangeable comparison loops implement the walk. The
/// word-parallel packed loop ([`walk_packed`]) is the production path; the
/// byte-at-a-time scalar loop ([`walk_scalar`]) is the oracle, and the only
/// path that emits per-base [`REGION_READ`]/[`REGION_GRAPH_SEQ`] probe
/// traffic — so any probe that consumes that stream ([`MemProbe::ACTIVE`])
/// routes here, as does [`ExtendParams::force_scalar`]. Both loops are
/// bit-identical in every output (pinned by proptests and the GAF oracle).
#[allow(clippy::too_many_arguments)]
fn walk<P: MemProbe>(
    dir: Dir,
    graph: &VariationGraph,
    cache: &mut CachedGbwt<'_>,
    read: &[u8],
    seed: Seed,
    init: BidirState,
    params: &ExtendParams,
    budget: u32,
    probe: &mut P,
    scratch: &mut ExtendScratch,
) -> DirectionResult {
    match active_tier::<P>(params) {
        SimdTier::Scalar => {
            walk_scalar(dir, graph, cache, read, seed, init, params, budget, probe, scratch)
        }
        tier => {
            walk_packed(dir, graph, cache, read, seed, init, params, budget, probe, scratch, tier)
        }
    }
}

/// The scalar comparison walk: one byte compare per base, one probe touch
/// per read byte and per graph byte. See [`walk`].
#[allow(clippy::too_many_arguments)]
fn walk_scalar<P: MemProbe>(
    dir: Dir,
    graph: &VariationGraph,
    cache: &mut CachedGbwt<'_>,
    read: &[u8],
    seed: Seed,
    init: BidirState,
    params: &ExtendParams,
    budget: u32,
    probe: &mut P,
    scratch: &mut ExtendScratch,
) -> DirectionResult {
    let mut best = DirectionResult {
        score: 0,
        consumed: 0,
        mismatches: 0,
        path: NO_PATH,
        state: init,
    };
    let mut steps = 0usize;
    scratch.arena.clear();
    scratch.stack.clear();
    scratch.stack.push(Frame {
        state: init,
        handle: seed.pos.handle,
        // Bases consumed within the current node, counted in walk order.
        node_off: 0,
        consumed: 0,
        score: 0,
        mismatches: 0,
        path: NO_PATH,
    });
    while let Some(mut frame) = scratch.stack.pop() {
        // Branch-and-bound: frames pushed before the best prefix improved
        // are often provably unable to beat it now; skipping them is exact
        // (see `subtree_is_dead`) and prunes whole bubble arms once a
        // clean full-length walk has been found.
        let read_rem = match dir {
            Dir::Right => read.len() - seed.read_offset as usize - frame.consumed as usize,
            Dir::Left => (seed.read_offset - frame.consumed) as usize,
        };
        if subtree_is_dead(&frame, read_rem, &best, params) {
            scratch.stats.pruned_frames += 1;
            continue;
        }
        // How many bases this node offers in walk order, and the graph
        // offset of the c-th of them. The anchor node only offers the span
        // on the walk's side of the anchor (inclusive of the anchor base on
        // the right, exclusive on the left).
        let node_len = graph.node_len(frame.handle.node());
        let on_anchor = frame.path == NO_PATH;
        let avail = match (dir, on_anchor) {
            (Dir::Right, true) => node_len - seed.pos.offset as usize,
            (Dir::Left, true) => seed.pos.offset as usize,
            (_, false) => node_len,
        };
        let graph_off = |c: usize| match dir {
            Dir::Right => {
                if on_anchor {
                    seed.pos.offset as usize + c
                } else {
                    c
                }
            }
            Dir::Left => avail - 1 - c,
        };
        loop {
            // Read index of the next base, or stop at the read's edge.
            let r = match dir {
                Dir::Right => {
                    let r = seed.read_offset as usize + frame.consumed as usize;
                    if r >= read.len() {
                        break;
                    }
                    r
                }
                Dir::Left => {
                    if frame.consumed >= seed.read_offset {
                        break;
                    }
                    (seed.read_offset - 1 - frame.consumed) as usize
                }
            };
            if frame.node_off >= avail {
                // Node exhausted: branch over haplotype-consistent edges —
                // unless the subtree is already output-dead (children start
                // from this frame's exact `(score, consumed)`, so the bound
                // that would prune them at pop also holds here, and the
                // record scan can be skipped outright).
                let read_rem = match dir {
                    Dir::Right => {
                        read.len() - seed.read_offset as usize - frame.consumed as usize
                    }
                    Dir::Left => (seed.read_offset - frame.consumed) as usize,
                };
                if steps < params.max_branch_steps
                    && !subtree_is_dead(&frame, read_rem, &best, params)
                {
                    branch_states_into(
                        cache, &frame.state, dir == Dir::Left, &mut steps, params, probe,
                        &mut scratch.branches, &mut scratch.before, &mut scratch.counts,
                    );
                    for bi in 0..scratch.branches.len() {
                        let (next_state, next_handle) = scratch.branches[bi];
                        scratch.arena.push((frame.path, next_handle));
                        scratch.stack.push(Frame {
                            state: next_state,
                            handle: next_handle,
                            node_off: 0,
                            consumed: frame.consumed,
                            score: frame.score,
                            mismatches: frame.mismatches,
                            path: (scratch.arena.len() - 1) as u32,
                        });
                    }
                }
                break;
            }
            // Compare one base.
            let g_off = graph_off(frame.node_off);
            let read_base = read[r];
            let graph_base = graph.base(frame.handle, g_off);
            probe.touch(REGION_READ + r as u64, 1);
            probe.touch(
                REGION_GRAPH_SEQ + frame.handle.node().value() * GRAPH_SEQ_STRIDE + g_off as u64,
                1,
            );
            probe.instret(6);
            if read_base == graph_base {
                frame.score += params.match_score;
                probe.branch(true);
            } else {
                frame.mismatches += 1;
                probe.branch(false);
                if frame.mismatches > budget {
                    break;
                }
                frame.score -= params.mismatch_penalty;
            }
            frame.node_off += 1;
            frame.consumed += 1;
            if frame.score > best.score
                || (frame.score == best.score && frame.consumed > best.consumed)
            {
                // Plain scalar copy: the best path is just an arena index.
                best = DirectionResult {
                    score: frame.score,
                    consumed: frame.consumed,
                    mismatches: frame.mismatches,
                    path: frame.path,
                    state: frame.state,
                };
            }
        }
    }
    best
}

/// Returns `true` when no continuation of `frame` can replace `best` under
/// [`best_check`]'s comparison, so the frame's whole DFS subtree is
/// output-dead and can be skipped. Admissible only for non-negative scoring
/// (the default): the per-base score delta is then at most `match_score`,
/// so the all-match continuation `(score + match_score * read_rem,
/// consumed + read_rem)` bounds every reachable `(score, consumed)` pair.
/// The bound uses only frame-local values that the scalar and packed walks
/// hold identically at the same DFS points, so both walks prune the same
/// frames and stay bit-for-bit comparable — including the shared branch
/// step budget, which evolves identically.
#[inline(always)]
fn subtree_is_dead(
    frame: &Frame,
    read_rem: usize,
    best: &DirectionResult,
    params: &ExtendParams,
) -> bool {
    if !params.prune || params.match_score < 0 || params.mismatch_penalty < 0 {
        return false;
    }
    let smax = frame.score + params.match_score * read_rem as i32;
    let cmax = frame.consumed + read_rem as u32;
    smax < best.score || (smax == best.score && cmax <= best.consumed)
}

/// Updates the running best prefix from the frame, with the scalar loop's
/// exact comparison (better score, or equal score and longer prefix).
#[inline(always)]
fn best_check(frame: &Frame, best: &mut DirectionResult) {
    if frame.score > best.score || (frame.score == best.score && frame.consumed > best.consumed) {
        *best = DirectionResult {
            score: frame.score,
            consumed: frame.consumed,
            mismatches: frame.mismatches,
            path: frame.path,
            state: frame.state,
        };
    }
}

/// Advances the frame over `run` consecutive matching bases.
///
/// With a non-negative match score the per-base score is monotone
/// non-decreasing over the run and `consumed` strictly increases, so the
/// run's final base dominates every scalar per-base best-check — one check
/// at the end is bit-identical. A negative match score strictly decreases
/// the score, so the checks cannot be batched; that configuration falls
/// back to per-base updates.
#[inline(always)]
fn apply_match_run(frame: &mut Frame, run: u32, params: &ExtendParams, best: &mut DirectionResult) {
    if run == 0 {
        return;
    }
    if params.match_score >= 0 {
        frame.score += params.match_score * run as i32;
        frame.consumed += run;
        frame.node_off += run as usize;
        best_check(frame, best);
    } else {
        for _ in 0..run {
            frame.score += params.match_score;
            frame.consumed += 1;
            frame.node_off += 1;
            best_check(frame, best);
        }
    }
}

/// Walks the set lanes of one comparison word in base order — the gaps
/// between them are match runs — over the first `chunk` lanes. Returns
/// `true` when the mismatch budget is exhausted: the mismatch is not
/// consumed and the caller kills the frame without branching, exactly like
/// the scalar loop's break.
#[inline(always)]
fn walk_lanes(
    mut lanes: u64,
    chunk: usize,
    frame: &mut Frame,
    best: &mut DirectionResult,
    params: &ExtendParams,
    budget: u32,
) -> bool {
    let mut pos = 0usize;
    while lanes != 0 {
        let mm = (lanes.trailing_zeros() >> 1) as usize;
        apply_match_run(frame, (mm - pos) as u32, params, best);
        frame.mismatches += 1;
        if frame.mismatches > budget {
            return true;
        }
        frame.score -= params.mismatch_penalty;
        frame.consumed += 1;
        frame.node_off += 1;
        best_check(frame, best);
        pos = mm + 1;
        lanes &= lanes - 1;
    }
    apply_match_run(frame, (chunk - pos) as u32, params, best);
    false
}

/// The word-parallel comparison walk: XORs 2-bit packed windows of the read
/// against the node's packed arena, 32 bases per step, and only spends
/// per-base work on the mismatching lanes. See [`walk`].
///
/// At `tier >= Avx2` spans longer than one word are compared as one
/// 256-bit block ([`mg_kernels::wide_mismatch_lanes`]): four XOR/fold lanes
/// per instruction, with the per-word lane walk unchanged — the wide path
/// only changes how the lane words are produced, so it is bit-identical to
/// SWAR by construction (and pinned so by proptests).
///
/// Both directions compare *ascending* packed buffers: a leftward walk
/// flips to the reverse-complement read buffer against the flipped handle's
/// reverse-complement arena (complement is a bijection on the 2-bit codes,
/// so equality is preserved base-for-base). Read `N` lanes arrive
/// pre-masked as forced mismatches from [`PackedReadPair`]; the graph side
/// needs no mask because [`VariationGraph::add_node`] rejects non-`ACGT`.
///
/// The wide rung pays one `#[target_feature]` call per 128-base block
/// ([`mg_kernels::wide_gather_mismatch`] — both gathers and the fold fused
/// behind a single boundary), and only engages on spans that fill a whole
/// block; shorter spans take the word-at-a-time loop on every tier. Both
/// shapes were measured: hoisting the dispatch to once-per-walk (the whole
/// body inside an AVX2 feature region) pessimized the surrounding DFS
/// codegen by far more than the ~18k per-block calls cost.
#[allow(clippy::too_many_arguments)]
fn walk_packed<P: MemProbe>(
    dir: Dir,
    graph: &VariationGraph,
    cache: &mut CachedGbwt<'_>,
    read: &[u8],
    seed: Seed,
    init: BidirState,
    params: &ExtendParams,
    budget: u32,
    probe: &mut P,
    scratch: &mut ExtendScratch,
    tier: SimdTier,
) -> DirectionResult {
    // Disjoint field borrows: the packed read is lent immutably to the
    // comparison loop while the DFS buffers are mutated.
    let ExtendScratch {
        stack,
        arena,
        branches,
        before,
        counts,
        packed,
        stats,
        ..
    } = scratch;
    let wide = tier >= SimdTier::Avx2;
    let mut best = DirectionResult {
        score: 0,
        consumed: 0,
        mismatches: 0,
        path: NO_PATH,
        state: init,
    };
    let mut steps = 0usize;
    arena.clear();
    stack.clear();
    stack.push(Frame {
        state: init,
        handle: seed.pos.handle,
        node_off: 0,
        consumed: 0,
        score: 0,
        mismatches: 0,
        path: NO_PATH,
    });
    while let Some(mut frame) = stack.pop() {
        // Branch-and-bound, mirroring the scalar walk exactly (same bound,
        // same frame-local inputs, so the same frames are pruned).
        let pop_rem = match dir {
            Dir::Right => read.len() - seed.read_offset as usize - frame.consumed as usize,
            Dir::Left => (seed.read_offset - frame.consumed) as usize,
        };
        if subtree_is_dead(&frame, pop_rem, &best, params) {
            stats.pruned_frames += 1;
            continue;
        }
        let node_len = graph.node_len(frame.handle.node());
        let on_anchor = frame.path == NO_PATH;
        let avail = match (dir, on_anchor) {
            (Dir::Right, true) => node_len - seed.pos.offset as usize,
            (Dir::Left, true) => seed.pos.offset as usize,
            (_, false) => node_len,
        };
        // Ascending packed coordinates of the walk: base `consumed` of the
        // read buffer is `rs0 + consumed`, base `node_off` of the node view
        // is `gs0 + node_off` (leftward walks read the reverse-complement
        // pair, which turns descending source indices ascending).
        let (view, gs0, rs0, src) = match dir {
            Dir::Right => (
                graph.packed_view(frame.handle),
                if on_anchor { seed.pos.offset as usize } else { 0 },
                seed.read_offset as usize,
                &packed.fwd,
            ),
            Dir::Left => (
                graph.packed_view(frame.handle.flip()),
                node_len - avail,
                read.len() - seed.read_offset as usize,
                &packed.rc,
            ),
        };
        'frame: loop {
            // Same control order as the scalar loop: the read's edge ends
            // the frame before the node boundary is allowed to branch.
            let read_rem = match dir {
                Dir::Right => read.len() - (seed.read_offset as usize + frame.consumed as usize),
                Dir::Left => (seed.read_offset - frame.consumed) as usize,
            };
            if read_rem == 0 {
                break;
            }
            let node_rem = avail - frame.node_off;
            if node_rem == 0 {
                if steps < params.max_branch_steps
                    && !subtree_is_dead(&frame, read_rem, &best, params)
                {
                    branch_states_into(
                        cache, &frame.state, dir == Dir::Left, &mut steps, params, probe,
                        branches, before, counts,
                    );
                    for &(next_state, next_handle) in branches.iter() {
                        arena.push((frame.path, next_handle));
                        stack.push(Frame {
                            state: next_state,
                            handle: next_handle,
                            node_off: 0,
                            consumed: frame.consumed,
                            score: frame.score,
                            mismatches: frame.mismatches,
                            path: (arena.len() - 1) as u32,
                        });
                    }
                }
                break;
            }
            let span = read_rem.min(node_rem);
            let mut done = 0usize;
            while done < span {
                // Spans longer than one word go through the 256-bit block
                // compare (the trailing partial word rides along, masked
                // like the narrow path masks it); word-at-a-time SWAR
                // handles single-word remainders. The block is anchored at
                // the frame's current position, so the lane word for block
                // word `j` is the one SWAR would have produced after
                // consuming `j` words.
                let remaining = span - done;
                if wide && remaining > (WORDS_PER_BLOCK - 1) * BASES_PER_WORD {
                    // Only spans that fill a whole block go wide: the
                    // average span here is ~2 words, and gathering a fixed
                    // 4-word block for those wastes more than the fused
                    // compare saves (measured ~2% end-to-end).
                    let blk = WORDS_PER_BLOCK;
                    let take = (blk * BASES_PER_WORD).min(remaining);
                    let rbase = rs0 + frame.consumed as usize;
                    let gbase = gs0 + frame.node_off;
                    let mut lw = [0u64; WORDS_PER_BLOCK];
                    // The graph gather may pull neighbouring nodes' lanes
                    // past the node's span (`raw_words`); `keep_lanes`
                    // below masks every chunk to its live span before use.
                    mg_kernels::wide_gather_mismatch(
                        tier,
                        src.raw_words(),
                        view.raw_words(),
                        rbase,
                        gbase,
                        &mut lw,
                    );
                    stats.wide_blocks += 1;
                    stats.wide_lanes += take as u64;
                    let mut exhausted = false;
                    for (j, &lane_word) in lw.iter().enumerate().take(blk) {
                        let chunk = (take - j * BASES_PER_WORD).min(BASES_PER_WORD);
                        let mut lanes = lane_word;
                        if src.has_n() {
                            lanes |= src.nmask_word(rbase + j * BASES_PER_WORD);
                        }
                        if chunk < BASES_PER_WORD {
                            lanes = packed::keep_lanes(lanes, chunk);
                        }
                        if walk_lanes(lanes, chunk, &mut frame, &mut best, params, budget) {
                            exhausted = true;
                            break;
                        }
                    }
                    if exhausted {
                        break 'frame;
                    }
                    done += take;
                    continue;
                }
                let chunk = remaining.min(BASES_PER_WORD);
                let rbase = rs0 + frame.consumed as usize;
                let gbase = gs0 + frame.node_off;
                let xor = src.word(rbase) ^ view.word(gbase);
                // Clean reads (no `N`) skip the mask gather: `has_n` being
                // false proves every nmask word is zero.
                let nmask = if src.has_n() { src.nmask_word(rbase) } else { 0 };
                let lanes = packed::keep_lanes(packed::mismatch_lanes(xor) | nmask, chunk);
                if walk_lanes(lanes, chunk, &mut frame, &mut best, params, budget) {
                    break 'frame;
                }
                done += chunk;
            }
        }
    }
    best
}

/// Enumerates the haplotype-consistent branch states at a node boundary
/// with a single run scan of the current record and no record clone,
/// writing them into `out` (cleared first; `before`/`counts` are the
/// per-edge count buffers). `backward` selects the direction: `false`
/// extends the pattern forward (successors of the forward node), `true`
/// extends it backward (predecessors via the backward record, states
/// returned un-flipped).
#[allow(clippy::too_many_arguments)]
fn branch_states_into<P: MemProbe>(
    cache: &mut CachedGbwt<'_>,
    state: &BidirState,
    backward: bool,
    steps: &mut usize,
    params: &ExtendParams,
    probe: &mut P,
    out: &mut Vec<(BidirState, Handle)>,
    before: &mut Vec<u64>,
    counts: &mut Vec<u64>,
) {
    out.clear();
    let look = if backward { state.flipped() } else { *state };
    let record = cache.record_with_probe(look.forward.node, probe);
    probe.instret(6 + 2 * record.runs.len() as u64);
    record.range_counts_with_prefix_into(look.forward.start, look.forward.end, before, counts);
    for (i, edge) in record.edges.iter().enumerate() {
        if *steps >= params.max_branch_steps {
            break;
        }
        if edge.symbol == mg_gbwt::ENDMARKER || counts[i] == 0 {
            continue;
        }
        *steps += 1;
        let next = record_extend_forward_with_counts(record, &look, i, before, counts);
        if next.is_empty() {
            continue;
        }
        let handle = Handle::from_gbwt(edge.symbol).expect("real symbol");
        if backward {
            // Backward branches walk the flipped handle in read space.
            out.push((next.flipped(), handle.flip()));
        } else {
            out.push((next, handle));
        }
    }
}

/// Processes a read's clusters best-first, extending each cluster's seeds
/// until the threshold policy says stop (the `process_until_threshold_c`
/// driver).
///
/// Convenience wrapper over [`process_until_threshold_with_scratch`] that
/// allocates a fresh [`ExtendScratch`]; loops should hold one scratch and
/// call the `_with_scratch` variant.
#[allow(clippy::too_many_arguments)]
pub fn process_until_threshold<P: MemProbe>(
    graph: &VariationGraph,
    cache: &mut CachedGbwt<'_>,
    read: &[u8],
    read_id: u64,
    seeds: &[Seed],
    clusters: &[Cluster],
    extend: &ExtendParams,
    process: &ProcessParams,
    probe: &mut P,
) -> Vec<Extension> {
    let mut scratch = ExtendScratch::default();
    process_until_threshold_with_scratch(
        graph, cache, read, read_id, seeds, clusters, extend, process, probe, &mut scratch,
    )
}

/// [`process_until_threshold`] reusing caller-provided scratch storage.
#[allow(clippy::too_many_arguments)]
pub fn process_until_threshold_with_scratch<P: MemProbe>(
    graph: &VariationGraph,
    cache: &mut CachedGbwt<'_>,
    read: &[u8],
    read_id: u64,
    seeds: &[Seed],
    clusters: &[Cluster],
    extend: &ExtendParams,
    process: &ProcessParams,
    probe: &mut P,
    scratch: &mut ExtendScratch,
) -> Vec<Extension> {
    let mut extensions: Vec<Extension> = Vec::new();
    let best_cluster_score = clusters.first().map_or(0.0, |c| c.score);
    for cluster in clusters.iter().take(process.max_clusters) {
        if cluster.score < best_cluster_score * process.cluster_score_cutoff {
            break;
        }
        // Deduplicate exact anchor duplicates (the same read offset hitting
        // the same graph position via several minimizers).
        scratch.anchors.clear();
        scratch.anchors.extend(cluster.seeds.iter().map(|&i| seeds[i]));
        scratch.anchors.sort_unstable();
        scratch.anchors.dedup();
        // Batched dataflow: reorder each batch of anchors graph-position
        // major, so consecutive extensions hit the same node's packed words
        // and the same GBWT records while they are cache-hot. The final
        // canonicalization below makes anchor order invisible in the
        // output, so this is purely a locality transform.
        if process.extend_batch > 1 {
            for chunk in scratch.anchors.chunks_mut(process.extend_batch) {
                chunk.sort_unstable_by_key(|s| (s.pos, s.read_offset));
                scratch.stats.batches += 1;
                scratch.stats.batch_anchors += chunk.len() as u64;
            }
        }
        // Index loop: each anchor is copied out so the scratch can be lent
        // to the extension below.
        for ai in 0..scratch.anchors.len() {
            let anchor = scratch.anchors[ai];
            if let Some(ext) = extend_seed_with_scratch(
                graph, cache, read, read_id, anchor, extend, probe, scratch,
            ) {
                if ext.score >= process.min_extension_score {
                    extensions.push(ext);
                }
            }
        }
    }
    // Deduplicate identical spans, keep the best-scoring representative.
    // The key is a total order over extension content (mismatches and path
    // break residual ties), so the representative each span keeps is
    // independent of the order anchors were extended in — batching and
    // anchor reordering provably cannot change the output.
    extensions.sort_by(|a, b| {
        (a.read_start, a.read_end, a.pos, std::cmp::Reverse(a.score), a.mismatches, &a.path).cmp(
            &(b.read_start, b.read_end, b.pos, std::cmp::Reverse(b.score), b.mismatches, &b.path),
        )
    });
    extensions.dedup_by_key(|e| (e.read_start, e.read_end, e.pos));
    // Best first; deterministic tie-break by span then position.
    extensions.sort_by(|a, b| {
        b.score
            .cmp(&a.score)
            .then_with(|| (a.read_start, a.read_end, a.pos).cmp(&(b.read_start, b.read_end, b.pos)))
    });
    extensions.truncate(process.max_extensions_per_read);
    probe.instret(extensions.len() as u64 * 10);
    extensions
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_gbwt::Gbz;
    use mg_graph::pangenome::{PangenomeBuilder, Variant};
    use mg_graph::NodeId;
    use mg_support::probe::{CountingProbe, NoProbe};

    /// Reference AAAACCCCGGGGTTTT with a SNP at 6 (C->G) and two haplotypes.
    fn bubble_gbz() -> Gbz {
        let p = PangenomeBuilder::new(b"AAAACCCCGGGGTTTT".to_vec())
            .variants(vec![Variant::snp(6, b'G')])
            .haplotypes(vec![vec![0], vec![1]])
            .max_node_len(4)
            .build()
            .unwrap();
        Gbz::from_pangenome(p).unwrap()
    }

    fn anchor(node: u64, off: u32, read_off: u32) -> Seed {
        Seed::new(read_off, GraphPos::new(Handle::forward(NodeId::new(node)), off))
    }

    #[test]
    fn perfect_read_extends_fully() {
        let gbz = bubble_gbz();
        let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
        // The reference haplotype sequence itself.
        let read = b"AAAACCCCGGGGTTTT";
        // Anchor in the middle of node 1 (AAAA), read offset 2.
        let seed = anchor(1, 2, 2);
        let ext = extend_seed(
            gbz.graph(),
            &mut cache,
            read,
            0,
            seed,
            &ExtendParams::default(),
            &mut NoProbe,
        )
        .expect("extension exists");
        assert_eq!(ext.read_start, 0);
        assert_eq!(ext.read_end, 16);
        assert_eq!(ext.score, 16);
        assert_eq!(ext.mismatches, 0);
        assert_eq!(ext.pos.handle, Handle::forward(NodeId::new(1)));
        assert_eq!(ext.pos.offset, 0);
    }

    #[test]
    fn alt_haplotype_read_follows_alt_allele() {
        let gbz = bubble_gbz();
        let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
        // Haplotype 1: AAAACC G CGGGGTTTT (SNP at position 6).
        let read = b"AAAACCGCGGGGTTTT";
        let seed = anchor(1, 0, 0);
        let ext = extend_seed(
            gbz.graph(),
            &mut cache,
            read,
            0,
            seed,
            &ExtendParams::default(),
            &mut NoProbe,
        )
        .unwrap();
        assert_eq!(ext.read_end - ext.read_start, 16);
        assert_eq!(ext.mismatches, 0);
        assert_eq!(ext.score, 16);
    }

    #[test]
    fn mismatches_tolerated_up_to_budget() {
        let gbz = bubble_gbz();
        let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
        // Reference read with 2 errors; a gentle penalty keeps both errors
        // worth retaining (each is followed by enough matches).
        let mut read = b"AAAACCCCGGGGTTTT".to_vec();
        read[3] = b'T';
        read[10] = b'A';
        let seed = anchor(2, 1, 5); // anchor on node 2 (CC), base 5 of read
        let params = ExtendParams {
            max_mismatches: 2,
            mismatch_penalty: 1,
            ..Default::default()
        };
        let ext = extend_seed(gbz.graph(), &mut cache, &read, 0, seed, &params, &mut NoProbe)
            .unwrap();
        assert_eq!(ext.mismatches, 2);
        assert_eq!(ext.read_start, 0);
        assert_eq!(ext.read_end, 16);
        assert_eq!(ext.score, 14 - 2);
    }

    #[test]
    fn trailing_mismatch_is_trimmed_for_score() {
        // With the default penalty (4), a mismatch near the read edge costs
        // more than the bases beyond it recover, so the kernel trims it —
        // the max-score semantics of gapless extension.
        let gbz = bubble_gbz();
        let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
        let mut read = b"AAAACCCCGGGGTTTT".to_vec();
        read[1] = b'G'; // one match beyond it on the left edge
        let seed = anchor(2, 1, 5);
        let params = ExtendParams { max_mismatches: 2, ..Default::default() };
        let ext = extend_seed(gbz.graph(), &mut cache, &read, 0, seed, &params, &mut NoProbe)
            .unwrap();
        // Trimmed to [2, 16): 14 matches, no mismatches.
        assert_eq!(ext.read_start, 2);
        assert_eq!(ext.read_end, 16);
        assert_eq!(ext.mismatches, 0);
        assert_eq!(ext.score, 14);
    }

    #[test]
    fn budget_exhaustion_trims_extension() {
        let gbz = bubble_gbz();
        let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
        // Garbage right half: extension should stop at the junk.
        let read = b"AAAACCCCTTTTAAAA".to_vec();
        let seed = anchor(1, 0, 0);
        let params = ExtendParams { max_mismatches: 1, ..Default::default() };
        let ext = extend_seed(gbz.graph(), &mut cache, &read, 0, seed, &params, &mut NoProbe)
            .unwrap();
        // First 8 bases match the reference haplotype.
        assert_eq!(ext.read_start, 0);
        assert!(ext.read_end >= 8 && ext.read_end < 16, "read_end {}", ext.read_end);
        assert!(ext.score >= 8 - 4);
    }

    #[test]
    fn seed_not_on_haplotype_returns_none() {
        // Build a GBZ where node 3 (alt G) exists but strip haplotype 1 so
        // nothing visits it.
        let p = PangenomeBuilder::new(b"AAAACCCCGGGGTTTT".to_vec())
            .variants(vec![Variant::snp(6, b'G')])
            .haplotypes(vec![vec![0]])
            .max_node_len(4)
            .build()
            .unwrap();
        // Find a node that only the alt allele uses: spell sequences.
        let gbz = Gbz::from_pangenome(p).unwrap();
        let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
        let mut unvisited = None;
        for id in gbz.graph().node_ids() {
            if gbz.gbwt().find(Handle::forward(id).to_gbwt()).is_empty() {
                unvisited = Some(id);
                break;
            }
        }
        let node = unvisited.expect("alt node unvisited");
        let seed = Seed::new(0, GraphPos::new(Handle::forward(node), 0));
        let read = b"GGGG";
        assert!(extend_seed(
            gbz.graph(),
            &mut cache,
            read,
            0,
            seed,
            &ExtendParams::default(),
            &mut NoProbe
        )
        .is_none());
    }

    #[test]
    fn reverse_strand_read_extends_on_flipped_handles() {
        let gbz = bubble_gbz();
        let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
        // Reverse complement of the reference.
        let read = mg_graph::dna::reverse_complement(b"AAAACCCCGGGGTTTT");
        // Anchor: read starts at the flipped last node. Node 5/6? Find the
        // node whose reverse sequence starts the read.
        let mut found = false;
        for id in gbz.graph().node_ids() {
            let h = Handle::reverse(id);
            if gbz.graph().sequence(h)[0] == read[0]
                && !gbz.gbwt().find(h.to_gbwt()).is_empty()
            {
                let seed = Seed::new(0, GraphPos::new(h, 0));
                if let Some(ext) = extend_seed(
                    gbz.graph(),
                    &mut cache,
                    &read,
                    0,
                    seed,
                    &ExtendParams::default(),
                    &mut NoProbe,
                ) {
                    if ext.len() == 16 && ext.mismatches == 0 {
                        found = true;
                        break;
                    }
                }
            }
        }
        assert!(found, "some reverse anchor yields a perfect reverse extension");
    }

    #[test]
    fn out_of_range_seed_rejected() {
        let gbz = bubble_gbz();
        let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
        // read_offset beyond the read.
        let seed = anchor(1, 0, 10);
        assert!(extend_seed(
            gbz.graph(),
            &mut cache,
            b"ACGT",
            0,
            seed,
            &ExtendParams::default(),
            &mut NoProbe
        )
        .is_none());
        // node offset beyond the node.
        let seed = anchor(1, 100, 0);
        assert!(extend_seed(
            gbz.graph(),
            &mut cache,
            b"ACGT",
            0,
            seed,
            &ExtendParams::default(),
            &mut NoProbe
        )
        .is_none());
    }

    #[test]
    fn probe_counts_base_comparisons() {
        let gbz = bubble_gbz();
        let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
        let read = b"AAAACCCCGGGGTTTT";
        let mut probe = CountingProbe::default();
        let _ = extend_seed(
            gbz.graph(),
            &mut cache,
            read,
            0,
            anchor(1, 0, 0),
            &ExtendParams::default(),
            &mut probe,
        );
        // At least one touch per compared base (read + graph).
        assert!(probe.touches >= 32, "touches {}", probe.touches);
        assert!(probe.branches >= 16);
    }

    #[test]
    fn process_clusters_dedupes_and_ranks() {
        let gbz = bubble_gbz();
        let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
        let read = b"AAAACCCCGGGGTTTT";
        // Two seeds anchoring the same alignment + one bogus seed.
        let seeds = vec![anchor(1, 0, 0), anchor(1, 2, 2), anchor(4, 0, 1)];
        let clusters = vec![Cluster { seeds: vec![0, 1, 2], score: 3.0, coverage: 1.0 }];
        let exts = process_until_threshold(
            gbz.graph(),
            &mut cache,
            read,
            7,
            &seeds,
            &clusters,
            &ExtendParams::default(),
            &ProcessParams::default(),
            &mut NoProbe,
        );
        assert!(!exts.is_empty());
        // Scores descending.
        assert!(exts.windows(2).all(|w| w[0].score >= w[1].score));
        // Best is the perfect full-length match.
        assert_eq!(exts[0].score, 16);
        assert_eq!(exts[0].read_id, 7);
        // The two same-span anchors deduplicated: no adjacent repeats.
        let span = |e: &Extension| (e.read_start, e.read_end, e.pos);
        assert!(
            exts.windows(2).all(|w| span(&w[0]) != span(&w[1])),
            "duplicate span survived dedup"
        );
    }

    #[test]
    fn threshold_policy_skips_weak_clusters() {
        let gbz = bubble_gbz();
        let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
        let read = b"AAAACCCCGGGGTTTT";
        let seeds = vec![anchor(1, 0, 0), anchor(4, 0, 12)];
        let clusters = vec![
            Cluster { seeds: vec![0], score: 10.0, coverage: 1.0 },
            Cluster { seeds: vec![1], score: 1.0, coverage: 0.1 },
        ];
        let process = ProcessParams { cluster_score_cutoff: 0.5, ..Default::default() };
        let exts = process_until_threshold(
            gbz.graph(),
            &mut cache,
            read,
            0,
            &seeds,
            &clusters,
            &ExtendParams::default(),
            &process,
            &mut NoProbe,
        );
        // Weak cluster (score 1 < 5) skipped: all extensions from cluster 0's
        // anchor, which starts at node 1.
        assert!(exts
            .iter()
            .all(|e| e.path.first() == Some(&Handle::forward(NodeId::new(1)))));
    }

    #[test]
    fn packed_walk_matches_scalar_oracle() {
        let gbz = bubble_gbz();
        // Reads covering clean matches, mismatches, an N, budget exhaustion,
        // and the reverse strand; anchors on both sides of the bubble so
        // both walk directions and both orientations run.
        let reads: Vec<Vec<u8>> = vec![
            b"AAAACCCCGGGGTTTT".to_vec(),
            b"AAAACCGCGGGGTTTT".to_vec(),
            b"AAAACCNCGGGGTTTT".to_vec(),
            b"AATACCCCGGGGATTT".to_vec(),
            b"AAAACCCCTTTTAAAA".to_vec(),
            mg_graph::dna::reverse_complement(b"AAAACCCCGGGGTTTT"),
        ];
        let param_sets = [
            ExtendParams::default(),
            ExtendParams { max_mismatches: 1, ..Default::default() },
            ExtendParams { max_mismatches: 2, mismatch_penalty: 1, ..Default::default() },
            ExtendParams { match_score: 0, ..Default::default() },
        ];
        for read in &reads {
            for params in &param_sets {
                for node in 1..=4u64 {
                    let node_len =
                        gbz.graph().node_len(NodeId::new(node)) as u32;
                    for off in 0..node_len {
                        for read_off in [0u32, 2, 5, 12] {
                            for handle in
                                [Handle::forward(NodeId::new(node)), Handle::reverse(NodeId::new(node))]
                            {
                                let seed = Seed::new(read_off, GraphPos::new(handle, off));
                                let scalar_params =
                                    ExtendParams { force_scalar: true, ..*params };
                                let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
                                let packed = extend_seed(
                                    gbz.graph(), &mut cache, read, 0, seed, params, &mut NoProbe,
                                );
                                let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
                                let scalar = extend_seed(
                                    gbz.graph(), &mut cache, read, 0, seed, &scalar_params,
                                    &mut NoProbe,
                                );
                                assert_eq!(
                                    packed, scalar,
                                    "read {:?} params {:?} seed {:?}",
                                    std::str::from_utf8(read).unwrap(),
                                    params,
                                    seed,
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_results() {
        let gbz = bubble_gbz();
        let read = b"AAAACCGCGGGGTTTT";
        let seeds = vec![anchor(1, 0, 0), anchor(2, 0, 4), anchor(4, 2, 10)];
        let clusters = vec![Cluster { seeds: vec![0, 1, 2], score: 3.0, coverage: 0.9 }];
        let run = || {
            let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
            process_until_threshold(
                gbz.graph(),
                &mut cache,
                read,
                0,
                &seeds,
                &clusters,
                &ExtendParams::default(),
                &ProcessParams::default(),
                &mut NoProbe,
            )
        };
        assert_eq!(run(), run());
    }
}
