//! The `cluster_seeds` kernel: Giraffe's second-hottest region.
//!
//! Seeds of one read are grouped into clusters of mutually close graph
//! positions (within a distance limit derived from the read length) using
//! the distance index, and each cluster gets a quality score from how much
//! of the read its seeds cover. High-scoring clusters feed the extension
//! kernel.

use mg_index::{DistanceIndex, DistanceScratch};
use mg_support::probe::MemProbe;

use crate::types::Seed;

/// Logical address region of the per-read seed arrays (for tracing).
pub const REGION_SEEDS: u64 = 0x5000_0000_0000;

/// Clustering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterParams {
    /// Two seeds join a cluster when their minimum graph distance is at
    /// most this many bases (Giraffe derives it from the read length; the
    /// pipelines pass `read_len`).
    pub distance_limit: u64,
    /// How many sorted neighbours each seed is checked against. Bounds the
    /// pair checks at `O(seeds × window)` like Giraffe's distance-index
    /// sweep bounds its work.
    pub neighbor_window: usize,
    /// K-mer length used to convert seed counts into read coverage.
    pub kmer_len: u32,
    /// Screen each sorted-neighbour pair with the distance index's cheap
    /// [`DistanceIndex::maybe_within`] bound before paying for the exact
    /// minimum-distance walk. The bound is conservative (it never excludes
    /// a pair that is actually within the limit), so toggling this can
    /// never change clustering output — only how many exact queries run.
    pub use_prefilter: bool,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            distance_limit: 200,
            neighbor_window: 12,
            kmer_len: 29,
            use_prefilter: true,
        }
    }
}

/// A cluster of seed indices with its quality score.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Indices into the read's seed array, ascending.
    pub seeds: Vec<usize>,
    /// Cluster score: distinct read offsets represented (Giraffe's cluster
    /// score counts distinct minimizers).
    pub score: f64,
    /// Fraction of the read covered by the cluster's seed k-mers.
    pub coverage: f64,
}

/// Union-find over seed indices.
#[derive(Debug, Default)]
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    /// Reinitializes for `n` elements, reusing the allocation.
    fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n as u32);
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller index becomes the root.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo as u32;
        }
    }
}

/// Reusable per-thread storage of the clustering kernel: the position-sort
/// order, the union-find, the distance-query scratch, the component
/// gathering buffer, and the per-cluster offset buffer. A worker holds one
/// and reuses it for every read it maps.
#[derive(Debug, Default)]
pub struct ClusterScratch {
    order: Vec<usize>,
    uf: UnionFind,
    dist: DistanceScratch,
    rooted: Vec<(usize, usize)>,
    offsets: Vec<u32>,
}

/// Clusters the seeds of one read.
///
/// Convenience wrapper over [`cluster_seeds_with_scratch`] that allocates a
/// fresh [`ClusterScratch`]; loops should hold one scratch and call the
/// `_with_scratch` variant.
pub fn cluster_seeds<P: MemProbe>(
    graph: &mg_graph::VariationGraph,
    dist: &DistanceIndex,
    seeds: &[Seed],
    read_len: u32,
    params: &ClusterParams,
    probe: &mut P,
) -> Vec<Cluster> {
    let mut scratch = ClusterScratch::default();
    cluster_seeds_with_scratch(graph, dist, seeds, read_len, params, probe, &mut scratch)
}

/// [`cluster_seeds`] reusing caller-provided scratch storage.
///
/// Seeds are sorted by their linearized graph position; each seed is
/// checked against the next `neighbor_window` seeds with the distance-index
/// prefilter and an exact bounded distance query, and close pairs are
/// unioned. Clusters come back sorted by score (descending), ties broken by
/// first seed index — a deterministic order regardless of thread count.
pub fn cluster_seeds_with_scratch<P: MemProbe>(
    graph: &mg_graph::VariationGraph,
    dist: &DistanceIndex,
    seeds: &[Seed],
    read_len: u32,
    params: &ClusterParams,
    probe: &mut P,
    scratch: &mut ClusterScratch,
) -> Vec<Cluster> {
    if seeds.is_empty() {
        return Vec::new();
    }
    probe.touch(REGION_SEEDS, std::mem::size_of_val(seeds) as u32);
    probe.instret(seeds.len() as u64 * 4);

    // Sort indices by linearized position so nearby seeds are adjacent.
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..seeds.len());
    let linear = |s: &Seed| -> (u32, u64, u64) {
        let node = s.pos.handle.node();
        (
            dist.component(node),
            dist.approx_position(node).saturating_add(s.pos.offset as u64),
            s.pos.handle.packed(),
        )
    };
    order.sort_unstable_by_key(|&i| (linear(&seeds[i]), seeds[i].read_offset));
    probe.instret((seeds.len() as f64 * (seeds.len() as f64).log2().max(1.0)) as u64);

    let uf = &mut scratch.uf;
    uf.reset(seeds.len());
    let limit = params.distance_limit;
    for (rank, &i) in order.iter().enumerate() {
        for &j in order.iter().skip(rank + 1).take(params.neighbor_window) {
            // Transitivity: pairs already clustered need no distance query
            // (this is what makes the sweep near-linear, like Giraffe's
            // distance-index clustering).
            if uf.find(i) == uf.find(j) {
                probe.instret(2);
                continue;
            }
            let (a, b) = (seeds[i].pos, seeds[j].pos);
            probe.instret(6);
            if params.use_prefilter && !dist.maybe_within(a, b, limit) {
                continue;
            }
            // Same-handle fast path: the offset gap is itself a walk.
            if a.handle == b.handle {
                let gap = a.offset.abs_diff(b.offset) as u64;
                probe.instret(4);
                if gap <= limit {
                    uf.union(i, j);
                    continue;
                }
            }
            // Exact check, either direction.
            probe.instret(40);
            if dist
                .min_undirected_distance_with(graph, a, b, limit, &mut scratch.dist)
                .is_some_and(|d| d <= limit)
            {
                uf.union(i, j);
            }
        }
    }

    // Gather components: sort (root, index) pairs and slice into groups —
    // no per-read hash map on the hot path.
    let rooted = &mut scratch.rooted;
    rooted.clear();
    rooted.extend((0..seeds.len()).map(|i| (uf.find(i), i)));
    rooted.sort_unstable();
    let mut clusters: Vec<Cluster> = Vec::new();
    let mut start = 0;
    while start < rooted.len() {
        let root = rooted[start].0;
        let mut end = start + 1;
        while end < rooted.len() && rooted[end].0 == root {
            end += 1;
        }
        let members: Vec<usize> = rooted[start..end].iter().map(|&(_, i)| i).collect();
        clusters.push(score_cluster(seeds, members, read_len, params, &mut scratch.offsets));
        start = end;
    }
    clusters.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.seeds[0].cmp(&b.seeds[0]))
    });
    probe.instret(clusters.len() as u64 * 8);
    clusters
}

fn score_cluster(
    seeds: &[Seed],
    members: Vec<usize>,
    read_len: u32,
    params: &ClusterParams,
    offsets: &mut Vec<u32>,
) -> Cluster {
    // Score: number of distinct read offsets (distinct minimizers).
    offsets.clear();
    offsets.extend(members.iter().map(|&i| seeds[i].read_offset));
    offsets.sort_unstable();
    offsets.dedup();
    let score = offsets.len() as f64;
    // Coverage: union of [offset, offset + k) intervals over the read.
    let mut covered = 0u64;
    let mut cursor = 0u32;
    for &off in offsets.iter() {
        let start = off.max(cursor);
        let end = (off + params.kmer_len).min(read_len.max(off));
        if end > start {
            covered += (end - start) as u64;
        }
        cursor = cursor.max(end);
    }
    let coverage = if read_len == 0 {
        0.0
    } else {
        (covered as f64 / read_len as f64).min(1.0)
    };
    Cluster {
        seeds: members,
        score,
        coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_graph::pangenome::{PangenomeBuilder, Variant};
    use mg_graph::{Handle, NodeId};
    use mg_support::probe::{CountingProbe, NoProbe};
    use mg_index::GraphPos;

    /// A long linear pangenome: two far-apart regions.
    fn linear() -> (mg_graph::Pangenome, DistanceIndex) {
        let p = PangenomeBuilder::new(vec![b'A'; 2000])
            .haplotypes(vec![vec![]])
            .max_node_len(20)
            .build()
            .unwrap();
        let d = DistanceIndex::build(p.graph());
        (p, d)
    }

    fn seed_at(p: &mg_graph::Pangenome, read_off: u32, base_pos: u64) -> Seed {
        // Node i covers bases [20 * (i - 1), 20 * i).
        let node = base_pos / 20 + 1;
        let off = (base_pos % 20) as u32;
        let _ = p;
        Seed::new(read_off, GraphPos::new(Handle::forward(NodeId::new(node)), off))
    }

    #[test]
    fn empty_seeds_give_no_clusters() {
        let (p, d) = linear();
        let out = cluster_seeds(p.graph(), &d, &[], 100, &ClusterParams::default(), &mut NoProbe);
        assert!(out.is_empty());
    }

    #[test]
    fn single_seed_is_one_cluster() {
        let (p, d) = linear();
        let seeds = [seed_at(&p, 0, 100)];
        let out = cluster_seeds(p.graph(), &d, &seeds, 100, &ClusterParams::default(), &mut NoProbe);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seeds, vec![0]);
        assert_eq!(out[0].score, 1.0);
    }

    #[test]
    fn nearby_seeds_cluster_far_seeds_split() {
        let (p, d) = linear();
        // Three seeds around base 100, two around base 1500.
        let seeds = [
            seed_at(&p, 0, 100),
            seed_at(&p, 10, 110),
            seed_at(&p, 20, 120),
            seed_at(&p, 0, 1500),
            seed_at(&p, 30, 1530),
        ];
        let params = ClusterParams { distance_limit: 150, ..Default::default() };
        let out = cluster_seeds(p.graph(), &d, &seeds, 100, &params, &mut NoProbe);
        assert_eq!(out.len(), 2);
        // Best cluster first: 3 distinct offsets beats 2.
        assert_eq!(out[0].seeds, vec![0, 1, 2]);
        assert_eq!(out[0].score, 3.0);
        assert_eq!(out[1].seeds, vec![3, 4]);
    }

    #[test]
    fn prefilter_toggle_never_changes_clusters() {
        let (p, d) = linear();
        // A mix of tight groups, chains, and far-apart singletons so both
        // prefilter outcomes (screened out, passed through) occur.
        let seeds: Vec<Seed> = [100u64, 110, 120, 360, 380, 900, 1500, 1530, 1900]
            .iter()
            .enumerate()
            .map(|(i, &pos)| seed_at(&p, (i * 7) as u32, pos))
            .collect();
        for limit in [30u64, 100, 150, 400] {
            let on = ClusterParams { distance_limit: limit, ..Default::default() };
            let off = ClusterParams { use_prefilter: false, ..on };
            assert!(on.use_prefilter);
            let with = cluster_seeds(p.graph(), &d, &seeds, 120, &on, &mut NoProbe);
            let without = cluster_seeds(p.graph(), &d, &seeds, 120, &off, &mut NoProbe);
            assert_eq!(with, without, "limit {limit}: prefilter changed clustering");
        }
    }

    #[test]
    fn chained_seeds_form_one_cluster() {
        // Seeds each within limit of the next but first and last far apart:
        // transitive clustering must chain them.
        let (p, d) = linear();
        let seeds: Vec<Seed> = (0..8).map(|i| seed_at(&p, i * 5, 100 + i as u64 * 100)).collect();
        let params = ClusterParams { distance_limit: 120, ..Default::default() };
        let out = cluster_seeds(p.graph(), &d, &seeds, 150, &params, &mut NoProbe);
        assert_eq!(out.len(), 1, "chain should union into one cluster");
        assert_eq!(out[0].seeds.len(), 8);
    }

    #[test]
    fn coverage_accounts_for_overlap() {
        let (p, d) = linear();
        // Two seeds whose k-mers overlap on the read.
        let seeds = [seed_at(&p, 0, 100), seed_at(&p, 10, 110)];
        let params = ClusterParams { distance_limit: 100, kmer_len: 29, ..Default::default() };
        let out = cluster_seeds(p.graph(), &d, &seeds, 100, &params, &mut NoProbe);
        assert_eq!(out.len(), 1);
        // Covered: [0, 39) = 39 bases of 100.
        assert!((out[0].coverage - 0.39).abs() < 1e-9, "coverage {}", out[0].coverage);
    }

    #[test]
    fn different_components_never_cluster() {
        let mut g = mg_graph::VariationGraph::new();
        let a = g.add_node(b"AAAA").unwrap();
        let b = g.add_node(b"CCCC").unwrap();
        let d = DistanceIndex::build(&g);
        let seeds = [
            Seed::new(0, GraphPos::new(Handle::forward(a), 0)),
            Seed::new(1, GraphPos::new(Handle::forward(b), 0)),
        ];
        let out = cluster_seeds(&g, &d, &seeds, 50, &ClusterParams::default(), &mut NoProbe);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn seeds_across_a_bubble_cluster() {
        let p = PangenomeBuilder::new(b"AAAAAAAACCCCCCCCTTTTTTTT".to_vec())
            .variants(vec![Variant::snp(10, b'G')])
            .haplotypes(vec![vec![0], vec![1]])
            .max_node_len(6)
            .build()
            .unwrap();
        let d = DistanceIndex::build(p.graph());
        // One seed before the bubble, one on the alt allele, one after.
        let before = Seed::new(0, GraphPos::new(Handle::forward(NodeId::new(1)), 2));
        let after_node = p.graph().max_node_id().unwrap();
        let after = Seed::new(12, GraphPos::new(Handle::forward(after_node), 1));
        let out = cluster_seeds(
            p.graph(),
            &d,
            &[before, after],
            50,
            &ClusterParams { distance_limit: 30, ..Default::default() },
            &mut NoProbe,
        );
        assert_eq!(out.len(), 1, "seeds straddling the bubble must cluster");
    }

    #[test]
    fn deterministic_order() {
        let (p, d) = linear();
        let seeds: Vec<Seed> = (0..20)
            .map(|i| seed_at(&p, (i * 7) % 60, ((i * 137) % 1900) as u64))
            .collect();
        let params = ClusterParams { distance_limit: 100, ..Default::default() };
        let a = cluster_seeds(p.graph(), &d, &seeds, 100, &params, &mut NoProbe);
        let b = cluster_seeds(p.graph(), &d, &seeds, 100, &params, &mut NoProbe);
        assert_eq!(a, b);
    }

    #[test]
    fn probe_sees_work() {
        let (p, d) = linear();
        let seeds: Vec<Seed> = (0..10).map(|i| seed_at(&p, i, 100 + i as u64 * 10)).collect();
        let mut probe = CountingProbe::default();
        let _ = cluster_seeds(p.graph(), &d, &seeds, 100, &ClusterParams::default(), &mut probe);
        assert!(probe.instructions > 0);
        assert!(probe.touches > 0);
    }

    #[test]
    fn union_find_chains_compress() {
        let mut uf = UnionFind::default();
        uf.reset(5);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert_eq!(uf.find(2), 0);
        assert_eq!(uf.find(4), 3);
        uf.union(2, 4);
        for i in 0..5 {
            assert_eq!(uf.find(i), 0);
        }
    }
}
