//! Sharded pangenome mapping: partitioning, the shard manifest, and the
//! minimizer-hit router.
//!
//! A *shard* is a self-contained slice of the pangenome — induced subgraph,
//! projected GBWT, core-filtered minimizer table, and sliced distance
//! index — bundled as one `.mgi` file, so an N-shard deployment is N cheap
//! zero-copy opens. The partition is by contiguous node-id ranges (node
//! ids follow the reference coordinate, so a range is a genomic region),
//! snapped to bubble-chain anchors so variant bubbles do not straddle a
//! cut:
//!
//! - the **core** ranges partition the node-id space exactly: every node
//!   belongs to one core, and a read whose seeds all land in one core is
//!   *resident* there;
//! - each shard's **window** extends its core by a margin of graph bases
//!   (an undirected Dijkstra ball), so every cluster-distance query and
//!   extension walk a resident read can perform stays strictly inside the
//!   shard.
//!
//! Residency is what makes sharding byte-stable: for a resident read the
//! shard kernel sees the same seeds (translated by a constant packed-handle
//! shift), the same distances, and the same haplotype branch counts as the
//! monolithic pipeline, so it produces the translated image of the exact
//! same extensions. Reads that are not resident (seeds spanning cores, or
//! too long for the margin) fall back to the monolithic path — correctness
//! never depends on routing quality.
//!
//! The **router** extracts a read's minimizers once, finds candidate
//! shards through per-shard k-mer Bloom summaries (no false negatives),
//! probes only those shards' minimizer tables, applies the *global*
//! hard-hit cap (per-shard counts summed over candidates — cores partition
//! positions, so the sum is the monolithic count), and emits the resident
//! shard's local seed list when exactly one shard has hits.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use mg_gbwt::Gbz;
use mg_graph::partition::IdWindow;
use mg_graph::{Handle, NodeId, VariationGraph};
use mg_index::minimizer::{extract_minimizers_into, Minimizer, MinimizerScratch};
use mg_index::{
    DistanceIndex, GraphPos, KmerBloom, MinimizerIndex, MinimizerParams, ShardMaskFilter,
};
use mg_support::container::{ContainerReader, ContainerWriter};
use mg_support::mgi::{put_u64, FixedReader};
use mg_support::{Error, Result};

use crate::mgi::MgiBundle;
use crate::types::Seed;

/// Container kind discriminator for shard manifest files.
pub const MANIFEST_KIND: [u8; 4] = *b"MGSM";
/// Section tag: manifest header + per-shard geometry.
pub const TAG_SHARD_META: u32 = 0x0001;
/// Section tag: per-shard k-mer Bloom summaries.
pub const TAG_SHARD_BLOOM: u32 = 0x0002;
/// Section tag: core-boundary edges (global packed-handle pairs).
pub const TAG_SHARD_BOUNDARY: u32 = 0x0003;

/// File name of the manifest inside a shard directory.
pub const MANIFEST_FILE: &str = "shards.mgsm";

/// Partitioning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardParams {
    /// Number of shards to cut the graph into (clamped to the node count).
    pub shard_count: usize,
    /// Maximum graph-distance limit (in bases) a resident read's kernels
    /// may query. Reads (or cluster limits) exceeding this fall back to
    /// the monolithic pipeline; larger values grow the window overlap.
    pub resident_limit: u64,
}

impl Default for ShardParams {
    fn default() -> Self {
        ShardParams { shard_count: 4, resident_limit: 600 }
    }
}

/// One shard's geometry inside the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMeta {
    /// Shard index (dense, ascending with node-id ranges).
    pub id: u32,
    /// The owned node-id range; cores partition `1..=node_count`.
    pub core: IdWindow,
    /// The loaded node-id range: core plus the residency margin.
    pub window: IdWindow,
}

/// The routing table header: everything a router needs without opening any
/// shard `.mgi` — geometry, per-shard k-mer summaries, and the edges that
/// cross core boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Total node count of the unsharded graph.
    pub node_count: u64,
    /// The residency margin the windows were built with.
    pub resident_limit: u64,
    /// Minimizer scheme shared by all shards (and the monolithic index).
    pub params: MinimizerParams,
    /// Per-shard geometry, ascending by core range.
    pub metas: Vec<ShardMeta>,
    /// Per-shard k-mer membership summaries (no false negatives: a k-mer
    /// with a position in shard `s`'s core is always present in `blooms[s]`).
    pub blooms: Vec<KmerBloom>,
    /// Edges whose endpoints lie in different cores, as global packed
    /// handles in canonical edge direction.
    pub boundary: Vec<(u64, u64)>,
}

impl ShardManifest {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.metas.len()
    }

    /// The shard whose core owns `node`, by binary search.
    pub fn core_shard(&self, node: NodeId) -> Option<usize> {
        let v = node.value();
        if v == 0 || v > self.node_count {
            return None;
        }
        let i = self.metas.partition_point(|m| m.core.hi < v);
        debug_assert!(self.metas[i].core.contains(node));
        Some(i)
    }

    /// Serializes the manifest to a writer.
    ///
    /// # Errors
    ///
    /// Returns underlying IO errors.
    pub fn write_to(&self, w: impl std::io::Write) -> Result<()> {
        let mut writer = ContainerWriter::new(w, MANIFEST_KIND)?;
        let mut meta = Vec::new();
        put_u64(&mut meta, self.node_count);
        put_u64(&mut meta, self.resident_limit);
        put_u64(&mut meta, self.params.k as u64);
        put_u64(&mut meta, self.params.w as u64);
        put_u64(&mut meta, self.metas.len() as u64);
        for m in &self.metas {
            put_u64(&mut meta, m.core.lo);
            put_u64(&mut meta, m.core.hi);
            put_u64(&mut meta, m.window.lo);
            put_u64(&mut meta, m.window.hi);
        }
        writer.section(TAG_SHARD_META, &meta)?;
        let mut blooms = Vec::new();
        for b in &self.blooms {
            put_u64(&mut blooms, b.words().len() as u64);
            for &word in b.words() {
                put_u64(&mut blooms, word);
            }
        }
        writer.section(TAG_SHARD_BLOOM, &blooms)?;
        let mut boundary = Vec::new();
        put_u64(&mut boundary, self.boundary.len() as u64);
        for &(from, to) in &self.boundary {
            put_u64(&mut boundary, from);
            put_u64(&mut boundary, to);
        }
        writer.section(TAG_SHARD_BOUNDARY, &boundary)?;
        writer.finish()?;
        Ok(())
    }

    /// Deserializes and structurally validates a manifest: cores must
    /// partition `1..=node_count` contiguously in ascending order, windows
    /// must contain their cores and stay in range, and every shard needs a
    /// well-formed Bloom summary. Untrusted input cannot make a validated
    /// manifest panic later.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on any structural violation.
    pub fn read_from(r: impl std::io::Read) -> Result<Self> {
        let mut reader = ContainerReader::new(r, MANIFEST_KIND)?;
        let meta_bytes = reader.expect_section(TAG_SHARD_META)?;
        let mut meta = FixedReader::new(&meta_bytes);
        let node_count = meta.read_u64()?;
        let resident_limit = meta.read_u64()?;
        let k = meta.read_u64()? as usize;
        let w = meta.read_u64()? as usize;
        if !(1..=31).contains(&k) || w == 0 {
            return Err(Error::Corrupt(format!("bad minimizer scheme k={k} w={w}")));
        }
        let shard_count = meta.read_u64()? as usize;
        if shard_count == 0 || shard_count as u64 > node_count {
            return Err(Error::Corrupt(format!(
                "manifest has {shard_count} shards for {node_count} nodes"
            )));
        }
        let mut metas = Vec::with_capacity(shard_count);
        let mut next_core = 1u64;
        for id in 0..shard_count {
            let core_lo = meta.read_u64()?;
            let core_hi = meta.read_u64()?;
            let window_lo = meta.read_u64()?;
            let window_hi = meta.read_u64()?;
            if core_lo != next_core || core_hi < core_lo || core_hi > node_count {
                return Err(Error::Corrupt(format!(
                    "shard {id} core [{core_lo}, {core_hi}] does not continue the partition at {next_core}"
                )));
            }
            if window_lo == 0 || window_lo > core_lo || window_hi < core_hi || window_hi > node_count {
                return Err(Error::Corrupt(format!(
                    "shard {id} window [{window_lo}, {window_hi}] does not cover core [{core_lo}, {core_hi}]"
                )));
            }
            next_core = core_hi + 1;
            metas.push(ShardMeta {
                id: id as u32,
                core: IdWindow::new(core_lo, core_hi),
                window: IdWindow::new(window_lo, window_hi),
            });
        }
        if next_core != node_count + 1 {
            return Err(Error::Corrupt(format!(
                "cores end at {} but the graph has {node_count} nodes",
                next_core - 1
            )));
        }
        if !meta.is_at_end() {
            return Err(Error::Corrupt("shard meta has trailing bytes".into()));
        }
        let bloom_bytes = reader.expect_section(TAG_SHARD_BLOOM)?;
        let mut bloom_r = FixedReader::new(&bloom_bytes);
        let mut blooms = Vec::with_capacity(shard_count);
        for id in 0..shard_count {
            let words = bloom_r.read_u64()? as usize;
            // An absurd word count would allocate unbounded memory before
            // the power-of-two check; clamp against the payload size.
            if words > bloom_bytes.len() / 8 {
                return Err(Error::Corrupt(format!("shard {id} bloom overruns section")));
            }
            let mut v = Vec::with_capacity(words);
            for _ in 0..words {
                v.push(bloom_r.read_u64()?);
            }
            let bloom = KmerBloom::from_words(v)
                .ok_or_else(|| Error::Corrupt(format!("shard {id} bloom is malformed")))?;
            blooms.push(bloom);
        }
        if !bloom_r.is_at_end() {
            return Err(Error::Corrupt("shard blooms have trailing bytes".into()));
        }
        let boundary_bytes = reader.expect_section(TAG_SHARD_BOUNDARY)?;
        let mut bound_r = FixedReader::new(&boundary_bytes);
        let pairs = bound_r.read_u64()? as usize;
        if pairs > boundary_bytes.len() / 16 {
            return Err(Error::Corrupt("boundary list overruns section".into()));
        }
        let mut boundary = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            let from = bound_r.read_u64()?;
            let to = bound_r.read_u64()?;
            boundary.push((from, to));
        }
        if !bound_r.is_at_end() {
            return Err(Error::Corrupt("boundary list has trailing bytes".into()));
        }
        reader.expect_end()?;
        Ok(ShardManifest {
            node_count,
            resident_limit,
            params: MinimizerParams::new(k, w),
            metas,
            blooms,
            boundary,
        })
    }
}

/// One loadable shard: geometry plus the full mapping bundle in
/// window-local coordinates.
#[derive(Debug, Clone)]
pub struct Shard {
    /// The shard's manifest entry.
    pub meta: ShardMeta,
    /// Graph + GBWT + minimizer + distance slice, window-local.
    pub bundle: MgiBundle,
}

/// A complete shard deployment: manifest plus every shard's bundle.
#[derive(Debug, Clone)]
pub struct ShardSet {
    /// The routing table.
    pub manifest: ShardManifest,
    /// The shards, ascending by core range.
    pub shards: Vec<Shard>,
    /// In-memory interleaving of the manifest's per-shard Bloom filters
    /// (`None` above eight shards): one probe walk scores every shard.
    /// Rebuilt from the manifest on open, never serialized.
    mask: Option<ShardMaskFilter>,
}

/// Computes, for every node, the minimum undirected base-distance ball of
/// radius `margin` around the `core` range, and returns the enclosing id
/// window. Distance here is the sum of node lengths *left behind* along a
/// path, so any directed walk covering at most `margin` bases from a core
/// node only visits nodes inside the ball — the superset property the
/// residency argument needs.
fn window_around(graph: &VariationGraph, core: IdWindow, margin: u64) -> IdWindow {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = graph.node_count() as u64;
    let mut dist = vec![u64::MAX; graph.node_count() + 1];
    let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    for id in core.lo..=core.hi {
        dist[id as usize] = 0;
        heap.push(Reverse((0, id)));
    }
    let (mut lo, mut hi) = (core.lo, core.hi);
    while let Some(Reverse((d, id))) = heap.pop() {
        if d > dist[id as usize] {
            continue;
        }
        lo = lo.min(id);
        hi = hi.max(id);
        let step = d + graph.node_len(NodeId::new(id)) as u64;
        if step > margin {
            continue;
        }
        let node = NodeId::new(id);
        for h in [Handle::forward(node), Handle::reverse(node)] {
            for &next in graph.successors(h) {
                let v = next.node().value();
                if step < dist[v as usize] {
                    dist[v as usize] = step;
                    heap.push(Reverse((step, v)));
                }
            }
        }
    }
    IdWindow::new(lo.max(1), hi.min(n))
}

/// Cuts `1..=node_count` into `shard_count` contiguous core ranges of
/// roughly equal total bases, snapping each cut to the nearest bubble-chain
/// anchor at or after the target so no variant bubble straddles a core
/// boundary.
fn cut_cores(
    graph: &VariationGraph,
    dist: &DistanceIndex,
    shard_count: usize,
) -> Vec<IdWindow> {
    let n = graph.node_count() as u64;
    let k = shard_count.clamp(1, n as usize) as u64;
    let total: u64 = graph.node_ids().map(|id| graph.node_len(id) as u64).sum();
    // Anchors are the nodes every haplotype passes through; a cut placed on
    // an anchor keeps each bubble (the variant region between consecutive
    // anchors) wholly on one side.
    let chains = dist.chains();
    let mut cores = Vec::with_capacity(k as usize);
    let mut lo = 1u64;
    let mut acc = 0u64;
    let mut next_target = total / k;
    for id in 1..=n {
        acc += graph.node_len(NodeId::new(id)) as u64;
        let remaining_shards = k - cores.len() as u64;
        let remaining_ids = n - id;
        // Cut when past the byte target on an anchor (or anywhere if the
        // graph has no chains), but never starve the remaining shards of
        // ids: each still-open shard needs at least one node.
        let snapped = chains.chain_count() == 0 || chains.is_on_chain(NodeId::new(id));
        let must_cut = remaining_ids + 1 == remaining_shards;
        if cores.len() as u64 + 1 < k && ((acc >= next_target && snapped) || must_cut) {
            cores.push(IdWindow::new(lo, id));
            lo = id + 1;
            next_target = acc + (total - acc) / (k - cores.len() as u64);
        }
    }
    cores.push(IdWindow::new(lo, n));
    cores
}

impl ShardSet {
    /// Partitions a pangenome into shards.
    ///
    /// The monolithic minimizer and distance indexes are projected, not
    /// rebuilt, so each shard answers queries with the *global* values
    /// (approximate positions, components, per-k-mer position runs) — the
    /// precondition for byte-stable sharded mapping.
    ///
    /// # Errors
    ///
    /// Returns an error if a shard's GBWT projection fails (e.g. a window
    /// no haplotype walk intersects).
    pub fn build(
        gbz: &Gbz,
        minimizer: &MinimizerIndex,
        distance: &DistanceIndex,
        params: &ShardParams,
    ) -> Result<ShardSet> {
        let graph = gbz.graph();
        let n = graph.node_count() as u64;
        if n == 0 {
            return Err(Error::Corrupt("cannot shard an empty graph".into()));
        }
        let max_node_len = graph
            .node_ids()
            .map(|id| graph.node_len(id) as u64)
            .max()
            .unwrap_or(0);
        // Any directed walk of <= resident_limit bases from a core node
        // stays inside the margin ball; the node-length terms absorb entry
        // and exit offsets, the +64 the distance index's prefilter slack.
        let margin = params.resident_limit + 2 * max_node_len + 64;
        let cores = cut_cores(graph, distance, params.shard_count);

        let mut metas = Vec::with_capacity(cores.len());
        let mut shards = Vec::with_capacity(cores.len());
        for (id, &core) in cores.iter().enumerate() {
            let window = window_around(graph, core, margin);
            let meta = ShardMeta { id: id as u32, core, window };
            let (local_gbz, _window_boundary) = gbz.project_window(window)?;
            let local_min = minimizer.project_range(core, window);
            let local_dist = distance.project_window(local_gbz.graph(), window);
            metas.push(meta);
            shards.push(Shard {
                meta,
                bundle: MgiBundle::from_parts(local_gbz, local_min, local_dist),
            });
        }

        // One pass over the monolithic table fills every shard's summary.
        let mut blooms: Vec<KmerBloom> = metas
            .iter()
            .map(|_| KmerBloom::with_capacity(minimizer.distinct_kmers() / metas.len().max(1) + 16))
            .collect();
        for kmer in minimizer.kmers() {
            let Some(ps) = minimizer.positions(kmer) else { continue };
            let mut last = usize::MAX;
            for p in ps {
                let s = metas.partition_point(|m| m.core.hi < p.handle.node().value());
                if s != last {
                    blooms[s].insert(kmer);
                    last = s;
                }
            }
        }

        let boundary: Vec<(u64, u64)> = graph
            .edges()
            .filter(|(from, to)| {
                metas.partition_point(|m| m.core.hi < from.node().value())
                    != metas.partition_point(|m| m.core.hi < to.node().value())
            })
            .map(|(from, to)| (from.packed(), to.packed()))
            .collect();

        let manifest = ShardManifest {
            node_count: n,
            resident_limit: params.resident_limit,
            params: minimizer.params(),
            metas,
            blooms,
            boundary,
        };
        let mask = ShardMaskFilter::build(&manifest.blooms);
        Ok(ShardSet { manifest, shards, mask })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// File name of shard `i`'s bundle inside a shard directory.
    pub fn shard_file(i: usize) -> String {
        format!("shard-{i:03}.mgi")
    }

    /// Writes the deployment to `dir`: `shards.mgsm` plus one `.mgi` per
    /// shard.
    ///
    /// # Errors
    ///
    /// Returns filesystem errors.
    pub fn save_dir(&self, dir: impl AsRef<Path>) -> Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(Error::Io)?;
        let manifest = File::create(dir.join(MANIFEST_FILE)).map_err(Error::Io)?;
        self.manifest.write_to(BufWriter::new(manifest))?;
        for (i, shard) in self.shards.iter().enumerate() {
            shard.bundle.save(dir.join(Self::shard_file(i)))?;
        }
        Ok(())
    }

    /// Opens a deployment from `dir`: validates the manifest, then maps
    /// every shard `.mgi` zero-copy and cross-checks each bundle's node
    /// count against its manifest window.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] when manifest and shards disagree.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<ShardSet> {
        Self::open_dir_with(dir, |p| MgiBundle::open(p))
    }

    /// [`ShardSet::open_dir`] skipping per-section checksum verification,
    /// for repeated opens of already-verified files.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] when manifest and shards disagree.
    pub fn open_dir_trusted(dir: impl AsRef<Path>) -> Result<ShardSet> {
        Self::open_dir_with(dir, |p| MgiBundle::open_trusted(p))
    }

    fn open_dir_with(
        dir: impl AsRef<Path>,
        open: impl Fn(&std::path::Path) -> Result<MgiBundle>,
    ) -> Result<ShardSet> {
        let dir = dir.as_ref();
        let manifest_file = File::open(dir.join(MANIFEST_FILE)).map_err(Error::Io)?;
        let manifest = ShardManifest::read_from(BufReader::new(manifest_file))?;
        let mut shards = Vec::with_capacity(manifest.shard_count());
        for (i, &meta) in manifest.metas.iter().enumerate() {
            let bundle = open(&dir.join(Self::shard_file(i)))?;
            if bundle.gbz().graph().node_count() as u64 != meta.window.len() {
                return Err(Error::Corrupt(format!(
                    "shard {i} bundle has {} nodes but its window spans {}",
                    bundle.gbz().graph().node_count(),
                    meta.window.len()
                )));
            }
            if bundle.minimizer().params() != manifest.params {
                return Err(Error::Corrupt(format!(
                    "shard {i} minimizer scheme disagrees with the manifest"
                )));
            }
            shards.push(Shard { meta, bundle });
        }
        let mask = ShardMaskFilter::build(&manifest.blooms);
        Ok(ShardSet { manifest, shards, mask })
    }

    /// Routes one read: extracts its minimizers once, scores candidate
    /// shards through the Bloom summaries, applies the global hard-hit cap
    /// (candidate-shard counts summed), and — when exactly one shard owns
    /// every surviving seed — fills `seeds_out` with that shard's local
    /// seed list, ordered exactly as the monolithic
    /// [`MinimizerIndex::query_into`] orders the same seeds.
    pub fn route_read(
        &self,
        bases: &[u8],
        hard_hit_cap: usize,
        scratch: &mut RouteScratch,
        seeds_out: &mut Vec<Seed>,
    ) -> RouteOutcome {
        seeds_out.clear();
        let mut mins = std::mem::take(&mut scratch.mins);
        extract_minimizers_into(bases, self.manifest.params, &mut scratch.extract, &mut mins);
        // All per-shard bookkeeping lives in bitmasks (shard counts are
        // small): `probed` = shards whose tables were consulted, `hit` =
        // shards holding at least one surviving seed.
        let mut probed_mask = 0u64;
        let mut hit_mask = 0u64;
        // Optimistic single-owner fill: while every surviving minimizer has
        // hit the same shard, append its positions to `seeds_out` as they
        // are counted, so the common resident read never looks a k-mer up
        // twice. `owner` may be poisoned by a minimizer the cap later
        // drops; the fanout check below catches that and refills.
        let mut owner: Option<u32> = None;
        let mut spoiled = false;
        for m in &mins {
            let cand = self.candidate_mask(KmerBloom::probe_hashes(m.kmer));
            probed_mask |= cand;
            let seed_start = seeds_out.len();
            let mut count = 0usize;
            let mut m_hits = 0u64;
            let mut c = cand;
            while c != 0 {
                let s = c.trailing_zeros() as usize;
                c &= c - 1;
                if let Some(ps) = self.shards[s].bundle.minimizer().positions(m.kmer) {
                    count += ps.len();
                    m_hits |= 1 << s;
                    if !spoiled {
                        match owner {
                            Some(o) if o != s as u32 => {
                                spoiled = true;
                                seeds_out.clear();
                            }
                            _ => {
                                owner = Some(s as u32);
                                if seeds_out.len() + ps.len() > MAX_ROUTED_SEEDS {
                                    spoiled = true;
                                    seeds_out.clear();
                                } else {
                                    let offset = m.offset;
                                    seeds_out
                                        .extend(ps.iter().map(|&pos| Seed::new(offset, pos)));
                                }
                            }
                        }
                    }
                }
            }
            if count > hard_hit_cap {
                // The monolithic repeat filter drops this minimizer; undo
                // its optimistic seeds and keep its shard hits out of the
                // fan-out.
                if !spoiled {
                    seeds_out.truncate(seed_start);
                }
            } else {
                hit_mask |= m_hits;
            }
        }
        let fanout = hit_mask.count_ones();
        let mut resident = None;
        if fanout == 1 {
            let s = hit_mask.trailing_zeros() as usize;
            if !spoiled && owner == Some(s as u32) {
                // The optimistic fill already holds exactly this shard's
                // seeds in minimizer order.
                resident = Some(s);
            } else {
                // Rare: the fill was spoiled by a cap-dropped minimizer
                // that hit another shard first. Refill from the survivors.
                resident = self.refill_resident(&mins, hard_hit_cap, s, seeds_out);
            }
        } else {
            seeds_out.clear();
        }
        scratch.mins = mins;
        RouteOutcome { probed: probed_mask.count_ones(), fanout, resident }
    }

    /// Candidate-shard bitmask for a hashed k-mer: one interleaved-filter
    /// walk when the mask is available (≤ 8 shards), else one probe per
    /// per-shard filter.
    #[inline]
    fn candidate_mask(&self, hashed: (u64, u64)) -> u64 {
        match &self.mask {
            Some(mask) => mask.candidates(hashed) as u64,
            None => {
                let mut c = 0u64;
                for (s, b) in self.manifest.blooms.iter().enumerate() {
                    if b.contains_hashed(hashed) {
                        c |= 1 << s;
                    }
                }
                c
            }
        }
    }

    /// Cold path for [`ShardSet::route_read`]: the optimistic fill was
    /// spoiled (a cap-dropped minimizer hit another shard first), but every
    /// surviving seed lives in shard `s`. Re-derives the per-minimizer cap
    /// decisions and fills `seeds_out` from shard `s` in minimizer order;
    /// `None` only on pathological overflow (the caller falls back).
    #[cold]
    fn refill_resident(
        &self,
        mins: &[Minimizer],
        hard_hit_cap: usize,
        s: usize,
        seeds_out: &mut Vec<Seed>,
    ) -> Option<usize> {
        seeds_out.clear();
        let shard = &self.shards[s];
        for m in mins {
            let mut count = 0usize;
            let mut c = self.candidate_mask(KmerBloom::probe_hashes(m.kmer));
            while c != 0 {
                let t = c.trailing_zeros() as usize;
                c &= c - 1;
                if let Some(ps) = self.shards[t].bundle.minimizer().positions(m.kmer) {
                    count += ps.len();
                }
            }
            if count > hard_hit_cap {
                continue;
            }
            if let Some(ps) = shard.bundle.minimizer().positions(m.kmer) {
                if seeds_out.len() + ps.len() > MAX_ROUTED_SEEDS {
                    seeds_out.clear();
                    return None;
                }
                for &pos in ps {
                    seeds_out.push(Seed::new(m.offset, pos));
                }
            }
        }
        Some(s)
    }
}

/// Backstop against a pathological read routing an absurd seed list; the
/// monolithic fallback handles such reads instead.
const MAX_ROUTED_SEEDS: usize = 1 << 20;

/// Reusable buffers for [`ShardSet::route_read`].
#[derive(Debug, Default)]
pub struct RouteScratch {
    extract: MinimizerScratch,
    mins: Vec<Minimizer>,
}

impl RouteScratch {
    /// The minimizers extracted by the last [`ShardSet::route_read`] call —
    /// a routing miss can fall back to whole-index seeding from these
    /// without paying a second extraction sweep.
    pub fn minimizers(&self) -> &[Minimizer] {
        &self.mins
    }
}

/// What routing one read decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteOutcome {
    /// Distinct shards whose minimizer tables were probed.
    pub probed: u32,
    /// Distinct shards that had at least one surviving seed.
    pub fanout: u32,
    /// The resident shard, when every surviving seed lands in one core.
    pub resident: Option<usize>,
}

impl ShardManifest {
    /// Routes a pre-seeded dump read by core ownership: `Some(shard)` when
    /// every seed's node sits in one shard's core (no minimizer extraction
    /// — the proxy path starts from captured seeds). Also reports the
    /// distinct-core fan-out for the routing histogram.
    pub fn route_seeds(&self, seeds: &[Seed]) -> (Option<usize>, u32) {
        let mut owner: Option<usize> = None;
        for sd in seeds {
            match (owner, self.core_shard(sd.pos.handle.node())) {
                (None, Some(s)) => owner = Some(s),
                (Some(o), Some(s)) if s != o => return (None, 2),
                _ => {}
            }
        }
        (owner, u32::from(owner.is_some()))
    }
}

/// Runs the proxy mapping loop over a seed dump with shard routing: reads
/// whose seeds all land in one shard core (and whose clustering radius
/// fits the halo) run that shard's kernel; everything else runs the
/// monolithic kernel. Results are byte-identical to
/// [`crate::run_mapping`] over the same dump; the routing counters in
/// `metrics` report how much work stayed shard-local.
pub fn run_mapping_sharded(
    dump: &crate::dump::SeedDump,
    gbz: &Gbz,
    distance: DistanceIndex,
    set: &ShardSet,
    options: &crate::MappingOptions,
    metrics: &mg_obs::Metrics,
) -> crate::MappingResults {
    use std::sync::OnceLock;
    use std::time::Instant;

    let mapper = crate::Mapper::with_distance(gbz, distance);
    let shard_mappers: Vec<crate::Mapper<'_>> = set
        .shards
        .iter()
        .map(|s| crate::Mapper::with_distance(s.bundle.gbz(), s.bundle.distance().clone()))
        .collect();
    let start = Instant::now();
    let n = dump.reads.len();
    let slots: Vec<OnceLock<crate::ReadResult>> = (0..n).map(|_| OnceLock::new()).collect();
    let scheduler = options.scheduler.build(options.batch_size);
    let mut pool = mapper.lock_pool();
    scheduler.run_pooled_erased_obs(
        &mut pool,
        n,
        options.threads.max(1),
        metrics,
        &|thread, cell| {
            let persist = match cell.downcast_mut::<crate::ThreadPersist>() {
                Some(p) => std::mem::take(p),
                None => crate::ThreadPersist::default(),
            };
            Box::new(DumpShardWorker {
                mapper: &mapper,
                shard_mappers: &shard_mappers,
                set,
                reads: &dump.reads,
                options,
                thread,
                slots: &slots,
                cache: mg_gbwt::CachedGbwt::with_state(
                    gbz.gbwt(),
                    options.cache_capacity,
                    persist.cache,
                ),
                shard_caches: (0..set.shard_count()).map(|_| None).collect(),
                scratch: persist.scratch,
                local_seeds: Vec::new(),
                metrics,
                obs: metrics.shard(),
            })
        },
    );
    drop(pool);
    let per_read = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(|| panic!("scheduler never processed read {i}"))
        })
        .collect();
    crate::MappingResults {
        per_read,
        wall: start.elapsed(),
        cache: mg_gbwt::CacheStats::default(),
        cache_heap_bytes: 0,
    }
}

/// Pool worker for [`run_mapping_sharded`]: per assigned read, route by
/// seed-core ownership, run the resident shard's kernel with translated
/// seeds (or the monolithic kernel), translate extensions back.
struct DumpShardWorker<'e, 'g> {
    mapper: &'e crate::Mapper<'g>,
    shard_mappers: &'e [crate::Mapper<'g>],
    set: &'e ShardSet,
    reads: &'e [crate::ReadInput],
    options: &'e crate::MappingOptions,
    thread: usize,
    slots: &'e [std::sync::OnceLock<crate::ReadResult>],
    cache: mg_gbwt::CachedGbwt<'e>,
    shard_caches: Vec<Option<mg_gbwt::CachedGbwt<'e>>>,
    scratch: crate::MapScratch,
    local_seeds: Vec<Seed>,
    metrics: &'e mg_obs::Metrics,
    obs: mg_obs::ObsShard,
}

impl mg_sched::PoolTask for DumpShardWorker<'_, '_> {
    fn run(&mut self, i: usize) {
        use mg_obs::{Ctr, Hist};
        use mg_support::probe::NoProbe;
        use mg_support::regions::NullSink;

        let read = &self.reads[i];
        let read_id = i as u64;
        let (owner, fanout) = self.set.manifest.route_seeds(&read.seeds);
        self.obs.inc(Ctr::RouteReadsTotal);
        self.obs.add(Ctr::RouteShardsProbed, fanout as u64);
        self.obs.observe(Hist::RouteFanout, fanout as u64);
        let radius = (read.bases.len() as u64).max(self.options.cluster.distance_limit);
        let resident = owner.filter(|_| radius <= self.set.manifest.resident_limit);
        let result = match resident {
            Some(s) => {
                self.obs.inc(Ctr::RouteResidentReads);
                let window = self.set.shards[s].meta.window;
                let mut local = std::mem::take(&mut self.local_seeds);
                local.clear();
                local.extend(read.seeds.iter().map(|sd| {
                    Seed::new(
                        sd.read_offset,
                        GraphPos::new(window.to_local(sd.pos.handle), sd.pos.offset),
                    )
                }));
                let input = crate::ReadInput { bases: read.bases.clone(), seeds: local };
                if self.shard_caches[s].is_none() {
                    self.shard_caches[s] = Some(mg_gbwt::CachedGbwt::new(
                        self.set.shards[s].bundle.gbz().gbwt(),
                        self.options.cache_capacity,
                    ));
                }
                let cache = self.shard_caches[s].as_mut().expect("cache just created");
                let local_result = self.shard_mappers[s].map_read_with_scratch(
                    cache,
                    read_id,
                    &input,
                    self.options,
                    &NullSink,
                    self.thread,
                    &mut NoProbe,
                    &mut self.scratch,
                    &mut self.obs,
                );
                self.local_seeds = input.seeds;
                crate::ReadResult {
                    read_id,
                    extensions: local_result
                        .extensions
                        .iter()
                        .map(|e| extension_to_global(window, e))
                        .collect(),
                }
            }
            None => {
                self.obs.inc(Ctr::RouteFallbackReads);
                self.mapper.map_read_with_scratch(
                    &mut self.cache,
                    read_id,
                    read,
                    self.options,
                    &NullSink,
                    self.thread,
                    &mut NoProbe,
                    &mut self.scratch,
                    &mut self.obs,
                )
            }
        };
        self.slots[i].set(result).expect("each read mapped once");
    }

    fn finish(self: Box<Self>, cell: &mut mg_sched::PoolCell) {
        let this = *self;
        this.metrics.absorb(&this.obs);
        *cell = Box::new(crate::ThreadPersist {
            cache: this.cache.into_state(),
            scratch: this.scratch,
        });
    }
}

/// Translates a shard-local extension back into global coordinates: the
/// seed position and every path handle shift by the window offset; read
/// offsets, score, and mismatches are coordinate-free.
pub fn extension_to_global(window: IdWindow, ext: &crate::types::Extension) -> crate::types::Extension {
    crate::types::Extension {
        read_id: ext.read_id,
        read_start: ext.read_start,
        read_end: ext.read_end,
        pos: GraphPos::new(window.to_global(ext.pos.handle), ext.pos.offset),
        path: ext.path.iter().map(|&h| window.to_global(h)).collect(),
        score: ext.score,
        mismatches: ext.mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_graph::pangenome::{PangenomeBuilder, Variant};
    use proptest::prelude::*;

    fn sample_gbz(reference_len: usize, max_node_len: usize) -> Gbz {
        let reference: Vec<u8> = (0..reference_len)
            .map(|i| b"ACGT"[(i * 7 + i / 9) % 4])
            .collect();
        let variants = (1..reference_len / 40)
            .map(|i| Variant::snp(i * 37, b"TGCA"[i % 4]))
            .collect::<Vec<_>>();
        let hap_count = 4;
        let haplotypes = (0..hap_count)
            .map(|h| (0..variants.len()).map(|v| (v + h) % 2).collect())
            .collect();
        let p = PangenomeBuilder::new(reference)
            .variants(variants)
            .haplotypes(haplotypes)
            .max_node_len(max_node_len)
            .build()
            .unwrap();
        Gbz::from_pangenome(p).unwrap()
    }

    fn sample_set(shard_count: usize) -> (MgiBundle, ShardSet) {
        let gbz = sample_gbz(1200, 16);
        let bundle = MgiBundle::build(gbz, MinimizerParams::new(15, 5)).unwrap();
        let params = ShardParams { shard_count, resident_limit: 120 };
        let set = ShardSet::build(
            bundle.gbz(),
            bundle.minimizer(),
            bundle.distance(),
            &params,
        )
        .unwrap();
        (bundle, set)
    }

    #[test]
    fn build_produces_contiguous_cores_and_covering_windows() {
        let (bundle, set) = sample_set(4);
        let n = bundle.gbz().graph().node_count() as u64;
        assert_eq!(set.shard_count(), 4);
        let mut next = 1u64;
        for shard in &set.shards {
            assert_eq!(shard.meta.core.lo, next);
            assert!(shard.meta.window.lo <= shard.meta.core.lo);
            assert!(shard.meta.window.hi >= shard.meta.core.hi);
            assert_eq!(
                shard.bundle.gbz().graph().node_count() as u64,
                shard.meta.window.len()
            );
            next = shard.meta.core.hi + 1;
        }
        assert_eq!(next, n + 1);
    }

    #[test]
    fn manifest_roundtrips_and_validates() {
        let (_, set) = sample_set(3);
        let mut bytes = Vec::new();
        set.manifest.write_to(&mut bytes).unwrap();
        let back = ShardManifest::read_from(&bytes[..]).unwrap();
        assert_eq!(back, set.manifest);
        // Flipping any byte (or truncating) must fail validation, not panic.
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(ShardManifest::read_from(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn save_and_open_dir_roundtrip() {
        let (_, set) = sample_set(3);
        let dir = std::env::temp_dir().join(format!("mg-shards-{}", std::process::id()));
        set.save_dir(&dir).unwrap();
        let back = ShardSet::open_dir(&dir).unwrap();
        assert_eq!(back.manifest, set.manifest);
        assert_eq!(back.shard_count(), set.shard_count());
        for (a, b) in back.shards.iter().zip(&set.shards) {
            assert!(a.bundle.is_mapped());
            assert_eq!(&a.bundle, &b.bundle);
        }
        let trusted = ShardSet::open_dir_trusted(&dir).unwrap();
        assert_eq!(trusted.manifest, set.manifest);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn routed_seeds_match_monolithic_query() {
        let (bundle, set) = sample_set(4);
        let cap = 128;
        let gbwt = bundle.gbz().gbwt();
        let walk = gbwt.sequence(0).unwrap();
        let mut seq = Vec::new();
        for &s in &walk {
            let h = Handle::from_gbwt(s).unwrap();
            seq.extend_from_slice(&bundle.gbz().graph().sequence(h));
        }
        let mut scratch = RouteScratch::default();
        let mut routed = Vec::new();
        let mut resident_reads = 0;
        for read in seq.windows(60).step_by(17) {
            let outcome = set.route_read(read, cap, &mut scratch, &mut routed);
            let global = bundle.minimizer().query(read, cap);
            assert!(outcome.probed <= set.shard_count() as u32);
            if let Some(s) = outcome.resident {
                resident_reads += 1;
                let window = set.shards[s].meta.window;
                let translated: Vec<(u32, GraphPos)> = routed
                    .iter()
                    .map(|seed| {
                        (seed.read_offset, GraphPos::new(window.to_global(seed.pos.handle), seed.pos.offset))
                    })
                    .collect();
                assert_eq!(translated, global, "resident seed list must be the global list");
            } else {
                // Non-resident: the global seeds must genuinely span
                // several cores (or none at all).
                let cores: std::collections::BTreeSet<usize> = global
                    .iter()
                    .filter_map(|(_, p)| set.manifest.core_shard(p.handle.node()))
                    .collect();
                assert_ne!(cores.len(), 1, "read with single-core seeds must be resident");
            }
        }
        assert!(resident_reads > 0, "no read routed to a resident shard");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The partition invariants hold for arbitrary geometry: every
        /// node in exactly one core, every edge intra-core or recorded as
        /// a boundary link, manifests cover the full id space.
        #[test]
        fn prop_sharding_is_a_true_partition(
            reference_len in 200usize..900,
            max_node_len in 4usize..40,
            shard_count in 1usize..6,
            resident_limit in 16u64..300,
        ) {
            let gbz = sample_gbz(reference_len, max_node_len);
            let minimizer = crate::mgi::build_minimizer_index(&gbz, MinimizerParams::new(9, 4)).unwrap();
            let distance = DistanceIndex::build(gbz.graph());
            let params = ShardParams { shard_count, resident_limit };
            let set = ShardSet::build(&gbz, &minimizer, &distance, &params).unwrap();
            let n = gbz.graph().node_count() as u64;

            // Every node id lands in exactly one core.
            let mut owners = vec![0u32; n as usize + 1];
            for shard in &set.shards {
                for id in shard.meta.core.lo..=shard.meta.core.hi {
                    owners[id as usize] += 1;
                }
            }
            prop_assert!(owners[1..].iter().all(|&c| c == 1), "cores must partition ids");

            // Reassembled manifests cover the id space with no gaps.
            let mut next = 1u64;
            for m in &set.manifest.metas {
                prop_assert_eq!(m.core.lo, next);
                next = m.core.hi + 1;
            }
            prop_assert_eq!(next, n + 1);

            // Every edge is intra-core or recorded as a boundary link.
            let boundary: std::collections::BTreeSet<(u64, u64)> =
                set.manifest.boundary.iter().copied().collect();
            for (from, to) in gbz.graph().edges() {
                let a = set.manifest.core_shard(from.node()).unwrap();
                let b = set.manifest.core_shard(to.node()).unwrap();
                if a != b {
                    prop_assert!(
                        boundary.contains(&(from.packed(), to.packed())),
                        "cross-core edge {from} -> {to} not recorded"
                    );
                } else {
                    prop_assert!(
                        !boundary.contains(&(from.packed(), to.packed())),
                        "intra-core edge {from} -> {to} wrongly recorded"
                    );
                }
            }

            // Bloom summaries have no false negatives over core k-mers.
            for kmer in minimizer.kmers() {
                for p in minimizer.positions(kmer).unwrap() {
                    let s = set.manifest.core_shard(p.handle.node()).unwrap();
                    prop_assert!(
                        set.manifest.blooms[s].contains(kmer),
                        "k-mer {kmer:#x} missing from shard {s} bloom"
                    );
                }
            }

            // The manifest roundtrips.
            let mut bytes = Vec::new();
            set.manifest.write_to(&mut bytes).unwrap();
            prop_assert_eq!(ShardManifest::read_from(&bytes[..]).unwrap(), set.manifest);
        }
    }
}
