//! The miniGiraffe mapping pipeline: dump in, extensions out.
//!
//! Mirrors the proxy's main loop: iterate over reads and their seeds in a
//! parallel outer loop (scheduler, batch size, and CachedGBWT capacity are
//! the tuning parameters), run `cluster_seeds` then
//! `process_until_threshold_c` per read, and collect raw mapping results.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use std::sync::Arc;

use mg_gbwt::{CacheState, CacheStats, CachedGbwt, Gbz, HotTier, HotTierBuilder};
use mg_index::DistanceIndex;
use mg_obs::{Ctr, Gauge, Hist, Metrics, ObsShard, Stage};
use mg_sched::{bounded_queue, PoolCell, PoolTask, SchedulerKind, WorkerPool};
use mg_support::probe::{MemProbe, NoProbe};
use mg_support::regions::{NullSink, RegionSink, RegionTimer};

use crate::cluster::{cluster_seeds_with_scratch, ClusterParams, ClusterScratch};
use crate::extend::{process_until_threshold_with_scratch, ExtendParams, ExtendScratch, ProcessParams};
use crate::types::{ReadInput, ReadResult};

/// Reusable per-thread buffers for the two hot kernels.
///
/// A worker thread keeps one of these alive across every read it maps, so
/// the DFS stack, path arena, union-find, and decode buffers reach a steady
/// state after the first few reads and the per-read heap traffic drops to
/// amortized O(1).
#[derive(Debug, Default)]
pub struct MapScratch {
    cluster: ClusterScratch,
    extend: ExtendScratch,
    /// Minimizer-extraction buffers for pipelines that seed reads
    /// themselves (the parent pipeline and mate rescue); the proxy maps
    /// pre-seeded dumps and leaves these empty.
    pub seeding: mg_index::MinimizerScratch,
    /// Seed-hit staging buffer for [`MinimizerIndex::query_into`]
    /// (mg_index::MinimizerIndex::query_into).
    pub seed_hits: Vec<(u32, mg_index::GraphPos)>,
}

/// All knobs of a mapping run.
///
/// `threads`, `batch_size`, `cache_capacity`, and `scheduler` are the
/// paper's tuning parameters (defaults: Giraffe's 512 batch / 256 capacity
/// with the OpenMP-dynamic scheduler).
#[derive(Debug, Clone, PartialEq)]
pub struct MappingOptions {
    /// Worker threads for the outer read loop.
    pub threads: usize,
    /// Reads handed to a thread at a time.
    pub batch_size: usize,
    /// Initial capacity of each thread's [`CachedGbwt`].
    pub cache_capacity: usize,
    /// Entry budget of the shared pre-decoded hot tier in front of the
    /// per-thread caches ([`HotTier`]). `0` disables the tier (the
    /// single-tier baseline). The tier is built once per run from seed
    /// frequency (previous-chunk frequency in streaming mode) and shared
    /// lock-free by every worker; it never changes mapping output.
    pub hot_tier_budget: usize,
    /// Which scheduler distributes batches.
    pub scheduler: SchedulerKind,
    /// Seed clustering parameters.
    pub cluster: ClusterParams,
    /// Gapless extension parameters.
    pub extend: ExtendParams,
    /// Cluster-processing policy.
    pub process: ProcessParams,
}

impl Default for MappingOptions {
    fn default() -> Self {
        MappingOptions {
            threads: 1,
            batch_size: 512,
            cache_capacity: 256,
            hot_tier_budget: 256,
            scheduler: SchedulerKind::Dynamic,
            cluster: ClusterParams::default(),
            extend: ExtendParams::default(),
            process: ProcessParams::default(),
        }
    }
}

/// Knobs of the streaming-ingestion path, on top of [`MappingOptions`].
///
/// The streaming pipeline's in-flight memory is bounded by
/// `(queue_batches + 1) × ingestion batch + one mapping chunk`: the queue
/// holds at most `queue_batches` batches, the blocked producer holds one
/// more, and the consumer accumulates up to a chunk before mapping it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOptions {
    /// Capacity of the reader→mapper hand-off queue, in batches. The
    /// producer blocks (backpressure) when the mapper falls behind by this
    /// many batches.
    pub queue_batches: usize,
    /// Reads the consumer accumulates into one parallel mapping chunk.
    /// `0` derives `threads × batch_size` from the [`MappingOptions`], so
    /// every worker gets at least one full batch per chunk.
    pub chunk_reads: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions { queue_batches: 4, chunk_reads: 0 }
    }
}

impl StreamOptions {
    /// The chunk size a run with `options` will use (the shared
    /// [`mg_sched::effective_chunk_reads`] definition).
    pub fn chunk_target(&self, options: &MappingOptions) -> usize {
        mg_sched::effective_chunk_reads(self.chunk_reads, options.threads, options.batch_size)
    }
}

/// What a streaming run reports. Per-read results left through the `emit`
/// callback as they were produced; this carries the aggregate view.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Reads mapped.
    pub reads: u64,
    /// Ingestion batches consumed from the queue.
    pub batches: u64,
    /// Parallel mapping chunks dispatched.
    pub chunks: u64,
    /// Wall-clock time of the whole streaming run (ingestion + mapping).
    pub wall: Duration,
    /// Cache statistics aggregated across worker threads and chunks.
    pub cache: CacheStats,
    /// Peak aggregate cache heap across chunks: the sum of every worker's
    /// private-tier footprint at its high-water chunk, plus the shared hot
    /// tier (counted once).
    pub cache_heap_bytes: u64,
    /// Deepest hand-off queue occupancy observed, in batches.
    pub queue_high_water: usize,
    /// Nanoseconds the producer spent blocked on a full queue.
    pub producer_blocked_ns: u64,
}

/// Results of a mapping run.
#[derive(Debug, Clone)]
pub struct MappingResults {
    /// One result per input read, in input order.
    pub per_read: Vec<ReadResult>,
    /// Wall-clock time of the parallel mapping loop (the makespan the
    /// tuning study optimizes).
    pub wall: Duration,
    /// Cache statistics aggregated across worker threads.
    pub cache: CacheStats,
    /// Aggregate cache heap: the sum of every worker's private-tier
    /// footprint plus the shared hot tier (counted once).
    pub cache_heap_bytes: u64,
}

impl MappingResults {
    /// Total extensions across all reads.
    pub fn total_extensions(&self) -> usize {
        self.per_read.iter().map(|r| r.extensions.len()).sum()
    }

    /// Fraction of reads with at least one extension.
    pub fn mapped_fraction(&self) -> f64 {
        if self.per_read.is_empty() {
            return 0.0;
        }
        let mapped = self.per_read.iter().filter(|r| !r.extensions.is_empty()).count();
        mapped as f64 / self.per_read.len() as f64
    }
}

/// A reusable mapper: pangenome + distance index, ready to map dumps.
///
/// # Examples
///
/// ```
/// use mg_core::{Mapper, MappingOptions};
/// use mg_core::dump::SeedDump;
/// use mg_core::types::{ReadInput, Seed, Workflow};
/// use mg_gbwt::Gbz;
/// use mg_graph::pangenome::PangenomeBuilder;
/// use mg_graph::{Handle, NodeId};
/// use mg_index::GraphPos;
///
/// # fn main() -> mg_support::Result<()> {
/// let p = PangenomeBuilder::new(b"ACGTACGTACGTACGT".to_vec())
///     .haplotypes(vec![vec![]])
///     .max_node_len(8)
///     .build()?;
/// let gbz = Gbz::from_pangenome(p)?;
/// let dump = SeedDump::new(Workflow::Single, vec![ReadInput {
///     bases: b"ACGTACGT".to_vec(),
///     seeds: vec![Seed::new(0, GraphPos::new(Handle::forward(NodeId::new(1)), 0))],
/// }]);
/// let mapper = Mapper::new(&gbz);
/// let results = mapper.run(&dump, &MappingOptions::default());
/// assert_eq!(results.per_read.len(), 1);
/// assert_eq!(results.per_read[0].best_score(), Some(8));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Mapper<'a> {
    gbz: &'a Gbz,
    dist: DistanceIndex,
    /// Persistent worker threads plus per-thread warm state (cache storage
    /// and kernel scratch), reused by every `run` on this mapper. Runs on
    /// the same mapper serialize on this lock.
    pool: std::sync::Mutex<WorkerPool>,
    /// The shared hot tier kept warm across runs, keyed by the budget it
    /// was built with (the `CacheState` warm-rebind idea, one level up): a
    /// later run with the same budget reuses the frozen tier instead of
    /// re-counting and re-decoding. A different budget rebuilds.
    hot: std::sync::Mutex<Option<(usize, Arc<HotTier>)>>,
}

impl<'a> Mapper<'a> {
    /// Preprocesses the pangenome (builds the distance index).
    pub fn new(gbz: &'a Gbz) -> Self {
        Self::with_distance(gbz, DistanceIndex::build(gbz.graph()))
    }

    /// Assembles a mapper around a prebuilt distance index — the zero-work
    /// constructor the `.mgi` path uses, where the index was validated out
    /// of the mapped container instead of recomputed.
    pub fn with_distance(gbz: &'a Gbz, dist: DistanceIndex) -> Self {
        Mapper {
            gbz,
            dist,
            pool: std::sync::Mutex::new(WorkerPool::new()),
            hot: std::sync::Mutex::new(None),
        }
    }

    /// The warm hot tier for `options`, if one matching the configured
    /// budget is already frozen from an earlier run (or chunk).
    pub fn warm_hot_tier(&self, options: &MappingOptions) -> Option<Arc<HotTier>> {
        if options.hot_tier_budget == 0 {
            return None;
        }
        let slot = self.hot.lock().unwrap();
        slot.as_ref()
            .filter(|(budget, _)| *budget == options.hot_tier_budget)
            .map(|(_, tier)| Arc::clone(tier))
    }

    /// Builds the shared hot tier from a frequency pre-pass over the seed
    /// anchors of `reads` (both orientations: the extension kernel looks up
    /// each anchor and its flip), freezes it, and stores it as the mapper's
    /// warm tier. Returns `None` — and clears the warm slot — when the
    /// budget is 0 or there is nothing to count.
    pub fn build_hot_tier(
        &self,
        reads: &[ReadInput],
        options: &MappingOptions,
    ) -> Option<Arc<HotTier>> {
        let mut slot = self.hot.lock().unwrap();
        if options.hot_tier_budget == 0 {
            *slot = None;
            return None;
        }
        let mut builder = HotTierBuilder::new();
        for read in reads {
            for seed in &read.seeds {
                builder.observe_bidir(seed.pos.handle.to_gbwt());
            }
        }
        if builder.distinct() == 0 {
            return None;
        }
        let tier = Arc::new(builder.build(self.gbz.gbwt(), options.hot_tier_budget));
        *slot = Some((options.hot_tier_budget, Arc::clone(&tier)));
        Some(tier)
    }

    /// The tier a batch run should map with: the warm one when the budget
    /// matches, otherwise a fresh build from `reads`.
    fn hot_tier_for(&self, reads: &[ReadInput], options: &MappingOptions) -> Option<Arc<HotTier>> {
        self.warm_hot_tier(options)
            .or_else(|| self.build_hot_tier(reads, options))
    }

    /// The pangenome this mapper maps against.
    pub fn gbz(&self) -> &'a Gbz {
        self.gbz
    }

    /// The persistent worker pool, for callers that drive their own pooled
    /// scheduler dispatch against this mapper's threads (the parent
    /// pipeline, the serving executor). Dispatches serialize on the lock;
    /// lock it with [`Mapper::lock_pool`] so a panic that unwound through
    /// an earlier dispatch (the pool itself survives worker panics) does
    /// not poison every later run.
    pub fn worker_pool(&self) -> &std::sync::Mutex<WorkerPool> {
        &self.pool
    }

    /// Locks the worker pool, shrugging off poison: the pool catches
    /// worker panics internally and stays usable, so a panic that escaped
    /// a previous dispatch left the pool itself coherent.
    pub fn lock_pool(&self) -> std::sync::MutexGuard<'_, WorkerPool> {
        self.pool.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The distance index.
    pub fn distance_index(&self) -> &DistanceIndex {
        &self.dist
    }

    /// Maps a single read with caller-provided cache, sink, and probe: the
    /// exact per-read work both pipelines share.
    ///
    /// Allocates throwaway scratch; hot paths should hold a [`MapScratch`]
    /// and call [`Mapper::map_read_with_scratch`] instead.
    #[allow(clippy::too_many_arguments)]
    pub fn map_read<P: MemProbe>(
        &self,
        cache: &mut CachedGbwt<'_>,
        read_id: u64,
        input: &ReadInput,
        options: &MappingOptions,
        sink: &(impl RegionSink + ?Sized),
        thread: usize,
        probe: &mut P,
    ) -> ReadResult {
        let mut scratch = MapScratch::default();
        self.map_read_with_scratch(
            cache,
            read_id,
            input,
            options,
            sink,
            thread,
            probe,
            &mut scratch,
            &mut ObsShard::disabled(),
        )
    }

    /// [`Mapper::map_read`] with caller-owned kernel scratch, reused across
    /// reads, and a metrics shard fed with per-stage spans and per-read
    /// counters. Pass [`ObsShard::disabled`] when not observing; every
    /// record below is then a no-op.
    #[allow(clippy::too_many_arguments)]
    pub fn map_read_with_scratch<P: MemProbe>(
        &self,
        cache: &mut CachedGbwt<'_>,
        read_id: u64,
        input: &ReadInput,
        options: &MappingOptions,
        sink: &(impl RegionSink + ?Sized),
        thread: usize,
        probe: &mut P,
        scratch: &mut MapScratch,
        obs: &mut ObsShard,
    ) -> ReadResult {
        let read_len = input.bases.len() as u32;
        let mut cluster_params = options.cluster;
        // Giraffe derives the clustering limit from the read length.
        cluster_params.distance_limit = cluster_params.distance_limit.max(read_len as u64);
        let clusters = {
            let _t = RegionTimer::start(sink, thread, "cluster_seeds");
            let t0 = obs.now();
            let clusters = cluster_seeds_with_scratch(
                self.gbz.graph(),
                &self.dist,
                &input.seeds,
                read_len,
                &cluster_params,
                probe,
                &mut scratch.cluster,
            );
            obs.stage(Stage::Clustering, t0);
            clusters
        };
        let extensions = {
            let _t = RegionTimer::start(sink, thread, "process_until_threshold_c");
            let t0 = obs.now();
            let extensions = process_until_threshold_with_scratch(
                self.gbz.graph(),
                cache,
                &input.bases,
                read_id,
                &input.seeds,
                &clusters,
                &options.extend,
                &options.process,
                probe,
                &mut scratch.extend,
            );
            obs.stage(Stage::Extension, t0);
            extensions
        };
        obs.inc(Ctr::ReadsMapped);
        obs.add(Ctr::SeedsTotal, input.seeds.len() as u64);
        obs.add(Ctr::ExtensionsTotal, extensions.len() as u64);
        obs.observe(Hist::SeedsPerRead, input.seeds.len() as u64);
        obs.observe(Hist::ExtensionsPerRead, extensions.len() as u64);
        // Drain the kernel's plain-u64 activity counters into the shard
        // (the extension walk itself never touches observability state).
        let kernel = scratch.extend.take_stats();
        obs.add(Ctr::SimdBlocksWide, kernel.wide_blocks);
        obs.add(Ctr::SimdLanesActive, kernel.wide_lanes);
        obs.add(Ctr::ExtendBatches, kernel.batches);
        obs.add(Ctr::ExtendBatchAnchors, kernel.batch_anchors);
        obs.add(Ctr::ExtendPrunedFrames, kernel.pruned_frames);
        obs.gauge_max(
            Gauge::SimdDispatchTier,
            crate::extend::active_tier::<P>(&options.extend).as_index(),
        );
        ReadResult { read_id, extensions }
    }

    /// Runs the full parallel mapping loop without instrumentation.
    pub fn run(&self, dump: &crate::dump::SeedDump, options: &MappingOptions) -> MappingResults {
        self.run_with_sink(dump, options, &NullSink)
    }

    /// Runs the full parallel mapping loop, recording per-stage spans,
    /// per-read counters, cache events, and scheduler activity in
    /// `metrics`.
    pub fn run_with_metrics(
        &self,
        dump: &crate::dump::SeedDump,
        options: &MappingOptions,
        metrics: &Metrics,
    ) -> MappingResults {
        self.run_with_sink_metrics(dump, options, &NullSink, metrics)
    }

    /// Runs the full parallel mapping loop, reporting region timings to
    /// `sink`.
    pub fn run_with_sink(
        &self,
        dump: &crate::dump::SeedDump,
        options: &MappingOptions,
        sink: &(impl RegionSink + ?Sized),
    ) -> MappingResults {
        self.run_with_sink_metrics(dump, options, sink, Metrics::off_ref())
    }

    /// [`Mapper::run_with_sink`] plus a metrics registry. Each worker
    /// thread records into a private [`ObsShard`] and folds its cache
    /// statistics in at `finish`, so the hot loop never touches the
    /// registry lock.
    pub fn run_with_sink_metrics(
        &self,
        dump: &crate::dump::SeedDump,
        options: &MappingOptions,
        sink: &(impl RegionSink + ?Sized),
        metrics: &Metrics,
    ) -> MappingResults {
        let mut pool = self.lock_pool();
        let start = Instant::now();
        // Frequency pre-pass over the seed stream (or a warm tier from an
        // earlier run at the same budget), then the one parallel dispatch.
        let hot = self.hot_tier_for(&dump.reads, options);
        let hot_bytes = hot.as_deref().map_or(0, HotTier::heap_bytes) as u64;
        metrics.gauge_max(Gauge::HotTierBytes, hot_bytes);
        let (per_read, cache, private_bytes) =
            self.map_chunk(&mut pool, &dump.reads, 0, options, sink, hot.as_ref(), metrics);
        let wall = start.elapsed();
        MappingResults {
            per_read,
            wall,
            cache,
            cache_heap_bytes: private_bytes + hot_bytes,
        }
    }

    /// Maps one chunk of reads with *per-call* options on the persistent
    /// pool: the public chunk-at-a-time entry the adaptive batch driver
    /// uses, so batch size, cache capacity, and hot-tier budget can move
    /// between chunks without touching mapper construction. `base_id`
    /// keeps global read ids correct across chunks — per-read work is
    /// cache-independent, so concatenated results are identical to a
    /// one-shot [`Mapper::run`] over the same reads.
    pub fn map_chunk_reads(
        &self,
        reads: &[ReadInput],
        base_id: u64,
        options: &MappingOptions,
        hot: Option<&Arc<HotTier>>,
        metrics: &Metrics,
    ) -> (Vec<ReadResult>, CacheStats, u64) {
        let mut pool = self.lock_pool();
        self.map_chunk(&mut pool, reads, base_id, options, &NullSink, hot, metrics)
    }

    /// Maps `reads` in parallel on the (already locked) worker pool, with
    /// global read ids `base_id..base_id + reads.len()`. This is the one
    /// scheduler dispatch both the batch path (whole dump, base 0) and the
    /// streaming path (one chunk at a time) go through, so per-read results
    /// cannot diverge between them.
    #[allow(clippy::too_many_arguments)]
    fn map_chunk(
        &self,
        pool: &mut WorkerPool,
        reads: &[ReadInput],
        base_id: u64,
        options: &MappingOptions,
        sink: &(impl RegionSink + ?Sized),
        hot: Option<&Arc<HotTier>>,
        metrics: &Metrics,
    ) -> (Vec<ReadResult>, CacheStats, u64) {
        let n = reads.len();
        let slots: Vec<OnceLock<ReadResult>> = (0..n).map(|_| OnceLock::new()).collect();
        let stats: StatsCollector = std::sync::Mutex::new(Vec::new());
        let scheduler = options.scheduler.build(options.batch_size);
        scheduler.run_pooled_erased_obs(
            pool,
            n,
            options.threads.max(1),
            metrics,
            &|thread, cell| {
                // Warm-start from whatever this pool thread kept from the
                // last run; `with_state` rebinds the cache storage warm when
                // the pangenome and capacity are unchanged, cold otherwise.
                let persist = match cell.downcast_mut::<ThreadPersist>() {
                    Some(p) => std::mem::take(p),
                    None => ThreadPersist::default(),
                };
                Box::new(PooledWorker {
                    mapper: self,
                    reads,
                    base_id,
                    options,
                    sink,
                    thread,
                    slots: &slots,
                    stats: &stats,
                    cache: CachedGbwt::with_state(
                        self.gbz.gbwt(),
                        options.cache_capacity,
                        persist.cache,
                    )
                    .with_hot(hot.map(Arc::clone)),
                    scratch: persist.scratch,
                    metrics,
                    obs: metrics.shard(),
                })
            },
        );
        let per_read = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(|| panic!("scheduler never processed read {i}"))
            })
            .collect();
        let (cache, private_bytes) = stats.lock().unwrap().iter().fold(
            (CacheStats::default(), 0u64),
            |(acc, bytes), (s, b)| (merge_cache_stats(acc, *s), bytes + b),
        );
        (per_read, cache, private_bytes)
    }

    /// Maps reads as they arrive from a fallible batch producer, with
    /// bounded memory, without instrumentation. See
    /// [`Mapper::run_streaming_with_sink_metrics`].
    pub fn run_streaming<I, F>(
        &self,
        batches: I,
        options: &MappingOptions,
        stream: &StreamOptions,
        emit: F,
    ) -> mg_support::Result<StreamSummary>
    where
        I: Iterator<Item = mg_support::Result<Vec<ReadInput>>> + Send,
        F: FnMut(u64, Vec<ReadInput>, Vec<ReadResult>),
    {
        self.run_streaming_with_sink_metrics(
            batches,
            options,
            stream,
            &NullSink,
            Metrics::off_ref(),
            emit,
        )
    }

    /// The streaming-ingestion pipeline: a producer thread pulls batches
    /// from `batches` into a bounded hand-off queue (blocking when the
    /// mapper falls behind — that backpressure is what bounds memory),
    /// while the calling thread accumulates batches into chunks of
    /// [`StreamOptions::chunk_target`] reads, maps each chunk on the worker
    /// pool, and hands the owned inputs and results to `emit(base_id,
    /// reads, results)` in input order.
    ///
    /// Read ids are global (`base_id + index within the chunk`), so the
    /// emitted results are byte-identical to a batch [`Mapper::run`] over
    /// the concatenated input.
    ///
    /// On a producer error the good prefix is still mapped and emitted,
    /// then the error is returned — mirroring how
    /// [`mg_workload::FastqBatches`](../mg_workload/fastq) flushes parsed
    /// records before reporting the malformed one.
    pub fn run_streaming_with_sink_metrics<I, F>(
        &self,
        batches: I,
        options: &MappingOptions,
        stream: &StreamOptions,
        sink: &(impl RegionSink + ?Sized),
        metrics: &Metrics,
        mut emit: F,
    ) -> mg_support::Result<StreamSummary>
    where
        I: Iterator<Item = mg_support::Result<Vec<ReadInput>>> + Send,
        F: FnMut(u64, Vec<ReadInput>, Vec<ReadResult>),
    {
        let chunk_target = stream.chunk_target(options);
        let (tx, rx) = bounded_queue(stream.queue_batches.max(1));
        let mut pool = self.lock_pool();
        let start = Instant::now();

        let mut reads = 0u64;
        let mut batches_consumed = 0u64;
        let mut chunks = 0u64;
        let mut cache = CacheStats::default();
        let mut failure: Option<mg_support::Error> = None;
        let mut pending: Vec<ReadInput> = Vec::new();
        let mut next_id = 0u64;
        // Streaming hot-tier build policy: the first chunk maps with a warm
        // tier when one exists (same budget, earlier run); otherwise it maps
        // single-tier and its seed frequencies freeze the tier the chunks
        // after it share.
        let mut hot = self.warm_hot_tier(options);
        let mut heap_high_water = 0u64;

        let queue_stats = std::thread::scope(|scope| {
            let producer = scope.spawn(move || {
                for item in batches {
                    let stop = item.is_err();
                    // An Err from send means the consumer hung up early;
                    // stop pulling from the reader either way.
                    if tx.send(item).is_err() || stop {
                        break;
                    }
                }
                tx.stats()
            });

            let mut map_pending = |pool: &mut WorkerPool,
                                   pending: &mut Vec<ReadInput>,
                                   next_id: &mut u64,
                                   cache: &mut CacheStats,
                                   chunks: &mut u64,
                                   hot: &mut Option<Arc<HotTier>>,
                                   heap_high_water: &mut u64,
                                   take: usize| {
                let rest = pending.split_off(take.min(pending.len()));
                let chunk = std::mem::replace(pending, rest);
                if chunk.is_empty() {
                    return;
                }
                let base = *next_id;
                metrics.observe(Hist::StreamChunkReads, chunk.len() as u64);
                let (results, chunk_cache, private_bytes) =
                    self.map_chunk(pool, &chunk, base, options, sink, hot.as_ref(), metrics);
                *cache = merge_cache_stats(*cache, chunk_cache);
                *heap_high_water = (*heap_high_water).max(private_bytes);
                *next_id += chunk.len() as u64;
                *chunks += 1;
                if hot.is_none() {
                    // This chunk's seed frequencies freeze the tier for the
                    // chunks that follow.
                    *hot = self.build_hot_tier(&chunk, options);
                }
                emit(base, chunk, results);
            };

            while let Some(item) = rx.recv() {
                match item {
                    Ok(batch) => {
                        batches_consumed += 1;
                        reads += batch.len() as u64;
                        pending.extend(batch);
                        while pending.len() >= chunk_target {
                            map_pending(
                                &mut pool,
                                &mut pending,
                                &mut next_id,
                                &mut cache,
                                &mut chunks,
                                &mut hot,
                                &mut heap_high_water,
                                chunk_target,
                            );
                        }
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            // Flush the tail (or, on error, the good prefix read so far).
            let take = pending.len();
            map_pending(
                &mut pool,
                &mut pending,
                &mut next_id,
                &mut cache,
                &mut chunks,
                &mut hot,
                &mut heap_high_water,
                take,
            );
            drop(rx);
            producer.join().expect("streaming producer panicked")
        });
        drop(pool);

        let hot_bytes = hot.as_deref().map_or(0, HotTier::heap_bytes) as u64;
        metrics.gauge_max(Gauge::HotTierBytes, hot_bytes);

        metrics.add(Ctr::StreamBatches, batches_consumed);
        metrics.add(Ctr::StreamReads, reads);
        metrics.add(Ctr::StreamProducerBlockedNs, queue_stats.blocked_ns);
        metrics.gauge_max(Gauge::StreamQueueDepthMax, queue_stats.high_water as u64);

        if let Some(e) = failure {
            return Err(e);
        }
        Ok(StreamSummary {
            reads,
            batches: batches_consumed,
            chunks,
            wall: start.elapsed(),
            cache,
            cache_heap_bytes: heap_high_water + hot_bytes,
            queue_high_water: queue_stats.high_water,
            producer_blocked_ns: queue_stats.blocked_ns,
        })
    }
}

fn merge_cache_stats(mut acc: CacheStats, s: CacheStats) -> CacheStats {
    acc.merge(&s);
    acc
}

/// Per-worker (statistics, private-tier heap bytes) pairs, folded into the
/// run aggregate after the dispatch.
type StatsCollector = std::sync::Mutex<Vec<(CacheStats, u64)>>;

/// What a pool thread keeps between runs: its cache storage (rebound warm
/// when the pangenome and capacity match) and the kernel scratch buffers.
///
/// Public so every pooled dispatch against a [`Mapper`]'s worker pool —
/// the proxy loop here, the parent pipeline's chunk mapper, the serving
/// executor — stashes the same cell type, and warm state carries across
/// them instead of being cold-dropped at each boundary.
#[derive(Default)]
pub struct ThreadPersist {
    /// Detached `CachedGbwt` storage; rebind with
    /// [`CachedGbwt::with_state`], which starts warm when the GBWT and
    /// capacity are unchanged.
    pub cache: CacheState,
    /// Kernel + seeding scratch buffers.
    pub scratch: MapScratch,
}

/// Per-thread mapping state for one run: owns the thread's `CachedGbwt`
/// and scratch, maps the reads the scheduler assigns it, and at `finish`
/// pushes its cache statistics to the collector and stashes the warm state
/// back into the thread's pool cell for the next run.
struct PooledWorker<'e, 'g, S: RegionSink + ?Sized> {
    mapper: &'e Mapper<'g>,
    reads: &'e [ReadInput],
    base_id: u64,
    options: &'e MappingOptions,
    sink: &'e S,
    thread: usize,
    slots: &'e [OnceLock<ReadResult>],
    stats: &'e StatsCollector,
    cache: CachedGbwt<'g>,
    scratch: MapScratch,
    metrics: &'e Metrics,
    obs: ObsShard,
}

impl<S: RegionSink + ?Sized> PoolTask for PooledWorker<'_, '_, S> {
    fn run(&mut self, i: usize) {
        let result = self.mapper.map_read_with_scratch(
            &mut self.cache,
            self.base_id + i as u64,
            &self.reads[i],
            self.options,
            self.sink,
            self.thread,
            &mut NoProbe,
            &mut self.scratch,
            &mut self.obs,
        );
        self.slots[i].set(result).expect("each read mapped once");
    }

    fn finish(self: Box<Self>, cell: &mut PoolCell) {
        let mut this = *self;
        let cache_stats = this.cache.stats();
        this.stats.lock().unwrap().push((cache_stats, this.cache.heap_bytes() as u64));
        // The cache tracks its own statistics; mirror them into the shard
        // once per run rather than plumbing a probe through the kernels.
        this.obs.add(Ctr::CacheHits, cache_stats.hits);
        this.obs.add(Ctr::CacheMisses, cache_stats.misses);
        this.obs.add(Ctr::CacheEvictions, cache_stats.evictions);
        this.obs.add(Ctr::CacheResizes, cache_stats.rehashes);
        this.obs.add(Ctr::CacheRehashedSlots, cache_stats.rehashed_slots);
        this.obs.add(Ctr::CacheHotHits, cache_stats.hot_hits);
        this.obs.add(Ctr::CacheHotMisses, cache_stats.hot_misses);
        this.obs.add(Ctr::CacheDecodesSaved, cache_stats.decodes_saved);
        this.metrics.absorb(&this.obs);
        *cell = Box::new(ThreadPersist {
            cache: this.cache.into_state(),
            scratch: this.scratch,
        });
    }
}

/// One-shot convenience: map `dump` against `gbz` with `options`.
pub fn run_mapping(
    dump: &crate::dump::SeedDump,
    gbz: &Gbz,
    options: &MappingOptions,
) -> MappingResults {
    Mapper::new(gbz).run(dump, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::SeedDump;
    use crate::types::{Seed, Workflow};
    use mg_graph::pangenome::{PangenomeBuilder, Variant};
    use mg_graph::{Handle, NodeId};
    use mg_index::GraphPos;
    use std::sync::Mutex;

    fn sample_gbz() -> Gbz {
        let p = PangenomeBuilder::new(b"AAAACCCCGGGGTTTTACGTACGTAACCGGTT".to_vec())
            .variants(vec![Variant::snp(6, b'T'), Variant::deletion(20, 2)])
            .haplotypes(vec![vec![0, 0], vec![1, 0], vec![0, 1]])
            .max_node_len(5)
            .build()
            .unwrap();
        Gbz::from_pangenome(p).unwrap()
    }

    fn sample_dump(gbz: &Gbz, reads: usize) -> SeedDump {
        // Reads sampled from haplotype sequences with anchors at their true
        // positions (node 1 offset varies).
        let mut inputs = Vec::new();
        for i in 0..reads {
            let offset = (i % 3) as u32;
            let bases = {
                // Walk haplotype 0's graph from node 1.
                let seq = gbz.gbwt().sequence(0).unwrap();
                let mut s = Vec::new();
                for sym in seq {
                    let h = Handle::from_gbwt(sym).unwrap();
                    s.extend_from_slice(gbz.graph().sequence(h).as_ref());
                }
                s[offset as usize..(offset as usize + 16).min(s.len())].to_vec()
            };
            inputs.push(crate::types::ReadInput {
                bases,
                seeds: vec![Seed::new(
                    0,
                    GraphPos::new(Handle::forward(NodeId::new(1)), offset),
                )],
            });
        }
        SeedDump::new(Workflow::Single, inputs)
    }

    #[test]
    fn maps_all_reads_single_thread() {
        let gbz = sample_gbz();
        let dump = sample_dump(&gbz, 10);
        let results = run_mapping(&dump, &gbz, &MappingOptions::default());
        assert_eq!(results.per_read.len(), 10);
        for (i, r) in results.per_read.iter().enumerate() {
            assert_eq!(r.read_id, i as u64);
            assert!(!r.extensions.is_empty(), "read {i} unmapped");
            assert_eq!(r.best_score(), Some(16), "read {i}");
        }
        assert!(results.mapped_fraction() > 0.999);
        assert!(results.cache.hits + results.cache.misses > 0);
    }

    #[test]
    fn results_identical_across_thread_counts_and_schedulers() {
        let gbz = sample_gbz();
        let dump = sample_dump(&gbz, 30);
        let base = run_mapping(&dump, &gbz, &MappingOptions::default());
        // One mapper for every configuration: its worker pool and warm
        // per-thread caches persist across heterogeneous runs and must
        // never change results.
        let mapper = Mapper::new(&gbz);
        for threads in [2usize, 4] {
            for kind in SchedulerKind::ALL {
                let options = MappingOptions {
                    threads,
                    scheduler: kind,
                    batch_size: 4,
                    ..Default::default()
                };
                let got = mapper.run(&dump, &options);
                assert_eq!(
                    got.per_read, base.per_read,
                    "scheduler {kind} with {threads} threads diverged"
                );
            }
        }
    }

    #[test]
    fn pool_warms_cache_across_runs() {
        let gbz = sample_gbz();
        let dump = sample_dump(&gbz, 10);
        let mapper = Mapper::new(&gbz);
        let options = MappingOptions::default();
        let first = mapper.run(&dump, &options);
        let second = mapper.run(&dump, &options);
        assert_eq!(first.per_read, second.per_read);
        assert!(first.cache.misses > 0, "first run decodes at least once");
        assert_eq!(second.cache.misses, 0, "second run should hit the warmed cache");
        assert!(second.cache.hits > 0);
    }

    #[test]
    fn changing_capacity_rebuilds_cold_but_identical() {
        let gbz = sample_gbz();
        let dump = sample_dump(&gbz, 10);
        let mapper = Mapper::new(&gbz);
        let warm = mapper.run(&dump, &MappingOptions::default());
        let resized = mapper.run(
            &dump,
            &MappingOptions { cache_capacity: 8, ..Default::default() },
        );
        assert_eq!(warm.per_read, resized.per_read);
        // A different capacity must not inherit the warm table: the run
        // decodes again, exactly like a fresh mapper at that capacity —
        // except that discarding the warm table shows up as evictions,
        // which a fresh mapper has none of.
        let fresh = run_mapping(
            &dump,
            &gbz,
            &MappingOptions { cache_capacity: 8, ..Default::default() },
        );
        assert_eq!(
            CacheStats { evictions: 0, ..resized.cache },
            CacheStats { evictions: 0, ..fresh.cache }
        );
        assert!(resized.cache.evictions > 0, "cold re-bind discards the warm table");
        assert_eq!(fresh.cache.evictions, 0);
    }

    #[test]
    fn hot_tier_never_changes_results() {
        let gbz = sample_gbz();
        let dump = sample_dump(&gbz, 30);
        let mapper = Mapper::new(&gbz);
        let single = mapper.run(
            &dump,
            &MappingOptions { hot_tier_budget: 0, ..Default::default() },
        );
        assert_eq!(single.cache.hot_hits, 0);
        assert_eq!(single.cache.hot_misses, 0);
        for budget in [1usize, 64, 4096] {
            for threads in [1usize, 4] {
                let options = MappingOptions {
                    threads,
                    hot_tier_budget: budget,
                    batch_size: 4,
                    ..Default::default()
                };
                let tiered = mapper.run(&dump, &options);
                assert_eq!(
                    tiered.per_read, single.per_read,
                    "budget {budget} with {threads} threads diverged"
                );
                assert!(tiered.cache.hot_hits > 0, "budget {budget}");
                // Every lookup goes through the tier first: the fall-through
                // count is exactly what the private tier absorbed.
                assert_eq!(
                    tiered.cache.hot_misses,
                    tiered.cache.hits + tiered.cache.misses
                );
            }
        }
    }

    #[test]
    fn hot_tier_saves_decodes_at_many_workers() {
        let gbz = sample_gbz();
        let dump = sample_dump(&gbz, 60);
        // Static scheduling: both runs assign identical read ranges to each
        // thread, so the decode accounting below reconciles exactly.
        let options = |budget: usize| MappingOptions {
            threads: 4,
            batch_size: 2,
            hot_tier_budget: budget,
            scheduler: SchedulerKind::Static,
            ..Default::default()
        };
        // Fresh mappers so neither run sees a warm private table.
        let single = Mapper::new(&gbz).run(&dump, &options(0));
        let tiered = Mapper::new(&gbz).run(&dump, &options(4096));
        assert_eq!(single.per_read, tiered.per_read);
        assert!(
            tiered.cache.misses < single.cache.misses,
            "shared tier must reduce total decodes: {} vs {}",
            tiered.cache.misses,
            single.cache.misses
        );
        assert!(tiered.cache.decodes_saved > 0);
        assert_eq!(
            tiered.cache.misses + tiered.cache.decodes_saved,
            single.cache.misses,
            "every saved decode is one the single-tier run paid"
        );
    }

    #[test]
    fn hot_tier_stays_warm_across_runs_and_rebuilds_on_budget_change() {
        let gbz = sample_gbz();
        let dump = sample_dump(&gbz, 10);
        let mapper = Mapper::new(&gbz);
        let options = MappingOptions::default();
        let _ = mapper.run(&dump, &options);
        let first = mapper.warm_hot_tier(&options).expect("tier frozen by the run");
        let _ = mapper.run(&dump, &options);
        let second = mapper.warm_hot_tier(&options).expect("tier still warm");
        assert_eq!(first.token(), second.token(), "same budget must reuse the frozen tier");
        let resized = MappingOptions { hot_tier_budget: 64, ..Default::default() };
        let _ = mapper.run(&dump, &resized);
        let rebuilt = mapper.warm_hot_tier(&resized).expect("tier rebuilt");
        assert_ne!(first.token(), rebuilt.token(), "budget change must rebuild");
        // And a zero budget clears nothing retroactively but maps without.
        let off = MappingOptions { hot_tier_budget: 0, ..Default::default() };
        let plain = mapper.run(&dump, &off);
        assert_eq!(plain.cache.hot_hits + plain.cache.hot_misses, 0);
        assert!(mapper.warm_hot_tier(&off).is_none());
    }

    #[test]
    fn streaming_builds_tier_from_first_chunk() {
        let gbz = sample_gbz();
        let dump = sample_dump(&gbz, 33);
        let base = run_mapping(&dump, &gbz, &MappingOptions::default());
        let mapper = Mapper::new(&gbz);
        let options = MappingOptions { threads: 2, batch_size: 3, ..Default::default() };
        let stream = StreamOptions { queue_batches: 2, chunk_reads: 7 };
        let mut collected: Vec<ReadResult> = Vec::new();
        let batches = dump.reads.chunks(5).map(|c| Ok(c.to_vec()));
        let summary = mapper
            .run_streaming(batches, &options, &stream, |_, _, results| {
                collected.extend(results)
            })
            .unwrap();
        assert_eq!(collected, base.per_read);
        // Chunk 0 maps single-tier and freezes the tier; chunks 1.. share it.
        assert!(summary.cache.hot_hits > 0, "later chunks must hit the frozen tier");
        assert!(summary.cache_heap_bytes > 0);
        assert!(mapper.warm_hot_tier(&options).is_some());
    }

    #[test]
    fn heap_accounting_reports_private_and_hot_tiers() {
        let gbz = sample_gbz();
        let dump = sample_dump(&gbz, 20);
        let single = Mapper::new(&gbz).run(
            &dump,
            &MappingOptions { hot_tier_budget: 0, ..Default::default() },
        );
        let tiered = Mapper::new(&gbz).run(&dump, &MappingOptions::default());
        assert!(single.cache_heap_bytes > 0);
        // The tier adds its own frozen footprint on top of the private
        // table (whose capacity is unchanged here).
        assert!(tiered.cache_heap_bytes > single.cache_heap_bytes);
    }

    #[test]
    fn cache_capacity_changes_stats_not_results() {
        let gbz = sample_gbz();
        let dump = sample_dump(&gbz, 20);
        let small = run_mapping(
            &dump,
            &gbz,
            &MappingOptions { cache_capacity: 8, ..Default::default() },
        );
        let large = run_mapping(
            &dump,
            &gbz,
            &MappingOptions { cache_capacity: 4096, ..Default::default() },
        );
        assert_eq!(small.per_read, large.per_read);
        assert_eq!(large.cache.rehashes, 0);
    }

    #[test]
    fn region_sink_sees_both_kernels() {
        struct Collector(Mutex<Vec<&'static str>>);
        impl RegionSink for Collector {
            fn record(
                &self,
                _thread: usize,
                region: &'static str,
                _start: std::time::Instant,
                _end: std::time::Instant,
            ) {
                self.0.lock().unwrap().push(region);
            }
        }
        let gbz = sample_gbz();
        let dump = sample_dump(&gbz, 5);
        let sink = Collector(Mutex::new(Vec::new()));
        let mapper = Mapper::new(&gbz);
        let _ = mapper.run_with_sink(&dump, &MappingOptions::default(), &sink);
        let regions = sink.0.into_inner().unwrap();
        assert_eq!(regions.iter().filter(|r| **r == "cluster_seeds").count(), 5);
        assert_eq!(
            regions.iter().filter(|r| **r == "process_until_threshold_c").count(),
            5
        );
    }

    #[test]
    fn metrics_reconcile_with_results() {
        let gbz = sample_gbz();
        let dump = sample_dump(&gbz, 40);
        let mapper = Mapper::new(&gbz);
        for threads in [1usize, 4] {
            for kind in SchedulerKind::ALL {
                let options = MappingOptions {
                    threads,
                    scheduler: kind,
                    batch_size: 4,
                    ..Default::default()
                };
                let metrics = Metrics::new();
                let results = mapper.run_with_metrics(&dump, &options, &metrics);
                let rep = metrics.report();
                let n = results.per_read.len() as u64;
                assert_eq!(rep.counter(Ctr::ReadsMapped), n, "{kind}/{threads}");
                assert_eq!(rep.counter(Ctr::PoolTasksCompleted), n, "{kind}/{threads}");
                assert_eq!(rep.stage_count(Stage::Clustering), n, "{kind}/{threads}");
                assert_eq!(rep.stage_count(Stage::Extension), n, "{kind}/{threads}");
                assert_eq!(
                    rep.counter(Ctr::SeedsTotal),
                    dump.reads.iter().map(|r| r.seeds.len() as u64).sum::<u64>()
                );
                assert_eq!(
                    rep.counter(Ctr::ExtensionsTotal),
                    results.total_extensions() as u64
                );
                // The shard mirrors of the cache statistics must agree with
                // the aggregated MappingResults numbers exactly.
                assert_eq!(rep.counter(Ctr::CacheHits), results.cache.hits, "{kind}/{threads}");
                assert_eq!(rep.counter(Ctr::CacheMisses), results.cache.misses);
                assert_eq!(rep.counter(Ctr::CacheEvictions), results.cache.evictions);
                assert_eq!(rep.counter(Ctr::CacheResizes), results.cache.rehashes);
                assert_eq!(rep.counter(Ctr::CacheRehashedSlots), results.cache.rehashed_slots);
                assert_eq!(rep.counter(Ctr::CacheHotHits), results.cache.hot_hits);
                assert_eq!(rep.counter(Ctr::CacheHotMisses), results.cache.hot_misses);
                assert_eq!(rep.counter(Ctr::CacheDecodesSaved), results.cache.decodes_saved);
                // The seed anchors are hot by construction, so the default
                // budget must serve lookups from the shared tier, and the
                // gauge must carry its frozen footprint.
                assert!(results.cache.hot_hits > 0, "{kind}/{threads}");
                assert!(rep.gauge(Gauge::HotTierBytes) > 0, "{kind}/{threads}");
                // Histograms carry the same totals as the counters.
                assert_eq!(rep.hist_count(Hist::SeedsPerRead), n);
                assert_eq!(rep.hist_sum(Hist::SeedsPerRead), rep.counter(Ctr::SeedsTotal));
                assert_eq!(rep.hist_sum(Hist::ExtensionsPerRead), rep.counter(Ctr::ExtensionsTotal));
            }
        }
    }

    #[test]
    fn uninstrumented_run_records_nothing_and_matches_instrumented() {
        let gbz = sample_gbz();
        let dump = sample_dump(&gbz, 12);
        let mapper = Mapper::new(&gbz);
        let options = MappingOptions::default();
        let plain = mapper.run(&dump, &options);
        let metrics = Metrics::new();
        let observed = mapper.run_with_metrics(&dump, &options, &metrics);
        assert_eq!(plain.per_read, observed.per_read, "instrumentation must not change results");
        // And a disabled registry stays empty even through the
        // instrumented entry point.
        let off = Metrics::off();
        let _ = mapper.run_with_metrics(&dump, &options, &off);
        assert_eq!(off.report().counter(Ctr::ReadsMapped), 0);
    }

    #[test]
    fn empty_dump_is_fine() {
        let gbz = sample_gbz();
        let dump = SeedDump::new(Workflow::Single, Vec::new());
        let results = run_mapping(&dump, &gbz, &MappingOptions::default());
        assert!(results.per_read.is_empty());
        assert_eq!(results.total_extensions(), 0);
        assert_eq!(results.mapped_fraction(), 0.0);
    }

    #[test]
    fn streaming_matches_batch_across_schedulers() {
        let gbz = sample_gbz();
        let dump = sample_dump(&gbz, 33);
        let base = run_mapping(&dump, &gbz, &MappingOptions::default());
        let mapper = Mapper::new(&gbz);
        for kind in SchedulerKind::ALL {
            let options = MappingOptions {
                threads: 4,
                batch_size: 3,
                scheduler: kind,
                ..Default::default()
            };
            // Ingestion batches (5) deliberately misaligned with mapping
            // chunks (7) and scheduler batches (3).
            let stream = StreamOptions { queue_batches: 2, chunk_reads: 7 };
            let mut collected: Vec<ReadResult> = Vec::new();
            let batches = dump.reads.chunks(5).map(|c| Ok(c.to_vec()));
            let summary = mapper
                .run_streaming(batches, &options, &stream, |base_id, reads, results| {
                    assert_eq!(base_id as usize, collected.len(), "chunks in input order");
                    assert_eq!(reads.len(), results.len());
                    collected.extend(results);
                })
                .unwrap();
            assert_eq!(collected, base.per_read, "scheduler {kind} diverged");
            assert_eq!(summary.reads, 33);
            assert_eq!(summary.batches, 7);
            assert_eq!(summary.chunks, 5);
            assert!(summary.queue_high_water <= stream.queue_batches);
        }
    }

    #[test]
    fn streaming_error_still_maps_the_good_prefix() {
        let gbz = sample_gbz();
        let dump = sample_dump(&gbz, 10);
        let base = run_mapping(&dump, &gbz, &MappingOptions::default());
        let mapper = Mapper::new(&gbz);
        let batches = dump
            .reads
            .chunks(5)
            .map(|c| Ok(c.to_vec()))
            .chain(std::iter::once(Err(mg_support::Error::Corrupt("bad record".into()))));
        let mut collected: Vec<ReadResult> = Vec::new();
        let err = mapper
            .run_streaming(
                batches,
                &MappingOptions::default(),
                &StreamOptions::default(),
                |_, _, results| collected.extend(results),
            )
            .unwrap_err();
        assert!(err.to_string().contains("bad record"), "got: {err}");
        assert_eq!(collected, base.per_read, "good prefix must still be mapped");
    }

    #[test]
    fn streaming_empty_input_is_fine() {
        let gbz = sample_gbz();
        let mapper = Mapper::new(&gbz);
        let summary = mapper
            .run_streaming(
                std::iter::empty(),
                &MappingOptions::default(),
                &StreamOptions::default(),
                |_, _, _| panic!("nothing to emit"),
            )
            .unwrap();
        assert_eq!(summary.reads, 0);
        assert_eq!(summary.chunks, 0);
    }

    #[test]
    fn read_without_seeds_yields_empty_result() {
        let gbz = sample_gbz();
        let dump = SeedDump::new(
            Workflow::Single,
            vec![crate::types::ReadInput { bases: b"ACGT".to_vec(), seeds: vec![] }],
        );
        let results = run_mapping(&dump, &gbz, &MappingOptions::default());
        assert_eq!(results.per_read.len(), 1);
        assert!(results.per_read[0].extensions.is_empty());
    }
}
