//! miniGiraffe: the pangenomic mapping proxy application.
//!
//! This crate is the proxy itself — the ~2% of Giraffe that accounts for
//! its critical compute. It consumes a [`dump::SeedDump`] (reads plus the
//! seeds Giraffe's preprocessing found for them, captured right before the
//! critical functions) and a [`mg_gbwt::Gbz`] pangenome, and runs:
//!
//! 1. [`cluster::cluster_seeds`] — group seeds by graph distance and score
//!    the clusters (Giraffe's `cluster_seeds` region);
//! 2. [`extend::process_until_threshold`] — the seed-and-extend kernel:
//!    walk the graph from each promising seed in both directions over
//!    haplotype-consistent edges, comparing read bases against node bases
//!    (Giraffe's `process_until_threshold_c` region).
//!
//! The outer read loop is parallel and exposes the paper's three tuning
//! parameters (scheduler, batch size, initial `CachedGBWT` capacity) via
//! [`MappingOptions`]. Output is the raw extension set (offsets + scores),
//! which [`validate::validate`] compares against parent output exactly the
//! way the paper's functional validation does.
//!
//! # Examples
//!
//! ```
//! use mg_core::{run_mapping, MappingOptions};
//! use mg_core::dump::SeedDump;
//! use mg_core::types::{ReadInput, Seed, Workflow};
//! use mg_gbwt::Gbz;
//! use mg_graph::pangenome::{PangenomeBuilder, Variant};
//! use mg_graph::{Handle, NodeId};
//! use mg_index::GraphPos;
//!
//! # fn main() -> mg_support::Result<()> {
//! // A pangenome with one SNP and two haplotypes.
//! let p = PangenomeBuilder::new(b"AAAACCCCGGGGTTTT".to_vec())
//!     .variants(vec![Variant::snp(6, b'G')])
//!     .haplotypes(vec![vec![0], vec![1]])
//!     .max_node_len(4)
//!     .build()?;
//! let gbz = Gbz::from_pangenome(p)?;
//! // One read sampled from haplotype 0 with a seed at its start.
//! let dump = SeedDump::new(Workflow::Single, vec![ReadInput {
//!     bases: b"AAAACCCCGGGGTTTT".to_vec(),
//!     seeds: vec![Seed::new(0, GraphPos::new(Handle::forward(NodeId::new(1)), 0))],
//! }]);
//! let results = run_mapping(&dump, &gbz, &MappingOptions::default());
//! assert_eq!(results.per_read[0].best_score(), Some(16));
//! # Ok(())
//! # }
//! ```

pub mod cluster;
pub mod dump;
pub mod extend;
pub mod mgi;
pub mod pipeline;
pub mod shard;
pub mod types;
pub mod validate;

pub use cluster::{cluster_seeds, cluster_seeds_with_scratch, Cluster, ClusterParams, ClusterScratch};
pub use dump::SeedDump;
pub use extend::{
    active_tier, extend_seed, extend_seed_with_scratch, process_until_threshold,
    process_until_threshold_with_scratch, ExtendParams, ExtendScratch, KernelStats, ProcessParams,
};
pub use mg_kernels::SimdTier;
pub use mgi::{build_minimizer_index, MgiBundle};
pub use pipeline::{
    run_mapping, MapScratch, Mapper, MappingOptions, MappingResults, StreamOptions, StreamSummary,
    ThreadPersist,
};
pub use types::{Extension, ExtensionKey, ReadInput, ReadResult, Seed, Workflow};
pub use validate::{validate, ValidationReport};
