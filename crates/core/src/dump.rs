//! Seed dumps: the proxy's `.bin` input format.
//!
//! miniGiraffe does not run Giraffe's preprocessing; it consumes a dump of
//! the exact inputs Giraffe's seed-and-extend stage saw — reads plus their
//! seeds — captured right before the critical functions execute. The parent
//! pipeline ([`mg_parent`](../../parent)) exports these; the workload
//! generator synthesizes them directly.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use mg_graph::Handle;
use mg_index::GraphPos;
use mg_support::container::{ContainerReader, ContainerWriter};
use mg_support::varint::{self, Cursor};
use mg_support::{Error, Result};

use crate::types::{ReadInput, Seed, Workflow};

/// Container kind discriminator for seed dumps.
pub const DUMP_KIND: [u8; 4] = *b"SEED";
/// Section tag for dump metadata.
pub const TAG_META: u32 = 0x0010;
/// Section tag for the read + seed payload.
pub const TAG_READS: u32 = 0x0011;

/// A full proxy input: every read with its seeds.
///
/// # Examples
///
/// ```
/// use mg_core::dump::SeedDump;
/// use mg_core::types::{ReadInput, Seed, Workflow};
/// use mg_graph::{Handle, NodeId};
/// use mg_index::GraphPos;
///
/// # fn main() -> mg_support::Result<()> {
/// let dump = SeedDump::new(
///     Workflow::Single,
///     vec![ReadInput {
///         bases: b"ACGT".to_vec(),
///         seeds: vec![Seed::new(0, GraphPos::new(Handle::forward(NodeId::new(1)), 0))],
///     }],
/// );
/// let bytes = dump.to_bytes()?;
/// assert_eq!(SeedDump::from_bytes(&bytes)?, dump);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedDump {
    /// Single- or paired-end (metadata only; kernels treat reads alike).
    pub workflow: Workflow,
    /// The reads with their seeds.
    pub reads: Vec<ReadInput>,
}

impl SeedDump {
    /// Bundles reads into a dump.
    pub fn new(workflow: Workflow, reads: Vec<ReadInput>) -> Self {
        SeedDump { workflow, reads }
    }

    /// Total seeds across all reads.
    pub fn total_seeds(&self) -> usize {
        self.reads.iter().map(|r| r.seeds.len()).sum()
    }

    /// Total read bases.
    pub fn total_bases(&self) -> usize {
        self.reads.iter().map(|r| r.bases.len()).sum()
    }

    /// Keeps the first `fraction` of reads (the paper's autotuning
    /// subsampling uses the first 10%). Paired dumps keep whole pairs.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < fraction <= 1.0`.
    pub fn subsample(&self, fraction: f64) -> SeedDump {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        let mut count = ((self.reads.len() as f64) * fraction).round() as usize;
        count = count.clamp(1.min(self.reads.len()), self.reads.len());
        if self.workflow == Workflow::Paired {
            count = count.next_multiple_of(2).min(self.reads.len());
        }
        SeedDump {
            workflow: self.workflow,
            reads: self.reads[..count].to_vec(),
        }
    }

    /// Serializes to an in-memory image.
    ///
    /// # Errors
    ///
    /// Returns IO errors (not expected in-memory).
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut bytes = Vec::new();
        let mut writer = ContainerWriter::new(&mut bytes, DUMP_KIND)?;
        self.write_sections(&mut writer)?;
        writer.finish()?;
        Ok(bytes)
    }

    fn write_sections<W: std::io::Write>(&self, writer: &mut ContainerWriter<W>) -> Result<()> {
        let mut meta = Vec::new();
        varint::write_u64(&mut meta, matches!(self.workflow, Workflow::Paired) as u64);
        varint::write_u64(&mut meta, self.reads.len() as u64);
        writer.section(TAG_META, &meta)?;
        let mut payload = Vec::new();
        for read in &self.reads {
            varint::write_u64(&mut payload, read.bases.len() as u64);
            payload.extend_from_slice(&read.bases);
            varint::write_u64(&mut payload, read.seeds.len() as u64);
            // Seeds delta-encoded by read offset for compactness.
            let mut prev_off = 0u64;
            for seed in &read.seeds {
                varint::write_u64(&mut payload, seed.read_offset as u64 - prev_off);
                prev_off = seed.read_offset as u64;
                varint::write_u64(&mut payload, seed.pos.handle.packed());
                varint::write_u64(&mut payload, seed.pos.offset as u64);
            }
        }
        writer.section(TAG_READS, &payload)?;
        Ok(())
    }

    /// Deserializes an image written by [`SeedDump::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns container and codec errors on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut reader = ContainerReader::new(bytes, DUMP_KIND)?;
        Self::read_sections(&mut reader)
    }

    fn read_sections<R: std::io::Read>(reader: &mut ContainerReader<R>) -> Result<Self> {
        let meta = reader.expect_section(TAG_META)?;
        let mut cur = Cursor::new(&meta);
        let workflow = if cur.read_u64()? != 0 {
            Workflow::Paired
        } else {
            Workflow::Single
        };
        let read_count = cur.read_u64()? as usize;
        let payload = reader.expect_section(TAG_READS)?;
        let mut cur = Cursor::new(&payload);
        let mut reads = Vec::with_capacity(read_count);
        for _ in 0..read_count {
            let len = cur.read_u64()? as usize;
            let bases = cur.read_bytes(len)?.to_vec();
            let seed_count = cur.read_u64()? as usize;
            let mut seeds = Vec::with_capacity(seed_count);
            let mut prev_off = 0u64;
            for _ in 0..seed_count {
                prev_off += cur.read_u64()?;
                let handle = Handle::from_gbwt(cur.read_u64()?)
                    .ok_or_else(|| Error::Corrupt("seed handle encodes endmarker".into()))?;
                let offset = cur.read_u64()? as u32;
                seeds.push(Seed::new(prev_off as u32, GraphPos::new(handle, offset)));
            }
            reads.push(ReadInput { bases, seeds });
        }
        if !cur.is_at_end() {
            return Err(Error::Corrupt("trailing bytes after reads".into()));
        }
        Ok(SeedDump { workflow, reads })
    }

    /// Writes a `.bin` dump file.
    ///
    /// # Errors
    ///
    /// Returns filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let file = BufWriter::new(File::create(path)?);
        let mut writer = ContainerWriter::new(file, DUMP_KIND)?;
        self.write_sections(&mut writer)?;
        writer.finish()?;
        Ok(())
    }

    /// Reads a `.bin` dump file.
    ///
    /// # Errors
    ///
    /// Returns filesystem and format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let file = BufReader::new(File::open(path)?);
        let mut reader = ContainerReader::new(file, DUMP_KIND)?;
        Self::read_sections(&mut reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_graph::NodeId;
    use proptest::prelude::*;

    fn sample_dump(n: usize, workflow: Workflow) -> SeedDump {
        let reads = (0..n)
            .map(|i| ReadInput {
                bases: vec![b"ACGT"[i % 4]; 10 + i % 5],
                seeds: (0..(i % 4))
                    .map(|s| {
                        Seed::new(
                            s as u32 * 2,
                            GraphPos::new(
                                Handle::forward(NodeId::new(1 + (i + s) as u64)),
                                (s % 3) as u32,
                            ),
                        )
                    })
                    .collect(),
            })
            .collect();
        SeedDump::new(workflow, reads)
    }

    #[test]
    fn roundtrip_bytes() {
        let dump = sample_dump(13, Workflow::Single);
        assert_eq!(SeedDump::from_bytes(&dump.to_bytes().unwrap()).unwrap(), dump);
    }

    #[test]
    fn roundtrip_paired() {
        let dump = sample_dump(6, Workflow::Paired);
        let back = SeedDump::from_bytes(&dump.to_bytes().unwrap()).unwrap();
        assert_eq!(back.workflow, Workflow::Paired);
        assert_eq!(back, dump);
    }

    #[test]
    fn roundtrip_file() {
        let dump = sample_dump(5, Workflow::Single);
        let dir = std::env::temp_dir().join(format!("mg-dump-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seeds.bin");
        dump.save(&path).unwrap();
        assert_eq!(SeedDump::load(&path).unwrap(), dump);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn totals() {
        let dump = sample_dump(8, Workflow::Single);
        assert_eq!(dump.total_seeds(), dump.reads.iter().map(|r| r.seeds.len()).sum());
        assert_eq!(dump.total_bases(), dump.reads.iter().map(|r| r.bases.len()).sum());
    }

    #[test]
    fn subsample_takes_prefix() {
        let dump = sample_dump(100, Workflow::Single);
        let sub = dump.subsample(0.1);
        assert_eq!(sub.reads.len(), 10);
        assert_eq!(sub.reads[..], dump.reads[..10]);
    }

    #[test]
    fn subsample_keeps_whole_pairs() {
        let dump = sample_dump(10, Workflow::Paired);
        let sub = dump.subsample(0.11); // 1.1 -> rounds to 1 -> bumps to 2
        assert_eq!(sub.reads.len() % 2, 0);
        assert!(!sub.reads.is_empty());
    }

    #[test]
    fn subsample_never_empties() {
        let dump = sample_dump(3, Workflow::Single);
        assert_eq!(dump.subsample(0.0001).reads.len(), 1);
        assert_eq!(dump.subsample(1.0).reads.len(), 3);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn subsample_rejects_zero() {
        sample_dump(3, Workflow::Single).subsample(0.0);
    }

    #[test]
    fn corrupt_bytes_rejected() {
        let dump = sample_dump(4, Workflow::Single);
        let mut bytes = dump.to_bytes().unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5A;
        assert!(SeedDump::from_bytes(&bytes).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            raw in proptest::collection::vec(
                (
                    proptest::collection::vec(proptest::sample::select(b"ACGTN".to_vec()), 0..40),
                    proptest::collection::vec((0u32..200, 1u64..1000, any::<bool>(), 0u32..30), 0..8),
                ),
                0..20,
            ),
            paired: bool,
        ) {
            let reads: Vec<ReadInput> = raw
                .into_iter()
                .map(|(bases, seeds)| {
                    let mut seeds: Vec<Seed> = seeds
                        .into_iter()
                        .map(|(ro, node, rev, off)| {
                            let h = if rev {
                                Handle::reverse(NodeId::new(node))
                            } else {
                                Handle::forward(NodeId::new(node))
                            };
                            Seed::new(ro, GraphPos::new(h, off))
                        })
                        .collect();
                    // The format delta-encodes read offsets: keep sorted.
                    seeds.sort();
                    ReadInput { bases, seeds }
                })
                .collect();
            let workflow = if paired { Workflow::Paired } else { Workflow::Single };
            let dump = SeedDump::new(workflow, reads);
            prop_assert_eq!(SeedDump::from_bytes(&dump.to_bytes().unwrap()).unwrap(), dump);
        }
    }
}
