//! Functional validation: proxy output versus parent output.
//!
//! The paper validates miniGiraffe by exporting the extensions Giraffe
//! found and checking two properties: (1) every expected match appears in
//! the proxy output and (2) the proxy output contains no match absent from
//! the expected output. This module implements exactly that comparison.

use std::collections::BTreeMap;

use crate::types::{ExtensionKey, ReadResult};

/// Outcome of comparing two result sets.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValidationReport {
    /// Keys present in both outputs.
    pub matched: usize,
    /// Keys the expected output has but the actual output lacks.
    pub missing: Vec<ExtensionKey>,
    /// Keys the actual output has but the expected output lacks.
    pub extra: Vec<ExtensionKey>,
}

impl ValidationReport {
    /// `true` when the outputs match exactly (the paper reports 100%).
    pub fn is_exact(&self) -> bool {
        self.missing.is_empty() && self.extra.is_empty()
    }

    /// Fraction of expected keys found, in `[0, 1]`; 1.0 when nothing was
    /// expected.
    pub fn recall(&self) -> f64 {
        let expected = self.matched + self.missing.len();
        if expected == 0 {
            1.0
        } else {
            self.matched as f64 / expected as f64
        }
    }

    /// Fraction of actual keys that were expected, in `[0, 1]`; 1.0 when
    /// nothing was produced.
    pub fn precision(&self) -> f64 {
        let actual = self.matched + self.extra.len();
        if actual == 0 {
            1.0
        } else {
            self.matched as f64 / actual as f64
        }
    }
}

impl std::fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matched={} missing={} extra={} recall={:.4} precision={:.4}",
            self.matched,
            self.missing.len(),
            self.extra.len(),
            self.recall(),
            self.precision()
        )
    }
}

fn key_counts(results: &[ReadResult]) -> BTreeMap<ExtensionKey, usize> {
    let mut map = BTreeMap::new();
    for r in results {
        for e in &r.extensions {
            *map.entry(e.validation_key()).or_insert(0) += 1;
        }
    }
    map
}

/// Compares `actual` (the proxy) against `expected` (the parent), both
/// directions, multiset semantics.
pub fn validate(expected: &[ReadResult], actual: &[ReadResult]) -> ValidationReport {
    let want = key_counts(expected);
    let got = key_counts(actual);
    let mut report = ValidationReport::default();
    for (key, &w) in &want {
        let g = got.get(key).copied().unwrap_or(0);
        report.matched += w.min(g);
        for _ in g..w {
            report.missing.push(*key);
        }
    }
    for (key, &g) in &got {
        let w = want.get(key).copied().unwrap_or(0);
        for _ in w..g {
            report.extra.push(*key);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Extension;
    use mg_graph::{Handle, NodeId};
    use mg_index::GraphPos;

    fn ext(read_id: u64, start: u32, end: u32, node: u64, score: i32) -> Extension {
        Extension {
            read_id,
            read_start: start,
            read_end: end,
            pos: GraphPos::new(Handle::forward(NodeId::new(node)), 0),
            path: vec![],
            score,
            mismatches: 0,
        }
    }

    fn results(extensions: Vec<Extension>) -> Vec<ReadResult> {
        let mut by_read: BTreeMap<u64, Vec<Extension>> = BTreeMap::new();
        for e in extensions {
            by_read.entry(e.read_id).or_default().push(e);
        }
        by_read
            .into_iter()
            .map(|(read_id, extensions)| ReadResult { read_id, extensions })
            .collect()
    }

    #[test]
    fn identical_outputs_validate_exactly() {
        let a = results(vec![ext(0, 0, 10, 1, 10), ext(1, 2, 12, 3, 8)]);
        let report = validate(&a, &a.clone());
        assert!(report.is_exact());
        assert_eq!(report.matched, 2);
        assert_eq!(report.recall(), 1.0);
        assert_eq!(report.precision(), 1.0);
    }

    #[test]
    fn order_within_read_does_not_matter() {
        let a = results(vec![ext(0, 0, 10, 1, 10), ext(0, 5, 15, 2, 9)]);
        let mut b = a.clone();
        b[0].extensions.reverse();
        assert!(validate(&a, &b).is_exact());
    }

    #[test]
    fn missing_extension_detected() {
        let expected = results(vec![ext(0, 0, 10, 1, 10), ext(0, 5, 15, 2, 9)]);
        let actual = results(vec![ext(0, 0, 10, 1, 10)]);
        let report = validate(&expected, &actual);
        assert!(!report.is_exact());
        assert_eq!(report.matched, 1);
        assert_eq!(report.missing.len(), 1);
        assert!(report.extra.is_empty());
        assert!((report.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn extra_extension_detected() {
        let expected = results(vec![ext(0, 0, 10, 1, 10)]);
        let actual = results(vec![ext(0, 0, 10, 1, 10), ext(2, 0, 8, 5, 8)]);
        let report = validate(&expected, &actual);
        assert_eq!(report.extra.len(), 1);
        assert!(report.missing.is_empty());
        assert!((report.precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn score_differences_are_mismatches() {
        let expected = results(vec![ext(0, 0, 10, 1, 10)]);
        let actual = results(vec![ext(0, 0, 10, 1, 9)]);
        let report = validate(&expected, &actual);
        assert_eq!(report.matched, 0);
        assert_eq!(report.missing.len(), 1);
        assert_eq!(report.extra.len(), 1);
    }

    #[test]
    fn multiset_semantics() {
        // Two identical extensions expected, one produced.
        let expected = results(vec![ext(0, 0, 10, 1, 10), ext(0, 0, 10, 1, 10)]);
        let actual = results(vec![ext(0, 0, 10, 1, 10)]);
        let report = validate(&expected, &actual);
        assert_eq!(report.matched, 1);
        assert_eq!(report.missing.len(), 1);
    }

    #[test]
    fn empty_outputs_are_exact() {
        let report = validate(&[], &[]);
        assert!(report.is_exact());
        assert_eq!(report.recall(), 1.0);
        assert_eq!(report.precision(), 1.0);
    }

    #[test]
    fn display_mentions_counts() {
        let expected = results(vec![ext(0, 0, 10, 1, 10)]);
        let report = validate(&expected, &[]);
        let text = report.to_string();
        assert!(text.contains("missing=1"));
        assert!(text.contains("recall=0.0000"));
    }
}
