//! Core data types shared by the proxy and parent pipelines.

use mg_graph::Handle;
use mg_index::GraphPos;

/// A seed: a read offset anchored to a graph position.
///
/// Seeds are produced by the minimizer lookup (a read k-mer occurring in the
/// pangenome) and are where the walk-and-compare extension starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Seed {
    /// Offset in the read of the first matched base.
    pub read_offset: u32,
    /// Matching position in the graph.
    pub pos: GraphPos,
}

impl Seed {
    /// Creates a seed.
    pub fn new(read_offset: u32, pos: GraphPos) -> Self {
        Seed { read_offset, pos }
    }
}

/// Whether reads come from one end or both ends of the DNA fragments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Workflow {
    /// Single-end reads (input sets A-human, B-yeast).
    #[default]
    Single,
    /// Paired-end reads (input sets C-HPRC, D-HPRC); reads `2i` and
    /// `2i + 1` are mates.
    Paired,
}

impl std::fmt::Display for Workflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Workflow::Single => write!(f, "single"),
            Workflow::Paired => write!(f, "paired"),
        }
    }
}

/// One read plus its preprocessed seeds: the unit of the proxy's input.
///
/// This is what Giraffe's preprocessing hands the seed-and-extend stage, and
/// exactly what the paper's `sequence-seeds.bin` dump captures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadInput {
    /// The read's bases (`ACGT`, possibly `N`).
    pub bases: Vec<u8>,
    /// Seeds found for this read, any order.
    pub seeds: Vec<Seed>,
}

/// A gapless extension: the proxy's output unit ("the offsets and scores of
/// each match").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extension {
    /// Index of the read in its dump.
    pub read_id: u64,
    /// First read base covered by the extension.
    pub read_start: u32,
    /// One past the last read base covered.
    pub read_end: u32,
    /// Graph position of the read base at `read_start`.
    pub pos: GraphPos,
    /// The oriented nodes the extension walks, in order.
    pub path: Vec<Handle>,
    /// Alignment score (matches minus mismatch penalties).
    pub score: i32,
    /// Number of mismatches tolerated inside the extension.
    pub mismatches: u32,
}

impl Extension {
    /// Number of read bases covered.
    pub fn len(&self) -> u32 {
        self.read_end - self.read_start
    }

    /// Returns `true` for a degenerate empty extension.
    pub fn is_empty(&self) -> bool {
        self.read_end == self.read_start
    }

    /// The comparison key used for functional validation: position + span +
    /// score identify a match independent of exploration order.
    pub fn validation_key(&self) -> ExtensionKey {
        ExtensionKey {
            read_id: self.read_id,
            read_start: self.read_start,
            read_end: self.read_end,
            handle: self.pos.handle.packed(),
            offset: self.pos.offset,
            score: self.score,
        }
    }
}

/// Order-independent identity of an extension (see
/// [`Extension::validation_key`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExtensionKey {
    /// Read index in the dump.
    pub read_id: u64,
    /// Covered read interval start.
    pub read_start: u32,
    /// Covered read interval end (exclusive).
    pub read_end: u32,
    /// Packed handle of the starting graph position.
    pub handle: u64,
    /// Offset within the handle.
    pub offset: u32,
    /// Alignment score.
    pub score: i32,
}

/// All extensions found for one read.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReadResult {
    /// Index of the read in its dump.
    pub read_id: u64,
    /// Extensions, best score first.
    pub extensions: Vec<Extension>,
}

impl ReadResult {
    /// The best extension score, if any extension was found.
    pub fn best_score(&self) -> Option<i32> {
        self.extensions.first().map(|e| e.score)
    }

    /// Whether the read produced a full-length match with no mismatches.
    pub fn has_perfect_match(&self, read_len: u32) -> bool {
        self.extensions
            .iter()
            .any(|e| e.len() == read_len && e.mismatches == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_graph::NodeId;

    fn gp(node: u64, off: u32) -> GraphPos {
        GraphPos::new(Handle::forward(NodeId::new(node)), off)
    }

    #[test]
    fn seed_ordering_is_by_read_offset_then_pos() {
        let a = Seed::new(1, gp(5, 0));
        let b = Seed::new(2, gp(1, 0));
        assert!(a < b);
    }

    #[test]
    fn extension_len_and_empty() {
        let e = Extension {
            read_id: 0,
            read_start: 10,
            read_end: 40,
            pos: gp(1, 0),
            path: vec![],
            score: 30,
            mismatches: 0,
        };
        assert_eq!(e.len(), 30);
        assert!(!e.is_empty());
    }

    #[test]
    fn validation_key_ignores_path() {
        let mut e1 = Extension {
            read_id: 7,
            read_start: 0,
            read_end: 20,
            pos: gp(3, 4),
            path: vec![Handle::forward(NodeId::new(3))],
            score: 20,
            mismatches: 0,
        };
        let e2 = e1.clone();
        e1.path.push(Handle::forward(NodeId::new(4)));
        assert_eq!(e1.validation_key(), e2.validation_key());
    }

    #[test]
    fn read_result_best_score() {
        let mut r = ReadResult { read_id: 0, extensions: vec![] };
        assert_eq!(r.best_score(), None);
        r.extensions.push(Extension {
            read_id: 0,
            read_start: 0,
            read_end: 50,
            pos: gp(1, 0),
            path: vec![],
            score: 50,
            mismatches: 0,
        });
        assert_eq!(r.best_score(), Some(50));
        assert!(r.has_perfect_match(50));
        assert!(!r.has_perfect_match(60));
    }

    #[test]
    fn workflow_display() {
        assert_eq!(Workflow::Single.to_string(), "single");
        assert_eq!(Workflow::Paired.to_string(), "paired");
    }
}
