//! Differential property tests of the SIMD dispatch ladder: the scalar
//! oracle (`ExtendParams::force_scalar`), the SWAR word-parallel walk, and
//! each explicit-SIMD tier the host supports must return bit-identical
//! extensions on random pangenomes — including long nodes whose spans cover
//! multiple packed words (the wide-block path), reads with `N` bases,
//! word-boundary tails, and both orientations. The batched extension
//! dataflow is pinned output-invariant against the unbatched anchor order.

use mg_core::extend::{
    extend_seed_with_scratch, process_until_threshold_with_scratch, ExtendParams, ExtendScratch,
    ProcessParams,
};
use mg_core::types::Seed;
use mg_core::Cluster;
use mg_gbwt::{CachedGbwt, Gbz};
use mg_graph::pangenome::{PangenomeBuilder, Variant};
use mg_graph::{Handle, NodeId};
use mg_index::GraphPos;
use mg_kernels::SimdTier;
use mg_support::probe::NoProbe;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BASES: &[u8; 4] = b"ACGT";

/// Every tier the dispatch ladder can select on this host, scalar first.
/// `effective_tier` clamps overrides to the hardware tier, so asking for a
/// tier above what the host supports would silently retest a lower one;
/// listing only supported tiers keeps each comparison meaningful.
fn host_tiers() -> Vec<SimdTier> {
    let top = mg_kernels::hardware_tier();
    [SimdTier::Scalar, SimdTier::Swar, SimdTier::Avx2]
        .into_iter()
        .filter(|&t| t <= top)
        .collect()
}

/// A random pangenome whose node-length cap reaches past two packed words
/// (64 bases), so anchors land both on short single-word nodes and on long
/// nodes where the wide multi-word comparison engages.
fn random_gbz(rng: &mut StdRng) -> Gbz {
    loop {
        let ref_len = rng.random_range(96usize..400);
        let reference: Vec<u8> =
            (0..ref_len).map(|_| BASES[rng.random_range(0usize..4)]).collect();
        let mut variants = Vec::new();
        let mut pos = 0usize;
        for _ in 0..rng.random_range(0usize..5) {
            pos += rng.random_range(8usize..64);
            if pos + 2 >= ref_len {
                break;
            }
            variants.push(Variant::snp(pos, BASES[rng.random_range(0usize..4)]));
        }
        let n_vars = variants.len();
        let haplotypes: Vec<Vec<usize>> = (0..rng.random_range(1usize..4))
            .map(|_| (0..n_vars).map(|_| rng.random_range(0usize..2)).collect())
            .collect();
        let built = PangenomeBuilder::new(reference)
            .variants(variants)
            .haplotypes(haplotypes)
            // Past 2 × 32 bases so `walk_packed` takes the wide-block path.
            .max_node_len(rng.random_range(8usize..140))
            .build();
        if let Ok(p) = built {
            if let Ok(gbz) = Gbz::from_pangenome(p) {
                return gbz;
            }
        }
        // Rejected draw (e.g. an alt equal to the reference base): retry.
    }
}

/// A read sampled by walking the graph from a random oriented handle, then
/// sprinkled with substitution errors and `N` bases. Lengths cover exact
/// word multiples (32/64/96) and odd tails.
fn sample_read(rng: &mut StdRng, gbz: &Gbz) -> Vec<u8> {
    let graph = gbz.graph();
    let n = graph.node_count() as u64;
    let target = if rng.random_bool(0.25) {
        32 * rng.random_range(1usize..5)
    } else {
        rng.random_range(1usize..200)
    };
    let mut h = Handle::forward(NodeId::new(rng.random_range(1..=n)));
    if rng.random_bool(0.3) {
        h = h.flip();
    }
    let mut read = Vec::new();
    while read.len() < target {
        read.extend_from_slice(graph.sequence(h).as_ref());
        let succ = graph.successors(h);
        if succ.is_empty() {
            break;
        }
        h = succ[rng.random_range(0..succ.len())];
    }
    read.truncate(target);
    if read.is_empty() {
        read.push(b'A');
    }
    for b in read.iter_mut() {
        if rng.random_bool(0.04) {
            *b = BASES[rng.random_range(0usize..4)];
        }
        if rng.random_bool(0.02) {
            *b = b'N';
        }
    }
    read
}

fn random_seed(rng: &mut StdRng, gbz: &Gbz, read_len: usize) -> Seed {
    let graph = gbz.graph();
    let n = graph.node_count() as u64;
    let node = NodeId::new(rng.random_range(1..=n));
    let node_len = graph.node_len(node);
    let handle = if rng.random_bool(0.5) {
        Handle::forward(node)
    } else {
        Handle::reverse(node)
    };
    Seed::new(
        rng.random_range(0..read_len) as u32,
        GraphPos::new(handle, rng.random_range(0..node_len) as u32),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every dispatch tier the host supports returns the same extension
    /// (path, span, score, mismatches) as the scalar oracle for random
    /// anchors on random graphs with multi-word node spans. One scratch and
    /// cache per tier persist across reads, so stale-scratch detection and
    /// the GBWT MRU memo are exercised under every tier too.
    #[test]
    fn prop_all_simd_tiers_equal_scalar_oracle(case_seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(case_seed);
        let gbz = random_gbz(&mut rng);
        let graph = gbz.graph();
        let tiers = host_tiers();
        let mut scratches: Vec<ExtendScratch> =
            tiers.iter().map(|_| ExtendScratch::default()).collect();
        let mut caches: Vec<CachedGbwt<'_>> =
            tiers.iter().map(|_| CachedGbwt::new(gbz.gbwt(), 64)).collect();
        let mut oracle_scratch = ExtendScratch::default();
        let mut oracle_cache = CachedGbwt::new(gbz.gbwt(), 64);
        for _ in 0..5 {
            let read = sample_read(&mut rng, &gbz);
            let base = ExtendParams {
                max_mismatches: rng.random_range(0u32..8),
                mismatch_penalty: rng.random_range(0i32..5),
                match_score: rng.random_range(0i32..3),
                ..Default::default()
            };
            let oracle_params = ExtendParams { force_scalar: true, ..base };
            for _ in 0..10 {
                let seed = random_seed(&mut rng, &gbz, read.len());
                let oracle = extend_seed_with_scratch(
                    graph, &mut oracle_cache, &read, 0, seed, &oracle_params, &mut NoProbe,
                    &mut oracle_scratch,
                );
                for (i, &tier) in tiers.iter().enumerate() {
                    let params = ExtendParams { simd_override: Some(tier), ..base };
                    let got = extend_seed_with_scratch(
                        graph, &mut caches[i], &read, 0, seed, &params, &mut NoProbe,
                        &mut scratches[i],
                    );
                    prop_assert_eq!(
                        &got, &oracle,
                        "tier {} case {} read {:?} seed {:?} params {:?}",
                        tier.name(), case_seed, String::from_utf8_lossy(&read), seed, base
                    );
                }
            }
        }
    }

    /// The batched extension dataflow is a pure locality transform: for any
    /// batch size and any dispatch tier, `process_until_threshold` returns
    /// exactly the extensions of the unbatched anchor order.
    #[test]
    fn prop_batched_dataflow_is_output_invariant(case_seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(case_seed.wrapping_add(0xb10c_ba7c));
        let gbz = random_gbz(&mut rng);
        let graph = gbz.graph();
        let read = sample_read(&mut rng, &gbz);
        // A pile of random anchors, deliberately with duplicates, split
        // across a couple of clusters.
        let seeds: Vec<Seed> = (0..rng.random_range(2usize..40))
            .map(|_| random_seed(&mut rng, &gbz, read.len()))
            .collect();
        let split = rng.random_range(1..=seeds.len());
        let clusters = vec![
            Cluster { seeds: (0..split).collect(), score: 2.0, coverage: 0.5 },
            Cluster { seeds: (split..seeds.len()).collect(), score: 1.5, coverage: 0.3 },
        ];
        let extend = ExtendParams {
            simd_override: Some(*host_tiers().last().unwrap()),
            max_mismatches: rng.random_range(0u32..6),
            ..Default::default()
        };
        let baseline_process = ProcessParams { extend_batch: 1, ..Default::default() };
        let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
        let mut scratch = ExtendScratch::default();
        let baseline = process_until_threshold_with_scratch(
            graph, &mut cache, &read, 0, &seeds, &clusters, &extend, &baseline_process,
            &mut NoProbe, &mut scratch,
        );
        for batch in [0usize, 2, 3, 16, 64, 1024] {
            let process = ProcessParams { extend_batch: batch, ..Default::default() };
            let mut cache_b = CachedGbwt::new(gbz.gbwt(), 64);
            let mut scratch_b = ExtendScratch::default();
            let got = process_until_threshold_with_scratch(
                graph, &mut cache_b, &read, 0, &seeds, &clusters, &extend, &process,
                &mut NoProbe, &mut scratch_b,
            );
            prop_assert_eq!(
                &got, &baseline,
                "batch {} case {} read {:?}",
                batch, case_seed, String::from_utf8_lossy(&read)
            );
            // Batching bookkeeping: every deduplicated anchor is accounted
            // to exactly one batch when batching is on.
            let stats = scratch_b.take_stats();
            if batch > 1 {
                prop_assert!(stats.batches >= 1);
                prop_assert!(stats.batch_anchors >= 1);
            } else {
                prop_assert_eq!(stats.batches, 0);
            }
        }
    }

    /// The wide multi-word block path actually engages on this suite's
    /// graphs (guards against silently testing only the narrow path), and
    /// its lane accounting stays within the walked span.
    #[test]
    fn prop_wide_blocks_engage_on_long_nodes(case_seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(case_seed.wrapping_add(0x51d3));
        // Force long nodes: one long reference, no variants, generous cap.
        let reference: Vec<u8> =
            (0..300).map(|_| BASES[rng.random_range(0usize..4)]).collect();
        let p = PangenomeBuilder::new(reference)
            .haplotypes(vec![vec![]])
            .max_node_len(160)
            .build()
            .expect("pangenome");
        let gbz = Gbz::from_pangenome(p).expect("gbz");
        let graph = gbz.graph();
        // A long read walked off the reference, so multi-word spans are
        // guaranteed (the shim has no `prop_assume`, so build it directly).
        let mut read = Vec::new();
        let mut h = Handle::forward(NodeId::new(1));
        while read.len() < 128 {
            read.extend_from_slice(graph.sequence(h).as_ref());
            let succ = graph.successors(h);
            let Some(&next) = succ.first() else { break };
            h = next;
        }
        read.truncate(128);
        assert!(read.len() >= 96);
        let params = ExtendParams {
            simd_override: Some(*host_tiers().last().unwrap()),
            max_mismatches: 8,
            ..Default::default()
        };
        let mut cache = CachedGbwt::new(gbz.gbwt(), 64);
        let mut scratch = ExtendScratch::default();
        // One deterministic anchor guarantees a full-block span no matter
        // what the random draws do: rightward from read offset 0 at node
        // 1's base 0, both sides have > 96 bases ahead (the wide path only
        // engages on spans that fill a whole 4-word block).
        let pinned = Seed::new(0, GraphPos::new(Handle::forward(NodeId::new(1)), 0));
        let _ = extend_seed_with_scratch(
            graph, &mut cache, &read, 0, pinned, &params, &mut NoProbe, &mut scratch,
        );
        for _ in 0..12 {
            let seed = random_seed(&mut rng, &gbz, read.len());
            let _ = extend_seed_with_scratch(
                graph, &mut cache, &read, 0, seed, &params, &mut NoProbe, &mut scratch,
            );
        }
        let stats = scratch.take_stats();
        if mg_kernels::hardware_tier() >= SimdTier::Avx2 {
            prop_assert!(
                stats.wide_blocks > 0,
                "wide path never engaged (case {})", case_seed
            );
            // Every wide block covers more than one word (> 32 lanes).
            prop_assert!(stats.wide_lanes > stats.wide_blocks * 32);
        } else {
            // Below AVX2 the wide path is never selected.
            prop_assert_eq!(stats.wide_blocks, 0);
        }
    }
}
