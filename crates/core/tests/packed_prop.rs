//! Differential property tests of the extension kernel's two comparison
//! loops: the word-parallel packed walk must be bit-identical to the scalar
//! oracle (`ExtendParams::force_scalar`) on random pangenomes, reads with
//! `N` bases, every tail length, and both orientations.

use mg_core::extend::{extend_seed_with_scratch, ExtendParams, ExtendScratch};
use mg_core::types::Seed;
use mg_gbwt::{CachedGbwt, Gbz};
use mg_graph::pangenome::{PangenomeBuilder, Variant};
use mg_graph::{Handle, NodeId};
use mg_index::GraphPos;
use mg_support::probe::NoProbe;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BASES: &[u8; 4] = b"ACGT";

/// A random pangenome: random reference, a handful of SNPs, a small
/// haplotype panel, and a random node-length cap so anchors land on short
/// single-word nodes and on nodes spanning multiple packed words.
fn random_gbz(rng: &mut StdRng) -> Gbz {
    loop {
        let ref_len = rng.random_range(24usize..120);
        let reference: Vec<u8> =
            (0..ref_len).map(|_| BASES[rng.random_range(0usize..4)]).collect();
        let mut variants = Vec::new();
        let mut pos = 0usize;
        for _ in 0..rng.random_range(0usize..4) {
            pos += rng.random_range(2usize..16);
            if pos + 2 >= ref_len {
                break;
            }
            variants.push(Variant::snp(pos, BASES[rng.random_range(0usize..4)]));
        }
        let n_vars = variants.len();
        let haplotypes: Vec<Vec<usize>> = (0..rng.random_range(1usize..4))
            .map(|_| (0..n_vars).map(|_| rng.random_range(0usize..2)).collect())
            .collect();
        let built = PangenomeBuilder::new(reference)
            .variants(variants)
            .haplotypes(haplotypes)
            .max_node_len(rng.random_range(3usize..40))
            .build();
        if let Ok(p) = built {
            if let Ok(gbz) = Gbz::from_pangenome(p) {
                return gbz;
            }
        }
        // Rejected draw (e.g. an alt equal to the reference base): retry.
    }
}

/// A read sampled by walking the graph from a random oriented handle, then
/// sprinkled with substitution errors and `N` bases. Lengths cover exact
/// word multiples and single-base tails.
fn sample_read(rng: &mut StdRng, gbz: &Gbz) -> Vec<u8> {
    let graph = gbz.graph();
    let n = graph.node_count() as u64;
    let target = if rng.random_bool(0.2) {
        32 * rng.random_range(1usize..3)
    } else {
        rng.random_range(1usize..70)
    };
    let mut h = Handle::forward(NodeId::new(rng.random_range(1..=n)));
    if rng.random_bool(0.3) {
        h = h.flip();
    }
    let mut read = Vec::new();
    while read.len() < target {
        read.extend_from_slice(graph.sequence(h).as_ref());
        let succ = graph.successors(h);
        if succ.is_empty() {
            break;
        }
        h = succ[rng.random_range(0..succ.len())];
    }
    read.truncate(target);
    if read.is_empty() {
        read.push(b'A');
    }
    for b in read.iter_mut() {
        if rng.random_bool(0.08) {
            *b = BASES[rng.random_range(0usize..4)];
        }
        if rng.random_bool(0.03) {
            *b = b'N';
        }
    }
    read
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For random anchors on random graphs, the packed and scalar walks
    /// return identical extensions (path, span, score, mismatches) — or
    /// identically decline. Scratches persist across reads so the packed
    /// read-pair's staleness detection is exercised too.
    #[test]
    fn prop_packed_extension_equals_scalar_oracle(case_seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(case_seed);
        let gbz = random_gbz(&mut rng);
        let graph = gbz.graph();
        let n = graph.node_count() as u64;
        let mut packed_scratch = ExtendScratch::default();
        let mut scalar_scratch = ExtendScratch::default();
        let mut cache_p = CachedGbwt::new(gbz.gbwt(), 64);
        let mut cache_s = CachedGbwt::new(gbz.gbwt(), 64);
        for _ in 0..6 {
            let read = sample_read(&mut rng, &gbz);
            let params = ExtendParams {
                max_mismatches: rng.random_range(0u32..6),
                mismatch_penalty: rng.random_range(0i32..5),
                match_score: rng.random_range(0i32..3),
                ..Default::default()
            };
            let scalar_params = ExtendParams { force_scalar: true, ..params };
            for _ in 0..12 {
                let node = NodeId::new(rng.random_range(1..=n));
                let node_len = graph.node_len(node);
                let handle = if rng.random_bool(0.5) {
                    Handle::forward(node)
                } else {
                    Handle::reverse(node)
                };
                let seed = Seed::new(
                    rng.random_range(0..read.len()) as u32,
                    GraphPos::new(handle, rng.random_range(0..node_len) as u32),
                );
                let packed = extend_seed_with_scratch(
                    graph, &mut cache_p, &read, 0, seed, &params, &mut NoProbe,
                    &mut packed_scratch,
                );
                let scalar = extend_seed_with_scratch(
                    graph, &mut cache_s, &read, 0, seed, &scalar_params, &mut NoProbe,
                    &mut scalar_scratch,
                );
                prop_assert_eq!(
                    &packed, &scalar,
                    "case {} read {:?} seed {:?} params {:?}",
                    case_seed, String::from_utf8_lossy(&read), seed, params
                );
            }
        }
    }

    /// A negative match score disables match-run batching; the per-base
    /// fallback must still agree with the oracle exactly.
    #[test]
    fn prop_negative_match_score_stays_identical(case_seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(case_seed.wrapping_add(0x9e37_79b9));
        let gbz = random_gbz(&mut rng);
        let graph = gbz.graph();
        let n = graph.node_count() as u64;
        let mut packed_scratch = ExtendScratch::default();
        let mut scalar_scratch = ExtendScratch::default();
        let mut cache_p = CachedGbwt::new(gbz.gbwt(), 64);
        let mut cache_s = CachedGbwt::new(gbz.gbwt(), 64);
        let read = sample_read(&mut rng, &gbz);
        let params = ExtendParams {
            match_score: -1,
            mismatch_penalty: rng.random_range(0i32..3),
            max_mismatches: rng.random_range(0u32..4),
            ..Default::default()
        };
        let scalar_params = ExtendParams { force_scalar: true, ..params };
        for _ in 0..8 {
            let node = NodeId::new(rng.random_range(1..=n));
            let node_len = graph.node_len(node);
            let handle = if rng.random_bool(0.5) {
                Handle::forward(node)
            } else {
                Handle::reverse(node)
            };
            let seed = Seed::new(
                rng.random_range(0..read.len()) as u32,
                GraphPos::new(handle, rng.random_range(0..node_len) as u32),
            );
            let packed = extend_seed_with_scratch(
                graph, &mut cache_p, &read, 0, seed, &params, &mut NoProbe,
                &mut packed_scratch,
            );
            let scalar = extend_seed_with_scratch(
                graph, &mut cache_s, &read, 0, seed, &scalar_params, &mut NoProbe,
                &mut scalar_scratch,
            );
            prop_assert_eq!(&packed, &scalar);
        }
    }
}
