//! Property tests: the pooled, scratch-reusing parallel pipeline is
//! observationally identical to a straight-line reference that maps each
//! read independently with throwaway state.
//!
//! This is the safety net under the zero-allocation kernels and the
//! persistent worker pool: whatever dump the generator produces and however
//! the scheduler slices it, `Mapper::run` must return byte-identical
//! `ReadResult`s in input order.

use mg_core::dump::SeedDump;
use mg_core::types::{ReadInput, Seed, Workflow};
use mg_core::{Mapper, MappingOptions};
use mg_gbwt::{CachedGbwt, Gbz};
use mg_graph::pangenome::{PangenomeBuilder, Variant};
use mg_graph::{Handle, NodeId};
use mg_index::GraphPos;
use mg_sched::SchedulerKind;
use mg_support::probe::NoProbe;
use mg_support::regions::NullSink;
use proptest::prelude::*;

fn sample_gbz() -> Gbz {
    let p = PangenomeBuilder::new(b"AAAACCCCGGGGTTTTACGTACGTAACCGGTT".to_vec())
        .variants(vec![Variant::snp(6, b'T'), Variant::deletion(20, 2)])
        .haplotypes(vec![vec![0, 0], vec![1, 0], vec![0, 1]])
        .max_node_len(5)
        .build()
        .unwrap();
    Gbz::from_pangenome(p).unwrap()
}

/// Maps raw generated tuples onto in-bounds seeds for `gbz`'s graph.
fn build_dump(gbz: &Gbz, raw: Vec<(Vec<u8>, Vec<(u32, u64, bool, u32)>)>) -> SeedDump {
    let node_count = gbz.graph().node_count() as u64;
    let reads = raw
        .into_iter()
        .map(|(bases, raw_seeds)| {
            let seeds = raw_seeds
                .into_iter()
                .filter(|_| !bases.is_empty())
                .map(|(read_offset, node, backward, node_offset)| {
                    let id = NodeId::new(1 + node % node_count);
                    let handle = if backward {
                        Handle::reverse(id)
                    } else {
                        Handle::forward(id)
                    };
                    let len = gbz.graph().node_len(id) as u32;
                    Seed::new(
                        read_offset % bases.len() as u32,
                        GraphPos::new(handle, node_offset % len.max(1)),
                    )
                })
                .collect();
            ReadInput { bases, seeds }
        })
        .collect();
    SeedDump::new(Workflow::Single, reads)
}

/// The straight-line reference: every read mapped on the calling thread
/// with a fresh cache and fresh (internal) scratch — no scheduler, no pool,
/// no reuse of any kind.
fn reference_results(mapper: &Mapper<'_>, gbz: &Gbz, dump: &SeedDump, options: &MappingOptions) -> Vec<mg_core::ReadResult> {
    dump.reads
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let mut cache = CachedGbwt::new(gbz.gbwt(), options.cache_capacity);
            mapper.map_read(&mut cache, i as u64, input, options, &NullSink, 0, &mut NoProbe)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn pooled_runs_match_straight_line_reference(
        raw in proptest::collection::vec(
            (
                proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 4..24),
                proptest::collection::vec(
                    (0u32..24, 0u64..64, any::<bool>(), 0u32..8),
                    0..5,
                ),
            ),
            0..12,
        ),
    ) {
        let gbz = sample_gbz();
        let dump = build_dump(&gbz, raw);
        let mapper = Mapper::new(&gbz);
        let options = MappingOptions { batch_size: 3, ..Default::default() };
        let expected = reference_results(&mapper, &gbz, &dump, &options);
        // One mapper across every configuration: each run after the first
        // re-enters the persistent pool with warm caches and used scratch.
        for kind in SchedulerKind::ALL {
            for threads in [1usize, 2, 8] {
                let options = MappingOptions {
                    threads,
                    scheduler: kind,
                    ..options.clone()
                };
                let got = mapper.run(&dump, &options);
                prop_assert_eq!(
                    &got.per_read,
                    &expected,
                    "scheduler {} with {} threads diverged from reference",
                    kind,
                    threads
                );
            }
        }
    }
}
