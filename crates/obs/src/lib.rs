//! Near-zero-overhead observability for the miniGiraffe mapping loop.
//!
//! The paper's contribution is *measurement*: per-stage timing, cache
//! statistics and scheduler behaviour are what make the proxy useful. This
//! crate provides the subsystem those numbers flow through:
//!
//! - [`Metrics`]: a process-level registry. Each worker thread checks out an
//!   [`ObsShard`], records into plain (unsynchronized) arrays on the hot
//!   path, and the shard is merged back with [`Metrics::absorb`] when the
//!   worker finishes — the same collection discipline the mapper already
//!   uses for `CacheStats`-style per-thread state.
//! - [`Stage`] spans: accumulated wall time + entry counts for the four
//!   pipeline stages (seeding → clustering → extension → rescoring).
//! - [`Ctr`] counters, [`Hist`] histograms with fixed log2 buckets, and
//!   max-merged [`Gauge`]s.
//! - [`Report`]: the merged result, exportable as JSON or CSV for the bench
//!   harness.
//!
//! Everything compiles to no-ops when the `enabled` cargo feature is off
//! (empty `#[inline(always)]` bodies, no `Instant::now` calls), and is
//! additionally gated by a runtime switch: shards handed out by
//! [`Metrics::off`] skip all recording behind a single predictable branch.

use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Pipeline stages timed by span-style [`ObsShard::stage`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Minimizer extraction + index lookup (parent pipeline).
    Seeding = 0,
    /// The `cluster_seeds` kernel.
    Clustering = 1,
    /// The `process_until_threshold_c` seed-and-extend kernel.
    Extension = 2,
    /// Alignment scoring / gapped fallback (parent pipeline).
    Rescoring = 3,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 4;
    /// All stages in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] =
        [Stage::Seeding, Stage::Clustering, Stage::Extension, Stage::Rescoring];

    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Seeding => "seeding",
            Stage::Clustering => "clustering",
            Stage::Extension => "extension",
            Stage::Rescoring => "rescoring",
        }
    }
}

/// Monotonically increasing event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Ctr {
    /// Reads fully mapped by the proxy or parent pipeline.
    ReadsMapped = 0,
    /// Seeds produced across all reads.
    SeedsTotal = 1,
    /// Gapless extensions produced across all reads.
    ExtensionsTotal = 2,
    /// `CachedGbwt` record lookups served from the cache.
    CacheHits = 3,
    /// `CachedGbwt` record lookups that decoded from the backing GBWT.
    CacheMisses = 4,
    /// Entries dropped from the cache. The cache only grows (it never
    /// evicts under memory pressure), so this counts cold invalidations:
    /// cached entries discarded when a warm cache is re-bound to a
    /// different GBWT or capacity.
    CacheEvictions = 5,
    /// Cache table doublings.
    CacheResizes = 6,
    /// Slots moved during cache table doublings.
    CacheRehashedSlots = 7,
    /// Work-stealing scheduler: batches claimed from another thread's share.
    PoolSteals = 8,
    /// Batches dispatched across all schedulers.
    PoolBatches = 9,
    /// Tasks (reads) completed by scheduler workers.
    PoolTasksCompleted = 10,
    /// Nanoseconds VG-style workers spent blocked on the shared queue.
    PoolIdleNs = 11,
    /// Configurations evaluated by the tuning sweep.
    SweepPoints = 12,
    /// Batches pushed through the streaming-ingestion hand-off queue.
    StreamBatches = 13,
    /// Reads delivered by the streaming-ingestion producer.
    StreamReads = 14,
    /// Nanoseconds the streaming producer spent blocked on a full queue
    /// (backpressure applied by the mapping consumer).
    StreamProducerBlockedNs = 15,
    /// `CachedGbwt` record lookups served by the shared pre-decoded hot
    /// tier (before the per-thread table was probed).
    CacheHotHits = 16,
    /// Record lookups that fell through the hot tier to the per-thread
    /// table.
    CacheHotMisses = 17,
    /// Record decompressions skipped because the hot tier already held the
    /// record a per-thread table would otherwise have decoded.
    CacheDecodesSaved = 18,
    /// 256-bit comparison blocks executed by the wide extension walk.
    SimdBlocksWide = 19,
    /// Base lanes compared inside those wide blocks.
    SimdLanesActive = 20,
    /// Anchor batches formed by the batched extension dataflow.
    ExtendBatches = 21,
    /// Anchors summed over those batches (`extend_batch_anchors /
    /// extend_batches` is the mean batch fill).
    ExtendBatchAnchors = 22,
    /// Extension DFS subtrees skipped by branch-and-bound pruning (they
    /// provably could not beat the best prefix already found).
    ExtendPrunedFrames = 23,
    /// Mapping jobs admitted by the server's pending queue.
    ServeJobsAccepted = 24,
    /// Mapping jobs refused with `BUSY` (queue full, per-client cap, or
    /// draining).
    ServeJobsRejected = 25,
    /// Mapping jobs that ran to `DONE`.
    ServeJobsCompleted = 26,
    /// Mapping jobs that ended with a per-job error frame (corrupt input
    /// or a worker panic inside the job).
    ServeJobsFailed = 27,
    /// GAF bytes streamed to server clients.
    ServeGafBytes = 28,
    /// Shards whose minimizer tables were probed while routing reads,
    /// summed over reads (`route_shards_probed / reads_routed` is the mean
    /// fan-out the routing gate bounds).
    RouteShardsProbed = 29,
    /// Reads routed by the sharded pipeline (resident + fallback).
    RouteReadsTotal = 30,
    /// Routed reads whose seeds all landed in one shard's core and were
    /// mapped entirely on that shard's local structures.
    RouteResidentReads = 31,
    /// Routed reads that straddled shard cores (or exceeded the shard
    /// halo's residency limit) and fell back to the resident global
    /// pipeline.
    RouteFallbackReads = 32,
    /// Nanoseconds spent translating per-shard extension results back to
    /// global coordinates and merging them into the rescoring order.
    ShardMergeNs = 33,
}

impl Ctr {
    /// Number of counters.
    pub const COUNT: usize = 34;
    /// All counters, in declaration order.
    pub const ALL: [Ctr; Ctr::COUNT] = [
        Ctr::ReadsMapped,
        Ctr::SeedsTotal,
        Ctr::ExtensionsTotal,
        Ctr::CacheHits,
        Ctr::CacheMisses,
        Ctr::CacheEvictions,
        Ctr::CacheResizes,
        Ctr::CacheRehashedSlots,
        Ctr::PoolSteals,
        Ctr::PoolBatches,
        Ctr::PoolTasksCompleted,
        Ctr::PoolIdleNs,
        Ctr::SweepPoints,
        Ctr::StreamBatches,
        Ctr::StreamReads,
        Ctr::StreamProducerBlockedNs,
        Ctr::CacheHotHits,
        Ctr::CacheHotMisses,
        Ctr::CacheDecodesSaved,
        Ctr::SimdBlocksWide,
        Ctr::SimdLanesActive,
        Ctr::ExtendBatches,
        Ctr::ExtendBatchAnchors,
        Ctr::ExtendPrunedFrames,
        Ctr::ServeJobsAccepted,
        Ctr::ServeJobsRejected,
        Ctr::ServeJobsCompleted,
        Ctr::ServeJobsFailed,
        Ctr::ServeGafBytes,
        Ctr::RouteShardsProbed,
        Ctr::RouteReadsTotal,
        Ctr::RouteResidentReads,
        Ctr::RouteFallbackReads,
        Ctr::ShardMergeNs,
    ];

    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Ctr::ReadsMapped => "reads_mapped",
            Ctr::SeedsTotal => "seeds_total",
            Ctr::ExtensionsTotal => "extensions_total",
            Ctr::CacheHits => "cache_hits",
            Ctr::CacheMisses => "cache_misses",
            Ctr::CacheEvictions => "cache_evictions",
            Ctr::CacheResizes => "cache_resizes",
            Ctr::CacheRehashedSlots => "cache_rehashed_slots",
            Ctr::PoolSteals => "pool_steals",
            Ctr::PoolBatches => "pool_batches",
            Ctr::PoolTasksCompleted => "pool_tasks_completed",
            Ctr::PoolIdleNs => "pool_idle_ns",
            Ctr::SweepPoints => "sweep_points",
            Ctr::StreamBatches => "stream_batches",
            Ctr::StreamReads => "stream_reads",
            Ctr::StreamProducerBlockedNs => "stream_producer_blocked_ns",
            Ctr::CacheHotHits => "cache_hot_hits",
            Ctr::CacheHotMisses => "cache_hot_misses",
            Ctr::CacheDecodesSaved => "cache_decodes_saved",
            Ctr::SimdBlocksWide => "simd_blocks_wide",
            Ctr::SimdLanesActive => "simd_lanes_active",
            Ctr::ExtendBatches => "extend_batches",
            Ctr::ExtendBatchAnchors => "extend_batch_anchors",
            Ctr::ExtendPrunedFrames => "extend_pruned_frames",
            Ctr::ServeJobsAccepted => "serve_jobs_accepted",
            Ctr::ServeJobsRejected => "serve_jobs_rejected",
            Ctr::ServeJobsCompleted => "serve_jobs_completed",
            Ctr::ServeJobsFailed => "serve_jobs_failed",
            Ctr::ServeGafBytes => "serve_gaf_bytes",
            Ctr::RouteShardsProbed => "route_shards_probed",
            Ctr::RouteReadsTotal => "route_reads_total",
            Ctr::RouteResidentReads => "route_resident_reads",
            Ctr::RouteFallbackReads => "route_fallback_reads",
            Ctr::ShardMergeNs => "shard_merge_ns",
        }
    }
}

/// Histograms over per-event magnitudes, bucketed by log2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Seeds found per read.
    SeedsPerRead = 0,
    /// Extensions produced per read.
    ExtensionsPerRead = 1,
    /// Reads per dispatched scheduler batch.
    BatchReads = 2,
    /// Tuning-sweep point makespans, in microseconds.
    SweepMakespanUs = 3,
    /// Reads per mapping chunk assembled by the streaming consumer.
    StreamChunkReads = 4,
    /// Server job latency (submit to `DONE`), in microseconds.
    ServeJobLatencyUs = 5,
    /// Time served jobs spent queued before their first chunk was
    /// dispatched, in microseconds.
    ServeQueueWaitUs = 6,
    /// Reads per served mapping job.
    ServeJobReads = 7,
    /// Shards probed per routed read (the routing fan-out distribution;
    /// its mass should sit far below the shard count).
    RouteFanout = 8,
}

impl Hist {
    /// Number of histograms.
    pub const COUNT: usize = 9;
    /// All histograms, in declaration order.
    pub const ALL: [Hist; Hist::COUNT] = [
        Hist::SeedsPerRead,
        Hist::ExtensionsPerRead,
        Hist::BatchReads,
        Hist::SweepMakespanUs,
        Hist::StreamChunkReads,
        Hist::ServeJobLatencyUs,
        Hist::ServeQueueWaitUs,
        Hist::ServeJobReads,
        Hist::RouteFanout,
    ];

    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Hist::SeedsPerRead => "seeds_per_read",
            Hist::ExtensionsPerRead => "extensions_per_read",
            Hist::BatchReads => "batch_reads",
            Hist::SweepMakespanUs => "sweep_makespan_us",
            Hist::StreamChunkReads => "stream_chunk_reads",
            Hist::ServeJobLatencyUs => "serve_job_latency_us",
            Hist::ServeQueueWaitUs => "serve_queue_wait_us",
            Hist::ServeJobReads => "serve_job_reads",
            Hist::RouteFanout => "route_fanout",
        }
    }
}

/// High-water marks merged by `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Deepest VG-style shared-queue occupancy observed.
    QueueDepthMax = 0,
    /// Largest worker count a run used.
    ThreadsMax = 1,
    /// Deepest streaming-ingestion queue occupancy observed (in batches).
    StreamQueueDepthMax = 2,
    /// Heap bytes frozen in the shared hot tier (one figure per run; the
    /// per-thread tables are counted by the cache heap accounting, not
    /// here).
    HotTierBytes = 3,
    /// Highest SIMD dispatch tier the extension kernel ran at (0 scalar,
    /// 1 SWAR, 2 AVX2 — [`mg-kernels`]' `SimdTier::as_index`).
    SimdDispatchTier = 4,
    /// Deepest server pending-job queue occupancy observed.
    ServePendingMax = 5,
    /// Most jobs the server executor interleaved at once.
    ServeActiveMax = 6,
}

impl Gauge {
    /// Number of gauges.
    pub const COUNT: usize = 7;
    /// All gauges, in declaration order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::QueueDepthMax,
        Gauge::ThreadsMax,
        Gauge::StreamQueueDepthMax,
        Gauge::HotTierBytes,
        Gauge::SimdDispatchTier,
        Gauge::ServePendingMax,
        Gauge::ServeActiveMax,
    ];

    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::QueueDepthMax => "queue_depth_max",
            Gauge::ThreadsMax => "threads_max",
            Gauge::StreamQueueDepthMax => "stream_queue_depth_max",
            Gauge::HotTierBytes => "hot_tier_bytes",
            Gauge::SimdDispatchTier => "simd_dispatch_tier",
            Gauge::ServePendingMax => "serve_pending_max",
            Gauge::ServeActiveMax => "serve_active_max",
        }
    }
}

/// Number of log2 buckets per histogram. Bucket 0 holds zeros; bucket `b`
/// (for `b >= 1`) holds values in `[2^(b-1), 2^b)`; the last bucket also
/// absorbs everything larger.
pub const HIST_BUCKETS: usize = 32;

/// Maps a value to its fixed log2 bucket.
///
/// ```
/// use mg_obs::{bucket_of, HIST_BUCKETS};
/// assert_eq!(bucket_of(0), 0);
/// assert_eq!(bucket_of(1), 1);
/// assert_eq!(bucket_of(2), 2);
/// assert_eq!(bucket_of(3), 2);
/// assert_eq!(bucket_of(4), 3);
/// assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
/// ```
#[inline]
pub fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Upper-bound estimate of the `p`-quantile (`0.0 < p <= 1.0`) of a
/// log2-bucketed histogram, given its raw bucket counts (the layout
/// produced by [`bucket_of`]): the inclusive upper edge of the first
/// bucket whose cumulative count reaches `ceil(p × total)`.
///
/// Returns 0 for an empty histogram (all buckets zero). Bucket 0 holds
/// zeros exactly, so the estimate is exact there; bucket `b >= 1` holds
/// `[2^(b-1), 2^b)` and reports `2^b - 1`, overshooting by less than 2×.
/// Slices longer than 64 buckets saturate to `u64::MAX` past the widest
/// representable edge. This is the single quantile definition shared by
/// [`Report::hist_quantile`], the server's always-on latency histogram,
/// and the smoke benches.
pub fn percentile(buckets: &[u64], p: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut cumulative = 0u64;
    for (b, n) in buckets.iter().enumerate() {
        cumulative += n;
        if cumulative >= rank {
            return match b {
                0 => 0,
                _ => 1u64.checked_shl(b as u32).map_or(u64::MAX, |edge| edge - 1),
            };
        }
    }
    u64::MAX
}

/// A merged (or mergeable) snapshot of every metric: plain arrays indexed
/// by the metric enums. This is both the per-shard storage and the
/// registry's accumulated state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    counters: [u64; Ctr::COUNT],
    stage_ns: [u64; Stage::COUNT],
    stage_hits: [u64; Stage::COUNT],
    hist_buckets: [[u64; HIST_BUCKETS]; Hist::COUNT],
    hist_counts: [u64; Hist::COUNT],
    hist_sums: [u64; Hist::COUNT],
    gauges: [u64; Gauge::COUNT],
}

impl Default for Report {
    fn default() -> Self {
        Report {
            counters: [0; Ctr::COUNT],
            stage_ns: [0; Stage::COUNT],
            stage_hits: [0; Stage::COUNT],
            hist_buckets: [[0; HIST_BUCKETS]; Hist::COUNT],
            hist_counts: [0; Hist::COUNT],
            hist_sums: [0; Hist::COUNT],
            gauges: [0; Gauge::COUNT],
        }
    }
}

impl Report {
    /// Value of a counter.
    #[inline]
    pub fn counter(&self, c: Ctr) -> u64 {
        self.counters[c as usize]
    }

    /// Accumulated nanoseconds spent in a stage.
    #[inline]
    pub fn stage_ns(&self, s: Stage) -> u64 {
        self.stage_ns[s as usize]
    }

    /// Number of span records for a stage.
    #[inline]
    pub fn stage_count(&self, s: Stage) -> u64 {
        self.stage_hits[s as usize]
    }

    /// Number of observations recorded into a histogram.
    #[inline]
    pub fn hist_count(&self, h: Hist) -> u64 {
        self.hist_counts[h as usize]
    }

    /// Sum of all observations recorded into a histogram.
    #[inline]
    pub fn hist_sum(&self, h: Hist) -> u64 {
        self.hist_sums[h as usize]
    }

    /// The raw log2 bucket array of a histogram.
    #[inline]
    pub fn hist_buckets(&self, h: Hist) -> &[u64; HIST_BUCKETS] {
        &self.hist_buckets[h as usize]
    }

    /// Value of a max-merged gauge.
    #[inline]
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 < q <= 1.0`) of a
    /// histogram, from its log2 buckets: the inclusive upper edge of the
    /// first bucket whose cumulative count reaches `ceil(q × count)`.
    /// Returns 0 for an empty histogram. The estimate is exact for values
    /// 0 and 1 and otherwise overshoots by less than 2× — tight enough for
    /// the p50/p99 latency figures the server's `STATS` reply exports.
    pub fn hist_quantile(&self, h: Hist, q: f64) -> u64 {
        percentile(&self.hist_buckets[h as usize], q)
    }

    /// The per-epoch view the adaptive controller consumes: everything
    /// accumulated since `earlier` (an older snapshot of the same
    /// registry). Counters, stage spans, and histograms subtract
    /// (saturating, so a snapshot from a different registry can't
    /// underflow); gauges are high-water levels, not rates, so the delta
    /// carries the *current* values unchanged — callers that want
    /// per-epoch high-waters reset the underlying gauge at rollover
    /// (see `AdmissionQueue::epoch_rollover` in mg-sched).
    pub fn delta(&self, earlier: &Report) -> Report {
        let mut d = Report::default();
        for i in 0..Ctr::COUNT {
            d.counters[i] = self.counters[i].saturating_sub(earlier.counters[i]);
        }
        for i in 0..Stage::COUNT {
            d.stage_ns[i] = self.stage_ns[i].saturating_sub(earlier.stage_ns[i]);
            d.stage_hits[i] = self.stage_hits[i].saturating_sub(earlier.stage_hits[i]);
        }
        for i in 0..Hist::COUNT {
            for b in 0..HIST_BUCKETS {
                d.hist_buckets[i][b] =
                    self.hist_buckets[i][b].saturating_sub(earlier.hist_buckets[i][b]);
            }
            d.hist_counts[i] = self.hist_counts[i].saturating_sub(earlier.hist_counts[i]);
            d.hist_sums[i] = self.hist_sums[i].saturating_sub(earlier.hist_sums[i]);
        }
        d.gauges = self.gauges;
        d
    }

    #[inline]
    fn inc(&mut self, c: Ctr, n: u64) {
        self.counters[c as usize] += n;
    }

    #[inline]
    fn span(&mut self, s: Stage, ns: u64) {
        self.stage_ns[s as usize] += ns;
        self.stage_hits[s as usize] += 1;
    }

    #[inline]
    fn observe(&mut self, h: Hist, v: u64) {
        self.hist_buckets[h as usize][bucket_of(v)] += 1;
        self.hist_counts[h as usize] += 1;
        self.hist_sums[h as usize] += v;
    }

    #[inline]
    fn gauge_max(&mut self, g: Gauge, v: u64) {
        let slot = &mut self.gauges[g as usize];
        *slot = (*slot).max(v);
    }

    /// Adds another report into this one (counters/spans/histograms sum,
    /// gauges max-merge).
    pub fn merge(&mut self, other: &Report) {
        for i in 0..Ctr::COUNT {
            self.counters[i] += other.counters[i];
        }
        for i in 0..Stage::COUNT {
            self.stage_ns[i] += other.stage_ns[i];
            self.stage_hits[i] += other.stage_hits[i];
        }
        for i in 0..Hist::COUNT {
            for b in 0..HIST_BUCKETS {
                self.hist_buckets[i][b] += other.hist_buckets[i][b];
            }
            self.hist_counts[i] += other.hist_counts[i];
            self.hist_sums[i] += other.hist_sums[i];
        }
        for i in 0..Gauge::COUNT {
            self.gauges[i] = self.gauges[i].max(other.gauges[i]);
        }
    }

    /// Renders the report as a stable, hand-rolled JSON document (the
    /// workspace deliberately has no serde; see DESIGN.md).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"stages\": {");
        for (i, s) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"ns\": {}, \"count\": {}}}",
                s.name(),
                self.stage_ns(*s),
                self.stage_count(*s)
            ));
        }
        out.push_str("\n  },\n  \"counters\": {");
        for (i, c) in Ctr::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", c.name(), self.counter(*c)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in Hist::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> =
                self.hist_buckets(*h).iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                h.name(),
                self.hist_count(*h),
                self.hist_sum(*h),
                buckets.join(", ")
            ));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, g) in Gauge::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", g.name(), self.gauge(*g)));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders the report as `kind,name,value` CSV rows (header included).
    /// Histogram buckets appear as `hist_bucket,<name>:<bucket>,<count>`
    /// rows for non-empty buckets only.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,value\n");
        for s in Stage::ALL {
            out.push_str(&format!("stage_ns,{},{}\n", s.name(), self.stage_ns(s)));
            out.push_str(&format!("stage_count,{},{}\n", s.name(), self.stage_count(s)));
        }
        for c in Ctr::ALL {
            out.push_str(&format!("counter,{},{}\n", c.name(), self.counter(c)));
        }
        for h in Hist::ALL {
            out.push_str(&format!("hist_count,{},{}\n", h.name(), self.hist_count(h)));
            out.push_str(&format!("hist_sum,{},{}\n", h.name(), self.hist_sum(h)));
            for (b, n) in self.hist_buckets(h).iter().enumerate() {
                if *n > 0 {
                    out.push_str(&format!("hist_bucket,{}:{b},{n}\n", h.name()));
                }
            }
        }
        for g in Gauge::ALL {
            out.push_str(&format!("gauge,{},{}\n", g.name(), self.gauge(g)));
        }
        out
    }
}

/// A timestamp captured by [`ObsShard::now`]. Carries `None` when the shard
/// is disabled so the matching [`ObsShard::stage`] call is free.
#[derive(Debug, Clone, Copy)]
pub struct ObsInstant(#[cfg_attr(not(feature = "enabled"), allow(dead_code))] Option<Instant>);

impl ObsInstant {
    /// A disabled timestamp; `stage()` with it records nothing.
    pub const DISABLED: ObsInstant = ObsInstant(None);
}

/// Per-worker metric storage: plain arrays, no synchronization, recorded
/// into by `&mut` on the hot path and merged into the [`Metrics`] registry
/// once at worker finish.
#[derive(Debug, Clone, Default)]
pub struct ObsShard {
    // Never read when the `enabled` feature is off: every recording body
    // collapses to nothing, which is exactly the point.
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    on: bool,
    rep: Report,
}

// With the `enabled` feature off, every body below collapses to nothing and
// the compiler removes the shard entirely from release code.
impl ObsShard {
    /// A shard that records nothing; handy for uninstrumented call paths.
    #[inline]
    pub fn disabled() -> ObsShard {
        ObsShard::default()
    }

    /// Whether this shard is recording.
    #[inline(always)]
    pub fn is_on(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.on
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// Bumps a counter by 1.
    #[inline(always)]
    pub fn inc(&mut self, c: Ctr) {
        self.add(c, 1);
    }

    /// Bumps a counter by `n`.
    #[inline(always)]
    pub fn add(&mut self, _c: Ctr, _n: u64) {
        #[cfg(feature = "enabled")]
        if self.on {
            self.rep.inc(_c, _n);
        }
    }

    /// Records a value into a histogram.
    #[inline(always)]
    pub fn observe(&mut self, _h: Hist, _v: u64) {
        #[cfg(feature = "enabled")]
        if self.on {
            self.rep.observe(_h, _v);
        }
    }

    /// Raises a gauge's high-water mark.
    #[inline(always)]
    pub fn gauge_max(&mut self, _g: Gauge, _v: u64) {
        #[cfg(feature = "enabled")]
        if self.on {
            self.rep.gauge_max(_g, _v);
        }
    }

    /// Captures a span start. Returns [`ObsInstant::DISABLED`] (no clock
    /// read) when the shard is off.
    #[inline(always)]
    pub fn now(&self) -> ObsInstant {
        #[cfg(feature = "enabled")]
        if self.on {
            return ObsInstant(Some(Instant::now()));
        }
        ObsInstant::DISABLED
    }

    /// Closes a span started by [`ObsShard::now`], attributing the elapsed
    /// time to `stage`.
    #[inline(always)]
    pub fn stage(&mut self, _s: Stage, _t: ObsInstant) {
        #[cfg(feature = "enabled")]
        if let Some(t0) = _t.0 {
            if self.on {
                self.rep.span(_s, t0.elapsed().as_nanos() as u64);
            }
        }
    }

    /// This shard's accumulated data.
    #[inline]
    pub fn report(&self) -> &Report {
        &self.rep
    }
}

/// The process-level metrics registry.
///
/// Hot-path recording happens in [`ObsShard`]s; the registry only sees a
/// mutex-protected merge per worker (plus low-frequency scheduler events
/// recorded directly through [`Metrics::add`] and friends). Locking is
/// poison-tolerant: a worker panicking mid-run cannot wedge the registry,
/// so partial metrics stay readable after a failed run.
#[derive(Debug, Default)]
pub struct Metrics {
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    on: bool,
    merged: Mutex<Report>,
}

impl Metrics {
    /// A registry with recording enabled (subject to the `enabled` feature).
    pub fn new() -> Metrics {
        Metrics {
            on: cfg!(feature = "enabled"),
            merged: Mutex::new(Report::default()),
        }
    }

    /// A registry with the runtime switch off: shards it hands out record
    /// nothing and `absorb`/`add` are no-ops.
    pub fn off() -> Metrics {
        Metrics {
            on: false,
            merged: Mutex::new(Report::default()),
        }
    }

    /// A shared disabled registry for uninstrumented call paths, so they
    /// don't construct a fresh `Mutex<Report>` per run.
    pub fn off_ref() -> &'static Metrics {
        static OFF: std::sync::OnceLock<Metrics> = std::sync::OnceLock::new();
        OFF.get_or_init(Metrics::off)
    }

    /// Checks out a shard wrapped in a guard that merges it back into this
    /// registry on drop — including during a panic unwind, so a dying
    /// worker neither poisons the registry nor loses its shard.
    pub fn guard(&self) -> ShardGuard<'_> {
        ShardGuard {
            metrics: self,
            shard: self.shard(),
        }
    }

    /// Whether recording is active.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.on
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// Checks out a worker-local shard carrying this registry's switch.
    pub fn shard(&self) -> ObsShard {
        ObsShard {
            on: self.enabled(),
            rep: Report::default(),
        }
    }

    fn with_merged(&self, f: impl FnOnce(&mut Report)) {
        let mut guard = self.merged.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard);
    }

    /// Merges a finished worker's shard into the registry.
    pub fn absorb(&self, shard: &ObsShard) {
        if self.enabled() && shard.is_on() {
            self.with_merged(|m| m.merge(&shard.rep));
        }
    }

    /// Registry-level counter bump for cold (per-batch, not per-read)
    /// events recorded from `&self` contexts such as scheduler drivers.
    #[inline]
    pub fn add(&self, c: Ctr, n: u64) {
        if self.enabled() {
            self.with_merged(|m| m.inc(c, n));
        }
    }

    /// Registry-level histogram observation (cold paths only).
    #[inline]
    pub fn observe(&self, h: Hist, v: u64) {
        if self.enabled() {
            self.with_merged(|m| m.observe(h, v));
        }
    }

    /// Registry-level gauge high-water update (cold paths only).
    #[inline]
    pub fn gauge_max(&self, g: Gauge, v: u64) {
        if self.enabled() {
            self.with_merged(|m| m.gauge_max(g, v));
        }
    }

    /// Registry-level span record (cold paths only).
    #[inline]
    pub fn span(&self, s: Stage, ns: u64) {
        if self.enabled() {
            self.with_merged(|m| m.span(s, ns));
        }
    }

    /// Snapshot of everything merged so far.
    pub fn report(&self) -> Report {
        self.merged
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// An [`ObsShard`] that merges itself into its registry when dropped. Used
/// by workers without an explicit finish hook (e.g. the parent pipeline's
/// scoped threads): recording goes through `Deref`/`DerefMut`, and the
/// merge happens even if the worker unwinds.
#[derive(Debug)]
pub struct ShardGuard<'m> {
    metrics: &'m Metrics,
    shard: ObsShard,
}

impl std::ops::Deref for ShardGuard<'_> {
    type Target = ObsShard;

    fn deref(&self) -> &ObsShard {
        &self.shard
    }
}

impl std::ops::DerefMut for ShardGuard<'_> {
    fn deref_mut(&mut self) -> &mut ObsShard {
        &mut self.shard
    }
}

impl Drop for ShardGuard<'_> {
    fn drop(&mut self) {
        self.metrics.absorb(&self.shard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(1 << 40), HIST_BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn shard_records_and_registry_merges() {
        let metrics = Metrics::new();
        let mut a = metrics.shard();
        let mut b = metrics.shard();
        a.inc(Ctr::ReadsMapped);
        a.add(Ctr::CacheHits, 10);
        a.observe(Hist::SeedsPerRead, 5);
        a.gauge_max(Gauge::QueueDepthMax, 3);
        b.add(Ctr::ReadsMapped, 2);
        b.observe(Hist::SeedsPerRead, 0);
        b.gauge_max(Gauge::QueueDepthMax, 7);
        metrics.absorb(&a);
        metrics.absorb(&b);
        let rep = metrics.report();
        assert_eq!(rep.counter(Ctr::ReadsMapped), 3);
        assert_eq!(rep.counter(Ctr::CacheHits), 10);
        assert_eq!(rep.hist_count(Hist::SeedsPerRead), 2);
        assert_eq!(rep.hist_sum(Hist::SeedsPerRead), 5);
        assert_eq!(rep.hist_buckets(Hist::SeedsPerRead)[bucket_of(5)], 1);
        assert_eq!(rep.hist_buckets(Hist::SeedsPerRead)[0], 1);
        assert_eq!(rep.gauge(Gauge::QueueDepthMax), 7);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_accumulate() {
        let metrics = Metrics::new();
        let mut s = metrics.shard();
        for _ in 0..3 {
            let t = s.now();
            s.stage(Stage::Clustering, t);
        }
        metrics.absorb(&s);
        let rep = metrics.report();
        assert_eq!(rep.stage_count(Stage::Clustering), 3);
        assert_eq!(rep.stage_count(Stage::Extension), 0);
    }

    #[test]
    fn off_registry_records_nothing() {
        let metrics = Metrics::off();
        let mut s = metrics.shard();
        assert!(!s.is_on());
        s.inc(Ctr::ReadsMapped);
        s.observe(Hist::SeedsPerRead, 9);
        let t = s.now();
        s.stage(Stage::Extension, t);
        metrics.absorb(&s);
        metrics.add(Ctr::PoolSteals, 5);
        let rep = metrics.report();
        assert_eq!(rep, Report::default());
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn feature_off_is_inert_even_when_requested_on() {
        let metrics = Metrics::new();
        assert!(!metrics.enabled());
        let mut s = metrics.shard();
        s.inc(Ctr::ReadsMapped);
        metrics.absorb(&s);
        assert_eq!(metrics.report(), Report::default());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn registry_cold_path_records() {
        let metrics = Metrics::new();
        metrics.add(Ctr::PoolSteals, 2);
        metrics.observe(Hist::BatchReads, 512);
        metrics.gauge_max(Gauge::ThreadsMax, 8);
        metrics.span(Stage::Seeding, 1_000);
        let rep = metrics.report();
        assert_eq!(rep.counter(Ctr::PoolSteals), 2);
        assert_eq!(rep.hist_count(Hist::BatchReads), 1);
        assert_eq!(rep.gauge(Gauge::ThreadsMax), 8);
        assert_eq!(rep.stage_ns(Stage::Seeding), 1_000);
        assert_eq!(rep.stage_count(Stage::Seeding), 1);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn absorb_from_panicking_thread_still_lands() {
        use std::sync::Arc;
        let metrics = Arc::new(Metrics::new());
        let m = Arc::clone(&metrics);
        let handle = std::thread::spawn(move || {
            let mut s = m.shard();
            s.add(Ctr::ReadsMapped, 7);
            m.absorb(&s);
            panic!("worker dies after merging");
        });
        assert!(handle.join().is_err());
        assert_eq!(metrics.report().counter(Ctr::ReadsMapped), 7);
        // The registry stays usable after the panic.
        metrics.add(Ctr::ReadsMapped, 1);
        assert_eq!(metrics.report().counter(Ctr::ReadsMapped), 8);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn json_export_is_well_formed_and_complete() {
        let metrics = Metrics::new();
        let mut s = metrics.shard();
        s.add(Ctr::CacheHits, 42);
        s.observe(Hist::SeedsPerRead, 3);
        metrics.absorb(&s);
        let json = metrics.report().to_json();
        for c in Ctr::ALL {
            assert!(json.contains(&format!("\"{}\"", c.name())), "missing {}", c.name());
        }
        for st in Stage::ALL {
            assert!(json.contains(&format!("\"{}\"", st.name())));
        }
        assert!(json.contains("\"cache_hits\": 42"));
        // Balanced braces/brackets: a cheap structural sanity check in lieu
        // of a JSON parser (the workspace has none by design).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn csv_export_has_header_and_rows() {
        let metrics = Metrics::new();
        let mut s = metrics.shard();
        s.add(Ctr::CacheMisses, 9);
        s.observe(Hist::BatchReads, 100);
        metrics.absorb(&s);
        let csv = metrics.report().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("kind,name,value"));
        assert!(csv.contains("counter,cache_misses,9\n"));
        assert!(csv.contains("hist_count,batch_reads,1\n"));
        assert!(csv.contains(&format!("hist_bucket,batch_reads:{},1\n", bucket_of(100))));
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 3, "bad row: {line}");
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn shard_guard_merges_on_drop_even_through_panic() {
        use std::sync::Arc;
        let metrics = Arc::new(Metrics::new());
        {
            let mut g = metrics.guard();
            g.add(Ctr::ReadsMapped, 3);
        }
        assert_eq!(metrics.report().counter(Ctr::ReadsMapped), 3);
        let m = Arc::clone(&metrics);
        let handle = std::thread::spawn(move || {
            let mut g = m.guard();
            g.add(Ctr::ReadsMapped, 4);
            panic!("worker dies mid-run");
        });
        assert!(handle.join().is_err());
        assert_eq!(metrics.report().counter(Ctr::ReadsMapped), 7);
    }

    #[test]
    fn off_ref_is_disabled_and_shared() {
        let a = Metrics::off_ref();
        assert!(!a.enabled());
        a.add(Ctr::ReadsMapped, 1);
        assert_eq!(a.report(), Report::default());
        assert!(std::ptr::eq(a, Metrics::off_ref()));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn hist_quantile_tracks_bucket_edges() {
        let metrics = Metrics::new();
        let mut s = metrics.shard();
        // 90 small values and 10 large ones: p50 lands in the small
        // bucket, p99 in the large one.
        for _ in 0..90 {
            s.observe(Hist::ServeJobLatencyUs, 3);
        }
        for _ in 0..10 {
            s.observe(Hist::ServeJobLatencyUs, 1000);
        }
        metrics.absorb(&s);
        let rep = metrics.report();
        let p50 = rep.hist_quantile(Hist::ServeJobLatencyUs, 0.50);
        let p99 = rep.hist_quantile(Hist::ServeJobLatencyUs, 0.99);
        // 3 lives in [2, 4) -> upper edge 3; 1000 in [512, 1024) -> 1023.
        assert_eq!(p50, 3);
        assert_eq!(p99, 1023);
        assert_eq!(rep.hist_quantile(Hist::ServeQueueWaitUs, 0.99), 0);
        // All-zero observations quantile to exactly zero.
        let mut z = metrics.shard();
        z.observe(Hist::ServeQueueWaitUs, 0);
        metrics.absorb(&z);
        assert_eq!(metrics.report().hist_quantile(Hist::ServeQueueWaitUs, 0.5), 0);
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty histogram: every quantile is 0.
        assert_eq!(percentile(&[0u64; HIST_BUCKETS], 0.5), 0);
        assert_eq!(percentile(&[], 0.99), 0);
        // Single populated bucket: every quantile reports its upper edge.
        let mut one = [0u64; HIST_BUCKETS];
        one[bucket_of(5)] = 17;
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&one, q), 7);
        }
        // Bucket 0 (zeros) is exact.
        let mut zeros = [0u64; HIST_BUCKETS];
        zeros[0] = 3;
        assert_eq!(percentile(&zeros, 0.99), 0);
        // Saturated top bucket: the last bucket absorbs everything large,
        // so its edge is the widest representable: 2^31 - 1 for 32 buckets.
        let mut top = [0u64; HIST_BUCKETS];
        top[HIST_BUCKETS - 1] = 100;
        assert_eq!(percentile(&top, 0.5), (1u64 << (HIST_BUCKETS - 1)) - 1);
        // A hypothetical 65-bucket slice saturates instead of overflowing.
        let mut wide = [0u64; 65];
        wide[64] = 1;
        assert_eq!(percentile(&wide, 1.0), u64::MAX);
        // q out of range clamps rather than panicking.
        assert_eq!(percentile(&one, -1.0), 7);
        assert_eq!(percentile(&one, 2.0), 7);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn hist_quantile_matches_percentile_helper() {
        let metrics = Metrics::new();
        let mut s = metrics.shard();
        for v in [0, 1, 3, 9, 1000, 1u64 << 40] {
            s.observe(Hist::ServeJobLatencyUs, v);
        }
        metrics.absorb(&s);
        let rep = metrics.report();
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(
                rep.hist_quantile(Hist::ServeJobLatencyUs, q),
                percentile(rep.hist_buckets(Hist::ServeJobLatencyUs), q)
            );
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn delta_subtracts_flows_and_carries_gauge_levels() {
        let metrics = Metrics::new();
        metrics.add(Ctr::ReadsMapped, 10);
        metrics.observe(Hist::BatchReads, 100);
        metrics.span(Stage::Extension, 500);
        metrics.gauge_max(Gauge::QueueDepthMax, 4);
        let epoch0 = metrics.report();
        metrics.add(Ctr::ReadsMapped, 7);
        metrics.observe(Hist::BatchReads, 100);
        metrics.observe(Hist::BatchReads, 3);
        metrics.span(Stage::Extension, 250);
        metrics.gauge_max(Gauge::QueueDepthMax, 9);
        let epoch1 = metrics.report();
        let d = epoch1.delta(&epoch0);
        assert_eq!(d.counter(Ctr::ReadsMapped), 7);
        assert_eq!(d.hist_count(Hist::BatchReads), 2);
        assert_eq!(d.hist_sum(Hist::BatchReads), 103);
        assert_eq!(d.hist_buckets(Hist::BatchReads)[bucket_of(100)], 1);
        assert_eq!(d.stage_ns(Stage::Extension), 250);
        assert_eq!(d.stage_count(Stage::Extension), 1);
        // Gauges are levels: the delta reports the current high-water.
        assert_eq!(d.gauge(Gauge::QueueDepthMax), 9);
        // Deltas never underflow, even against a foreign snapshot.
        let mut foreign = Report::default();
        foreign.inc(Ctr::ReadsMapped, 1_000_000);
        assert_eq!(epoch1.delta(&foreign).counter(Ctr::ReadsMapped), 0);
        // Delta against self is empty flows.
        let zero = epoch1.delta(&epoch1);
        assert_eq!(zero.counter(Ctr::ReadsMapped), 0);
        assert_eq!(zero.hist_count(Hist::BatchReads), 0);
    }

    #[test]
    fn merge_is_associative_on_counters() {
        let mut a = Report::default();
        let mut b = Report::default();
        a.inc(Ctr::ReadsMapped, 1);
        a.gauge_max(Gauge::ThreadsMax, 2);
        b.inc(Ctr::ReadsMapped, 2);
        b.gauge_max(Gauge::ThreadsMax, 5);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter(Ctr::ReadsMapped), 3);
        assert_eq!(ab.gauge(Gauge::ThreadsMax), 5);
    }
}
