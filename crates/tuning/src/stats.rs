//! Statistics for the evaluation: geometric means and one-way ANOVA.
//!
//! The paper reports geometric-mean speedups (§VII-B) and an Analysis of
//! Variance attributing makespan variation to each tuning parameter, with
//! p-values from the F distribution. Both are implemented here from
//! scratch (log-gamma via Lanczos, the regularized incomplete beta via
//! Lentz's continued fraction).

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean needs positive values"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    // The canonical published Lanczos coefficients, kept digit-for-digit.
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Numerical Recipes style).
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry that converges fastest.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - ln_gamma_swap(a, b, x)
    }
}

fn ln_gamma_swap(a: f64, b: f64, x: f64) -> f64 {
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    ln_front.exp() * beta_cf(b, a, 1.0 - x) / b
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Right-tail p-value of the F distribution: `P(F(d1, d2) > f)`.
pub fn f_distribution_p_value(f: f64, d1: f64, d2: f64) -> f64 {
    if f <= 0.0 {
        return 1.0;
    }
    // P(F > f) = I_{d2 / (d2 + d1 f)}(d2/2, d1/2).
    incomplete_beta(d2 / 2.0, d1 / 2.0, d2 / (d2 + d1 * f)).clamp(0.0, 1.0)
}

/// The outcome of a one-way ANOVA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anova {
    /// The F statistic (between-group variance over within-group variance).
    pub f_statistic: f64,
    /// Between-group degrees of freedom (groups − 1).
    pub df_between: f64,
    /// Within-group degrees of freedom (N − groups).
    pub df_within: f64,
    /// Right-tail p-value.
    pub p_value: f64,
}

impl Anova {
    /// Whether the effect is significant at the 0.05 level (the paper's
    /// criterion: capacity p = 0.047 significant; batch 0.878 and scheduler
    /// 0.859 not).
    pub fn is_significant(&self) -> bool {
        self.p_value < 0.05
    }
}

/// One-way ANOVA over `groups` of observations.
///
/// Returns `None` when fewer than two groups have data or every
/// observation is identical (no variance to attribute).
pub fn one_way_anova(groups: &[Vec<f64>]) -> Option<Anova> {
    let groups: Vec<&Vec<f64>> = groups.iter().filter(|g| !g.is_empty()).collect();
    let k = groups.len();
    let n: usize = groups.iter().map(|g| g.len()).sum();
    if k < 2 || n <= k {
        return None;
    }
    let grand_mean: f64 = groups.iter().flat_map(|g| g.iter()).sum::<f64>() / n as f64;
    let ss_between: f64 = groups
        .iter()
        .map(|g| {
            let mean: f64 = g.iter().sum::<f64>() / g.len() as f64;
            g.len() as f64 * (mean - grand_mean).powi(2)
        })
        .sum();
    let ss_within: f64 = groups
        .iter()
        .map(|g| {
            let mean: f64 = g.iter().sum::<f64>() / g.len() as f64;
            g.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
        })
        .sum();
    let df_between = (k - 1) as f64;
    let df_within = (n - k) as f64;
    let noise_floor = f64::EPSILON * grand_mean.abs().max(1.0);
    if ss_within <= noise_floor {
        // No within-group variance: identical data everywhere is
        // unanalysable, but distinct group means with zero noise are an
        // infinitely significant effect.
        if ss_between <= noise_floor {
            return None;
        }
        return Some(Anova {
            f_statistic: f64::INFINITY,
            df_between,
            df_within,
            p_value: 0.0,
        });
    }
    let f = (ss_between / df_between) / (ss_within / df_within);
    Some(Anova {
        f_statistic: f,
        df_between,
        df_within,
        p_value: f_distribution_p_value(f, df_between, df_within),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 8.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Gamma(1) = 1, Gamma(2) = 1, Gamma(5) = 24, Gamma(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_reference_values() {
        // I_x(1, 1) = x (uniform CDF).
        for x in [0.1, 0.5, 0.9] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-10, "x={x}");
        }
        // I_x(2, 2) = x^2 (3 - 2x).
        for x in [0.2, 0.5, 0.8] {
            let expect = x * x * (3.0 - 2.0 * x);
            assert!((incomplete_beta(2.0, 2.0, x) - expect).abs() < 1e-10);
        }
        assert_eq!(incomplete_beta(3.0, 4.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(3.0, 4.0, 1.0), 1.0);
    }

    #[test]
    fn f_p_value_reference_values() {
        // From standard F tables: P(F(1, 10) > 4.96) ≈ 0.050.
        let p = f_distribution_p_value(4.96, 1.0, 10.0);
        assert!((p - 0.050).abs() < 0.002, "p={p}");
        // P(F(2, 20) > 3.49) ≈ 0.050.
        let p = f_distribution_p_value(3.49, 2.0, 20.0);
        assert!((p - 0.050).abs() < 0.002, "p={p}");
        // Degenerate cases.
        assert_eq!(f_distribution_p_value(0.0, 3.0, 5.0), 1.0);
        assert!(f_distribution_p_value(1000.0, 3.0, 50.0) < 1e-6);
    }

    #[test]
    fn anova_detects_group_effect() {
        // Clearly separated groups.
        let groups = vec![
            vec![10.0, 10.5, 9.8, 10.2],
            vec![20.1, 19.8, 20.4, 20.0],
            vec![30.2, 29.9, 30.1, 30.3],
        ];
        let anova = one_way_anova(&groups).unwrap();
        assert!(anova.f_statistic > 100.0);
        assert!(anova.p_value < 1e-6);
        assert!(anova.is_significant());
    }

    #[test]
    fn anova_sees_no_effect_in_noise() {
        // Same distribution in every group.
        let groups = vec![
            vec![10.0, 11.0, 9.0, 10.5, 9.5],
            vec![10.2, 10.8, 9.2, 10.4, 9.6],
            vec![9.9, 10.9, 9.1, 10.6, 9.4],
        ];
        let anova = one_way_anova(&groups).unwrap();
        assert!(!anova.is_significant(), "p={}", anova.p_value);
    }

    #[test]
    fn anova_degenerate_cases() {
        assert!(one_way_anova(&[]).is_none());
        assert!(one_way_anova(&[vec![1.0, 2.0]]).is_none());
        // Zero variance everywhere: unanalysable.
        assert!(one_way_anova(&[vec![1.0, 1.0], vec![1.0, 1.0]]).is_none());
        // Zero within-group variance but distinct means: infinitely
        // significant, not None.
        let separated = one_way_anova(&[vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        assert!(separated.f_statistic.is_infinite());
        assert_eq!(separated.p_value, 0.0);
        assert!(separated.is_significant());
        // Empty groups are ignored.
        let a = one_way_anova(&[vec![1.0, 2.0], vec![], vec![5.0, 6.0]]).unwrap();
        assert_eq!(a.df_between, 1.0);
    }

    proptest! {
        #[test]
        fn prop_incomplete_beta_is_cdf(a in 0.5f64..20.0, b in 0.5f64..20.0, x1 in 0.0f64..1.0, x2 in 0.0f64..1.0) {
            let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            let ilo = incomplete_beta(a, b, lo);
            let ihi = incomplete_beta(a, b, hi);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&ilo));
            prop_assert!(ihi + 1e-9 >= ilo, "monotone: I({lo})={ilo} I({hi})={ihi}");
        }

        #[test]
        fn prop_geomean_between_min_and_max(values in proptest::collection::vec(0.01f64..1000.0, 1..30)) {
            let g = geometric_mean(&values);
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(0.0, f64::max);
            prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
        }

        #[test]
        fn prop_f_p_value_decreases_in_f(d1 in 1.0f64..10.0, d2 in 2.0f64..50.0, f1 in 0.01f64..10.0, f2 in 0.01f64..10.0) {
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            prop_assert!(f_distribution_p_value(hi, d1, d2) <= f_distribution_p_value(lo, d1, d2) + 1e-9);
        }
    }
}
