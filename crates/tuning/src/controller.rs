//! Online adaptive tuning: a closed-loop controller over the live knobs.
//!
//! The offline sweep ([`crate::sweep`]) finds the throughput optimum of the
//! parameter space by measuring every point; this module finds it *while
//! serving*, from the default configuration, using only the per-epoch
//! deltas of signals mg-obs already collects. The controller is a guarded
//! coordinate-descent hill climber:
//!
//! - **Epochs.** The caller slices time into epochs (a fixed number of
//!   executor chunks, or one batch pass), computes the [`mg_obs::Report`]
//!   delta and wall time for the epoch, and feeds an [`EpochStats`] to
//!   [`Controller::observe_epoch`]. The returned knobs apply from the next
//!   chunk boundary — never mid-chunk — so every knob the controller moves
//!   (`batch_size`, `chunk_reads`, `cache_capacity`, `hot_tier_budget`) is
//!   one the pipeline already proves result-invariant, and GAF output stays
//!   byte-identical to a fixed-knob run.
//! - **Hill climbing with hysteresis.** One axis moves at a time, by one
//!   guarded multiplicative step (×2 / ÷2 within bounds). A trial step is
//!   kept only if throughput improves by at least [`ControllerConfig::
//!   hysteresis`] relative to the re-measured baseline; otherwise the knobs
//!   revert and the next axis is tried. A noisy epoch therefore costs at
//!   most one reverted probe, and a knob can never oscillate faster than
//!   the accept threshold allows.
//! - **Noise guards.** Epochs with fewer than [`ControllerConfig::
//!   min_reads`] reads are ignored outright (a burst gap is not a signal),
//!   and after a full sweep of axes without an accepted move the controller
//!   holds the current point for [`ControllerConfig::hold_epochs`] epochs
//!   before re-probing, so a converged server spends almost all of its time
//!   at the optimum rather than probing around it.
//! - **Signal-directed probes.** The mg-obs deltas pick each axis's first
//!   probe direction: worker idle time steers `batch_size`, admission
//!   pending high-water steers the in-flight window, the private and hot
//!   cache hit rates steer the two cache budgets. The *accept* decision is
//!   always measured throughput — hints only order the search.
//!
//! The controller is pure and deterministic: identical `EpochStats`
//! sequences produce identical knob trajectories (the simulation tests
//! below replay seeded synthetic load profiles and assert exactly that).

use mg_obs::{Ctr, Gauge, Report, Stage};
use mg_sched::{effective_chunk_reads, AdmissionStats};

/// The live-tunable knobs the controller drives.
///
/// All four are result-invariant: they move work between batches, chunks
/// and cache tiers without changing any per-read outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnobState {
    /// Reads handed to a pool worker at a time.
    pub batch_size: usize,
    /// Reads per executor chunk — the in-flight window between knob
    /// application points.
    pub chunk_reads: usize,
    /// Initial per-thread CachedGBWT capacity.
    pub cache_capacity: usize,
    /// Shared pre-decoded hot-tier budget in records (0 = disabled).
    pub hot_tier_budget: usize,
}

impl KnobState {
    /// The serve defaults: Giraffe's batch/capacity/hot-tier plus the
    /// derived chunk window for the given thread count.
    pub fn default_for(threads: usize) -> KnobState {
        KnobState {
            batch_size: 512,
            chunk_reads: effective_chunk_reads(0, threads, 512),
            cache_capacity: 256,
            hot_tier_budget: 256,
        }
    }
}

impl std::fmt::Display for KnobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bs{}/cr{}/cc{}/ht{}",
            self.batch_size, self.chunk_reads, self.cache_capacity, self.hot_tier_budget
        )
    }
}

/// Per-knob `[min, max]` guard rails for the multiplicative steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnobBounds {
    /// Batch size range (powers of two inside it are reachable).
    pub batch: (usize, usize),
    /// Executor chunk window range.
    pub chunk: (usize, usize),
    /// Private cache capacity range (≤ 4096 after Figure 6).
    pub cache: (usize, usize),
    /// Hot-tier budget range; a `min` of 0 lets the controller disable
    /// the tier entirely (halving 1 → 0).
    pub hot: (usize, usize),
}

impl Default for KnobBounds {
    fn default() -> Self {
        KnobBounds {
            batch: (64, 2048),
            chunk: (64, 1 << 16),
            cache: (64, 4096),
            hot: (0, 4096),
        }
    }
}

/// Controller tuning — thresholds, guards, and which axes may move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Minimum relative throughput gain for a probe step to be kept
    /// (e.g. `0.03` = 3%). This is the hysteresis band: anything inside
    /// it reads as noise and the knobs revert.
    pub hysteresis: f64,
    /// Epochs below this many reads are ignored (noise guard for bursty
    /// load gaps).
    pub min_reads: u64,
    /// Epochs to hold the converged point before re-probing.
    pub hold_epochs: u32,
    /// Guard rails per knob.
    pub bounds: KnobBounds,
    /// Whether the hot-tier budget axis may move. Serving keeps this off
    /// by default: a budget change forces a hot-tier rebuild, which the
    /// residency contract (`hot_rebuilds == 1`) deliberately makes
    /// expensive and observable.
    pub tune_hot_tier: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            hysteresis: 0.03,
            min_reads: 64,
            hold_epochs: 8,
            bounds: KnobBounds::default(),
            tune_hot_tier: false,
        }
    }
}

/// One epoch's worth of signal: the flows between two knob-application
/// points, plus the wall time they took.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochStats {
    /// Reads mapped this epoch.
    pub reads: u64,
    /// Wall-clock nanoseconds the epoch spanned.
    pub wall_ns: u64,
    /// Pool worker idle nanoseconds accumulated this epoch.
    pub idle_ns: u64,
    /// Private CachedGBWT hits / misses this epoch.
    pub cache_hits: u64,
    /// See [`EpochStats::cache_hits`].
    pub cache_misses: u64,
    /// Shared hot-tier hits / misses this epoch.
    pub hot_hits: u64,
    /// See [`EpochStats::hot_hits`].
    pub hot_misses: u64,
    /// Seeding / extension stage nanoseconds this epoch.
    pub seeding_ns: u64,
    /// See [`EpochStats::seeding_ns`].
    pub extension_ns: u64,
    /// Deepest pool queue occupancy observed (gauge level).
    pub queue_high_water: u64,
    /// Admission pending high-water for the epoch (from
    /// [`mg_sched::AdmissionQueue::epoch_rollover`]).
    pub pending_high_water: u64,
}

impl EpochStats {
    /// Builds an epoch from an [`mg_obs::Report::delta`], the admission
    /// snapshot returned by `epoch_rollover`, and the measured wall time.
    pub fn from_delta(delta: &Report, admission: &AdmissionStats, wall_ns: u64) -> EpochStats {
        EpochStats {
            reads: delta.counter(Ctr::ReadsMapped),
            wall_ns,
            idle_ns: delta.counter(Ctr::PoolIdleNs),
            cache_hits: delta.counter(Ctr::CacheHits),
            cache_misses: delta.counter(Ctr::CacheMisses),
            hot_hits: delta.counter(Ctr::CacheHotHits),
            hot_misses: delta.counter(Ctr::CacheHotMisses),
            seeding_ns: delta.stage_ns(Stage::Seeding),
            extension_ns: delta.stage_ns(Stage::Extension),
            queue_high_water: delta.gauge(Gauge::QueueDepthMax),
            pending_high_water: admission.pending_high_water as u64,
        }
    }

    /// Reads per second — the score hill climbing maximises.
    pub fn throughput(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.reads as f64 * 1e9 / self.wall_ns as f64
    }

    /// Fraction of pool time spent idle (0 when unknown).
    pub fn idle_fraction(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        (self.idle_ns as f64 / self.wall_ns as f64).min(1.0)
    }

    /// Private cache hit rate (1.0 when no lookups happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 1.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Hot-tier hit rate (1.0 when no lookups happened).
    pub fn hot_hit_rate(&self) -> f64 {
        let total = self.hot_hits + self.hot_misses;
        if total == 0 {
            return 1.0;
        }
        self.hot_hits as f64 / total as f64
    }
}

/// The knob axes, in probe order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    Batch,
    Chunk,
    Cache,
    Hot,
}

impl Axis {
    const ALL: [Axis; 4] = [Axis::Batch, Axis::Chunk, Axis::Cache, Axis::Hot];
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Up,
    Down,
}

impl Dir {
    fn flip(self) -> Dir {
        match self {
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
        }
    }
}

/// What the controller is doing between epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    /// Measuring the current point; the next valid epoch becomes the
    /// baseline score.
    Measure,
    /// A trial step was applied; the next valid epoch decides keep/revert.
    Probe { baseline: f64, prev: KnobState, axis_idx: usize, dir: Dir, flipped: bool },
    /// Converged: hold the point for `remaining` epochs, then re-measure.
    Hold { remaining: u32 },
}

/// What [`Controller::observe_epoch`] decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Epoch ignored (below the `min_reads` noise guard).
    Skipped,
    /// Baseline (re-)measured; knobs unchanged.
    Measured,
    /// A trial step was applied; `knobs` take effect next chunk.
    Probed(KnobState),
    /// The previous trial was kept (it beat the hysteresis band).
    Accepted,
    /// The previous trial regressed or stalled; `knobs` are the restored
    /// pre-trial state.
    Reverted(KnobState),
    /// Converged: holding the current point.
    Holding,
}

impl Decision {
    /// The knobs to apply from the next chunk on, if this decision moved
    /// them.
    pub fn new_knobs(&self) -> Option<KnobState> {
        match self {
            Decision::Probed(k) | Decision::Reverted(k) => Some(*k),
            _ => None,
        }
    }
}

/// Rolling counters for `STATS` reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Valid epochs observed (past the noise guard).
    pub epochs: u64,
    /// Epochs dropped by the noise guard.
    pub skipped: u64,
    /// Trial steps kept.
    pub accepted: u64,
    /// Trial steps rolled back.
    pub reverted: u64,
}

/// The epoch-based feedback controller. See the module docs for the
/// control law.
#[derive(Debug, Clone)]
pub struct Controller {
    config: ControllerConfig,
    knobs: KnobState,
    state: State,
    /// Axis to start the next sweep from (rotates so one sticky axis
    /// cannot starve the others).
    sweep_start: usize,
    /// Probes since the last accepted move; a full quota without an
    /// accept means converged.
    stale_probes: usize,
    /// Consecutive converged sweeps: each doubles the hold period (capped
    /// at 8× the base) so a stable workload is probed ever more rarely.
    /// Any accepted move resets the backoff.
    hold_backoff: u32,
    stats: ControllerStats,
}

impl Controller {
    /// A controller starting from `initial` (usually
    /// [`KnobState::default_for`]): zero a priori configuration.
    pub fn new(config: ControllerConfig, initial: KnobState) -> Controller {
        Controller {
            config,
            knobs: initial,
            state: State::Measure,
            sweep_start: 0,
            stale_probes: 0,
            hold_backoff: 0,
            stats: ControllerStats::default(),
        }
    }

    /// The knobs currently in force.
    pub fn knobs(&self) -> KnobState {
        self.knobs
    }

    /// Rolling accept/revert counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Whether the controller is in its converged hold state.
    pub fn converged(&self) -> bool {
        matches!(self.state, State::Hold { .. })
    }

    /// Number of axes eligible to move.
    fn axes(&self) -> usize {
        if self.config.tune_hot_tier {
            Axis::ALL.len()
        } else {
            Axis::ALL.len() - 1
        }
    }

    /// A sweep without this many consecutive failed probes in a row has
    /// not yet visited both directions of every axis.
    fn probe_quota(&self) -> usize {
        self.axes() * 2
    }

    fn axis_at(&self, idx: usize) -> Axis {
        // Hot is last in ALL, so truncating the modulus excludes it when
        // it may not move.
        Axis::ALL[idx % self.axes()]
    }

    /// The signal-directed first probe direction for an axis.
    fn hint(&self, axis: Axis, e: &EpochStats) -> Dir {
        match axis {
            // Idle workers amortise scheduling badly: try bigger batches
            // first. Busy pool: try smaller ones for better balance.
            Axis::Batch => {
                if e.idle_fraction() > 0.05 {
                    Dir::Up
                } else {
                    Dir::Down
                }
            }
            // Jobs stacking up behind the executor favour a smaller
            // in-flight window (finer interleaving); an empty pending
            // queue can afford a wider one.
            Axis::Chunk => {
                if e.pending_high_water > 1 {
                    Dir::Down
                } else {
                    Dir::Up
                }
            }
            // A cold private cache wants more capacity; a saturated one
            // may be paying eviction scans for nothing.
            Axis::Cache => {
                if e.cache_hit_rate() < 0.9 {
                    Dir::Up
                } else {
                    Dir::Down
                }
            }
            // Same logic for the shared tier.
            Axis::Hot => {
                if e.hot_hit_rate() < 0.5 {
                    Dir::Up
                } else {
                    Dir::Down
                }
            }
        }
    }

    /// One guarded multiplicative step along `axis`; `None` when the
    /// bound in that direction is already met.
    fn stepped(&self, axis: Axis, dir: Dir) -> Option<KnobState> {
        let mut next = self.knobs;
        let (value, (lo, hi)) = match axis {
            Axis::Batch => (&mut next.batch_size, self.config.bounds.batch),
            Axis::Chunk => (&mut next.chunk_reads, self.config.bounds.chunk),
            Axis::Cache => (&mut next.cache_capacity, self.config.bounds.cache),
            Axis::Hot => (&mut next.hot_tier_budget, self.config.bounds.hot),
        };
        let stepped = match dir {
            Dir::Up => value.saturating_mul(2).max(1).min(hi),
            Dir::Down => (*value / 2).max(lo),
        };
        if stepped == *value || stepped < lo || stepped > hi {
            return None;
        }
        *value = stepped;
        Some(next)
    }

    /// Starts the next trial step from `axis_idx`/`dir`, skipping axes
    /// pinned at their bounds. Enters `Hold` once a full quota of probes
    /// fails to move anything.
    fn next_probe(&mut self, baseline: f64, mut axis_idx: usize, mut dir: Dir, mut flipped: bool) -> Decision {
        for _ in 0..self.probe_quota() {
            if self.stale_probes >= self.probe_quota() {
                break;
            }
            let axis = self.axis_at(axis_idx);
            if let Some(trial) = self.stepped(axis, dir) {
                let prev = self.knobs;
                self.knobs = trial;
                self.state = State::Probe { baseline, prev, axis_idx, dir, flipped };
                return Decision::Probed(trial);
            }
            // Bound hit: the flipped direction of the same axis counts as
            // the next probe slot.
            self.stale_probes += 1;
            if flipped {
                axis_idx += 1;
                flipped = false;
            } else {
                dir = dir.flip();
                flipped = true;
            }
        }
        self.sweep_start = (self.sweep_start + 1) % self.axes();
        self.stale_probes = 0;
        let hold = self.config.hold_epochs.max(1) << self.hold_backoff.min(3);
        self.hold_backoff = (self.hold_backoff + 1).min(3);
        self.state = State::Hold { remaining: hold };
        Decision::Holding
    }

    /// Feeds one epoch of signal; returns what the controller decided.
    /// Any knobs in [`Decision::new_knobs`] must be applied from the next
    /// chunk boundary.
    pub fn observe_epoch(&mut self, e: &EpochStats) -> Decision {
        if e.reads < self.config.min_reads {
            self.stats.skipped += 1;
            return Decision::Skipped;
        }
        self.stats.epochs += 1;
        let score = e.throughput();
        match self.state {
            State::Measure => {
                let start = self.sweep_start;
                let dir = self.hint(self.axis_at(start), e);
                self.next_probe(score, start, dir, false)
            }
            State::Probe { baseline, prev, axis_idx, dir, flipped } => {
                if score >= baseline * (1.0 + self.config.hysteresis) {
                    // Keep the step and re-measure before pushing the same
                    // axis further: acceptance resets the staleness count.
                    self.stats.accepted += 1;
                    self.stale_probes = 0;
                    self.hold_backoff = 0;
                    self.sweep_start = axis_idx % self.axes();
                    self.state = State::Measure;
                    Decision::Accepted
                } else {
                    // Inside the hysteresis band or worse: roll back and
                    // move on. The restored knobs apply next chunk.
                    self.stats.reverted += 1;
                    self.stale_probes += 1;
                    self.knobs = prev;
                    let (next_idx, next_dir, next_flipped) = if flipped {
                        (axis_idx + 1, dir, false)
                    } else {
                        (axis_idx, dir.flip(), true)
                    };
                    let next_dir = if next_flipped { next_dir } else { self.hint(self.axis_at(next_idx), e) };
                    let decision = self.next_probe(baseline, next_idx, next_dir, next_flipped);
                    match decision {
                        Decision::Probed(k) => Decision::Probed(k),
                        _ => Decision::Reverted(prev),
                    }
                }
            }
            State::Hold { remaining } => {
                if remaining > 1 {
                    self.state = State::Hold { remaining: remaining - 1 };
                    Decision::Holding
                } else {
                    // Hold expired: re-measure so a load shift since
                    // convergence gets a fresh baseline.
                    self.state = State::Measure;
                    Decision::Measured
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic SplitMix64 for seeded noise.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in [-1, 1).
        fn signed_unit(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        }
    }

    /// A synthetic concave response surface: throughput peaks at
    /// `bs=1024, cc=1024`, falls off quadratically in log2 distance, and
    /// is insensitive to the chunk window (like a single-tenant server).
    fn surface(k: &KnobState) -> f64 {
        let d_bs = (k.batch_size as f64).log2() - 10.0;
        let d_cc = (k.cache_capacity as f64).log2() - 10.0;
        1000.0 * (1.0 - 0.05 * d_bs * d_bs - 0.05 * d_cc * d_cc)
    }

    /// One synthetic epoch at `k`: `scale` models load level, `noise` is
    /// a relative perturbation.
    fn epoch(k: &KnobState, scale: f64, noise: f64) -> EpochStats {
        let throughput = surface(k) * scale * (1.0 + noise);
        let reads = 4096u64;
        EpochStats {
            reads,
            wall_ns: (reads as f64 * 1e9 / throughput) as u64,
            idle_ns: 0,
            ..EpochStats::default()
        }
    }

    fn drive(controller: &mut Controller, epochs: usize, seed: u64, scale: impl Fn(usize) -> f64, amplitude: f64) -> Vec<KnobState> {
        let mut rng = Rng(seed);
        let mut trajectory = Vec::new();
        for i in 0..epochs {
            let noise = rng.signed_unit() * amplitude;
            let e = epoch(&controller.knobs(), scale(i), noise);
            controller.observe_epoch(&e);
            trajectory.push(controller.knobs());
        }
        trajectory
    }

    #[test]
    fn climbs_to_surface_optimum_from_defaults() {
        let mut c = Controller::new(ControllerConfig::default(), KnobState::default_for(4));
        drive(&mut c, 64, 42, |_| 1.0, 0.0);
        // A re-probe sweep may be in flight at any fixed epoch; give it
        // room to finish before checking the held point.
        for _ in 0..16 {
            if c.converged() {
                break;
            }
            drive(&mut c, 1, 43, |_| 1.0, 0.0);
        }
        let k = c.knobs();
        assert_eq!(k.batch_size, 1024, "batch should climb 512 → 1024");
        assert_eq!(k.cache_capacity, 1024, "capacity should climb 256 → 1024");
        assert!(c.converged(), "noise-free surface must reach Hold");
        assert!(c.stats().accepted >= 3);
    }

    #[test]
    fn trajectories_are_deterministic() {
        let run = || {
            let mut c = Controller::new(ControllerConfig::default(), KnobState::default_for(4));
            drive(&mut c, 200, 7, |i| if i < 100 { 1.0 } else { 0.5 }, 0.01)
        };
        assert_eq!(run(), run(), "same inputs must give the same trajectory");
    }

    #[test]
    fn steady_profile_knob_trajectory_is_monotone() {
        // Under steady load the accepted values of each knob must move
        // monotonically toward the optimum — an accepted move is never
        // later un-done (reverted *probes* bounce by design; the accepted
        // baseline sequence must not).
        let mut c = Controller::new(ControllerConfig::default(), KnobState::default_for(4));
        let trajectory = drive(&mut c, 128, 11, |_| 1.0, 0.005);
        // Collapse to the sequence of distinct held points: a point is
        // "held" when it persists for 2+ epochs (probes last exactly one).
        let mut held: Vec<KnobState> = Vec::new();
        for w in trajectory.windows(2) {
            if w[0] == w[1] && held.last() != Some(&w[0]) {
                held.push(w[0]);
            }
        }
        for pair in held.windows(2) {
            assert!(
                pair[1].batch_size >= pair[0].batch_size,
                "accepted batch sequence regressed: {} after {}",
                pair[1], pair[0]
            );
            assert!(
                pair[1].cache_capacity >= pair[0].cache_capacity,
                "accepted capacity sequence regressed: {} after {}",
                pair[1], pair[0]
            );
        }
    }

    #[test]
    fn noisy_epochs_cannot_thrash_knobs() {
        // 1% relative noise at the surface optimum: hysteresis must keep
        // the controller from random-walking. Accepted moves stay rare
        // and the knobs stay within one step of where they started.
        let flat_start = KnobState {
            batch_size: 1024,
            chunk_reads: 4096,
            cache_capacity: 1024,
            hot_tier_budget: 256,
        };
        let mut c = Controller::new(ControllerConfig::default(), flat_start);
        let trajectory = drive(&mut c, 300, 1234, |_| 1.0, 0.01);
        let changes = trajectory.windows(2).filter(|w| w[0] != w[1]).count();
        // Every probe is one change out and (if reverted) one change
        // back; converged holds contribute none. Thrashing would show as
        // changes on most epochs.
        assert!(changes < 120, "knobs changed {changes}/300 epochs — thrashing");
        assert!(
            c.stats().accepted <= 2,
            "flat surface accepted {} moves under noise",
            c.stats().accepted
        );
        let k = c.knobs();
        assert!(k.batch_size >= 512 && k.batch_size <= 2048);
        assert!(k.cache_capacity >= 512 && k.cache_capacity <= 2048);
    }

    #[test]
    fn bursty_profile_skips_quiet_epochs_and_recovers() {
        // Bursty load: every other epoch is nearly empty. The noise guard
        // must skip the gaps (no decisions from them) and the controller
        // must still converge on the loaded epochs.
        let mut c = Controller::new(ControllerConfig::default(), KnobState::default_for(4));
        let mut rng = Rng(99);
        for i in 0..160 {
            let mut e = epoch(&c.knobs(), 1.0, rng.signed_unit() * 0.005);
            if i % 2 == 1 {
                e.reads = 3; // burst gap, below min_reads
                let d = c.observe_epoch(&e);
                assert_eq!(d, Decision::Skipped);
                continue;
            }
            c.observe_epoch(&e);
        }
        assert_eq!(c.stats().skipped, 80);
        for _ in 0..16 {
            if c.converged() {
                break;
            }
            let e = epoch(&c.knobs(), 1.0, 0.0);
            c.observe_epoch(&e);
        }
        assert_eq!(c.knobs().batch_size, 1024);
        assert_eq!(c.knobs().cache_capacity, 1024);
    }

    #[test]
    fn load_shift_rebaselines_without_thrash() {
        // Halving global throughput mid-run (a burst of heavier reads)
        // must not send the knobs on a walk: every sweep re-measures its
        // baseline, so the shift costs at most one reverted sweep before
        // the baseline reflects the new load, and the held point never
        // moves.
        let mut c = Controller::new(ControllerConfig::default(), KnobState::default_for(4));
        drive(&mut c, 64, 5, |_| 1.0, 0.0);
        let converged = c.knobs();
        let before_reverts = c.stats().reverted;
        drive(&mut c, 64, 6, |_| 0.5, 0.0);
        for _ in 0..16 {
            if c.converged() {
                break;
            }
            drive(&mut c, 1, 6, |_| 0.5, 0.0);
        }
        assert_eq!(c.knobs(), converged, "load shift moved converged knobs");
        let extra_reverts = c.stats().reverted - before_reverts;
        assert!(extra_reverts <= 12, "{extra_reverts} reverts after load shift");
    }

    #[test]
    fn bounds_are_hard_guards() {
        let config = ControllerConfig {
            bounds: KnobBounds { batch: (256, 512), chunk: (512, 512), cache: (256, 256), hot: (0, 0) },
            ..ControllerConfig::default()
        };
        let start = KnobState {
            batch_size: 512,
            chunk_reads: 512,
            cache_capacity: 256,
            hot_tier_budget: 0,
        };
        let mut c = Controller::new(config, start);
        let trajectory = drive(&mut c, 64, 3, |_| 1.0, 0.0);
        for k in &trajectory {
            assert!(k.batch_size >= 256 && k.batch_size <= 512);
            assert_eq!(k.chunk_reads, 512);
            assert_eq!(k.cache_capacity, 256);
            assert_eq!(k.hot_tier_budget, 0);
        }
    }

    #[test]
    fn hot_tier_axis_is_gated() {
        let mut on = Controller::new(
            ControllerConfig { tune_hot_tier: true, ..ControllerConfig::default() },
            KnobState::default_for(4),
        );
        let mut off = Controller::new(ControllerConfig::default(), KnobState::default_for(4));
        assert_eq!(on.axes(), 4);
        assert_eq!(off.axes(), 3);
        drive(&mut off, 256, 21, |_| 1.0, 0.0);
        assert_eq!(
            off.knobs().hot_tier_budget,
            256,
            "hot budget moved with tune_hot_tier off"
        );
        drive(&mut on, 4, 21, |_| 1.0, 0.0);
    }

    #[test]
    fn epoch_stats_from_delta_maps_signals() {
        let metrics = mg_obs::Metrics::new();
        metrics.add(Ctr::ReadsMapped, 100);
        metrics.add(Ctr::CacheHits, 90);
        metrics.add(Ctr::CacheMisses, 10);
        let epoch0 = metrics.report();
        metrics.add(Ctr::ReadsMapped, 50);
        metrics.add(Ctr::CacheHits, 30);
        metrics.add(Ctr::CacheMisses, 30);
        metrics.add(Ctr::PoolIdleNs, 1_000);
        metrics.span(Stage::Seeding, 2_000);
        let delta = metrics.report().delta(&epoch0);
        let admission = AdmissionStats { pending_high_water: 5, ..AdmissionStats::default() };
        let e = EpochStats::from_delta(&delta, &admission, 10_000);
        if metrics.enabled() {
            assert_eq!(e.reads, 50);
            assert_eq!(e.cache_hits, 30);
            assert_eq!(e.cache_misses, 30);
            assert_eq!(e.idle_ns, 1_000);
            assert_eq!(e.seeding_ns, 2_000);
            assert!((e.cache_hit_rate() - 0.5).abs() < 1e-9);
        }
        assert_eq!(e.pending_high_water, 5);
        assert_eq!(e.wall_ns, 10_000);
    }
}
