//! Adaptive batch drivers: the [`crate::controller`] applied to one-shot
//! `map`/`parent` runs, chunk at a time.
//!
//! `minigiraffe serve --adaptive` closes the loop inside the server
//! executor; these drivers close the same loop over a batch workload so
//! adaptive and fixed-knob runs can be A/B'd on identical inputs (the
//! `smoke_adapt` bench and the `--adaptive` CLI flag sit on them). Both
//! walk the input in controller-sized chunks through the public
//! chunk-at-a-time entries ([`mg_core::Mapper::map_chunk_reads`],
//! [`mg_parent::Parent::map_chunk`]), feed the controller one epoch every
//! [`ControllerConfig`]-caller-chosen number of chunks, and apply any knob
//! move at the next chunk boundary — so output stays byte-identical to a
//! fixed-knob run over the same reads while batch size, chunk window, and
//! cache budgets converge.

use std::time::{Duration, Instant};

use mg_core::dump::SeedDump;
use mg_core::types::Workflow;
use mg_core::{Mapper, MappingOptions, MappingResults};
use mg_obs::{Metrics, Report};
use mg_parent::{chunk_to_gaf, Parent, ParentOptions};
use mg_sched::{effective_chunk_reads, AdmissionStats};

use crate::controller::{
    Controller, ControllerConfig, ControllerStats, EpochStats, KnobState,
};

/// What the controller did over one adaptive batch run.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// Knob state after each closed epoch, in order.
    pub trajectory: Vec<KnobState>,
    /// Knobs in force when the run finished.
    pub knobs: KnobState,
    /// Accept/revert/skip counters.
    pub stats: ControllerStats,
    /// Whether the controller ended in its converged hold state.
    pub converged: bool,
}

/// An adaptive full-pipeline (`parent`) run.
#[derive(Debug, Clone)]
pub struct AdaptiveParentRun {
    /// Concatenated GAF across all chunks — byte-identical to a fixed-knob
    /// [`Parent::run`] over the same reads.
    pub gaf: String,
    /// Reads mapped.
    pub reads: u64,
    /// Chunks executed (knob-application points).
    pub chunks: u64,
    /// Wall time of the chunk loop.
    pub wall: Duration,
    /// The controller's trajectory.
    pub report: AdaptiveReport,
}

/// An adaptive proxy (`map`) run over a seed dump.
#[derive(Debug, Clone)]
pub struct AdaptiveMapRun {
    /// Aggregated results — per-read output identical to a fixed-knob
    /// [`Mapper::run`].
    pub results: MappingResults,
    /// Chunks executed.
    pub chunks: u64,
    /// The controller's trajectory.
    pub report: AdaptiveReport,
}

/// Tracks the open epoch for a batch driver: metrics snapshot at epoch
/// start, wall clock, and chunk/read counts. Batch runs have no admission
/// queue, so the admission slice of [`EpochStats`] stays zero.
struct EpochClock<'m> {
    metrics: &'m Metrics,
    epoch_chunks: u64,
    base: Report,
    started: Instant,
    chunks: u64,
    reads: u64,
}

impl<'m> EpochClock<'m> {
    fn new(metrics: &'m Metrics, epoch_chunks: u64) -> EpochClock<'m> {
        EpochClock {
            metrics,
            epoch_chunks: epoch_chunks.max(1),
            base: metrics.report(),
            started: Instant::now(),
            chunks: 0,
            reads: 0,
        }
    }

    /// Closes the chunk; every `epoch_chunks` chunks, feeds the controller
    /// and records the resulting knob state in `trajectory`.
    fn tick(&mut self, controller: &mut Controller, reads: u64, trajectory: &mut Vec<KnobState>) {
        self.chunks += 1;
        self.reads += reads;
        if self.chunks < self.epoch_chunks {
            return;
        }
        let report = self.metrics.report();
        let delta = report.delta(&self.base);
        let wall_ns = self.started.elapsed().as_nanos() as u64;
        let mut epoch = EpochStats::from_delta(&delta, &AdmissionStats::default(), wall_ns);
        // The driver counts mapped reads itself so throughput steering
        // works even when mg-obs is compiled out.
        epoch.reads = self.reads;
        controller.observe_epoch(&epoch);
        trajectory.push(controller.knobs());
        self.base = report;
        self.started = Instant::now();
        self.chunks = 0;
        self.reads = 0;
    }
}

fn initial_knobs(mapping: &MappingOptions, chunk_reads: usize) -> KnobState {
    KnobState {
        batch_size: mapping.batch_size.max(1),
        chunk_reads: effective_chunk_reads(chunk_reads, mapping.threads, mapping.batch_size),
        cache_capacity: mapping.cache_capacity.max(1),
        hot_tier_budget: mapping.hot_tier_budget,
    }
}

/// Applies the controller's knobs to a per-chunk options clone and
/// returns the chunk window (pair-clamped when `paired`).
fn apply_knobs(mapping: &mut MappingOptions, k: KnobState, paired: bool) -> usize {
    mapping.batch_size = k.batch_size.max(1);
    mapping.cache_capacity = k.cache_capacity.max(1);
    mapping.hot_tier_budget = k.hot_tier_budget;
    let mut chunk = effective_chunk_reads(k.chunk_reads, mapping.threads, k.batch_size);
    if paired {
        chunk = (chunk & !1).max(2);
    }
    chunk.max(1)
}

/// Runs the full parent pipeline over `reads` in controller-driven
/// chunks, starting from the knobs in `base`. GAF is byte-identical to a
/// fixed-knob [`Parent::run`] over the same reads: knob moves land only
/// between chunks and every tuned knob is result-invariant.
pub fn run_adaptive_parent(
    parent: &Parent<'_>,
    set_name: &str,
    reads: &[Vec<u8>],
    base: &ParentOptions,
    config: ControllerConfig,
    epoch_chunks: u64,
    metrics: &Metrics,
) -> AdaptiveParentRun {
    let mut controller = Controller::new(config, initial_knobs(&base.mapping, 0));
    let paired = parent.workflow() == Workflow::Paired;
    let mapper = parent.mapper();
    let mut clock = EpochClock::new(metrics, epoch_chunks);
    let mut trajectory = Vec::new();
    let mut gaf = String::new();
    let mut chunks = 0u64;
    let start = Instant::now();
    let mut lo = 0usize;
    while lo < reads.len() {
        let mut options = base.clone();
        let window = apply_knobs(&mut options.mapping, controller.knobs(), paired);
        let hi = (lo + window).min(reads.len());
        let hot = mapper.warm_hot_tier(&options.mapping);
        let run = parent.map_chunk(&reads[lo..hi], lo as u64, &options, hot.as_ref(), metrics);
        if hot.is_none() {
            mapper.build_hot_tier(&run.dump_reads, &options.mapping);
        }
        gaf.push_str(&chunk_to_gaf(
            mapper.gbz().graph(),
            set_name,
            lo as u64,
            &run.dump_reads,
            &run.kernel_results,
            &run.alignments,
        ));
        chunks += 1;
        clock.tick(&mut controller, (hi - lo) as u64, &mut trajectory);
        lo = hi;
    }
    AdaptiveParentRun {
        gaf,
        reads: reads.len() as u64,
        chunks,
        wall: start.elapsed(),
        report: AdaptiveReport {
            trajectory,
            knobs: controller.knobs(),
            stats: controller.stats(),
            converged: controller.converged(),
        },
    }
}

/// Runs the proxy kernels over `dump` in controller-driven chunks,
/// starting from the knobs in `base`. Per-read results are identical to a
/// fixed-knob [`Mapper::run`] (global read ids flow through `base_id`).
pub fn run_adaptive_map(
    mapper: &Mapper<'_>,
    dump: &SeedDump,
    base: &MappingOptions,
    config: ControllerConfig,
    epoch_chunks: u64,
    metrics: &Metrics,
) -> AdaptiveMapRun {
    let mut controller = Controller::new(config, initial_knobs(base, 0));
    let mut clock = EpochClock::new(metrics, epoch_chunks);
    let mut trajectory = Vec::new();
    let mut results = MappingResults {
        per_read: Vec::with_capacity(dump.reads.len()),
        wall: Duration::ZERO,
        cache: Default::default(),
        cache_heap_bytes: 0,
    };
    let mut private_high_water = 0u64;
    let mut hot_bytes = 0u64;
    let mut chunks = 0u64;
    let start = Instant::now();
    let mut lo = 0usize;
    while lo < dump.reads.len() {
        let mut options = base.clone();
        let window = apply_knobs(&mut options, controller.knobs(), false);
        let hi = (lo + window).min(dump.reads.len());
        let hot = mapper.warm_hot_tier(&options);
        let hot = match hot {
            Some(tier) => Some(tier),
            None => mapper.build_hot_tier(&dump.reads[lo..hi], &options),
        };
        hot_bytes = hot.as_deref().map_or(0, |t| t.heap_bytes() as u64).max(hot_bytes);
        let (per_read, cache, private_bytes) =
            mapper.map_chunk_reads(&dump.reads[lo..hi], lo as u64, &options, hot.as_ref(), metrics);
        results.per_read.extend(per_read);
        results.cache.merge(&cache);
        private_high_water = private_high_water.max(private_bytes);
        chunks += 1;
        clock.tick(&mut controller, (hi - lo) as u64, &mut trajectory);
        lo = hi;
    }
    results.wall = start.elapsed();
    results.cache_heap_bytes = private_high_water + hot_bytes;
    AdaptiveMapRun {
        results,
        chunks,
        report: AdaptiveReport {
            trajectory,
            knobs: controller.knobs(),
            stats: controller.stats(),
            converged: controller.converged(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::KnobBounds;
    use mg_parent::run_to_gaf;
    use mg_workload::{InputSetSpec, SyntheticInput};

    fn tiny_config() -> ControllerConfig {
        ControllerConfig {
            min_reads: 1,
            bounds: KnobBounds { batch: (2, 32), chunk: (2, 32), cache: (16, 512), hot: (0, 512) },
            ..ControllerConfig::default()
        }
    }

    #[test]
    fn adaptive_parent_gaf_matches_fixed_knob_oracle() {
        let input = SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), 23);
        let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
        let parent =
            mg_parent::Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let mut options = ParentOptions::default();
        options.mapping.threads = 2;
        options.mapping.batch_size = 4;
        let run = run_adaptive_parent(
            &parent,
            "read",
            &reads,
            &options,
            tiny_config(),
            1,
            Metrics::off_ref(),
        );
        // The oracle maps on a parent the adaptive run never touched.
        let oracle_parent =
            mg_parent::Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let oracle = run_to_gaf(input.gbz.graph(), &oracle_parent.run(&reads, &options), "read");
        assert_eq!(run.gaf, oracle, "adaptive GAF diverged from fixed-knob oracle");
        assert_eq!(run.reads, reads.len() as u64);
        assert!(run.chunks > 1, "one chunk exercises nothing");
        assert!(!run.report.trajectory.is_empty(), "no epochs closed");
    }

    #[test]
    fn adaptive_map_results_match_fixed_knob_oracle() {
        let input = SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), 29);
        let mapper = Mapper::new(&input.gbz);
        let options = MappingOptions { threads: 2, batch_size: 4, ..Default::default() };
        let run =
            run_adaptive_map(&mapper, &input.dump, &options, tiny_config(), 1, Metrics::off_ref());
        let oracle_mapper = Mapper::new(&input.gbz);
        let oracle = oracle_mapper.run(&input.dump, &options);
        assert_eq!(run.results.per_read.len(), oracle.per_read.len());
        for (i, (got, want)) in
            run.results.per_read.iter().zip(oracle.per_read.iter()).enumerate()
        {
            assert_eq!(
                got.extensions, want.extensions,
                "read {i} extensions diverged under adaptive chunking"
            );
        }
        assert!(run.chunks > 1);
    }
}
