//! Sweep runners and analysis for the autotuning study.
//!
//! Two backends share the result format: the *host* backend times real
//! proxy runs on this machine; the *simulated* backend replays measured
//! task features on a [`mg_perf::MachineModel`], which is how the four
//! Table II platforms are covered.

use mg_core::dump::SeedDump;
use mg_core::{Mapper, MappingOptions};
use mg_gbwt::Gbz;
use mg_obs::{Ctr, Hist, Metrics};
use mg_perf::{collect_features, simulate, MachineModel, SimSched, SimWorkload};

use crate::space::{ParamSpace, TuningPoint};
use crate::stats::{one_way_anova, Anova};

/// One measured configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningRecord {
    /// The configuration.
    pub point: TuningPoint,
    /// Measured (or simulated) makespan in seconds.
    pub makespan_s: f64,
}

/// All measurements of one sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepResult {
    /// Records in sweep order.
    pub records: Vec<TuningRecord>,
    /// Points the sweep evaluated but could not measure (e.g. simulated
    /// configurations whose memory requirement exceeds the machine). An
    /// empty `records` with a nonzero `infeasible` means every point was
    /// skipped, which is a legitimate outcome callers must handle.
    pub infeasible: usize,
}

impl SweepResult {
    /// The fastest configuration, or `None` for an empty sweep (every
    /// point infeasible, or nothing swept).
    pub fn best(&self) -> Option<TuningRecord> {
        self.records
            .iter()
            .min_by(|a, b| a.makespan_s.total_cmp(&b.makespan_s))
            .copied()
    }

    /// The slowest configuration, or `None` for an empty sweep.
    pub fn worst(&self) -> Option<TuningRecord> {
        self.records
            .iter()
            .max_by(|a, b| a.makespan_s.total_cmp(&b.makespan_s))
            .copied()
    }

    /// The record of a specific configuration, if the sweep covered it.
    pub fn find(&self, point: TuningPoint) -> Option<TuningRecord> {
        self.records.iter().copied().find(|r| r.point == point)
    }

    /// Speedup of the best configuration over `baseline` (> 1 is faster).
    pub fn speedup_over(&self, baseline: TuningPoint) -> Option<f64> {
        let base = self.find(baseline)?;
        Some(base.makespan_s / self.best()?.makespan_s)
    }

    /// One-way ANOVA of makespan grouped by each parameter, in the order
    /// `(scheduler, batch size, cache capacity, hot-tier budget,
    /// extension batch)`.
    #[allow(clippy::type_complexity)]
    pub fn anova_by_parameter(
        &self,
    ) -> (Option<Anova>, Option<Anova>, Option<Anova>, Option<Anova>, Option<Anova>) {
        let group = |key: &dyn Fn(&TuningPoint) -> u64| -> Vec<Vec<f64>> {
            let mut groups: std::collections::BTreeMap<u64, Vec<f64>> =
                std::collections::BTreeMap::new();
            for r in &self.records {
                groups.entry(key(&r.point)).or_default().push(r.makespan_s);
            }
            groups.into_values().collect()
        };
        let by_sched = group(&|p: &TuningPoint| p.scheduler as u64);
        let by_batch = group(&|p: &TuningPoint| p.batch_size as u64);
        let by_capacity = group(&|p: &TuningPoint| p.cache_capacity as u64);
        let by_hot = group(&|p: &TuningPoint| p.hot_tier_budget as u64);
        let by_extend = group(&|p: &TuningPoint| p.extend_batch as u64);
        (
            one_way_anova(&by_sched),
            one_way_anova(&by_batch),
            one_way_anova(&by_capacity),
            one_way_anova(&by_hot),
            one_way_anova(&by_extend),
        )
    }
}

/// Sweeps the space with real proxy runs on the host machine.
///
/// `repeats` runs are taken per point and the minimum kept (standard noise
/// suppression for makespan measurements).
pub fn run_host_sweep(
    gbz: &Gbz,
    dump: &SeedDump,
    threads: usize,
    space: &ParamSpace,
    repeats: usize,
    base_options: &MappingOptions,
) -> SweepResult {
    run_host_sweep_metrics(gbz, dump, threads, space, repeats, base_options, Metrics::off_ref())
}

/// [`run_host_sweep`] with a metrics registry: each measured point bumps
/// the sweep-point counter and feeds the kept makespan into the
/// makespan histogram, and the proxy runs themselves record their full
/// per-stage/cache/scheduler activity into the same registry.
#[allow(clippy::too_many_arguments)]
pub fn run_host_sweep_metrics(
    gbz: &Gbz,
    dump: &SeedDump,
    threads: usize,
    space: &ParamSpace,
    repeats: usize,
    base_options: &MappingOptions,
    metrics: &Metrics,
) -> SweepResult {
    let mapper = Mapper::new(gbz);
    let mut records = Vec::with_capacity(space.len());
    for point in space.points() {
        let mut options = MappingOptions {
            threads,
            batch_size: point.batch_size,
            cache_capacity: point.cache_capacity,
            scheduler: point.scheduler,
            hot_tier_budget: point.hot_tier_budget,
            ..base_options.clone()
        };
        // Nested field: the struct-update spread above cannot reach it.
        options.process.extend_batch = point.extend_batch;
        let mut best = f64::INFINITY;
        for _ in 0..repeats.max(1) {
            let out = mapper.run_with_metrics(dump, &options, metrics);
            best = best.min(out.wall.as_secs_f64());
        }
        metrics.add(Ctr::SweepPoints, 1);
        metrics.observe(Hist::SweepMakespanUs, (best * 1e6) as u64);
        records.push(TuningRecord { point, makespan_s: best });
    }
    SweepResult { records, infeasible: 0 }
}

/// Provides per-capacity task features for the simulated sweep (capacity
/// changes kernel work, so features must be re-collected per capacity).
///
/// The memo is keyed by the *identity of the input* — the dump's contents
/// and the non-swept base options — as well as the capacity, so one cache
/// reused across different dumps or option sets re-collects instead of
/// silently returning stale features.
#[derive(Debug, Clone, Default)]
pub struct FeatureCache {
    /// Fingerprint of the (dump, base options) the memo was filled from;
    /// `None` until first use.
    input_fingerprint: Option<u64>,
    by_capacity: std::collections::BTreeMap<usize, SimWorkload>,
}

/// Content fingerprint of a sweep input: the dump (workflow, reads, seeds)
/// plus every base option that feeds feature collection.
fn input_fingerprint(dump: &SeedDump, base_options: &MappingOptions) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    (dump.workflow as u8).hash(&mut h);
    dump.reads.len().hash(&mut h);
    for read in &dump.reads {
        read.bases.hash(&mut h);
        read.seeds.hash(&mut h);
    }
    // MappingOptions carries float-bearing kernel parameter structs, so it
    // is not `Hash`; its Debug rendering is a stable, complete surrogate.
    format!("{base_options:?}").hash(&mut h);
    h.finish()
}

impl FeatureCache {
    /// Collects (and memoizes) the features for `capacity`.
    ///
    /// Passing a different dump or different base options than the memo was
    /// built from invalidates the whole memo (all capacities) first.
    pub fn features<'a>(
        &'a mut self,
        mapper: &Mapper<'_>,
        dump: &SeedDump,
        base_options: &MappingOptions,
        capacity: usize,
        required_memory_gb: f64,
        name: &str,
    ) -> &'a SimWorkload {
        let fp = input_fingerprint(dump, base_options);
        if self.input_fingerprint != Some(fp) {
            self.by_capacity.clear();
            self.input_fingerprint = Some(fp);
        }
        self.by_capacity.entry(capacity).or_insert_with(|| {
            let options = MappingOptions {
                cache_capacity: capacity,
                ..base_options.clone()
            };
            collect_features(mapper, dump, &options, required_memory_gb, name)
        })
    }
}

/// Sweeps the space on a simulated machine at `threads` thread contexts.
///
/// `tile` replicates the measured tasks so the simulated run has
/// paper-proportional read counts (see
/// [`mg_perf::SimWorkload::tiled`]); pass 1 to simulate the dump as-is.
#[allow(clippy::too_many_arguments)]
pub fn run_sim_sweep(
    machine: &MachineModel,
    mapper: &Mapper<'_>,
    dump: &SeedDump,
    space: &ParamSpace,
    threads: usize,
    base_options: &MappingOptions,
    required_memory_gb: f64,
    name: &str,
    tile: usize,
) -> SweepResult {
    let mut cache = FeatureCache::default();
    run_sim_sweep_cached(
        machine,
        mapper,
        dump,
        space,
        threads,
        base_options,
        required_memory_gb,
        name,
        tile,
        &mut cache,
    )
}

/// [`run_sim_sweep`] with an external [`FeatureCache`], so feature
/// collection is shared when sweeping several machines over one input.
#[allow(clippy::too_many_arguments)]
pub fn run_sim_sweep_cached(
    machine: &MachineModel,
    mapper: &Mapper<'_>,
    dump: &SeedDump,
    space: &ParamSpace,
    threads: usize,
    base_options: &MappingOptions,
    required_memory_gb: f64,
    name: &str,
    tile: usize,
    cache: &mut FeatureCache,
) -> SweepResult {
    let mut records = Vec::with_capacity(space.len());
    let mut infeasible = 0usize;
    // The machine model has no shared-cache term, so `hot_tier_budget` does
    // not change simulated makespan; points differing only in budget get
    // equal times (documented simplification, see EXPERIMENTS.md).
    for point in space.points() {
        let workload = cache
            .features(
                mapper,
                dump,
                base_options,
                point.cache_capacity,
                required_memory_gb,
                name,
            )
            .tiled(tile.max(1));
        let outcome = simulate(
            machine,
            &workload,
            threads,
            SimSched::from_kind(point.scheduler, point.batch_size),
        );
        match outcome.makespan_s {
            Some(makespan) => records.push(TuningRecord { point, makespan_s: makespan }),
            None => infeasible += 1,
        }
    }
    if infeasible > 0 {
        eprintln!(
            "sim sweep {name:?} on {}: {infeasible}/{} points infeasible (skipped)",
            machine.name,
            space.len()
        );
    }
    SweepResult { records, infeasible }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_sched::SchedulerKind;

    fn record(s: SchedulerKind, b: usize, c: usize, t: f64) -> TuningRecord {
        TuningRecord {
            point: TuningPoint {
                scheduler: s,
                batch_size: b,
                cache_capacity: c,
                hot_tier_budget: 256,
                extend_batch: 16,
            },
            makespan_s: t,
        }
    }

    fn sample_sweep() -> SweepResult {
        SweepResult {
            records: vec![
                record(SchedulerKind::Dynamic, 512, 256, 10.0),
                record(SchedulerKind::Dynamic, 512, 4096, 6.0),
                record(SchedulerKind::Dynamic, 128, 256, 9.5),
                record(SchedulerKind::WorkStealing, 512, 256, 9.8),
                record(SchedulerKind::WorkStealing, 128, 4096, 6.2),
            ],
            infeasible: 0,
        }
    }

    #[test]
    fn best_and_worst() {
        let sweep = sample_sweep();
        assert_eq!(sweep.best().unwrap().makespan_s, 6.0);
        assert_eq!(sweep.worst().unwrap().makespan_s, 10.0);
        // An empty sweep has no best/worst instead of panicking.
        let empty = SweepResult::default();
        assert!(empty.best().is_none());
        assert!(empty.worst().is_none());
    }

    #[test]
    fn speedup_over_default() {
        let sweep = sample_sweep();
        let speedup = sweep.speedup_over(TuningPoint::default_config()).unwrap();
        assert!((speedup - 10.0 / 6.0).abs() < 1e-12);
        // Missing baseline -> None.
        let missing = TuningPoint {
            scheduler: SchedulerKind::Static,
            batch_size: 1,
            cache_capacity: 1,
            hot_tier_budget: 0,
            extend_batch: 1,
        };
        assert!(sweep.speedup_over(missing).is_none());
    }

    #[test]
    fn anova_attributes_capacity_effect() {
        // Build a sweep where capacity drives makespan and the other two
        // parameters do nothing.
        let mut records = Vec::new();
        for (si, s) in SchedulerKind::TUNED.iter().enumerate() {
            for (bi, &b) in [128usize, 512, 2048].iter().enumerate() {
                for &c in &[256usize, 1024, 4096] {
                    let noise = (si as f64) * 0.001 + (bi as f64) * 0.002;
                    let t = match c {
                        256 => 10.0,
                        1024 => 8.0,
                        _ => 6.0,
                    } + noise;
                    records.push(record(*s, b, c, t));
                }
            }
        }
        let sweep = SweepResult { records, infeasible: 0 };
        let (sched, batch, capacity, hot, extend) = sweep.anova_by_parameter();
        let capacity = capacity.unwrap();
        assert!(capacity.is_significant(), "capacity p={}", capacity.p_value);
        assert!(!sched.unwrap().is_significant());
        assert!(!batch.unwrap().is_significant());
        // Every record shares one hot-tier budget (and one extension
        // batch), so those axes have a single group each and no ANOVA can
        // be computed for them.
        assert!(hot.is_none());
        assert!(extend.is_none());
    }

    #[test]
    fn host_sweep_smoke() {
        use mg_core::types::{ReadInput, Seed, Workflow};
        use mg_graph::pangenome::PangenomeBuilder;
        use mg_graph::{Handle, NodeId};
        use mg_index::GraphPos;

        let p = PangenomeBuilder::new(b"ACGTACGTACGTACGTACGTACGT".to_vec())
            .haplotypes(vec![vec![]])
            .max_node_len(6)
            .build()
            .unwrap();
        let gbz = Gbz::from_pangenome(p).unwrap();
        let dump = SeedDump::new(
            Workflow::Single,
            (0..20)
                .map(|_| ReadInput {
                    bases: b"ACGTACGTACGT".to_vec(),
                    seeds: vec![Seed::new(0, GraphPos::new(Handle::forward(NodeId::new(1)), 0))],
                })
                .collect(),
        );
        let space = ParamSpace::small();
        let sweep = run_host_sweep(&gbz, &dump, 2, &space, 1, &MappingOptions::default());
        assert_eq!(sweep.records.len(), space.len());
        assert!(sweep.records.iter().all(|r| r.makespan_s >= 0.0));
        assert!(sweep.best().unwrap().makespan_s <= sweep.worst().unwrap().makespan_s);
    }

    #[test]
    fn host_sweep_metrics_count_every_point() {
        use mg_core::types::{ReadInput, Seed, Workflow};
        use mg_graph::pangenome::PangenomeBuilder;
        use mg_graph::{Handle, NodeId};
        use mg_index::GraphPos;

        let p = PangenomeBuilder::new(b"ACGTACGTACGTACGTACGTACGT".to_vec())
            .haplotypes(vec![vec![]])
            .max_node_len(6)
            .build()
            .unwrap();
        let gbz = Gbz::from_pangenome(p).unwrap();
        let dump = SeedDump::new(
            Workflow::Single,
            (0..10)
                .map(|_| ReadInput {
                    bases: b"ACGTACGTACGT".to_vec(),
                    seeds: vec![Seed::new(0, GraphPos::new(Handle::forward(NodeId::new(1)), 0))],
                })
                .collect(),
        );
        let space = ParamSpace::small();
        let metrics = Metrics::new();
        let sweep = run_host_sweep_metrics(
            &gbz,
            &dump,
            1,
            &space,
            2,
            &MappingOptions::default(),
            &metrics,
        );
        let rep = metrics.report();
        assert_eq!(rep.counter(Ctr::SweepPoints), space.len() as u64);
        assert_eq!(rep.hist_count(Hist::SweepMakespanUs), space.len() as u64);
        // Every point ran `repeats` instrumented proxy runs over the dump.
        assert_eq!(
            rep.counter(Ctr::ReadsMapped),
            (space.len() * 2 * dump.reads.len()) as u64
        );
        assert_eq!(sweep.records.len(), space.len());
    }

    #[test]
    fn sim_sweep_smoke() {
        use mg_core::types::{ReadInput, Seed, Workflow};
        use mg_graph::pangenome::PangenomeBuilder;
        use mg_graph::{Handle, NodeId};
        use mg_index::GraphPos;

        let p = PangenomeBuilder::new(b"ACGTACGTACGTACGTACGTACGT".to_vec())
            .haplotypes(vec![vec![]])
            .max_node_len(6)
            .build()
            .unwrap();
        let gbz = Gbz::from_pangenome(p).unwrap();
        let mapper = Mapper::new(&gbz);
        let dump = SeedDump::new(
            Workflow::Single,
            (0..30)
                .map(|_| ReadInput {
                    bases: b"ACGTACGTACGT".to_vec(),
                    seeds: vec![Seed::new(0, GraphPos::new(Handle::forward(NodeId::new(1)), 0))],
                })
                .collect(),
        );
        let space = ParamSpace::small();
        let machine = MachineModel::local_amd();
        let sweep = run_sim_sweep(
            &machine,
            &mapper,
            &dump,
            &space,
            16,
            &MappingOptions::default(),
            20.0,
            "smoke",
            4,
        );
        assert_eq!(sweep.records.len(), space.len());
        assert!(sweep.records.iter().all(|r| r.makespan_s > 0.0));
        // Deterministic.
        let sweep2 = run_sim_sweep(
            &machine,
            &mapper,
            &dump,
            &space,
            16,
            &MappingOptions::default(),
            20.0,
            "smoke",
            4,
        );
        assert_eq!(sweep, sweep2);
    }

    #[test]
    fn sim_sweep_oom_yields_no_records() {
        use mg_core::types::Workflow;
        use mg_graph::pangenome::PangenomeBuilder;

        let p = PangenomeBuilder::new(b"ACGTACGT".to_vec())
            .haplotypes(vec![vec![]])
            .build()
            .unwrap();
        let gbz = Gbz::from_pangenome(p).unwrap();
        let mapper = Mapper::new(&gbz);
        let dump = SeedDump::new(Workflow::Single, vec![]);
        let sweep = run_sim_sweep(
            &MachineModel::chi_intel(), // 256 GB
            &mapper,
            &dump,
            &ParamSpace::small(),
            8,
            &MappingOptions::default(),
            300.0, // needs 300 GB
            "oom",
            1,
        );
        assert!(sweep.records.is_empty());
        // Every point was evaluated and counted as infeasible, and the
        // Option accessors report the emptiness instead of panicking.
        assert_eq!(sweep.infeasible, ParamSpace::small().len());
        assert!(sweep.best().is_none());
        assert!(sweep.worst().is_none());
    }

    #[test]
    fn feature_cache_invalidates_on_input_change() {
        use mg_core::types::{ReadInput, Seed, Workflow};
        use mg_graph::pangenome::PangenomeBuilder;
        use mg_graph::{Handle, NodeId};
        use mg_index::GraphPos;

        let p = PangenomeBuilder::new(b"ACGTACGTACGTACGTACGTACGT".to_vec())
            .haplotypes(vec![vec![]])
            .max_node_len(6)
            .build()
            .unwrap();
        let gbz = Gbz::from_pangenome(p).unwrap();
        let mapper = Mapper::new(&gbz);
        let dump_for = |n: usize| {
            SeedDump::new(
                Workflow::Single,
                (0..n)
                    .map(|_| ReadInput {
                        bases: b"ACGTACGTACGT".to_vec(),
                        seeds: vec![Seed::new(
                            0,
                            GraphPos::new(Handle::forward(NodeId::new(1)), 0),
                        )],
                    })
                    .collect(),
            )
        };
        let small = dump_for(5);
        let large = dump_for(17);
        let opts = MappingOptions::default();

        let mut cache = FeatureCache::default();
        let n_small = cache.features(&mapper, &small, &opts, 256, 1.0, "a").tasks.len();
        // Same input hits the memo and returns the identical workload.
        let n_again = cache.features(&mapper, &small, &opts, 256, 1.0, "a").tasks.len();
        assert_eq!(n_small, n_again);
        // A different dump through the *same* cache must re-collect, not
        // serve the stale small-dump features.
        let n_large = cache.features(&mapper, &large, &opts, 256, 1.0, "a").tasks.len();
        assert_ne!(n_small, n_large);
        assert_eq!(n_large, large.reads.len());
        // Changing only the base options also invalidates.
        let other_opts = MappingOptions { batch_size: opts.batch_size + 1, ..opts.clone() };
        let fresh = FeatureCache::default()
            .features(&mapper, &large, &other_opts, 256, 1.0, "a")
            .tasks
            .len();
        let mut cache2 = cache;
        let swapped = cache2.features(&mapper, &large, &other_opts, 256, 1.0, "a").tasks.len();
        assert_eq!(swapped, fresh);
    }
}
