//! Autotuning harness and statistics (§VII-B of the paper).
//!
//! miniGiraffe exposes three tuning parameters — scheduler, batch size,
//! and initial CachedGBWT capacity. This crate sweeps their full
//! cross-product ([`ParamSpace`]) with either real host runs or the
//! simulated machines of [`mg_perf`] ([`sweep`]), and analyses the results:
//! best/worst/default comparisons, geometric-mean speedups, and a one-way
//! ANOVA per parameter ([`stats`]). The [`controller`] module closes the
//! loop online: an epoch-based feedback controller drives the same knobs
//! from live mg-obs deltas while serving, converging toward the sweep
//! optimum with zero a priori configuration.

pub mod adaptive;
pub mod controller;
pub mod space;
pub mod stats;
pub mod sweep;

pub use adaptive::{
    run_adaptive_map, run_adaptive_parent, AdaptiveMapRun, AdaptiveParentRun, AdaptiveReport,
};
pub use controller::{
    Controller, ControllerConfig, ControllerStats, Decision, EpochStats, KnobBounds, KnobState,
};
pub use space::{ParamSpace, TuningPoint};
pub use stats::{f_distribution_p_value, geometric_mean, one_way_anova, Anova};
pub use sweep::{
    run_host_sweep, run_host_sweep_metrics, run_sim_sweep, run_sim_sweep_cached, FeatureCache,
    SweepResult, TuningRecord,
};
