//! Autotuning harness and statistics (§VII-B of the paper).
//!
//! miniGiraffe exposes three tuning parameters — scheduler, batch size,
//! and initial CachedGBWT capacity. This crate sweeps their full
//! cross-product ([`ParamSpace`]) with either real host runs or the
//! simulated machines of [`mg_perf`] ([`sweep`]), and analyses the results:
//! best/worst/default comparisons, geometric-mean speedups, and a one-way
//! ANOVA per parameter ([`stats`]).

pub mod space;
pub mod stats;
pub mod sweep;

pub use space::{ParamSpace, TuningPoint};
pub use stats::{f_distribution_p_value, geometric_mean, one_way_anova, Anova};
pub use sweep::{
    run_host_sweep, run_host_sweep_metrics, run_sim_sweep, run_sim_sweep_cached, FeatureCache,
    SweepResult, TuningRecord,
};
