//! The autotuning parameter space (§VII-B).
//!
//! Five parameters are swept exhaustively (full cross-product): the
//! scheduler (OpenMP-dynamic vs the in-house work-stealing), the batch size
//! (powers of two, 128–2048), the initial CachedGBWT capacity (bounded
//! to ≤ 4096 after the Figure 6 preliminary showed larger capacities
//! degrade), the shared hot-tier budget (0 disables the shared tier), and
//! the extension anchor batch (0/1 disables the batched dataflow).
//! The defaults are Giraffe's: OpenMP, 512, 256, plus a 256-record hot
//! tier and 16-anchor extension batches.

use mg_sched::SchedulerKind;

/// One configuration point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TuningPoint {
    /// Scheduler implementation.
    pub scheduler: SchedulerKind,
    /// Reads per scheduling batch.
    pub batch_size: usize,
    /// Initial CachedGBWT capacity.
    pub cache_capacity: usize,
    /// Shared pre-decoded hot-tier budget in records (0 = disabled).
    pub hot_tier_budget: usize,
    /// Extension anchor batch size (0/1 = unbatched anchor order).
    pub extend_batch: usize,
}

impl std::fmt::Display for TuningPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/bs{}/cc{}/ht{}/xb{}",
            self.scheduler,
            self.batch_size,
            self.cache_capacity,
            self.hot_tier_budget,
            self.extend_batch
        )
    }
}

impl TuningPoint {
    /// Giraffe's default configuration: OpenMP-dynamic, batch 512,
    /// capacity 256, hot tier 256, extension batch 16.
    pub fn default_config() -> Self {
        TuningPoint {
            scheduler: SchedulerKind::Dynamic,
            batch_size: 512,
            cache_capacity: 256,
            hot_tier_budget: 256,
            extend_batch: 16,
        }
    }
}

/// The sweep space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpace {
    /// Schedulers considered.
    pub schedulers: Vec<SchedulerKind>,
    /// Batch sizes considered.
    pub batch_sizes: Vec<usize>,
    /// Cache capacities considered.
    pub cache_capacities: Vec<usize>,
    /// Hot-tier budgets considered (0 = per-thread tier only).
    pub hot_tier_budgets: Vec<usize>,
    /// Extension anchor batches considered (1 = unbatched).
    pub extend_batches: Vec<usize>,
}

impl Default for ParamSpace {
    /// The paper's space: {OpenMP, work-stealing} × {128..2048} ×
    /// {256..4096}, powers of two, plus hot-tier budgets {0, 256, 1024}
    /// and extension batches {1, 16, 64}.
    fn default() -> Self {
        ParamSpace {
            schedulers: SchedulerKind::TUNED.to_vec(),
            batch_sizes: vec![128, 256, 512, 1024, 2048],
            cache_capacities: vec![256, 512, 1024, 2048, 4096],
            hot_tier_budgets: vec![0, 256, 1024],
            extend_batches: vec![1, 16, 64],
        }
    }
}

impl ParamSpace {
    /// A reduced space for tests and quick runs.
    pub fn small() -> Self {
        ParamSpace {
            schedulers: SchedulerKind::TUNED.to_vec(),
            batch_sizes: vec![128, 512],
            cache_capacities: vec![256, 1024],
            hot_tier_budgets: vec![0, 256],
            extend_batches: vec![1, 16],
        }
    }

    /// Number of points in the cross-product.
    pub fn len(&self) -> usize {
        self.schedulers.len()
            * self.batch_sizes.len()
            * self.cache_capacities.len()
            * self.hot_tier_budgets.len()
            * self.extend_batches.len()
    }

    /// Returns `true` for an empty space.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the full cross-product in deterministic order.
    pub fn points(&self) -> impl Iterator<Item = TuningPoint> + '_ {
        self.schedulers.iter().flat_map(move |&scheduler| {
            self.batch_sizes.iter().flat_map(move |&batch_size| {
                self.cache_capacities.iter().flat_map(move |&cache_capacity| {
                    self.hot_tier_budgets.iter().flat_map(move |&hot_tier_budget| {
                        self.extend_batches.iter().map(move |&extend_batch| TuningPoint {
                            scheduler,
                            batch_size,
                            cache_capacity,
                            hot_tier_budget,
                            extend_batch,
                        })
                    })
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_matches_paper() {
        let space = ParamSpace::default();
        assert_eq!(space.len(), 2 * 5 * 5 * 3 * 3);
        assert!(space.batch_sizes.contains(&128));
        assert!(space.batch_sizes.contains(&2048));
        assert!(space.cache_capacities.iter().all(|&c| c <= 4096));
        assert!(space.hot_tier_budgets.contains(&0));
        assert!(space.extend_batches.contains(&1));
    }

    #[test]
    fn points_cover_cross_product_without_duplicates() {
        let space = ParamSpace::default();
        let points: Vec<TuningPoint> = space.points().collect();
        assert_eq!(points.len(), space.len());
        let distinct: std::collections::HashSet<_> = points.iter().collect();
        assert_eq!(distinct.len(), points.len());
    }

    #[test]
    fn default_config_is_giraffes() {
        let d = TuningPoint::default_config();
        assert_eq!(d.scheduler, SchedulerKind::Dynamic);
        assert_eq!(d.batch_size, 512);
        assert_eq!(d.cache_capacity, 256);
        assert_eq!(d.hot_tier_budget, 256);
        assert_eq!(d.extend_batch, 16);
    }

    #[test]
    fn display_is_parseable_by_eye() {
        let p = TuningPoint::default_config();
        assert_eq!(p.to_string(), "openmp-dynamic/bs512/cc256/ht256/xb16");
    }
}
