//! Explicit-SIMD kernels with runtime CPU-feature dispatch.
//!
//! This crate is the bottom of the kernel dependency stack: the 2-bit lane
//! primitives the packed sequence store is built on, the splitmix k-mer
//! hash the minimizer scheme orders windows with, and 256-bit wide variants
//! of both, selected at runtime by [`simd_tier`].
//!
//! The dispatch ladder has three rungs:
//!
//! * **Scalar** — the byte-at-a-time oracle paths (`walk_scalar`, per-window
//!   hashing). Selected by `MG_FORCE_SCALAR=1`/`MG_SIMD=off`; also what the
//!   cache simulator's active probes pin, independent of this crate.
//! * **SWAR** — 64-bit word-parallel lanes ([`mismatch_lanes`] over XORed
//!   packed words). The portable production floor; also the fallback when
//!   the `simd` cargo feature is off or the CPU lacks AVX2.
//! * **AVX2** — four packed words (128 bases) per XOR-compare step
//!   ([`wide_mismatch_lanes`]) and four k-mer hashes per step
//!   ([`hash_kmers_x4`]), via `std::arch` intrinsics behind
//!   `is_x86_feature_detected!`.
//!
//! Every wide helper is bit-identical to its narrow counterpart — the wide
//! multiply decomposes the 64-bit wrapping products into `vpmuludq`
//! 32×32→64 partial products, so even the hash mix matches exactly. The
//! unit and property tests below pin that equality on whatever tier the
//! host dispatches to.

use std::sync::atomic::{AtomicU8, Ordering};

/// Mask selecting the low bit of every 2-bit lane in a word.
pub const LANES_LO: u64 = 0x5555_5555_5555_5555;

/// Bases per packed word.
pub const BASES_PER_WORD: usize = 32;

/// Packed words per 256-bit wide comparison block.
pub const WORDS_PER_BLOCK: usize = 4;

/// Folds an XOR of two packed words to one set low-lane bit per
/// mismatching base: lane `j` of the result is `0b01` iff the `j`-th bases
/// differ.
#[inline(always)]
pub fn mismatch_lanes(xor: u64) -> u64 {
    (xor | (xor >> 1)) & LANES_LO
}

/// Masks a lane word down to its first `n` lanes (`n <= 32`).
#[inline(always)]
pub fn keep_lanes(lanes: u64, n: usize) -> u64 {
    debug_assert!(n <= BASES_PER_WORD);
    if n >= BASES_PER_WORD {
        lanes
    } else {
        lanes & ((1u64 << (2 * n)) - 1)
    }
}

/// Extracts the 32 bases beginning at base offset `start` from a packed
/// buffer, crossing the word boundary when unaligned. Bases past the end of
/// `words` read as zero; callers bound the live span with [`keep_lanes`].
#[inline(always)]
pub fn word_at(words: &[u64], start: usize) -> u64 {
    let w = start / BASES_PER_WORD;
    let b = (start % BASES_PER_WORD) * 2;
    let lo = words.get(w).copied().unwrap_or(0) >> b;
    if b == 0 {
        lo
    } else {
        lo | (words.get(w + 1).copied().unwrap_or(0) << (64 - b))
    }
}

/// Extracts [`WORDS_PER_BLOCK`] consecutive 32-base windows starting at
/// base offset `start`: `out[j]` equals
/// `word_at(words, start + j * BASES_PER_WORD)`. The windows share one bit
/// offset within their source words, which is what the AVX2 variant
/// ([`block_at_avx2`]) exploits; this portable version is the oracle.
#[inline]
pub fn block_at(words: &[u64], start: usize, out: &mut [u64; WORDS_PER_BLOCK]) {
    for (j, slot) in out.iter_mut().enumerate() {
        *slot = word_at(words, start + j * BASES_PER_WORD);
    }
}

/// [`block_at`] with the four window extractions fused into one vector
/// funnel shift: the block's source words `words[w..w + 5]` are loaded as
/// two overlapping 256-bit vectors and combined as
/// `(lo >> b) | (hi << (64 - b))` — five instructions replacing four
/// scalar two-word stitches. Falls back to the scalar loop when the five
/// source words are not all in bounds (near the end of a buffer), so the
/// result is **always** identical to [`block_at`].
///
/// # Safety
///
/// The caller must only reach this on a CPU where AVX2 was detected; on
/// builds without the `simd` feature (or off x86-64) the body is the
/// scalar loop and carries no requirement.
#[inline]
#[cfg_attr(all(feature = "simd", target_arch = "x86_64"), target_feature(enable = "avx2"))]
pub unsafe fn block_at_avx2(words: &[u64], start: usize, out: &mut [u64; WORDS_PER_BLOCK]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        let w = start / BASES_PER_WORD;
        let b = (start % BASES_PER_WORD) * 2;
        if w + WORDS_PER_BLOCK < words.len() {
            // SAFETY: the bounds check above covers both 4-word loads
            // (`w..w + 4` and `w + 1..w + 5`); AVX2 is the caller's
            // contract. `_mm256_sll_epi64` zeroes lanes for a 64-bit shift
            // count, so the aligned case (`b == 0`) degrades to `lo`.
            unsafe {
                use std::arch::x86_64::*;
                let lo = _mm256_loadu_si256(words.as_ptr().add(w).cast());
                let hi = _mm256_loadu_si256(words.as_ptr().add(w + 1).cast());
                let shr = _mm_cvtsi64_si128(b as i64);
                let shl = _mm_cvtsi64_si128(64 - b as i64);
                let win = _mm256_or_si256(_mm256_srl_epi64(lo, shr), _mm256_sll_epi64(hi, shl));
                _mm256_storeu_si256(out.as_mut_ptr().cast(), win);
            }
            return;
        }
    }
    block_at(words, start, out);
}

/// Gathers one [`WORDS_PER_BLOCK`]-word window from each packed buffer
/// (`read_words` at base `rbase`, `graph_words` at base `gbase`) and
/// lane-folds their XOR: `out[j]` holds the mismatch lanes of 32 bases
/// starting `j` words into the window, exactly as if assembled with
/// [`word_at`] and folded with [`mismatch_lanes`].
///
/// At [`SimdTier::Avx2`] the whole pipeline — two funnel-shift gathers,
/// the XOR, and the fold — runs on 256-bit registers inside **one** call
/// boundary, so a block costs one `#[target_feature]` call rather than
/// eight scalar window stitches. Below AVX2 it is the scalar composition
/// of the same steps. Identical bits on every rung.
#[inline]
pub fn wide_gather_mismatch(
    tier: SimdTier,
    read_words: &[u64],
    graph_words: &[u64],
    rbase: usize,
    gbase: usize,
    out: &mut [u64; WORDS_PER_BLOCK],
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if tier == SimdTier::Avx2 {
        // SAFETY: an Avx2 tier is only ever produced by `hardware_tier`,
        // which checked `is_x86_feature_detected!("avx2")`.
        unsafe { gather_mismatch_avx2(read_words, graph_words, rbase, gbase, out) };
        return;
    }
    let _ = tier;
    let mut rw = [0u64; WORDS_PER_BLOCK];
    let mut gw = [0u64; WORDS_PER_BLOCK];
    block_at(read_words, rbase, &mut rw);
    block_at(graph_words, gbase, &mut gw);
    for j in 0..WORDS_PER_BLOCK {
        out[j] = mismatch_lanes(rw[j] ^ gw[j]);
    }
}

/// The AVX2 body of [`wide_gather_mismatch`]: [`block_at_avx2`] twice and
/// [`wide_mismatch_lanes_avx2`] once, all inlined into this one feature
/// region so the intermediate windows never leave `ymm` registers.
///
/// # Safety
///
/// Same contract as [`block_at_avx2`]: only reachable once AVX2 was
/// detected (any [`SimdTier::Avx2`] proves it).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn gather_mismatch_avx2(
    read_words: &[u64],
    graph_words: &[u64],
    rbase: usize,
    gbase: usize,
    out: &mut [u64; WORDS_PER_BLOCK],
) {
    let mut rw = [0u64; WORDS_PER_BLOCK];
    let mut gw = [0u64; WORDS_PER_BLOCK];
    // SAFETY: AVX2 is this function's own contract.
    unsafe {
        block_at_avx2(read_words, rbase, &mut rw);
        block_at_avx2(graph_words, gbase, &mut gw);
        wide_mismatch_lanes_avx2(&rw, &gw, out);
    }
}

/// Invertible 64-bit hash (Thomas Wang / minimap2 style), used to order
/// k-mers within a minimizer window so minimizers are spread
/// pseudo-randomly. [`hash_kmers_x4`] is the wide variant; both produce
/// identical bits for identical inputs.
#[inline]
pub fn hash_kmer(kmer: u64) -> u64 {
    let mut x = kmer.wrapping_add(SPLITMIX_GOLDEN);
    x = (x ^ (x >> 30)).wrapping_mul(SPLITMIX_M1);
    x = (x ^ (x >> 27)).wrapping_mul(SPLITMIX_M2);
    x ^ (x >> 31)
}

const SPLITMIX_GOLDEN: u64 = 0x9E3779B97F4A7C15;
const SPLITMIX_M1: u64 = 0xBF58476D1CE4E5B9;
const SPLITMIX_M2: u64 = 0x94D049BB133111EB;

/// A rung of the dispatch ladder, ordered weakest to widest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Byte-at-a-time oracle paths; no word-parallel comparison at all.
    Scalar = 0,
    /// 64-bit word-parallel lanes (the portable production floor).
    Swar = 1,
    /// 256-bit `std::arch` intrinsics (four packed words per step).
    Avx2 = 2,
}

impl SimdTier {
    /// Stable display name (`scalar` / `swar` / `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Swar => "swar",
            SimdTier::Avx2 => "avx2",
        }
    }

    /// The tier as a small integer for gauges (0 = scalar, 2 = AVX2).
    pub fn as_index(self) -> u64 {
        self as u64
    }

    fn from_u8(v: u8) -> SimdTier {
        match v {
            0 => SimdTier::Scalar,
            1 => SimdTier::Swar,
            _ => SimdTier::Avx2,
        }
    }
}

impl std::fmt::Display for SimdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The widest tier this build + CPU supports, ignoring the environment.
pub fn hardware_tier() -> SimdTier {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") {
        return SimdTier::Avx2;
    }
    SimdTier::Swar
}

/// Parses the environment cap: `MG_FORCE_SCALAR` (any value but `0`/empty)
/// pins [`SimdTier::Scalar`]; otherwise `MG_SIMD` may name a tier
/// (`off`/`scalar`, `swar`, `avx2`). Unset or unrecognized means no cap.
fn env_cap(force_scalar: Option<&str>, mg_simd: Option<&str>) -> SimdTier {
    if force_scalar.is_some_and(|v| !v.is_empty() && v != "0") {
        return SimdTier::Scalar;
    }
    match mg_simd {
        Some("off") | Some("scalar") => SimdTier::Scalar,
        Some("swar") => SimdTier::Swar,
        _ => SimdTier::Avx2,
    }
}

const TIER_UNSET: u8 = u8::MAX;
static TIER: AtomicU8 = AtomicU8::new(TIER_UNSET);

/// The globally dispatched tier: `min(environment cap, hardware)`, detected
/// once per process and cached (the probe is one relaxed atomic load after
/// the first call).
pub fn simd_tier() -> SimdTier {
    let cached = TIER.load(Ordering::Relaxed);
    if cached != TIER_UNSET {
        return SimdTier::from_u8(cached);
    }
    let force = std::env::var("MG_FORCE_SCALAR").ok();
    let simd = std::env::var("MG_SIMD").ok();
    let tier = env_cap(force.as_deref(), simd.as_deref()).min(hardware_tier());
    TIER.store(tier as u8, Ordering::Relaxed);
    tier
}

/// The tier a kernel call should run at: an explicit per-call override
/// (clamped to what the hardware supports, so requesting AVX2 on a SWAR
/// host degrades instead of faulting) or, absent one, the global
/// [`simd_tier`]. Benches and differential tests pass overrides to compare
/// rungs inside one process; production passes `None`.
#[inline]
pub fn effective_tier(override_tier: Option<SimdTier>) -> SimdTier {
    match override_tier {
        Some(t) => t.min(hardware_tier()),
        None => simd_tier(),
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use std::arch::x86_64::*;

    /// 64×64→64 wrapping multiply by a constant, decomposed into
    /// `vpmuludq` 32×32→64 partial products:
    /// `(xl + xh·2³²)·(cl + ch·2³²) ≡ xl·cl + (xh·cl + xl·ch)·2³² (mod 2⁶⁴)`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul64_lo(x: __m256i, c: u64) -> __m256i {
        let cl = _mm256_set1_epi64x((c & 0xFFFF_FFFF) as i64);
        let ch = _mm256_set1_epi64x((c >> 32) as i64);
        // _mm256_mul_epu32 reads the low 32 bits of each 64-bit lane.
        let lo = _mm256_mul_epu32(x, cl);
        let xh = _mm256_srli_epi64::<32>(x);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(xh, cl), _mm256_mul_epu32(x, ch));
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross))
    }

    /// Four packed words XOR-compared and lane-folded in one 256-bit step.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn mismatch_lanes_x4(read: &[u64; 4], graph: &[u64; 4], out: &mut [u64; 4]) {
        let r = _mm256_loadu_si256(read.as_ptr().cast());
        let g = _mm256_loadu_si256(graph.as_ptr().cast());
        let x = _mm256_xor_si256(r, g);
        let folded = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_srli_epi64::<1>(x)),
            _mm256_set1_epi64x(super::LANES_LO as i64),
        );
        _mm256_storeu_si256(out.as_mut_ptr().cast(), folded);
    }

    /// Four splitmix k-mer hashes in one 256-bit step, bit-identical to
    /// four [`super::hash_kmer`] calls.
    #[target_feature(enable = "avx2")]
    pub unsafe fn hash_kmers_x4(kmers: &[u64; 4], out: &mut [u64; 4]) {
        let mut x = _mm256_add_epi64(
            _mm256_loadu_si256(kmers.as_ptr().cast()),
            _mm256_set1_epi64x(super::SPLITMIX_GOLDEN as i64),
        );
        x = mul64_lo(_mm256_xor_si256(x, _mm256_srli_epi64::<30>(x)), super::SPLITMIX_M1);
        x = mul64_lo(_mm256_xor_si256(x, _mm256_srli_epi64::<27>(x)), super::SPLITMIX_M2);
        x = _mm256_xor_si256(x, _mm256_srli_epi64::<31>(x));
        _mm256_storeu_si256(out.as_mut_ptr().cast(), x);
    }
}

/// Lane-folds four packed word pairs (`read[i] ^ graph[i]`, 128 bases) in
/// one step when `tier` is [`SimdTier::Avx2`], else word-by-word SWAR.
/// Callers are responsible for only passing an AVX2 tier obtained from
/// [`effective_tier`]/[`simd_tier`], which clamp to the detected hardware.
///
/// This entry re-checks the tier per call, which costs a branch and — more
/// importantly — a non-inlinable `#[target_feature]` call boundary per
/// block. Hot loops that already hoisted dispatch (one tier decision per
/// walk) should call [`wide_mismatch_lanes_avx2`] from inside their own
/// `#[target_feature(enable = "avx2")]` region instead, where it inlines.
#[inline]
pub fn wide_mismatch_lanes(tier: SimdTier, read: &[u64; 4], graph: &[u64; 4], out: &mut [u64; 4]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if tier == SimdTier::Avx2 {
        // SAFETY: an Avx2 tier is only ever produced by `hardware_tier`,
        // which checked `is_x86_feature_detected!("avx2")`.
        unsafe { wide_mismatch_lanes_avx2(read, graph, out) };
        return;
    }
    let _ = tier;
    for i in 0..WORDS_PER_BLOCK {
        out[i] = mismatch_lanes(read[i] ^ graph[i]);
    }
}

/// The AVX2 rung of [`wide_mismatch_lanes`] as a direct entry, for callers
/// that hoist tier dispatch out of their block loop. Marked
/// `#[target_feature(enable = "avx2")]` so it inlines into callers inside
/// an AVX2 region (the dispatching wrapper cannot — the feature boundary
/// pins it as an out-of-line call, which costs a staging round-trip through
/// memory per 128-base block).
///
/// On builds without the `simd` feature (or off x86-64) this degrades to
/// the SWAR fold so call sites need no `cfg`; it stays `unsafe fn` either
/// way for a uniform signature.
///
/// # Safety
///
/// The caller must only reach this on a CPU where AVX2 was detected (any
/// [`SimdTier::Avx2`] from [`effective_tier`]/[`simd_tier`] proves that).
/// The fallback body has no such requirement.
#[inline]
#[cfg_attr(all(feature = "simd", target_arch = "x86_64"), target_feature(enable = "avx2"))]
pub unsafe fn wide_mismatch_lanes_avx2(read: &[u64; 4], graph: &[u64; 4], out: &mut [u64; 4]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    // SAFETY: forwarded from the caller; same feature contract.
    unsafe {
        avx2::mismatch_lanes_x4(read, graph, out)
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    for i in 0..WORDS_PER_BLOCK {
        out[i] = mismatch_lanes(read[i] ^ graph[i]);
    }
}

/// Hashes four packed k-mers per step on the global [`simd_tier`], falling
/// back to four scalar [`hash_kmer`] calls below AVX2. Identical bits
/// either way.
#[inline]
pub fn hash_kmers_x4(kmers: &[u64; 4], out: &mut [u64; 4]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_tier() == SimdTier::Avx2 {
        // SAFETY: tier Avx2 implies the runtime AVX2 check passed.
        unsafe { avx2::hash_kmers_x4(kmers, out) };
        return;
    }
    for i in 0..WORDS_PER_BLOCK {
        out[i] = hash_kmer(kmers[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn tier_order_and_names() {
        assert!(SimdTier::Scalar < SimdTier::Swar);
        assert!(SimdTier::Swar < SimdTier::Avx2);
        assert_eq!(SimdTier::Scalar.name(), "scalar");
        assert_eq!(SimdTier::Swar.name(), "swar");
        assert_eq!(SimdTier::Avx2.name(), "avx2");
        assert_eq!(SimdTier::Avx2.as_index(), 2);
        assert_eq!(SimdTier::Avx2.to_string(), "avx2");
    }

    #[test]
    fn env_cap_parses_force_scalar_and_mg_simd() {
        assert_eq!(env_cap(Some("1"), None), SimdTier::Scalar);
        assert_eq!(env_cap(Some("yes"), Some("avx2")), SimdTier::Scalar);
        assert_eq!(env_cap(Some("0"), None), SimdTier::Avx2);
        assert_eq!(env_cap(Some(""), None), SimdTier::Avx2);
        assert_eq!(env_cap(None, Some("off")), SimdTier::Scalar);
        assert_eq!(env_cap(None, Some("scalar")), SimdTier::Scalar);
        assert_eq!(env_cap(None, Some("swar")), SimdTier::Swar);
        assert_eq!(env_cap(None, Some("avx2")), SimdTier::Avx2);
        assert_eq!(env_cap(None, Some("bogus")), SimdTier::Avx2);
        assert_eq!(env_cap(None, None), SimdTier::Avx2);
    }

    #[test]
    fn dispatch_never_exceeds_hardware() {
        let hw = hardware_tier();
        assert!(hw >= SimdTier::Swar, "SWAR is the portable floor");
        assert!(simd_tier() <= hw);
        assert_eq!(effective_tier(Some(SimdTier::Avx2)), hw.min(SimdTier::Avx2));
        assert_eq!(effective_tier(Some(SimdTier::Scalar)), SimdTier::Scalar);
        assert_eq!(effective_tier(Some(SimdTier::Swar)), SimdTier::Swar);
        assert_eq!(effective_tier(None), simd_tier());
    }

    #[cfg(not(feature = "simd"))]
    #[test]
    fn feature_off_caps_at_swar() {
        assert_eq!(hardware_tier(), SimdTier::Swar);
    }

    #[test]
    fn wide_mismatch_matches_swar_on_random_words() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x51AD);
        let tier = simd_tier();
        for _ in 0..2000 {
            let r: [u64; 4] = std::array::from_fn(|_| rng.random());
            let g: [u64; 4] = std::array::from_fn(|_| rng.random());
            let mut wide = [0u64; 4];
            wide_mismatch_lanes(tier, &r, &g, &mut wide);
            let narrow: [u64; 4] = std::array::from_fn(|i| mismatch_lanes(r[i] ^ g[i]));
            assert_eq!(wide, narrow);
        }
    }

    #[test]
    fn block_gather_matches_word_at_everywhere() {
        // Covers both the funnel fast path and the near-end scalar
        // fallback: every start offset over buffers of 0..12 words.
        let callable = !cfg!(all(feature = "simd", target_arch = "x86_64"))
            || hardware_tier() >= SimdTier::Avx2;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xB10C);
        for n_words in 0..12usize {
            let words: Vec<u64> = (0..n_words).map(|_| rng.random()).collect();
            for start in 0..(n_words + 2) * BASES_PER_WORD {
                let mut blk = [0u64; WORDS_PER_BLOCK];
                block_at(&words, start, &mut blk);
                for (j, &w) in blk.iter().enumerate() {
                    assert_eq!(w, word_at(&words, start + j * BASES_PER_WORD));
                }
                if callable {
                    let mut wide = [0u64; WORDS_PER_BLOCK];
                    // SAFETY: AVX2 detected (or the fallback body is active).
                    unsafe { block_at_avx2(&words, start, &mut wide) };
                    assert_eq!(wide, blk, "n_words {n_words} start {start}");
                }
            }
        }
    }

    #[test]
    fn direct_avx2_entry_matches_swar() {
        // Skip only on a simd build whose host lacks AVX2; everywhere else
        // the entry is callable (intrinsics proven by detection, or the
        // SWAR fallback body is compiled in).
        if cfg!(all(feature = "simd", target_arch = "x86_64")) && hardware_tier() < SimdTier::Avx2
        {
            return;
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xD15);
        for _ in 0..2000 {
            let r: [u64; 4] = std::array::from_fn(|_| rng.random());
            let g: [u64; 4] = std::array::from_fn(|_| rng.random());
            let mut wide = [0u64; 4];
            // SAFETY: AVX2 detected above (or the fallback body is active).
            unsafe { wide_mismatch_lanes_avx2(&r, &g, &mut wide) };
            let narrow: [u64; 4] = std::array::from_fn(|i| mismatch_lanes(r[i] ^ g[i]));
            assert_eq!(wide, narrow);
        }
    }

    #[test]
    fn wide_hash_matches_scalar_on_random_kmers() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x4A5B);
        for _ in 0..2000 {
            let k: [u64; 4] = std::array::from_fn(|_| rng.random());
            let mut wide = [0u64; 4];
            hash_kmers_x4(&k, &mut wide);
            let narrow: [u64; 4] = std::array::from_fn(|i| hash_kmer(k[i]));
            assert_eq!(wide, narrow);
        }
    }

    #[test]
    fn wide_hash_matches_scalar_on_edge_values() {
        for &v in &[0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63, SPLITMIX_GOLDEN, !SPLITMIX_GOLDEN] {
            let k = [v, v.wrapping_add(1), v.wrapping_mul(3), !v];
            let mut wide = [0u64; 4];
            hash_kmers_x4(&k, &mut wide);
            for i in 0..4 {
                assert_eq!(wide[i], hash_kmer(k[i]), "value {:#x}", k[i]);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_wide_block_equals_four_narrow_words(
            words in proptest::collection::vec(any::<u64>(), 8..9),
        ) {
            let r: [u64; 4] = words[..4].try_into().unwrap();
            let g: [u64; 4] = words[4..8].try_into().unwrap();
            let mut wide = [0u64; 4];
            wide_mismatch_lanes(simd_tier(), &r, &g, &mut wide);
            for i in 0..4 {
                prop_assert_eq!(wide[i], mismatch_lanes(r[i] ^ g[i]));
            }
        }

        #[test]
        fn prop_wide_hash_equals_scalar(
            words in proptest::collection::vec(any::<u64>(), 4..5),
        ) {
            let k: [u64; 4] = words[..4].try_into().unwrap();
            let mut wide = [0u64; 4];
            hash_kmers_x4(&k, &mut wide);
            for i in 0..4 {
                prop_assert_eq!(wide[i], hash_kmer(k[i]));
            }
        }

        #[test]
        fn prop_word_at_reads_lanes(words in proptest::collection::vec(any::<u64>(), 0..6), start in 0usize..200) {
            let w = word_at(&words, start);
            for j in 0..BASES_PER_WORD {
                let base = start + j;
                let expect = words
                    .get(base / BASES_PER_WORD)
                    .map_or(0, |&word| (word >> (2 * (base % BASES_PER_WORD))) & 0b11);
                prop_assert_eq!((w >> (2 * j)) & 0b11, expect);
            }
        }
    }
}
