//! Property suite for the serving wire protocol.
//!
//! The server reads these frames from the open network, so the decoder's
//! contract is absolute: every encodable frame round-trips byte-exactly
//! through any chunking of the stream, and every byte sequence that is
//! *not* a frame — truncations, oversized lengths, mutated kinds, raw
//! garbage — comes back as a typed [`ProtoError`], never a panic and
//! never a wrong frame.

use mg_server::protocol::{
    decode_frame, Frame, FrameDecoder, JobSummary, ProtoError, HEADER_LEN, MAX_FRAME,
};
use proptest::prelude::*;

/// Builds one frame from generator raws. `kind` selects the variant;
/// strings are forced to lowercase ASCII so they are always valid UTF-8.
fn build_frame(kind: usize, a: u64, b: u64, text: &[u8], blob: &[u8]) -> Frame {
    let text: String = text.iter().map(|c| char::from(b'a' + c % 26)).collect();
    match kind % 11 {
        0 => Frame::Ping,
        1 => Frame::Stats,
        2 => Frame::Shutdown,
        3 => Frame::Pong,
        4 => Frame::Submit { name: text, fastq: blob.to_vec() },
        5 => Frame::Accept { job: a },
        6 => Frame::Busy { reason: text },
        7 => Frame::Gaf { job: a, data: blob.to_vec() },
        8 => Frame::Done {
            job: a,
            summary: JobSummary {
                reads: b,
                chunks: a ^ b,
                gaf_bytes: a.wrapping_mul(3),
                queue_wait_us: b.rotate_left(7),
                latency_us: a.wrapping_add(b),
            },
        },
        9 => Frame::Error { job: a, message: text },
        _ => Frame::StatsReply { json: text },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any frame, encoded, decodes back to itself — via the strict
    /// one-shot decoder and via the push decoder under arbitrary
    /// chunking.
    #[test]
    fn frames_round_trip_under_any_chunking(
        specs in proptest::collection::vec(
            (
                0usize..11,
                any::<u64>(),
                any::<u64>(),
                proptest::collection::vec(any::<u8>(), 0..12),
                proptest::collection::vec(any::<u8>(), 0..48),
            ),
            1..8,
        ),
        chunk in 1usize..17,
    ) {
        let frames: Vec<Frame> = specs
            .iter()
            .map(|(k, a, b, t, d)| build_frame(*k, *a, *b, t, d))
            .collect();
        let mut stream = Vec::new();
        for frame in &frames {
            let bytes = frame.encode();
            let (one, used) = decode_frame(&bytes).expect("own encoding decodes");
            prop_assert_eq!(&one, frame);
            prop_assert_eq!(used, bytes.len());
            stream.extend_from_slice(&bytes);
        }
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            decoder.push(piece);
            while let Some(frame) = decoder.next_frame().expect("valid stream") {
                got.push(frame);
            }
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(decoder.pending_bytes(), 0);
    }

    /// Cutting a valid frame anywhere before its end is `Truncated` for
    /// the strict decoder and "wait for more" (no frame, no error) for
    /// the push decoder.
    #[test]
    fn truncation_is_reported_not_misparsed(
        spec in (
            0usize..11,
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..12),
            proptest::collection::vec(any::<u8>(), 1..48),
        ),
        cut_seed in any::<u64>(),
    ) {
        let (kind, a, b, text, blob) = spec;
        let frame = build_frame(kind, a, b, &text, &blob);
        let bytes = frame.encode();
        let cut = 1 + (cut_seed as usize) % (bytes.len() - 1).max(1);
        let prefix = &bytes[..cut.min(bytes.len() - 1)];
        prop_assert_eq!(decode_frame(prefix), Err(ProtoError::Truncated));
        let mut decoder = FrameDecoder::new();
        decoder.push(prefix);
        prop_assert_eq!(decoder.next_frame(), Ok(None));
        // Completing the stream then yields exactly the original frame.
        decoder.push(&bytes[prefix.len()..]);
        prop_assert_eq!(decoder.next_frame(), Ok(Some(frame)));
    }

    /// A header announcing more than `MAX_FRAME` bytes is rejected from
    /// the header alone, whatever follows.
    #[test]
    fn oversized_lengths_are_rejected_early(
        kind in 0usize..11,
        extra in 1u32..1024,
        tail in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let valid_kind = build_frame(kind, 0, 0, &[], &[]).encode()[0];
        let len = MAX_FRAME + extra;
        let mut bytes = vec![valid_kind];
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&tail);
        prop_assert_eq!(decode_frame(&bytes), Err(ProtoError::Oversized { len }));
        let mut decoder = FrameDecoder::new();
        decoder.push(&bytes);
        prop_assert_eq!(decoder.next_frame(), Err(ProtoError::Oversized { len }));
    }

    /// Arbitrary byte soup never panics either decoder: every outcome is
    /// a frame, a wait-for-more, or a typed error.
    #[test]
    fn garbage_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        chunk in 1usize..9,
    ) {
        // Strict decoder: any Result is acceptable; reaching it is the test.
        let _ = decode_frame(&bytes);
        // Push decoder, fed in small chunks: drain frames until it either
        // wants more bytes or reports a sticky error.
        let mut decoder = FrameDecoder::new();
        let mut poisoned = false;
        for piece in bytes.chunks(chunk) {
            if poisoned {
                break;
            }
            decoder.push(piece);
            loop {
                match decoder.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => {
                        poisoned = true;
                        break;
                    }
                }
            }
        }
    }

    /// Flipping the kind byte to anything outside the protocol is
    /// `UnknownKind`, not a misparse as some other frame.
    #[test]
    fn unknown_kinds_are_rejected(
        bad_kind in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let known = [0x01u8, 0x02, 0x03, 0x04, 0x81, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87];
        // The shim has no prop_assume; skip the few known-kind draws.
        if known.contains(&bad_kind) {
            return;
        }
        let mut bytes = vec![bad_kind];
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        prop_assert_eq!(decode_frame(&bytes), Err(ProtoError::UnknownKind(bad_kind)));
    }
}

/// The header constant the tests above lean on matches the wire layout.
#[test]
fn header_is_kind_plus_length() {
    assert_eq!(HEADER_LEN, 5);
    let bytes = Frame::Ping.encode();
    assert_eq!(bytes.len(), HEADER_LEN);
    assert_eq!(&bytes[1..5], &0u32.to_le_bytes());
}
