//! The concurrent-client lock on `minigiraffe serve`.
//!
//! Every test drives a real [`MappingServer`] — admission queue, chunk
//! executor, shared worker pool, hot tier — through the harness client
//! over in-process loopback (one test uses real TCP), and holds the
//! streamed GAF to the sequential one-shot oracle: for each job,
//! [`Parent::run`] over the same reads on a *separate* parent instance.
//! Byte equality there means multi-tenant interleaving changed nothing.

use std::sync::mpsc::channel;
use std::sync::Arc;

use mg_core::types::Workflow;
use mg_parent::{run_to_gaf, Parent, ParentOptions};
use mg_sched::SchedulerKind;
use mg_server::{
    drive_clients, BlockingClient, ClientPlan, Conn, JobOutcome, MappingServer, Profile,
    ServerConfig, ServerCtl,
};
use mg_workload::{write_fastq, FastqRecord, InputSetSpec, SyntheticInput};

/// Requests drain on drop so a failing assertion unwinds cleanly instead
/// of deadlocking the scope join on a server that never exits.
struct ShutdownGuard<'a>(&'a Arc<ServerCtl>);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.request_shutdown();
    }
}

fn fixture(seed: u64) -> SyntheticInput {
    SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), seed)
}

fn paired_fixture(seed: u64) -> SyntheticInput {
    let mut spec = InputSetSpec::tiny_for_tests();
    spec.workflow = Workflow::Paired;
    SyntheticInput::generate(&spec, seed)
}

fn raw_reads(input: &SyntheticInput) -> Vec<Vec<u8>> {
    input.sim_reads.iter().map(|r| r.bases.clone()).collect()
}

fn fastq_of(reads: &[Vec<u8>]) -> Vec<u8> {
    let records: Vec<FastqRecord> = reads
        .iter()
        .enumerate()
        .map(|(i, bases)| FastqRecord::with_uniform_quality(format!("r{i}"), bases.clone(), b'F'))
        .collect();
    let mut out = Vec::new();
    write_fastq(&mut out, &records).expect("in-memory FASTQ write");
    out
}

fn options(scheduler: SchedulerKind, threads: usize) -> ParentOptions {
    let mut options = ParentOptions::default();
    options.mapping.scheduler = scheduler;
    options.mapping.threads = threads;
    options.mapping.batch_size = 8;
    options
}

/// The sequential oracle: a one-shot batch run on a parent instance the
/// server never touches (own pool, own caches, own hot tier).
fn oracle_gaf(
    input: &SyntheticInput,
    reads: &[Vec<u8>],
    options: &ParentOptions,
    name: &str,
) -> String {
    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    run_to_gaf(input.gbz.graph(), &parent.run(reads, options), name)
}

fn expect_done(outcome: &JobOutcome) -> (&[u8], mg_server::JobSummary) {
    match outcome {
        JobOutcome::Done { gaf, summary } => (gaf, *summary),
        JobOutcome::Failed { message } => panic!("job failed: {message}"),
    }
}

/// Eight concurrent clients (mixed steady/bursty pacing), two jobs each,
/// over in-process loopback: every job's streamed GAF must be
/// byte-identical to the sequential oracle, with the hot tier built
/// exactly once across all sixteen jobs.
fn eight_clients_match_oracle(scheduler: SchedulerKind) {
    let input = fixture(11);
    let reads = raw_reads(&input);
    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    let options = options(scheduler, 2);
    let server = MappingServer::new(
        &parent,
        ServerConfig {
            options: options.clone(),
            chunk_reads: 8,
            max_pending: 32,
            max_active: 4,
            per_client_cap: 4,
            fault_job: None,
            write_timeout: std::time::Duration::from_secs(30),
        },
    );
    let slice = |c: usize, j: usize| {
        let lo = (c * 5 + j * 10) % 30;
        lo..lo + 10
    };
    let (tx, rx) = channel::<Conn>();
    std::thread::scope(|scope| {
        scope.spawn(|| server.serve(rx));
        let _guard = ShutdownGuard(server.ctl());
        let plans: Vec<ClientPlan> = (0..8)
            .map(|c| ClientPlan {
                label: format!("c{c}"),
                jobs: (0..2).map(|j| fastq_of(&reads[slice(c, j)])).collect(),
                profile: if c % 2 == 0 { Profile::Steady } else { Profile::Bursty },
                seed: 0x5eed ^ c as u64,
            })
            .collect();
        let reports = drive_clients(&tx, &plans);
        for (c, report) in reports.into_iter().enumerate() {
            let report = report.expect("client ran");
            assert_eq!(report.rejected, 0, "client {c} saw spurious BUSY");
            assert_eq!(report.outcomes.len(), 2);
            for (j, (name, outcome)) in report.outcomes.iter().enumerate() {
                let (gaf, summary) = expect_done(outcome);
                let expect = oracle_gaf(&input, &reads[slice(c, j)], &options, name);
                assert_eq!(
                    std::str::from_utf8(gaf).unwrap(),
                    expect,
                    "client {c} job {j} GAF diverged from the sequential oracle"
                );
                assert_eq!(summary.reads, 10);
                assert_eq!(summary.chunks, 2, "10 reads at chunk_reads=8 is 2 chunks");
                assert_eq!(summary.gaf_bytes, expect.len() as u64);
            }
        }
    });
    assert_eq!(server.ctl().jobs_completed(), 16);
    assert_eq!(server.ctl().jobs_failed(), 0);
    assert_eq!(
        server.ctl().hot_rebuilds(),
        1,
        "hot tier must be built once, then stay resident across all jobs"
    );
}

#[test]
fn eight_clients_match_oracle_dynamic() {
    eight_clients_match_oracle(SchedulerKind::Dynamic);
}

#[test]
fn eight_clients_match_oracle_work_stealing() {
    eight_clients_match_oracle(SchedulerKind::WorkStealing);
}

#[test]
fn ping_stats_and_clean_drain() {
    let input = fixture(3);
    let reads = raw_reads(&input);
    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    let options = options(SchedulerKind::Dynamic, 1);
    let server = MappingServer::new(
        &parent,
        ServerConfig { options: options.clone(), ..ServerConfig::default() },
    );
    let (tx, rx) = channel::<Conn>();
    std::thread::scope(|scope| {
        scope.spawn(|| server.serve(rx));
        let _guard = ShutdownGuard(server.ctl());
        let (server_side, client_side) = Conn::pair();
        tx.send(server_side).unwrap();
        let mut client = BlockingClient::new(client_side);
        client.ping().expect("PONG");
        let outcome = client.run_job("set", &fastq_of(&reads[..6])).expect("job ran");
        let (gaf, summary) = expect_done(&outcome);
        assert_eq!(
            std::str::from_utf8(gaf).unwrap(),
            oracle_gaf(&input, &reads[..6], &options, "set")
        );
        assert!(summary.latency_us >= summary.queue_wait_us);
        let stats = client.stats().expect("STATS");
        for needle in [
            "\"accepted\":1",
            "\"completed\":1",
            "\"failed\":0",
            "\"rejected_full\":0",
            "\"latency_us\":{\"count\":1",
            "\"hot_tier\":{\"rebuilds\":1}",
            "\"draining\":false",
        ] {
            assert!(stats.contains(needle), "STATS missing {needle}: {stats}");
        }
        client.shutdown().expect("SHUTDOWN sent");
    });
    assert!(server.ctl().stopped());
}

#[test]
fn real_tcp_round_trip() {
    let input = fixture(5);
    let reads = raw_reads(&input);
    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    let options = options(SchedulerKind::Dynamic, 2);
    let server = MappingServer::new(
        &parent,
        ServerConfig { options: options.clone(), ..ServerConfig::default() },
    );
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        scope.spawn(|| server.serve_tcp(listener).expect("serve_tcp"));
        let _guard = ShutdownGuard(server.ctl());
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        let mut client = BlockingClient::new(Conn::tcp(stream).expect("conn"));
        client.ping().expect("PONG over TCP");
        let outcome = client.run_job("tcp", &fastq_of(&reads[..8])).expect("job over TCP");
        let (gaf, _) = expect_done(&outcome);
        assert_eq!(
            std::str::from_utf8(gaf).unwrap(),
            oracle_gaf(&input, &reads[..8], &options, "tcp")
        );
        client.shutdown().expect("SHUTDOWN over TCP");
    });
}

/// A hog streaming a large job cannot starve a small job submitted after
/// it: chunk-level interleaving finishes the small one first.
#[test]
fn small_job_finishes_under_a_hog() {
    let input = fixture(7);
    let reads = raw_reads(&input);
    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    let options = options(SchedulerKind::Dynamic, 1);
    let server = MappingServer::new(
        &parent,
        ServerConfig {
            options: options.clone(),
            chunk_reads: 4,
            max_pending: 8,
            max_active: 2,
            per_client_cap: 2,
            fault_job: None,
            write_timeout: std::time::Duration::from_secs(30),
        },
    );
    let (tx, rx) = channel::<Conn>();
    std::thread::scope(|scope| {
        scope.spawn(|| server.serve(rx));
        let _guard = ShutdownGuard(server.ctl());
        let (hog_server, hog_side) = Conn::pair();
        let (small_server, small_side) = Conn::pair();
        tx.send(hog_server).unwrap();
        tx.send(small_server).unwrap();
        let mut hog = BlockingClient::new(hog_side);
        let mut small = BlockingClient::new(small_side);
        let hog_job = hog.submit("hog", &fastq_of(&reads[..32])).unwrap().expect("admitted");
        let small_job =
            small.submit("small", &fastq_of(&reads[..4])).unwrap().expect("admitted");
        let small_done = expect_done(&small.wait_job(small_job).unwrap()).1;
        let hog_done = expect_done(&hog.wait_job(hog_job).unwrap()).1;
        // The small job was submitted later yet finished earlier, so its
        // latency is strictly below the hog's — the fairness property.
        assert!(
            small_done.latency_us < hog_done.latency_us,
            "small job ({} us) should undercut the hog ({} us)",
            small_done.latency_us,
            hog_done.latency_us
        );
        assert_eq!(hog_done.chunks, 8);
        small.shutdown().unwrap();
    });
    assert_eq!(server.ctl().jobs_completed(), 2);
}

#[test]
fn queue_full_and_client_caps_reject_with_busy() {
    let input = fixture(9);
    let reads = raw_reads(&input);
    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    let server = MappingServer::new(
        &parent,
        ServerConfig {
            options: options(SchedulerKind::Dynamic, 1),
            chunk_reads: 4,
            max_pending: 1,
            max_active: 1,
            per_client_cap: 2,
            fault_job: None,
            write_timeout: std::time::Duration::from_secs(30),
        },
    );
    let (tx, rx) = channel::<Conn>();
    std::thread::scope(|scope| {
        scope.spawn(|| server.serve(rx));
        let _guard = ShutdownGuard(server.ctl());
        let (a_server, a_side) = Conn::pair();
        let (b_server, b_side) = Conn::pair();
        tx.send(a_server).unwrap();
        tx.send(b_server).unwrap();
        let mut a = BlockingClient::new(a_side);
        let mut b = BlockingClient::new(b_side);
        // Long jobs (80 chunks each): job 1 must still be executing while
        // the submits below race it, or the cap/queue slots free up and
        // the rejections never happen.
        let big: Vec<Vec<u8>> = reads.iter().cycle().take(320).cloned().collect();
        let fastq = fastq_of(&big);
        // Client A fills its own cap: two in flight, the third bounces
        // off the per-client limit (freed only when a job *finishes*).
        let job1 = a.submit("a0", &fastq).unwrap().expect("first admitted");
        // Wait until the executor has popped job1 (it is long: 8 chunks),
        // so job2 lands in the now-empty 1-slot pending queue instead of
        // racing the pop.
        for _ in 0..200 {
            if a.stats().expect("STATS").contains("\"executing\":1") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let job2 = a.submit("a1", &fastq).unwrap().expect("second admitted");
        let saturated = a.submit("a2", &fastq).unwrap().expect_err("third must bounce");
        assert!(saturated.contains("in flight"), "wrong BUSY reason: {saturated}");
        // Client B is under ITS cap but the shared pending queue is full
        // (A's second job is parked there while the first executes).
        let full = b.submit("b0", &fastq).unwrap().expect_err("queue is full");
        assert!(full.contains("queue full"), "wrong BUSY reason: {full}");
        // Rejection is not punishment: everything admitted still runs.
        expect_done(&a.wait_job(job1).unwrap());
        expect_done(&a.wait_job(job2).unwrap());
        b.shutdown().unwrap();
    });
    assert_eq!(server.ctl().jobs_completed(), 2);
    let stats = server.ctl().stats_json();
    assert!(stats.contains("\"rejected_full\":1"), "{stats}");
    assert!(stats.contains("\"rejected_client\":1"), "{stats}");
}

/// Drain on shutdown: every accepted job completes; nothing is lost, new
/// work is refused.
#[test]
fn drain_loses_no_accepted_jobs() {
    let input = fixture(13);
    let reads = raw_reads(&input);
    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    let options = options(SchedulerKind::Dynamic, 1);
    let server = MappingServer::new(
        &parent,
        ServerConfig {
            options: options.clone(),
            chunk_reads: 4,
            max_pending: 8,
            max_active: 2,
            per_client_cap: 4,
            fault_job: None,
            write_timeout: std::time::Duration::from_secs(30),
        },
    );
    let (tx, rx) = channel::<Conn>();
    std::thread::scope(|scope| {
        scope.spawn(|| server.serve(rx));
        let _guard = ShutdownGuard(server.ctl());
        let (server_side, client_side) = Conn::pair();
        tx.send(server_side).unwrap();
        let mut client = BlockingClient::new(client_side);
        let mut jobs = Vec::new();
        for i in 0..3 {
            let fastq = fastq_of(&reads[i * 8..(i + 1) * 8]);
            jobs.push((i, client.submit(&format!("d{i}"), &fastq).unwrap().expect("admitted")));
        }
        client.shutdown().unwrap();
        // Post-drain submissions bounce; the reason says why.
        let refused = client
            .submit("late", &fastq_of(&reads[..4]))
            .unwrap()
            .expect_err("draining server must refuse");
        assert!(refused.contains("draining"), "wrong BUSY reason: {refused}");
        // Every job accepted before the drain still completes, correctly.
        for (i, job) in jobs {
            let outcome = client.wait_job(job).unwrap();
            let (gaf, _) = expect_done(&outcome);
            let expect =
                oracle_gaf(&input, &reads[i * 8..(i + 1) * 8], &options, &format!("d{i}"));
            assert_eq!(std::str::from_utf8(gaf).unwrap(), expect);
        }
    });
    assert!(server.ctl().stopped());
    assert_eq!(server.ctl().jobs_completed(), 3, "drain must not lose accepted jobs");
}

/// A job whose FASTQ does not parse fails alone: the submitting client
/// gets `ERR`, everyone else keeps mapping.
#[test]
fn corrupt_fastq_fails_one_job_not_the_server() {
    let input = fixture(17);
    let reads = raw_reads(&input);
    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    let options = options(SchedulerKind::Dynamic, 1);
    let server = MappingServer::new(
        &parent,
        ServerConfig { options: options.clone(), ..ServerConfig::default() },
    );
    let (tx, rx) = channel::<Conn>();
    std::thread::scope(|scope| {
        scope.spawn(|| server.serve(rx));
        let _guard = ShutdownGuard(server.ctl());
        let (server_side, client_side) = Conn::pair();
        tx.send(server_side).unwrap();
        let mut client = BlockingClient::new(client_side);
        match client.run_job("bad", b"this is not FASTQ\n").expect("client survives") {
            JobOutcome::Failed { message } => {
                assert!(message.contains("bad FASTQ"), "wrong error: {message}")
            }
            JobOutcome::Done { .. } => panic!("corrupt FASTQ must not map"),
        }
        // Same connection, next job: unaffected.
        let outcome = client.run_job("good", &fastq_of(&reads[..6])).expect("job ran");
        let (gaf, _) = expect_done(&outcome);
        assert_eq!(
            std::str::from_utf8(gaf).unwrap(),
            oracle_gaf(&input, &reads[..6], &options, "good")
        );
        client.shutdown().unwrap();
    });
    assert_eq!(server.ctl().jobs_failed(), 1);
    assert_eq!(server.ctl().jobs_completed(), 1);
}

/// Satellite 3's serving half: a worker panic inside a served job fails
/// exactly that job; the pool, the executor, and the resident state all
/// survive, and an identical retry maps correctly.
#[test]
fn worker_panic_fails_job_pool_survives() {
    let input = fixture(19);
    let reads = raw_reads(&input);
    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    let options = options(SchedulerKind::Dynamic, 2);
    let server = MappingServer::new(
        &parent,
        ServerConfig {
            options: options.clone(),
            chunk_reads: 8,
            max_pending: 8,
            max_active: 2,
            per_client_cap: 4,
            // Job 1, read 2: the first chunk of the first job panics in a
            // pool worker mid-mapping.
            fault_job: Some((1, 2)),
            write_timeout: std::time::Duration::from_secs(30),
        },
    );
    let (tx, rx) = channel::<Conn>();
    std::thread::scope(|scope| {
        scope.spawn(|| server.serve(rx));
        let _guard = ShutdownGuard(server.ctl());
        let (server_side, client_side) = Conn::pair();
        tx.send(server_side).unwrap();
        let mut client = BlockingClient::new(client_side);
        let fastq = fastq_of(&reads[..8]);
        match client.run_job("doomed", &fastq).expect("client survives the fault") {
            JobOutcome::Failed { message } => {
                assert!(message.contains("mapping fault"), "wrong error: {message}");
                assert!(message.contains("injected fault"), "wrong error: {message}");
            }
            JobOutcome::Done { .. } => panic!("faulted job must fail"),
        }
        // Identical payload, next job id: runs on the SAME pool the panic
        // unwound through, and must match the oracle exactly.
        let outcome = client.run_job("retry", &fastq).expect("retry ran");
        let (gaf, _) = expect_done(&outcome);
        assert_eq!(
            std::str::from_utf8(gaf).unwrap(),
            oracle_gaf(&input, &reads[..8], &options, "retry")
        );
        client.shutdown().unwrap();
    });
    assert_eq!(server.ctl().jobs_failed(), 1);
    assert_eq!(server.ctl().jobs_completed(), 1);
}

/// Satellite 4: per-job aggregation resets between jobs on the warm pool.
/// Two identical back-to-back jobs must report identical per-job figures
/// (reads, chunks, GAF bytes) and identical GAF — not cumulative ones —
/// and the server-wide counters must be exactly the two-job sums.
#[test]
fn identical_jobs_back_to_back_report_identical_summaries() {
    let input = fixture(23);
    let reads = raw_reads(&input);
    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    let options = options(SchedulerKind::Dynamic, 2);
    let server = MappingServer::new(
        &parent,
        ServerConfig {
            options: options.clone(),
            chunk_reads: 4,
            ..ServerConfig::default()
        },
    );
    let (tx, rx) = channel::<Conn>();
    let mut per_job = None;
    std::thread::scope(|scope| {
        scope.spawn(|| server.serve(rx));
        let _guard = ShutdownGuard(server.ctl());
        let (server_side, client_side) = Conn::pair();
        tx.send(server_side).unwrap();
        let mut client = BlockingClient::new(client_side);
        let fastq = fastq_of(&reads[..10]);
        let first = client.run_job("same", &fastq).expect("first job");
        let second = client.run_job("same", &fastq).expect("second job");
        let (gaf1, s1) = expect_done(&first);
        let (gaf2, s2) = expect_done(&second);
        assert_eq!(gaf1, gaf2, "identical jobs must stream identical GAF");
        assert_eq!(s1.reads, s2.reads);
        assert_eq!(s1.chunks, s2.chunks);
        assert_eq!(
            s1.gaf_bytes, s2.gaf_bytes,
            "job 2's summary must restart from zero on the warm pool, not accumulate"
        );
        assert_eq!(s1.reads, 10);
        assert_eq!(s1.chunks, 3);
        let stats = client.stats().expect("STATS");
        assert!(stats.contains("\"reads_mapped\":20"), "{stats}");
        assert!(stats.contains(&format!("\"gaf_bytes\":{}", 2 * s1.gaf_bytes)), "{stats}");
        per_job = Some(s1);
        client.shutdown().unwrap();
    });
    // The obs registry (when compiled in) agrees with the wire summaries:
    // server-wide totals are exactly the two-job sums.
    if server.metrics().enabled() {
        use mg_obs::{Ctr, Hist};
        let s1 = per_job.expect("summaries captured");
        let report = server.metrics().report();
        assert_eq!(report.counter(Ctr::ServeJobsCompleted), 2);
        assert_eq!(report.counter(Ctr::ServeGafBytes), 2 * s1.gaf_bytes);
        assert_eq!(report.hist_count(Hist::ServeJobReads), 2);
        assert_eq!(report.hist_sum(Hist::ServeJobReads), 2 * s1.reads);
        assert_eq!(report.hist_count(Hist::ServeJobLatencyUs), 2);
    }
}

/// Unparseable bytes on a connection drop that connection only; the
/// server keeps accepting new ones.
#[test]
fn garbage_bytes_drop_the_connection_not_the_server() {
    let input = fixture(29);
    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    let server = MappingServer::new(
        &parent,
        ServerConfig { options: options(SchedulerKind::Dynamic, 1), ..ServerConfig::default() },
    );
    let (tx, rx) = channel::<Conn>();
    std::thread::scope(|scope| {
        scope.spawn(|| server.serve(rx));
        let _guard = ShutdownGuard(server.ctl());
        let (server_side, client_side) = Conn::pair();
        tx.send(server_side).unwrap();
        let mut poisoner = BlockingClient::new(client_side);
        poisoner.send_raw(&[0xff; 16]).expect("raw write");
        // The server abandons the stream: the client sees it close.
        assert!(poisoner.ping().is_err(), "poisoned connection must be dropped");
        // A fresh connection is unaffected.
        let (server_side, client_side) = Conn::pair();
        tx.send(server_side).unwrap();
        let mut client = BlockingClient::new(client_side);
        client.ping().expect("server still alive");
        client.shutdown().unwrap();
    });
    assert_eq!(server.ctl().proto_errors(), 1);
}

/// Paired workflow over the server: chunks clamp to pair boundaries, and
/// the streamed GAF (rescue, pair check and all) matches the one-shot
/// oracle.
#[test]
fn paired_workflow_matches_oracle() {
    let input = paired_fixture(31);
    let reads = raw_reads(&input);
    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    let options = options(SchedulerKind::Dynamic, 2);
    let server = MappingServer::new(
        &parent,
        ServerConfig {
            options: options.clone(),
            // Odd on purpose: the server must clamp to even so pairs stay
            // whole within a chunk.
            chunk_reads: 5,
            max_pending: 8,
            max_active: 2,
            per_client_cap: 2,
            fault_job: None,
            write_timeout: std::time::Duration::from_secs(30),
        },
    );
    let (tx, rx) = channel::<Conn>();
    std::thread::scope(|scope| {
        scope.spawn(|| server.serve(rx));
        let _guard = ShutdownGuard(server.ctl());
        let plans: Vec<ClientPlan> = (0..2)
            .map(|c| ClientPlan {
                label: format!("p{c}"),
                jobs: vec![fastq_of(&reads[c * 12..(c + 1) * 12])],
                profile: Profile::Steady,
                seed: c as u64,
            })
            .collect();
        let reports = drive_clients(&tx, &plans);
        for (c, report) in reports.into_iter().enumerate() {
            let report = report.expect("client ran");
            let (name, outcome) = &report.outcomes[0];
            let (gaf, summary) = expect_done(outcome);
            let expect = oracle_gaf(&input, &reads[c * 12..(c + 1) * 12], &options, name);
            assert_eq!(
                std::str::from_utf8(gaf).unwrap(),
                expect,
                "paired client {c} diverged from the oracle"
            );
            assert_eq!(summary.chunks, 3, "12 reads at even-clamped chunk 4 is 3 chunks");
        }
        server.ctl().request_shutdown();
    });
    assert_eq!(server.ctl().jobs_completed(), 2);
}

/// Adaptive serve against the byte oracle: the controller probes batch,
/// chunk window, and cache capacity across epochs while steady and bursty
/// clients stream jobs — and every job's GAF must still be byte-identical
/// to the fixed-knob sequential oracle, because knob moves land only at
/// chunk boundaries and every tuned knob is result-invariant.
#[test]
fn adaptive_serve_matches_oracle_and_reports_state() {
    let input = fixture(17);
    let reads = raw_reads(&input);
    let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
    let options = options(SchedulerKind::Dynamic, 2);
    let controller = mg_server::ControllerConfig {
        // Tiny epochs so the short test actually probes: any mapped epoch
        // counts, and the guard rails keep probes inside sane test sizes.
        min_reads: 1,
        bounds: mg_server::KnobBounds {
            batch: (2, 64),
            chunk: (2, 64),
            cache: (32, 1024),
            hot: (0, 1024),
        },
        ..mg_server::ControllerConfig::default()
    };
    let server = MappingServer::new(
        &parent,
        ServerConfig {
            options: options.clone(),
            chunk_reads: 4,
            max_pending: 32,
            max_active: 4,
            per_client_cap: 4,
            fault_job: None,
            write_timeout: std::time::Duration::from_secs(30),
        },
    )
    .with_adaptive(controller);
    let slice = |c: usize, j: usize| {
        let lo = (c * 7 + j * 13) % 20;
        lo..lo + 10
    };
    let (tx, rx) = channel::<Conn>();
    std::thread::scope(|scope| {
        scope.spawn(|| server.serve(rx));
        let _guard = ShutdownGuard(server.ctl());
        let plans: Vec<ClientPlan> = (0..6)
            .map(|c| ClientPlan {
                label: format!("a{c}"),
                jobs: (0..3).map(|j| fastq_of(&reads[slice(c, j)])).collect(),
                profile: if c % 2 == 0 { Profile::Steady } else { Profile::Bursty },
                seed: 0xada7 ^ c as u64,
            })
            .collect();
        let reports = drive_clients(&tx, &plans);
        for (c, report) in reports.into_iter().enumerate() {
            let report = report.expect("client ran");
            assert_eq!(report.outcomes.len(), 3);
            for (j, (name, outcome)) in report.outcomes.iter().enumerate() {
                let (gaf, _summary) = expect_done(outcome);
                let expect = oracle_gaf(&input, &reads[slice(c, j)], &options, name);
                assert_eq!(
                    std::str::from_utf8(gaf).unwrap(),
                    expect,
                    "adaptive client {c} job {j} GAF diverged from the oracle"
                );
            }
        }
        // STATS over the wire carries the cache and adaptive sections.
        let (conn, side) = Conn::pair();
        tx.send(conn).unwrap();
        let mut admin = BlockingClient::new(side);
        let stats = admin.stats().expect("STATS");
        assert!(stats.contains("\"cache\":{\"private_hits\":"), "no cache section: {stats}");
        assert!(stats.contains("\"adaptive\":{\"batch_size\":"), "no adaptive section: {stats}");
        admin.shutdown().unwrap();
    });
    assert_eq!(server.ctl().jobs_completed(), 18);
    assert_eq!(server.ctl().jobs_failed(), 0);
    let (knobs, stats, _converged) = server.adaptive_status().expect("adaptive server");
    assert!(stats.epochs > 0, "no epochs closed across 18 jobs");
    // Probes stay inside the guard rails...
    assert!(knobs.batch_size >= 2 && knobs.batch_size <= 64, "batch escaped bounds: {knobs}");
    assert!(knobs.cache_capacity >= 32 && knobs.cache_capacity <= 1024);
    // ...and the hot axis never moves by default, preserving the
    // residency contract even under adaptation.
    assert_eq!(knobs.hot_tier_budget, options.mapping.hot_tier_budget);
    assert_eq!(server.ctl().hot_rebuilds(), 1, "adaptive serve must keep the hot tier resident");
    // The final drain stats JSON carries the same extended sections.
    let stats_json = server.stats_json();
    assert!(stats_json.contains("\"adaptive\":{"), "{stats_json}");
    assert!(stats_json.contains("\"hot_hit_rate\":"), "{stats_json}");
}
