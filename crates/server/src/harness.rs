//! The concurrent-client test harness.
//!
//! This is the instrument that locks the server's behaviour down: a
//! blocking protocol client plus a synthetic multi-client driver with
//! seeded, reproducible traffic shapes. The integration tests and the
//! `smoke_serve` bench both drive the server exclusively through this
//! module, over either transport ([`Conn::pair`] loopback or real TCP),
//! and hold every job's streamed GAF to the sequential one-shot oracle.

use std::io::Write;
use std::sync::mpsc::Sender;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::protocol::{Frame, FrameDecoder, JobSummary, ProtoError};
use crate::transport::{Conn, ReadOutcome};

/// How long client waits spin before declaring the server hung. Generous:
/// debug-build mapping of a few hundred reads is slow.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// What finally happened to one submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// `DONE` arrived; all GAF bytes are collected.
    Done {
        /// Concatenated GAF payload bytes, in stream order.
        gaf: Vec<u8>,
        /// The server's `DONE` summary.
        summary: JobSummary,
    },
    /// `ERR` arrived.
    Failed {
        /// The server's failure message.
        message: String,
    },
}

/// A synchronous protocol client over any [`Conn`].
pub struct BlockingClient {
    conn: Conn,
    decoder: FrameDecoder,
    /// Frames read while waiting for something else (e.g. a `GAF` for job
    /// 3 arriving while we wait on job 2's `DONE`).
    stash: Vec<Frame>,
}

/// Client-side errors: transport failure, protocol violation, or timeout.
#[derive(Debug)]
pub enum ClientError {
    /// The connection closed or errored.
    Transport(String),
    /// The peer sent bytes that do not parse.
    Protocol(ProtoError),
    /// No qualifying frame arrived within the client timeout.
    TimedOut(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::TimedOut(what) => write!(f, "timed out waiting for {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl BlockingClient {
    /// Wraps a connection.
    pub fn new(conn: Conn) -> BlockingClient {
        BlockingClient { conn, decoder: FrameDecoder::new(), stash: Vec::new() }
    }

    fn write_frame(&mut self, frame: &Frame) -> Result<(), ClientError> {
        let mut w =
            self.conn.writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        frame.write_to(&mut **w).map_err(|e| ClientError::Transport(e.to_string()))
    }

    /// Pulls the next frame matching `want`, stashing everything else.
    fn wait_for(
        &mut self,
        what: &'static str,
        mut want: impl FnMut(&Frame) -> bool,
    ) -> Result<Frame, ClientError> {
        if let Some(i) = self.stash.iter().position(&mut want) {
            return Ok(self.stash.remove(i));
        }
        let deadline = Instant::now() + CLIENT_TIMEOUT;
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            while let Some(frame) =
                self.decoder.next_frame().map_err(ClientError::Protocol)?
            {
                if want(&frame) {
                    return Ok(frame);
                }
                self.stash.push(frame);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::TimedOut(what));
            }
            match self
                .conn
                .reader
                .read_timed(&mut buf, Duration::from_millis(100))
                .map_err(|e| ClientError::Transport(e.to_string()))?
            {
                ReadOutcome::Data(n) => self.decoder.push(&buf[..n]),
                ReadOutcome::TimedOut => {}
                ReadOutcome::Eof => {
                    return Err(ClientError::Transport("connection closed".into()))
                }
            }
        }
    }

    /// `PING` → waits for `PONG`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.write_frame(&Frame::Ping)?;
        self.wait_for("PONG", |f| matches!(f, Frame::Pong)).map(|_| ())
    }

    /// `STATS` → the server's JSON snapshot.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.write_frame(&Frame::Stats)?;
        match self.wait_for("STATS_OK", |f| matches!(f, Frame::StatsReply { .. }))? {
            Frame::StatsReply { json } => Ok(json),
            _ => unreachable!(),
        }
    }

    /// Asks the server to drain and exit. Fire-and-forget.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.write_frame(&Frame::Shutdown)
    }

    /// Submits one job; returns `Ok(job_id)` on `ACCEPT`, `Err(reason)`
    /// inside `Ok` on `BUSY`.
    #[allow(clippy::result_large_err)]
    pub fn submit(
        &mut self,
        name: &str,
        fastq: &[u8],
    ) -> Result<Result<u64, String>, ClientError> {
        self.write_frame(&Frame::Submit { name: name.to_string(), fastq: fastq.to_vec() })?;
        let verdict = self.wait_for("ACCEPT or BUSY", |f| {
            matches!(f, Frame::Accept { .. } | Frame::Busy { .. })
        })?;
        match verdict {
            Frame::Accept { job } => Ok(Ok(job)),
            Frame::Busy { reason } => Ok(Err(reason)),
            _ => unreachable!(),
        }
    }

    /// Collects job `job` to completion: concatenates its `GAF` frames
    /// until `DONE` or `ERR`.
    pub fn wait_job(&mut self, job: u64) -> Result<JobOutcome, ClientError> {
        let mut gaf = Vec::new();
        loop {
            let frame = self.wait_for("GAF, DONE, or ERR", |f| match f {
                Frame::Gaf { job: j, .. }
                | Frame::Done { job: j, .. }
                | Frame::Error { job: j, .. } => *j == job,
                _ => false,
            })?;
            match frame {
                Frame::Gaf { data, .. } => gaf.extend_from_slice(&data),
                Frame::Done { summary, .. } => return Ok(JobOutcome::Done { gaf, summary }),
                Frame::Error { message, .. } => return Ok(JobOutcome::Failed { message }),
                _ => unreachable!(),
            }
        }
    }

    /// Submits and waits in one call.
    pub fn run_job(&mut self, name: &str, fastq: &[u8]) -> Result<JobOutcome, ClientError> {
        match self.submit(name, fastq)? {
            Ok(job) => self.wait_job(job),
            Err(reason) => Ok(JobOutcome::Failed { message: format!("rejected: {reason}") }),
        }
    }

    /// Writes raw bytes straight past the frame encoder (tests use this to
    /// poison a connection with garbage).
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        let mut w =
            self.conn.writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        w.write_all(bytes)
            .and_then(|()| w.flush())
            .map_err(|e| ClientError::Transport(e.to_string()))
    }
}

/// Traffic shape for the synthetic driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Jobs submitted back to back with small jittered gaps.
    Steady,
    /// Jobs submitted in a burst up front, then the client waits.
    Bursty,
}

/// One synthetic client's plan: which jobs to run and how to pace them.
#[derive(Debug, Clone)]
pub struct ClientPlan {
    /// Client label, used in job names (`{label}.jobN`).
    pub label: String,
    /// The FASTQ payload each job submits.
    pub jobs: Vec<Vec<u8>>,
    /// Pacing.
    pub profile: Profile,
    /// Seed for the pacing jitter.
    pub seed: u64,
}

/// What one synthetic client observed.
#[derive(Debug)]
pub struct ClientReport {
    /// Client label.
    pub label: String,
    /// Per-job `(name, outcome)`, submission order.
    pub outcomes: Vec<(String, JobOutcome)>,
    /// Client-observed submit→done latencies (successful jobs only).
    pub latencies: Vec<Duration>,
    /// Jobs rejected with `BUSY`.
    pub rejected: usize,
}

/// Runs one synthetic client over `conn` according to `plan`.
///
/// Bursty clients submit everything first (collecting whatever admission
/// lets through) and then wait for results; steady clients run jobs one at
/// a time with jittered think time. Either way each job's GAF is collected
/// with [`BlockingClient::wait_job`] and reported per job name.
pub fn run_client(conn: Conn, plan: &ClientPlan) -> Result<ClientReport, ClientError> {
    let mut client = BlockingClient::new(conn);
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let mut outcomes = Vec::new();
    let mut latencies = Vec::new();
    let mut rejected = 0usize;
    match plan.profile {
        Profile::Steady => {
            for (i, fastq) in plan.jobs.iter().enumerate() {
                let name = format!("{}.job{i}", plan.label);
                let started = Instant::now();
                match client.submit(&name, fastq)? {
                    Ok(job) => {
                        let outcome = client.wait_job(job)?;
                        if matches!(outcome, JobOutcome::Done { .. }) {
                            latencies.push(started.elapsed());
                        }
                        outcomes.push((name, outcome));
                    }
                    Err(reason) => {
                        rejected += 1;
                        outcomes.push((name, JobOutcome::Failed {
                            message: format!("rejected: {reason}"),
                        }));
                    }
                }
                std::thread::sleep(Duration::from_millis(rng.random_range(0..5u64)));
            }
        }
        Profile::Bursty => {
            let mut in_flight = Vec::new();
            for (i, fastq) in plan.jobs.iter().enumerate() {
                let name = format!("{}.job{i}", plan.label);
                let started = Instant::now();
                match client.submit(&name, fastq)? {
                    Ok(job) => in_flight.push((name, job, started)),
                    Err(reason) => {
                        rejected += 1;
                        outcomes.push((name, JobOutcome::Failed {
                            message: format!("rejected: {reason}"),
                        }));
                    }
                }
            }
            for (name, job, started) in in_flight {
                let outcome = client.wait_job(job)?;
                if matches!(outcome, JobOutcome::Done { .. }) {
                    latencies.push(started.elapsed());
                }
                outcomes.push((name, outcome));
            }
        }
    }
    Ok(ClientReport { label: plan.label.clone(), outcomes, latencies, rejected })
}

/// Drives `plans.len()` clients concurrently against a server that
/// consumes connections from `conns` (see [`MappingServer::serve`]), one
/// thread and one in-process loopback connection per client. Returns the
/// reports in plan order.
///
/// [`MappingServer::serve`]: crate::server::MappingServer::serve
pub fn drive_clients(
    conns: &Sender<Conn>,
    plans: &[ClientPlan],
) -> Vec<Result<ClientReport, ClientError>> {
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for plan in plans {
            let (server_side, client_side) = Conn::pair();
            conns.send(server_side).expect("server stopped accepting connections");
            handles.push(scope.spawn(move || run_client(client_side, plan)));
        }
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    })
}
