//! Byte transports the server speaks over.
//!
//! The server needs exactly two capabilities from a connection: a writer
//! that several threads can share behind a mutex, and a reader that can
//! wait *with a timeout* so connection handlers notice shutdown without a
//! byte arriving. [`TimedRead`] captures the latter; it is implemented for
//! real [`TcpStream`]s and for an in-process pipe built on channels, which
//! gives the test harness a deterministic loopback with no sockets, ports,
//! or OS-dependent backlog behaviour.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Outcome of one timed read attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `n` bytes were read into the buffer.
    Data(usize),
    /// The timeout elapsed with no bytes available.
    TimedOut,
    /// The peer closed the connection.
    Eof,
}

/// A reader that can bound how long it blocks.
pub trait TimedRead {
    /// Reads into `buf`, waiting at most `timeout`.
    fn read_timed(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<ReadOutcome>;
}

impl TimedRead for TcpStream {
    fn read_timed(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<ReadOutcome> {
        self.set_read_timeout(Some(timeout))?;
        match self.read(buf) {
            Ok(0) => Ok(ReadOutcome::Eof),
            Ok(n) => Ok(ReadOutcome::Data(n)),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(ReadOutcome::TimedOut)
            }
            Err(e) => Err(e),
        }
    }
}

/// A TCP writer with a per-frame deadline, so a client that stops reading
/// cannot pin a connection handler (and the writer mutex it holds) forever
/// once the socket's send buffer fills.
///
/// The protocol writes one frame as a single `write_all` + `flush`, so the
/// deadline arms on the first byte of a frame and disarms on `flush`:
/// however the kernel slices the frame into partial writes, the *whole
/// frame* must drain within `timeout`. A stall surfaces as a hard
/// [`io::ErrorKind::TimedOut`] error — the caller drops the connection
/// rather than retrying into the same full buffer.
pub struct TimedWriter {
    stream: TcpStream,
    timeout: Duration,
    /// Deadline of the frame in flight; `None` between frames.
    deadline: Option<Instant>,
}

impl TimedWriter {
    /// Wraps `stream`, bounding every frame write by `timeout`.
    pub fn new(stream: TcpStream, timeout: Duration) -> TimedWriter {
        TimedWriter { stream, timeout, deadline: None }
    }
}

impl Write for TimedWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let deadline = *self
            .deadline
            .get_or_insert_with(|| Instant::now() + self.timeout);
        let mut written = 0;
        while written < buf.len() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                self.deadline = None;
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "frame write stalled past deadline",
                ));
            }
            self.stream.set_write_timeout(Some(remaining))?;
            match self.stream.write(&buf[written..]) {
                Ok(0) => {
                    self.deadline = None;
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ));
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    self.deadline = None;
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "frame write stalled past deadline",
                    ));
                }
                Err(e) => {
                    self.deadline = None;
                    return Err(e);
                }
            }
        }
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.deadline = None;
        self.stream.flush()
    }
}

/// Write half of an in-process pipe. Each `write` ships one message; the
/// channel is bounded so a stalled reader applies backpressure instead of
/// letting memory grow.
pub struct PipeWriter {
    tx: SyncSender<Vec<u8>>,
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "pipe reader dropped"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Read half of an in-process pipe.
pub struct PipeReader {
    rx: Receiver<Vec<u8>>,
    /// Message bytes received but not yet handed to a caller.
    leftover: Vec<u8>,
    cursor: usize,
}

impl PipeReader {
    fn take_buffered(&mut self, buf: &mut [u8]) -> usize {
        let avail = &self.leftover[self.cursor..];
        let n = avail.len().min(buf.len());
        buf[..n].copy_from_slice(&avail[..n]);
        self.cursor += n;
        if self.cursor == self.leftover.len() {
            self.leftover.clear();
            self.cursor = 0;
        }
        n
    }
}

impl TimedRead for PipeReader {
    fn read_timed(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<ReadOutcome> {
        if self.cursor < self.leftover.len() {
            return Ok(ReadOutcome::Data(self.take_buffered(buf)));
        }
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => {
                self.leftover = msg;
                self.cursor = 0;
                Ok(ReadOutcome::Data(self.take_buffered(buf)))
            }
            Err(RecvTimeoutError::Timeout) => Ok(ReadOutcome::TimedOut),
            Err(RecvTimeoutError::Disconnected) => Ok(ReadOutcome::Eof),
        }
    }
}

/// Creates one direction of an in-process byte stream.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let (tx, rx) = sync_channel(256);
    (PipeWriter { tx }, PipeReader { rx, leftover: Vec::new(), cursor: 0 })
}

/// One side of a bidirectional connection: a timed reader plus a writer
/// that is shared behind a mutex so the connection handler and the job
/// executor can interleave whole frames without tearing them.
pub struct Conn {
    /// Inbound bytes.
    pub reader: Box<dyn TimedRead + Send>,
    /// Outbound bytes; lock held across one full frame write.
    pub writer: std::sync::Arc<Mutex<Box<dyn Write + Send>>>,
}

impl Conn {
    /// Wraps a TCP stream (cloned so reads and writes have independent
    /// handles).
    pub fn tcp(stream: TcpStream) -> io::Result<Conn> {
        let write_half = stream.try_clone()?;
        Ok(Conn {
            reader: Box::new(stream),
            writer: std::sync::Arc::new(Mutex::new(Box::new(write_half))),
        })
    }

    /// Wraps a TCP stream like [`Conn::tcp`], but bounds every outbound
    /// frame by `write_timeout` (see [`TimedWriter`]). A zero timeout
    /// means unbounded writes.
    pub fn tcp_with_timeout(stream: TcpStream, write_timeout: Duration) -> io::Result<Conn> {
        if write_timeout.is_zero() {
            return Conn::tcp(stream);
        }
        let write_half = stream.try_clone()?;
        Ok(Conn {
            reader: Box::new(stream),
            writer: std::sync::Arc::new(Mutex::new(Box::new(TimedWriter::new(
                write_half,
                write_timeout,
            )))),
        })
    }

    /// Creates a connected in-process pair: `(server_side, client_side)`.
    pub fn pair() -> (Conn, Conn) {
        let (to_client_tx, to_client_rx) = pipe();
        let (to_server_tx, to_server_rx) = pipe();
        let server = Conn {
            reader: Box::new(to_server_rx),
            writer: std::sync::Arc::new(Mutex::new(Box::new(to_client_tx))),
        };
        let client = Conn {
            reader: Box::new(to_client_rx),
            writer: std::sync::Arc::new(Mutex::new(Box::new(to_server_tx))),
        };
        (server, client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_moves_bytes_and_reports_eof() {
        let (mut w, mut r) = pipe();
        w.write_all(b"hello").unwrap();
        w.write_all(b" world").unwrap();
        let mut buf = [0u8; 3];
        assert_eq!(r.read_timed(&mut buf, Duration::from_secs(1)).unwrap(), ReadOutcome::Data(3));
        assert_eq!(&buf, b"hel");
        assert_eq!(r.read_timed(&mut buf, Duration::from_secs(1)).unwrap(), ReadOutcome::Data(2));
        assert_eq!(&buf[..2], b"lo");
        assert_eq!(r.read_timed(&mut buf, Duration::from_secs(1)).unwrap(), ReadOutcome::Data(3));
        assert_eq!(&buf, b" wo");
        drop(w);
        // Buffered bytes drain before EOF is reported.
        assert_eq!(r.read_timed(&mut buf, Duration::from_secs(1)).unwrap(), ReadOutcome::Data(3));
        assert_eq!(&buf, b"rld");
        assert_eq!(r.read_timed(&mut buf, Duration::from_secs(1)).unwrap(), ReadOutcome::Eof);
    }

    #[test]
    fn pipe_times_out_when_idle() {
        let (_w, mut r) = pipe();
        let mut buf = [0u8; 8];
        assert_eq!(
            r.read_timed(&mut buf, Duration::from_millis(10)).unwrap(),
            ReadOutcome::TimedOut
        );
    }

    #[test]
    fn timed_writer_errors_when_reader_stalls() {
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // A client that connects and then never reads a byte.
        let stalled = TcpStream::connect(addr).unwrap();
        let (server_stream, _) = listener.accept().unwrap();

        let conn = Conn::tcp_with_timeout(server_stream, Duration::from_millis(200)).unwrap();
        let start = Instant::now();
        let mut w = conn.writer.lock().unwrap();
        // Push frames until the socket buffers fill; the deadline must
        // then fire instead of blocking forever.
        let frame = vec![0u8; 1 << 20];
        let err = loop {
            match w.write_all(&frame).and_then(|_| w.flush()) {
                Ok(()) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "got {err}");
        // Bounded time: well under the multi-second hang an untimed
        // writer would produce (allow scheduler slop).
        assert!(start.elapsed() < Duration::from_secs(5));
        drop(w);
        drop(stalled);
    }

    #[test]
    fn timed_writer_passes_frames_to_a_live_reader() {
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_stream, _) = listener.accept().unwrap();

        let conn = Conn::tcp_with_timeout(server_stream, Duration::from_secs(5)).unwrap();
        {
            let mut w = conn.writer.lock().unwrap();
            w.write_all(b"hello frame").unwrap();
            w.flush().unwrap();
        }
        let mut buf = [0u8; 11];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello frame");
    }

    #[test]
    fn conn_pair_is_full_duplex() {
        let (server, client) = Conn::pair();
        client.writer.lock().unwrap().write_all(b"ping").unwrap();
        server.writer.lock().unwrap().write_all(b"pong").unwrap();
        let mut server = server;
        let mut client = client;
        let mut buf = [0u8; 4];
        assert_eq!(
            server.reader.read_timed(&mut buf, Duration::from_secs(1)).unwrap(),
            ReadOutcome::Data(4)
        );
        assert_eq!(&buf, b"ping");
        assert_eq!(
            client.reader.read_timed(&mut buf, Duration::from_secs(1)).unwrap(),
            ReadOutcome::Data(4)
        );
        assert_eq!(&buf, b"pong");
    }
}
