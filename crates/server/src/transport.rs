//! Byte transports the server speaks over.
//!
//! The server needs exactly two capabilities from a connection: a writer
//! that several threads can share behind a mutex, and a reader that can
//! wait *with a timeout* so connection handlers notice shutdown without a
//! byte arriving. [`TimedRead`] captures the latter; it is implemented for
//! real [`TcpStream`]s and for an in-process pipe built on channels, which
//! gives the test harness a deterministic loopback with no sockets, ports,
//! or OS-dependent backlog behaviour.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Mutex;
use std::time::Duration;

/// Outcome of one timed read attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `n` bytes were read into the buffer.
    Data(usize),
    /// The timeout elapsed with no bytes available.
    TimedOut,
    /// The peer closed the connection.
    Eof,
}

/// A reader that can bound how long it blocks.
pub trait TimedRead {
    /// Reads into `buf`, waiting at most `timeout`.
    fn read_timed(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<ReadOutcome>;
}

impl TimedRead for TcpStream {
    fn read_timed(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<ReadOutcome> {
        self.set_read_timeout(Some(timeout))?;
        match self.read(buf) {
            Ok(0) => Ok(ReadOutcome::Eof),
            Ok(n) => Ok(ReadOutcome::Data(n)),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(ReadOutcome::TimedOut)
            }
            Err(e) => Err(e),
        }
    }
}

/// Write half of an in-process pipe. Each `write` ships one message; the
/// channel is bounded so a stalled reader applies backpressure instead of
/// letting memory grow.
pub struct PipeWriter {
    tx: SyncSender<Vec<u8>>,
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "pipe reader dropped"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Read half of an in-process pipe.
pub struct PipeReader {
    rx: Receiver<Vec<u8>>,
    /// Message bytes received but not yet handed to a caller.
    leftover: Vec<u8>,
    cursor: usize,
}

impl PipeReader {
    fn take_buffered(&mut self, buf: &mut [u8]) -> usize {
        let avail = &self.leftover[self.cursor..];
        let n = avail.len().min(buf.len());
        buf[..n].copy_from_slice(&avail[..n]);
        self.cursor += n;
        if self.cursor == self.leftover.len() {
            self.leftover.clear();
            self.cursor = 0;
        }
        n
    }
}

impl TimedRead for PipeReader {
    fn read_timed(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<ReadOutcome> {
        if self.cursor < self.leftover.len() {
            return Ok(ReadOutcome::Data(self.take_buffered(buf)));
        }
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => {
                self.leftover = msg;
                self.cursor = 0;
                Ok(ReadOutcome::Data(self.take_buffered(buf)))
            }
            Err(RecvTimeoutError::Timeout) => Ok(ReadOutcome::TimedOut),
            Err(RecvTimeoutError::Disconnected) => Ok(ReadOutcome::Eof),
        }
    }
}

/// Creates one direction of an in-process byte stream.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let (tx, rx) = sync_channel(256);
    (PipeWriter { tx }, PipeReader { rx, leftover: Vec::new(), cursor: 0 })
}

/// One side of a bidirectional connection: a timed reader plus a writer
/// that is shared behind a mutex so the connection handler and the job
/// executor can interleave whole frames without tearing them.
pub struct Conn {
    /// Inbound bytes.
    pub reader: Box<dyn TimedRead + Send>,
    /// Outbound bytes; lock held across one full frame write.
    pub writer: std::sync::Arc<Mutex<Box<dyn Write + Send>>>,
}

impl Conn {
    /// Wraps a TCP stream (cloned so reads and writes have independent
    /// handles).
    pub fn tcp(stream: TcpStream) -> io::Result<Conn> {
        let write_half = stream.try_clone()?;
        Ok(Conn {
            reader: Box::new(stream),
            writer: std::sync::Arc::new(Mutex::new(Box::new(write_half))),
        })
    }

    /// Creates a connected in-process pair: `(server_side, client_side)`.
    pub fn pair() -> (Conn, Conn) {
        let (to_client_tx, to_client_rx) = pipe();
        let (to_server_tx, to_server_rx) = pipe();
        let server = Conn {
            reader: Box::new(to_server_rx),
            writer: std::sync::Arc::new(Mutex::new(Box::new(to_client_tx))),
        };
        let client = Conn {
            reader: Box::new(to_client_rx),
            writer: std::sync::Arc::new(Mutex::new(Box::new(to_server_tx))),
        };
        (server, client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_moves_bytes_and_reports_eof() {
        let (mut w, mut r) = pipe();
        w.write_all(b"hello").unwrap();
        w.write_all(b" world").unwrap();
        let mut buf = [0u8; 3];
        assert_eq!(r.read_timed(&mut buf, Duration::from_secs(1)).unwrap(), ReadOutcome::Data(3));
        assert_eq!(&buf, b"hel");
        assert_eq!(r.read_timed(&mut buf, Duration::from_secs(1)).unwrap(), ReadOutcome::Data(2));
        assert_eq!(&buf[..2], b"lo");
        assert_eq!(r.read_timed(&mut buf, Duration::from_secs(1)).unwrap(), ReadOutcome::Data(3));
        assert_eq!(&buf, b" wo");
        drop(w);
        // Buffered bytes drain before EOF is reported.
        assert_eq!(r.read_timed(&mut buf, Duration::from_secs(1)).unwrap(), ReadOutcome::Data(3));
        assert_eq!(&buf, b"rld");
        assert_eq!(r.read_timed(&mut buf, Duration::from_secs(1)).unwrap(), ReadOutcome::Eof);
    }

    #[test]
    fn pipe_times_out_when_idle() {
        let (_w, mut r) = pipe();
        let mut buf = [0u8; 8];
        assert_eq!(
            r.read_timed(&mut buf, Duration::from_millis(10)).unwrap(),
            ReadOutcome::TimedOut
        );
    }

    #[test]
    fn conn_pair_is_full_duplex() {
        let (server, client) = Conn::pair();
        client.writer.lock().unwrap().write_all(b"ping").unwrap();
        server.writer.lock().unwrap().write_all(b"pong").unwrap();
        let mut server = server;
        let mut client = client;
        let mut buf = [0u8; 4];
        assert_eq!(
            server.reader.read_timed(&mut buf, Duration::from_secs(1)).unwrap(),
            ReadOutcome::Data(4)
        );
        assert_eq!(&buf, b"ping");
        assert_eq!(
            client.reader.read_timed(&mut buf, Duration::from_secs(1)).unwrap(),
            ReadOutcome::Data(4)
        );
        assert_eq!(&buf, b"pong");
    }
}
