//! The serving wire protocol: length-prefixed frames.
//!
//! Every message is one frame: a 1-byte kind tag, a little-endian `u32`
//! payload length, then the payload. The framing is deliberately dumb —
//! no compression, no negotiation — because the interesting state (the
//! index, the arenas, the hot tier) lives on the server, and the protocol
//! only has to move FASTQ bytes in and GAF bytes out.
//!
//! Decoding is push-based: [`FrameDecoder`] accumulates whatever byte
//! slices the transport produces and yields complete frames. Anything that
//! cannot be a valid frame — an unknown kind tag, a length above
//! [`MAX_FRAME`], a payload that does not parse — is a typed
//! [`ProtoError`], never a panic: a server sharing a port with the open
//! internet treats every inbound byte as hostile.

use std::fmt;
use std::io::{self, Write};

/// Largest accepted payload, in bytes (64 MiB). A length field above this
/// is rejected as soon as the header is readable, before any buffering.
pub const MAX_FRAME: u32 = 64 << 20;

/// Bytes of frame header: kind tag + little-endian payload length.
pub const HEADER_LEN: usize = 5;

/// What one served job reports in its `DONE` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSummary {
    /// Reads mapped by the job.
    pub reads: u64,
    /// Chunks the executor dispatched for the job.
    pub chunks: u64,
    /// GAF bytes streamed for the job.
    pub gaf_bytes: u64,
    /// Microseconds between admission and the first chunk dispatch.
    pub queue_wait_us: u64,
    /// Microseconds between admission and `DONE`.
    pub latency_us: u64,
}

/// One protocol message. Client→server kinds are `Ping`, `Submit`,
/// `Stats`, and `Shutdown`; the rest are server→client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Liveness probe.
    Ping,
    /// Submit one mapping job: a read-set name plus FASTQ bytes.
    Submit {
        /// Names the job; becomes the GAF read-name prefix.
        name: String,
        /// The raw FASTQ payload.
        fastq: Vec<u8>,
    },
    /// Request the server's statistics snapshot.
    Stats,
    /// Ask the server to drain: finish accepted jobs, reject new ones,
    /// then exit.
    Shutdown,
    /// Reply to `Ping`.
    Pong,
    /// The job was admitted under this server-assigned id.
    Accept {
        /// Server-assigned job id.
        job: u64,
    },
    /// The job was refused; the payload says why.
    Busy {
        /// Human-readable rejection reason.
        reason: String,
    },
    /// One chunk of a job's GAF output.
    Gaf {
        /// The job this chunk belongs to.
        job: u64,
        /// GAF lines (UTF-8, newline-terminated).
        data: Vec<u8>,
    },
    /// The job finished; every `Gaf` frame for it has been sent.
    Done {
        /// The finished job.
        job: u64,
        /// Aggregate figures for the job.
        summary: JobSummary,
    },
    /// The job failed; no further frames for it will follow.
    Error {
        /// The failed job.
        job: u64,
        /// Human-readable failure description.
        message: String,
    },
    /// Reply to `Stats`: a JSON document.
    StatsReply {
        /// The statistics snapshot, as JSON.
        json: String,
    },
}

const KIND_PING: u8 = 0x01;
const KIND_SUBMIT: u8 = 0x02;
const KIND_STATS: u8 = 0x03;
const KIND_SHUTDOWN: u8 = 0x04;
const KIND_PONG: u8 = 0x81;
const KIND_ACCEPT: u8 = 0x82;
const KIND_BUSY: u8 = 0x83;
const KIND_GAF: u8 = 0x84;
const KIND_DONE: u8 = 0x85;
const KIND_ERROR: u8 = 0x86;
const KIND_STATS_REPLY: u8 = 0x87;

/// Why a byte sequence was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer ends mid-frame (only from the strict one-shot
    /// [`decode_frame`]; the push decoder just waits for more bytes).
    Truncated,
    /// The header announces a payload above [`MAX_FRAME`].
    Oversized {
        /// The announced payload length.
        len: u32,
    },
    /// The kind tag is not part of the protocol.
    UnknownKind(u8),
    /// The payload of a known kind does not parse.
    Malformed(&'static str),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame truncated"),
            ProtoError::Oversized { len } => {
                write!(f, "frame payload of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            ProtoError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtoError::Malformed(what) => write!(f, "malformed frame payload: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Ping => KIND_PING,
            Frame::Submit { .. } => KIND_SUBMIT,
            Frame::Stats => KIND_STATS,
            Frame::Shutdown => KIND_SHUTDOWN,
            Frame::Pong => KIND_PONG,
            Frame::Accept { .. } => KIND_ACCEPT,
            Frame::Busy { .. } => KIND_BUSY,
            Frame::Gaf { .. } => KIND_GAF,
            Frame::Done { .. } => KIND_DONE,
            Frame::Error { .. } => KIND_ERROR,
            Frame::StatsReply { .. } => KIND_STATS_REPLY,
        }
    }

    fn payload(&self) -> Vec<u8> {
        match self {
            Frame::Ping | Frame::Stats | Frame::Shutdown | Frame::Pong => Vec::new(),
            Frame::Submit { name, fastq } => {
                let name = name.as_bytes();
                let mut p = Vec::with_capacity(2 + name.len() + fastq.len());
                p.extend_from_slice(&(name.len() as u16).to_le_bytes());
                p.extend_from_slice(name);
                p.extend_from_slice(fastq);
                p
            }
            Frame::Accept { job } => job.to_le_bytes().to_vec(),
            Frame::Busy { reason } => reason.as_bytes().to_vec(),
            Frame::Gaf { job, data } => {
                let mut p = Vec::with_capacity(8 + data.len());
                p.extend_from_slice(&job.to_le_bytes());
                p.extend_from_slice(data);
                p
            }
            Frame::Done { job, summary } => {
                let mut p = Vec::with_capacity(48);
                for v in [
                    *job,
                    summary.reads,
                    summary.chunks,
                    summary.gaf_bytes,
                    summary.queue_wait_us,
                    summary.latency_us,
                ] {
                    p.extend_from_slice(&v.to_le_bytes());
                }
                p
            }
            Frame::Error { job, message } => {
                let mut p = Vec::with_capacity(8 + message.len());
                p.extend_from_slice(&job.to_le_bytes());
                p.extend_from_slice(message.as_bytes());
                p
            }
            Frame::StatsReply { json } => json.as_bytes().to_vec(),
        }
    }

    /// Serializes the frame (header + payload) into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.push(self.kind());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Writes the frame to `w` as one `write_all` (so a mutex around `w`
    /// keeps frames atomic under concurrent writers).
    pub fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.encode())?;
        w.flush()
    }
}

fn read_u64(payload: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&payload[at..at + 8]);
    u64::from_le_bytes(b)
}

fn parse_payload(kind: u8, payload: &[u8]) -> Result<Frame, ProtoError> {
    match kind {
        KIND_PING | KIND_STATS | KIND_SHUTDOWN | KIND_PONG => {
            if !payload.is_empty() {
                return Err(ProtoError::Malformed("control frame carries a payload"));
            }
            Ok(match kind {
                KIND_PING => Frame::Ping,
                KIND_STATS => Frame::Stats,
                KIND_SHUTDOWN => Frame::Shutdown,
                _ => Frame::Pong,
            })
        }
        KIND_SUBMIT => {
            if payload.len() < 2 {
                return Err(ProtoError::Malformed("submit shorter than its name length"));
            }
            let name_len = usize::from(u16::from_le_bytes([payload[0], payload[1]]));
            if payload.len() < 2 + name_len {
                return Err(ProtoError::Malformed("submit name overruns the payload"));
            }
            let name = std::str::from_utf8(&payload[2..2 + name_len])
                .map_err(|_| ProtoError::Malformed("submit name is not UTF-8"))?
                .to_string();
            Ok(Frame::Submit { name, fastq: payload[2 + name_len..].to_vec() })
        }
        KIND_ACCEPT => {
            if payload.len() != 8 {
                return Err(ProtoError::Malformed("accept payload is not 8 bytes"));
            }
            Ok(Frame::Accept { job: read_u64(payload, 0) })
        }
        KIND_BUSY => {
            let reason = std::str::from_utf8(payload)
                .map_err(|_| ProtoError::Malformed("busy reason is not UTF-8"))?
                .to_string();
            Ok(Frame::Busy { reason })
        }
        KIND_GAF => {
            if payload.len() < 8 {
                return Err(ProtoError::Malformed("gaf frame shorter than its job id"));
            }
            Ok(Frame::Gaf { job: read_u64(payload, 0), data: payload[8..].to_vec() })
        }
        KIND_DONE => {
            if payload.len() != 48 {
                return Err(ProtoError::Malformed("done payload is not 48 bytes"));
            }
            Ok(Frame::Done {
                job: read_u64(payload, 0),
                summary: JobSummary {
                    reads: read_u64(payload, 8),
                    chunks: read_u64(payload, 16),
                    gaf_bytes: read_u64(payload, 24),
                    queue_wait_us: read_u64(payload, 32),
                    latency_us: read_u64(payload, 40),
                },
            })
        }
        KIND_ERROR => {
            if payload.len() < 8 {
                return Err(ProtoError::Malformed("error frame shorter than its job id"));
            }
            let message = std::str::from_utf8(&payload[8..])
                .map_err(|_| ProtoError::Malformed("error message is not UTF-8"))?
                .to_string();
            Ok(Frame::Error { job: read_u64(payload, 0), message })
        }
        KIND_STATS_REPLY => {
            let json = std::str::from_utf8(payload)
                .map_err(|_| ProtoError::Malformed("stats reply is not UTF-8"))?
                .to_string();
            Ok(Frame::StatsReply { json })
        }
        other => Err(ProtoError::UnknownKind(other)),
    }
}

/// Strict one-shot decode: parses one frame from the front of `buf` and
/// returns it with the bytes consumed. An incomplete buffer is
/// [`ProtoError::Truncated`].
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), ProtoError> {
    if buf.len() < HEADER_LEN {
        // An unknown kind or oversized length is reportable from however
        // much of the header we have.
        if let Some(&kind) = buf.first() {
            if !known_kind(kind) {
                return Err(ProtoError::UnknownKind(kind));
            }
        }
        return Err(ProtoError::Truncated);
    }
    let kind = buf[0];
    if !known_kind(kind) {
        return Err(ProtoError::UnknownKind(kind));
    }
    let len = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]);
    if len > MAX_FRAME {
        return Err(ProtoError::Oversized { len });
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(ProtoError::Truncated);
    }
    let frame = parse_payload(kind, &buf[HEADER_LEN..total])?;
    Ok((frame, total))
}

fn known_kind(kind: u8) -> bool {
    matches!(
        kind,
        KIND_PING
            | KIND_SUBMIT
            | KIND_STATS
            | KIND_SHUTDOWN
            | KIND_PONG
            | KIND_ACCEPT
            | KIND_BUSY
            | KIND_GAF
            | KIND_DONE
            | KIND_ERROR
            | KIND_STATS_REPLY
    )
}

/// Incremental frame decoder: push transport bytes in, pull frames out.
///
/// A decode error is sticky — the stream has lost framing, so the
/// connection must be dropped, which is what every caller does.
///
/// # Examples
///
/// ```
/// use mg_server::protocol::{Frame, FrameDecoder};
///
/// let bytes = Frame::Accept { job: 7 }.encode();
/// let mut dec = FrameDecoder::new();
/// // Feed one byte at a time: no frame until the last byte lands.
/// for (i, b) in bytes.iter().enumerate() {
///     dec.push(&[*b]);
///     let got = dec.next_frame().unwrap();
///     if i + 1 < bytes.len() {
///         assert_eq!(got, None);
///     } else {
///         assert_eq!(got, Some(Frame::Accept { job: 7 }));
///     }
/// }
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends transport bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily: drop consumed prefix once it dominates the
        // buffer, so long sessions don't grow without bound.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pulls the next complete frame, `Ok(None)` when more bytes are
    /// needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        match decode_frame(&self.buf[self.start..]) {
            Ok((frame, used)) => {
                self.start += used;
                Ok(Some(frame))
            }
            Err(ProtoError::Truncated) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<Frame> {
        vec![
            Frame::Ping,
            Frame::Stats,
            Frame::Shutdown,
            Frame::Pong,
            Frame::Submit { name: "set-a".into(), fastq: b"@r\nACGT\n+\nIIII\n".to_vec() },
            Frame::Submit { name: String::new(), fastq: Vec::new() },
            Frame::Accept { job: u64::MAX },
            Frame::Busy { reason: "pending queue full (4 jobs)".into() },
            Frame::Gaf { job: 3, data: b"read.0\t4\t0\t4\t+\n".to_vec() },
            Frame::Done {
                job: 9,
                summary: JobSummary {
                    reads: 100,
                    chunks: 7,
                    gaf_bytes: 12345,
                    queue_wait_us: 42,
                    latency_us: 99999,
                },
            },
            Frame::Error { job: 5, message: "corrupt FASTQ".into() },
            Frame::StatsReply { json: "{\"jobs\": {}}".into() },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in frames() {
            let bytes = frame.encode();
            let (back, used) = decode_frame(&bytes).unwrap();
            assert_eq!(back, frame);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn decoder_reassembles_a_concatenated_stream() {
        let all = frames();
        let mut stream = Vec::new();
        for f in &all {
            stream.extend_from_slice(&f.encode());
        }
        let mut dec = FrameDecoder::new();
        // Push in awkward 3-byte slices.
        for chunk in stream.chunks(3) {
            dec.push(chunk);
        }
        let mut got = Vec::new();
        while let Some(f) = dec.next_frame().unwrap() {
            got.push(f);
        }
        assert_eq!(got, all);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn unknown_kind_is_rejected_immediately() {
        let mut dec = FrameDecoder::new();
        dec.push(&[0x7f]);
        assert_eq!(dec.next_frame(), Err(ProtoError::UnknownKind(0x7f)));
    }

    #[test]
    fn oversized_length_is_rejected_from_the_header() {
        let mut bytes = vec![KIND_GAF];
        bytes.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(ProtoError::Oversized { len: MAX_FRAME + 1 }));
    }

    #[test]
    fn truncated_and_malformed_payloads_are_errors_not_panics() {
        // DONE with a short payload.
        let mut bytes = vec![KIND_DONE];
        bytes.extend_from_slice(&8u32.to_le_bytes());
        bytes.extend_from_slice(&[0; 8]);
        assert_eq!(
            decode_frame(&bytes),
            Err(ProtoError::Malformed("done payload is not 48 bytes"))
        );
        // SUBMIT whose name length overruns the payload.
        let mut bytes = vec![KIND_SUBMIT];
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&100u16.to_le_bytes());
        bytes.extend_from_slice(b"ab");
        assert_eq!(
            decode_frame(&bytes),
            Err(ProtoError::Malformed("submit name overruns the payload"))
        );
        // PING with a payload.
        let mut bytes = vec![KIND_PING];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0);
        assert!(matches!(decode_frame(&bytes), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn decoder_compacts_consumed_bytes() {
        let mut dec = FrameDecoder::new();
        let ping = Frame::Ping.encode();
        for _ in 0..5000 {
            dec.push(&ping);
            assert_eq!(dec.next_frame().unwrap(), Some(Frame::Ping));
        }
        assert_eq!(dec.pending_bytes(), 0);
        // The internal buffer was compacted along the way (the lazy
        // threshold is 4 KiB), not grown to 5000 frames (~30 KiB).
        assert!(dec.buf.len() < 8192, "buffer grew to {}", dec.buf.len());
    }
}
