//! The long-lived mapping server.
//!
//! One [`MappingServer`] owns the expensive state — the pangenome, the
//! minimizer index, the distance index, the mapper's persistent worker
//! pool and its GBWT hot tier — and multiplexes mapping jobs from many
//! concurrent clients onto it. Connections are cheap threads that parse
//! frames and talk to the admission queue; all mapping happens on one
//! executor thread that interleaves admitted jobs *chunk by chunk* on the
//! shared pool, so a large job cannot starve a small one and the pool's
//! per-thread caches stay warm across job boundaries.
//!
//! Determinism: GAF output for a job depends only on its own reads.
//! Chunks carry global read ids (`base_id`), per-read work is
//! deterministic and cache-independent, and paired chunks start on pair
//! boundaries — so however jobs interleave, each job's concatenated GAF is
//! byte-identical to a one-shot [`Parent::run`] over the same reads. The
//! harness tests hold the server to exactly that oracle.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mg_core::types::Workflow;
use mg_obs::{bucket_of, percentile, Ctr, Gauge, Hist, Metrics, Report, HIST_BUCKETS};
use mg_parent::{chunk_to_gaf, Parent, ParentOptions, ShardedParent};
use mg_sched::{effective_chunk_reads, AdmissionQueue};
use mg_tuning::{Controller, ControllerConfig, ControllerStats, EpochStats, KnobState};
use mg_workload::read_fastq;

use crate::protocol::{Frame, FrameDecoder, JobSummary};
use crate::transport::{Conn, ReadOutcome};

/// How a [`MappingServer`] is provisioned.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Mapping configuration shared by every job (threads, scheduler,
    /// cache capacity, hot-tier budget, post-processing).
    pub options: ParentOptions,
    /// Reads per executor chunk; `0` picks `threads × batch_size`. Paired
    /// workflows clamp this to an even value so chunks keep pairs whole.
    pub chunk_reads: usize,
    /// Admission: jobs the pending queue holds before `BUSY`.
    pub max_pending: usize,
    /// Jobs the executor interleaves at once; admitted jobs beyond this
    /// wait in the pending queue.
    pub max_active: usize,
    /// Admission: per-client in-flight (pending + executing) cap.
    pub per_client_cap: usize,
    /// Fault injection for the resilience tests: `(job id, global read
    /// id)` — mapping that read of that job panics inside a pool worker.
    pub fault_job: Option<(u64, u64)>,
    /// Bound on how long one outbound frame may stall on a client that
    /// stops reading before the connection is dropped. Zero disables the
    /// bound (writes may block indefinitely).
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            options: ParentOptions::default(),
            chunk_reads: 0,
            max_pending: 16,
            max_active: 4,
            per_client_cap: 4,
            fault_job: None,
            write_timeout: Duration::from_secs(30),
        }
    }
}

/// One admitted mapping job.
struct Job {
    id: u64,
    client: u64,
    name: String,
    reads: Vec<Vec<u8>>,
    writer: Arc<Mutex<Box<dyn Write + Send>>>,
    submitted: Instant,
}

/// A job the executor is actively interleaving.
struct ActiveJob {
    job: Job,
    next_read: usize,
    chunks: u64,
    gaf_bytes: u64,
    queue_wait_us: u64,
    started: bool,
}

/// Shared control block: admission queue, lifecycle flags, and always-on
/// counters (kept outside `mg_obs` so `STATS` answers truthfully even when
/// the `enabled` feature is compiled out).
pub struct ServerCtl {
    queue: AdmissionQueue<Job>,
    shutdown: AtomicBool,
    stopped: AtomicBool,
    next_job: AtomicU64,
    next_client: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    reads_mapped: AtomicU64,
    gaf_bytes: AtomicU64,
    hot_rebuilds: AtomicU64,
    proto_errors: AtomicU64,
    latency_buckets: [AtomicU64; HIST_BUCKETS],
    latency_count: AtomicU64,
    started_at: Instant,
}

impl ServerCtl {
    fn new(config: &ServerConfig) -> ServerCtl {
        ServerCtl {
            queue: AdmissionQueue::new(config.max_pending, config.per_client_cap),
            shutdown: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            next_job: AtomicU64::new(0),
            next_client: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            reads_mapped: AtomicU64::new(0),
            gaf_bytes: AtomicU64::new(0),
            hot_rebuilds: AtomicU64::new(0),
            proto_errors: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_count: AtomicU64::new(0),
            started_at: Instant::now(),
        }
    }

    /// Flips the server into drain mode: in-flight and pending jobs
    /// finish, new submissions get `BUSY (draining)`, and once the queue
    /// is empty the executor exits.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.drain();
    }

    /// Whether the executor has exited (drain complete).
    pub fn stopped(&self) -> bool {
        self.stopped.load(Ordering::SeqCst)
    }

    /// Jobs completed successfully so far.
    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed.load(Ordering::SeqCst)
    }

    /// Jobs that failed (corrupt input or a mapping fault).
    pub fn jobs_failed(&self) -> u64 {
        self.jobs_failed.load(Ordering::SeqCst)
    }

    /// Hot-tier builds since start. Staying at 1 across many jobs is the
    /// residency property the serve tests assert: the tier is built once
    /// and every later job maps against the warm copy.
    pub fn hot_rebuilds(&self) -> u64 {
        self.hot_rebuilds.load(Ordering::SeqCst)
    }

    /// Connections dropped for unparseable bytes.
    pub fn proto_errors(&self) -> u64 {
        self.proto_errors.load(Ordering::SeqCst)
    }

    fn observe_latency(&self, us: u64) {
        self.latency_buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// `q`-quantile (upper bucket edge) of completed-job latency, in
    /// microseconds, from the always-on histogram. Delegates to
    /// [`mg_obs::percentile`] — one quantile definition for every log2
    /// histogram in the tree.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        let buckets: [u64; HIST_BUCKETS] =
            std::array::from_fn(|b| self.latency_buckets[b].load(Ordering::Relaxed));
        percentile(&buckets, q)
    }

    /// The base `STATS` payload: admission counters, job outcomes,
    /// latency quantiles, and resident-state health. `extra` is spliced
    /// in before the closing brace (the server adds cache and adaptive
    /// sections there).
    fn stats_json_with(&self, extra: &str) -> String {
        let a = self.queue.stats();
        format!(
            concat!(
                "{{\"jobs\":{{\"accepted\":{},\"completed\":{},\"failed\":{},",
                "\"rejected_full\":{},\"rejected_client\":{},\"rejected_draining\":{},",
                "\"pending\":{},\"executing\":{},\"pending_high_water\":{}}},",
                "\"latency_us\":{{\"count\":{},\"p50\":{},\"p99\":{}}},",
                "\"reads_mapped\":{},\"gaf_bytes\":{},",
                "\"hot_tier\":{{\"rebuilds\":{}}},",
                "\"proto_errors\":{},\"draining\":{},\"uptime_ms\":{}{}}}"
            ),
            a.accepted,
            self.jobs_completed(),
            self.jobs_failed(),
            a.rejected_full,
            a.rejected_client,
            a.rejected_draining,
            a.pending,
            a.executing,
            a.pending_high_water,
            self.latency_count.load(Ordering::Relaxed),
            self.latency_quantile_us(0.50),
            self.latency_quantile_us(0.99),
            self.reads_mapped.load(Ordering::SeqCst),
            self.gaf_bytes.load(Ordering::SeqCst),
            self.hot_rebuilds(),
            self.proto_errors(),
            self.queue.is_draining(),
            self.started_at.elapsed().as_millis(),
            extra,
        )
    }

    /// The `STATS` payload without server-level extras (cache hit rates,
    /// adaptive knobs); [`MappingServer::stats_json`] is the full view.
    pub fn stats_json(&self) -> String {
        self.stats_json_with("")
    }
}

/// Sends one frame, swallowing I/O errors: a client that hung up mid-job
/// must not take the executor down with it.
fn send(writer: &Arc<Mutex<Box<dyn Write + Send>>>, frame: &Frame) {
    let mut w = writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = frame.write_to(&mut **w);
}

/// How many executor chunks make one controller epoch. Small enough that
/// the controller reacts within a job, large enough that one epoch's
/// throughput sample spans several pool dispatches.
const EPOCH_CHUNKS: u64 = 8;

/// Live adaptive-tuning state: the controller plus the open epoch it is
/// accumulating (metrics snapshot at epoch start, wall clock, chunk and
/// read counts). Guarded by one mutex — the executor touches it once per
/// chunk, stats readers occasionally.
struct AdaptiveState {
    controller: Controller,
    epoch_base: Report,
    epoch_started: Instant,
    chunks: u64,
    reads: u64,
}

/// The long-lived multi-tenant mapping server.
pub struct MappingServer<'a> {
    parent: &'a Parent<'a>,
    sharded: Option<&'a ShardedParent<'a>>,
    config: ServerConfig,
    ctl: Arc<ServerCtl>,
    metrics: Metrics,
    adaptive: Option<Mutex<AdaptiveState>>,
}

impl<'a> MappingServer<'a> {
    /// Builds a server over an already-constructed parent (index and
    /// distance index built, pool cold).
    pub fn new(parent: &'a Parent<'a>, config: ServerConfig) -> MappingServer<'a> {
        let ctl = Arc::new(ServerCtl::new(&config));
        MappingServer { parent, sharded: None, config, ctl, metrics: Metrics::new(), adaptive: None }
    }

    /// Turns on closed-loop tuning: a [`Controller`] drives `batch_size`,
    /// the chunk window, and the cache budgets from live metric deltas,
    /// starting from this config's knobs. Knob changes land only at chunk
    /// boundaries, so the streamed GAF stays byte-identical to a
    /// fixed-knob run.
    pub fn with_adaptive(mut self, controller_config: ControllerConfig) -> MappingServer<'a> {
        let mapping = &self.config.options.mapping;
        let initial = KnobState {
            batch_size: mapping.batch_size.max(1),
            chunk_reads: effective_chunk_reads(
                self.config.chunk_reads,
                mapping.threads,
                mapping.batch_size,
            ),
            cache_capacity: mapping.cache_capacity.max(1),
            hot_tier_budget: mapping.hot_tier_budget,
        };
        self.adaptive = Some(Mutex::new(AdaptiveState {
            controller: Controller::new(controller_config, initial),
            epoch_base: self.metrics.report(),
            epoch_started: Instant::now(),
            chunks: 0,
            reads: 0,
        }));
        self
    }

    /// Routes every chunk through the sharded pipeline instead of the
    /// monolithic one. Chunks of different jobs still interleave on the
    /// one resident pool, and the streamed GAF stays byte-identical (the
    /// sharded parent falls back per read when routing cannot prove
    /// residency), so clients cannot observe the switch except through
    /// the routing metrics.
    pub fn with_sharded(mut self, sharded: &'a ShardedParent<'a>) -> MappingServer<'a> {
        self.sharded = Some(sharded);
        self
    }

    /// The shared control block (shutdown, counters, `STATS`).
    pub fn ctl(&self) -> &Arc<ServerCtl> {
        &self.ctl
    }

    /// The server's metrics registry (populated when `mg-obs/enabled`).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The knobs in force for the next chunk: the controller's when
    /// adaptive, the static config's otherwise.
    fn knobs(&self) -> KnobState {
        let mapping = &self.config.options.mapping;
        match &self.adaptive {
            Some(state) => {
                state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).controller.knobs()
            }
            None => KnobState {
                batch_size: mapping.batch_size,
                chunk_reads: self.config.chunk_reads,
                cache_capacity: mapping.cache_capacity,
                hot_tier_budget: mapping.hot_tier_budget,
            },
        }
    }

    /// Reads per executor chunk, honouring pair boundaries.
    fn chunk_reads(&self) -> usize {
        let mapping = &self.config.options.mapping;
        let k = self.knobs();
        let mut chunk = effective_chunk_reads(k.chunk_reads, mapping.threads, k.batch_size);
        if self.parent.workflow() == Workflow::Paired {
            chunk = (chunk & !1).max(2);
        }
        chunk.max(1)
    }

    /// Closes the chunk for the controller: every [`EPOCH_CHUNKS`] chunks
    /// it assembles an [`EpochStats`] from the metrics delta, the
    /// admission epoch rollover, and the executor's own read count, and
    /// lets the controller move the knobs. Runs on the executor thread
    /// only, between chunks — never mid-chunk.
    fn adaptive_tick(&self, chunk_reads_mapped: u64) {
        let Some(state) = &self.adaptive else { return };
        let mut st = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        st.chunks += 1;
        st.reads += chunk_reads_mapped;
        if st.chunks < EPOCH_CHUNKS {
            return;
        }
        let report = self.metrics.report();
        let delta = report.delta(&st.epoch_base);
        let admission = self.ctl.queue.epoch_rollover();
        let wall_ns = st.epoch_started.elapsed().as_nanos() as u64;
        let mut epoch = EpochStats::from_delta(&delta, &admission, wall_ns);
        // The executor counts mapped reads itself so throughput steering
        // works even when mg-obs is compiled out.
        epoch.reads = st.reads;
        st.controller.observe_epoch(&epoch);
        st.epoch_base = report;
        st.epoch_started = Instant::now();
        st.chunks = 0;
        st.reads = 0;
    }

    /// The adaptive controller's current view: knobs in force, rolling
    /// accept/revert counters, and whether it has converged. `None` when
    /// the server runs fixed knobs.
    pub fn adaptive_status(&self) -> Option<(KnobState, ControllerStats, bool)> {
        let state = self.adaptive.as_ref()?;
        let st = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Some((st.controller.knobs(), st.controller.stats(), st.controller.converged()))
    }

    /// The full `STATS` payload: the [`ServerCtl`] base plus cache hit
    /// rates from the metrics registry and, when adaptive, the controller
    /// state.
    pub fn stats_json(&self) -> String {
        let rep = self.metrics.report();
        let hits = rep.counter(Ctr::CacheHits);
        let misses = rep.counter(Ctr::CacheMisses);
        let hot_hits = rep.counter(Ctr::CacheHotHits);
        let hot_misses = rep.counter(Ctr::CacheHotMisses);
        let rate = |h: u64, m: u64| if h + m == 0 { 0.0 } else { h as f64 / (h + m) as f64 };
        let mut extra = format!(
            concat!(
                ",\"cache\":{{\"private_hits\":{},\"private_misses\":{},",
                "\"private_hit_rate\":{:.4},\"hot_hits\":{},\"hot_misses\":{},",
                "\"hot_hit_rate\":{:.4},\"decodes_saved\":{}}}"
            ),
            hits,
            misses,
            rate(hits, misses),
            hot_hits,
            hot_misses,
            rate(hot_hits, hot_misses),
            rep.counter(Ctr::CacheDecodesSaved),
        );
        if let Some((knobs, stats, converged)) = self.adaptive_status() {
            extra.push_str(&format!(
                concat!(
                    ",\"adaptive\":{{\"batch_size\":{},\"chunk_reads\":{},",
                    "\"cache_capacity\":{},\"hot_tier_budget\":{},\"epochs\":{},",
                    "\"accepted\":{},\"reverted\":{},\"skipped\":{},\"converged\":{}}}"
                ),
                knobs.batch_size,
                knobs.chunk_reads,
                knobs.cache_capacity,
                knobs.hot_tier_budget,
                stats.epochs,
                stats.accepted,
                stats.reverted,
                stats.skipped,
                converged,
            ));
        }
        self.ctl.stats_json_with(&extra)
    }

    /// Serves connections from `conns` until a client (or
    /// [`ServerCtl::request_shutdown`]) drains the server and the last
    /// admitted job completes. Blocks the calling thread.
    pub fn serve(&self, conns: Receiver<Conn>) {
        std::thread::scope(|scope| {
            scope.spawn(|| self.executor());
            loop {
                if self.ctl.stopped() {
                    break;
                }
                match conns.recv_timeout(Duration::from_millis(50)) {
                    Ok(conn) => {
                        scope.spawn(move || self.handle_conn(conn));
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        // No more connections will arrive; wait for the
                        // executor to drain.
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
        });
    }

    /// Serves TCP connections on `listener` until drained. The bench and
    /// the CLI `serve` subcommand sit on this.
    pub fn serve_tcp(&self, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let (tx, rx) = std::sync::mpsc::channel();
        let write_timeout = self.config.write_timeout;
        std::thread::scope(|scope| {
            let ctl = Arc::clone(&self.ctl);
            scope.spawn(move || {
                while !ctl.stopped() {
                    match listener.accept() {
                        Ok((stream, _addr)) => {
                            let _ = stream.set_nonblocking(false);
                            if let Ok(conn) = Conn::tcp_with_timeout(stream, write_timeout) {
                                if tx.send(conn).is_err() {
                                    break;
                                }
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            });
            self.serve(rx);
        });
        Ok(())
    }

    /// The single mapping executor: admits jobs up to `max_active` and
    /// round-robins one chunk per job per turn on the shared pool.
    fn executor(&self) {
        let ctl = &*self.ctl;
        let mut active: VecDeque<ActiveJob> = VecDeque::new();
        loop {
            while active.len() < self.config.max_active.max(1) {
                match ctl.queue.try_pop() {
                    Some((_client, job)) => active.push_back(ActiveJob {
                        job,
                        next_read: 0,
                        chunks: 0,
                        gaf_bytes: 0,
                        queue_wait_us: 0,
                        started: false,
                    }),
                    None => break,
                }
            }
            if active.is_empty() {
                if ctl.queue.drained() {
                    break;
                }
                match ctl.queue.pop_wait(Duration::from_millis(50)) {
                    Some((_client, job)) => active.push_back(ActiveJob {
                        job,
                        next_read: 0,
                        chunks: 0,
                        gaf_bytes: 0,
                        queue_wait_us: 0,
                        started: false,
                    }),
                    None => continue,
                }
            }
            let stats = ctl.queue.stats();
            self.metrics.gauge_max(Gauge::ServePendingMax, stats.pending_high_water as u64);
            self.metrics.gauge_max(Gauge::ServeActiveMax, active.len() as u64);
            let mut aj = active.pop_front().expect("active job present");
            if self.step(&mut aj) {
                active.push_back(aj);
            }
        }
        ctl.stopped.store(true, Ordering::SeqCst);
    }

    /// Maps one chunk of one job. Returns `true` while the job has reads
    /// left; emits `DONE`/`ERR` and releases admission otherwise.
    fn step(&self, aj: &mut ActiveJob) -> bool {
        let ctl = &*self.ctl;
        if !aj.started {
            aj.started = true;
            aj.queue_wait_us = aj.job.submitted.elapsed().as_micros() as u64;
            self.metrics.observe(Hist::ServeQueueWaitUs, aj.queue_wait_us);
        }
        let n = aj.job.reads.len();
        let lo = aj.next_read;
        let hi = (lo + self.chunk_reads()).min(n);
        if lo < hi {
            let mut options = self.config.options.clone();
            if self.adaptive.is_some() {
                // Controller knobs apply from this chunk boundary. All
                // three are result-invariant, so the job's GAF cannot
                // observe the move.
                let k = self.knobs();
                options.mapping.batch_size = k.batch_size.max(1);
                options.mapping.cache_capacity = k.cache_capacity.max(1);
                options.mapping.hot_tier_budget = k.hot_tier_budget;
            }
            if let Some((job, read)) = self.config.fault_job {
                if job == aj.job.id {
                    options.fault_read = Some(read);
                }
            }
            let mapper = self.parent.mapper();
            let chunk = catch_unwind(AssertUnwindSafe(|| {
                // Warm tier when resident, else build from this chunk's
                // freshly-computed seeds — the one rebuild the residency
                // tests allow.
                let hot = mapper.warm_hot_tier(&options.mapping);
                let run = match self.sharded {
                    Some(sharded) => sharded.map_chunk(
                        &aj.job.reads[lo..hi],
                        lo as u64,
                        &options,
                        hot.as_ref(),
                        &self.metrics,
                    ),
                    None => self.parent.map_chunk(
                        &aj.job.reads[lo..hi],
                        lo as u64,
                        &options,
                        hot.as_ref(),
                        &self.metrics,
                    ),
                };
                if hot.is_none()
                    && mapper.build_hot_tier(&run.dump_reads, &options.mapping).is_some()
                {
                    ctl.hot_rebuilds.fetch_add(1, Ordering::SeqCst);
                }
                run
            }));
            match chunk {
                Ok(run) => {
                    let gaf = chunk_to_gaf(
                        mapper.gbz().graph(),
                        &aj.job.name,
                        lo as u64,
                        &run.dump_reads,
                        &run.kernel_results,
                        &run.alignments,
                    );
                    if !gaf.is_empty() {
                        send(
                            &aj.job.writer,
                            &Frame::Gaf { job: aj.job.id, data: gaf.clone().into_bytes() },
                        );
                    }
                    aj.chunks += 1;
                    aj.gaf_bytes += gaf.len() as u64;
                    aj.next_read = hi;
                    self.adaptive_tick((hi - lo) as u64);
                }
                Err(panic) => {
                    let what = panic_message(&*panic);
                    send(
                        &aj.job.writer,
                        &Frame::Error {
                            job: aj.job.id,
                            message: format!("mapping fault: {what}"),
                        },
                    );
                    ctl.jobs_failed.fetch_add(1, Ordering::SeqCst);
                    self.metrics.add(Ctr::ServeJobsFailed, 1);
                    ctl.queue.finish(aj.job.client);
                    return false;
                }
            }
        }
        if aj.next_read >= n {
            let latency_us = aj.job.submitted.elapsed().as_micros() as u64;
            ctl.observe_latency(latency_us);
            ctl.jobs_completed.fetch_add(1, Ordering::SeqCst);
            ctl.reads_mapped.fetch_add(n as u64, Ordering::SeqCst);
            ctl.gaf_bytes.fetch_add(aj.gaf_bytes, Ordering::SeqCst);
            self.metrics.add(Ctr::ServeJobsCompleted, 1);
            self.metrics.add(Ctr::ServeGafBytes, aj.gaf_bytes);
            self.metrics.observe(Hist::ServeJobLatencyUs, latency_us);
            self.metrics.observe(Hist::ServeJobReads, n as u64);
            send(
                &aj.job.writer,
                &Frame::Done {
                    job: aj.job.id,
                    summary: JobSummary {
                        reads: n as u64,
                        chunks: aj.chunks,
                        gaf_bytes: aj.gaf_bytes,
                        queue_wait_us: aj.queue_wait_us,
                        latency_us,
                    },
                },
            );
            ctl.queue.finish(aj.job.client);
            return false;
        }
        true
    }

    /// One connection: parse frames, answer control frames inline, hand
    /// submissions to admission.
    fn handle_conn(&self, conn: Conn) {
        let ctl = &*self.ctl;
        let client = ctl.next_client.fetch_add(1, Ordering::SeqCst) + 1;
        let Conn { mut reader, writer } = conn;
        let mut decoder = FrameDecoder::new();
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            match reader.read_timed(&mut buf, Duration::from_millis(100)) {
                Ok(ReadOutcome::Data(n)) => {
                    decoder.push(&buf[..n]);
                    loop {
                        match decoder.next_frame() {
                            Ok(Some(frame)) => self.dispatch(frame, client, &writer),
                            Ok(None) => break,
                            Err(_) => {
                                // Framing is lost; nothing sensible can be
                                // sent on a stream we can no longer parse.
                                ctl.proto_errors.fetch_add(1, Ordering::SeqCst);
                                return;
                            }
                        }
                    }
                }
                Ok(ReadOutcome::TimedOut) => {
                    if ctl.stopped() {
                        return;
                    }
                }
                Ok(ReadOutcome::Eof) | Err(_) => return,
            }
        }
    }

    fn dispatch(&self, frame: Frame, client: u64, writer: &Arc<Mutex<Box<dyn Write + Send>>>) {
        let ctl = &*self.ctl;
        match frame {
            Frame::Ping => send(writer, &Frame::Pong),
            Frame::Stats => send(writer, &Frame::StatsReply { json: self.stats_json() }),
            Frame::Shutdown => ctl.request_shutdown(),
            Frame::Submit { name, fastq } => {
                let job_id = ctl.next_job.fetch_add(1, Ordering::SeqCst) + 1;
                match read_fastq(&fastq[..]) {
                    Err(e) => {
                        // The job is born failed: acknowledge it so the
                        // client can correlate, then report the parse
                        // error. It never touches the queue, so other
                        // clients' jobs are unaffected.
                        ctl.jobs_failed.fetch_add(1, Ordering::SeqCst);
                        self.metrics.add(Ctr::ServeJobsFailed, 1);
                        let mut w =
                            writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        let _ = Frame::Accept { job: job_id }.write_to(&mut **w);
                        let _ = Frame::Error { job: job_id, message: format!("bad FASTQ: {e}") }
                            .write_to(&mut **w);
                    }
                    Ok(records) => {
                        let reads: Vec<Vec<u8>> = records.into_iter().map(|r| r.bases).collect();
                        let job = Job {
                            id: job_id,
                            client,
                            name,
                            reads,
                            writer: Arc::clone(writer),
                            submitted: Instant::now(),
                        };
                        // Hold the connection writer across the admission
                        // verdict so the executor's first GAF frame for
                        // this job cannot overtake our ACCEPT.
                        let mut w =
                            writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        match ctl.queue.try_submit(client, job) {
                            Ok(()) => {
                                self.metrics.add(Ctr::ServeJobsAccepted, 1);
                                let _ = Frame::Accept { job: job_id }.write_to(&mut **w);
                            }
                            Err((why, _job)) => {
                                self.metrics.add(Ctr::ServeJobsRejected, 1);
                                let _ = Frame::Busy { reason: why.to_string() }.write_to(&mut **w);
                            }
                        }
                    }
                }
            }
            // Server-to-client frames arriving at the server are ignored:
            // tolerated (the sender is confused, not malicious) but never
            // answered.
            Frame::Pong
            | Frame::Accept { .. }
            | Frame::Busy { .. }
            | Frame::Gaf { .. }
            | Frame::Done { .. }
            | Frame::Error { .. }
            | Frame::StatsReply { .. } => {}
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}
