//! `minigiraffe serve`: a long-lived multi-tenant mapping server.
//!
//! The one-shot CLI pays the heavy setup — GBZ load, minimizer index,
//! distance index, worker-pool warmup, hot-tier construction — on every
//! invocation. This crate amortizes all of it: a [`MappingServer`] holds
//! that state resident and maps *jobs* submitted over a socket, streaming
//! each job's GAF back as it is produced.
//!
//! Layers, bottom up:
//!
//! - [`protocol`] — the length-prefixed frame codec (`SUBMIT` → `ACCEPT` →
//!   `GAF`… → `DONE`, plus `PING`/`STATS`/`SHUTDOWN`), with a push decoder
//!   that treats inbound bytes as hostile;
//! - [`transport`] — timed readers over TCP or an in-process channel pipe,
//!   so tests and benches run the full server loop without sockets;
//! - [`server`] — admission control (bounded pending queue, per-client
//!   caps, drain), the chunk-interleaving executor on the shared worker
//!   pool, and `STATS` export;
//! - [`harness`] — the blocking client and the seeded multi-client driver
//!   the integration tests and `smoke_serve` bench are built on.

pub mod harness;
pub mod protocol;
pub mod server;
pub mod transport;

pub use harness::{
    drive_clients, run_client, BlockingClient, ClientError, ClientPlan, ClientReport,
    JobOutcome, Profile,
};
pub use protocol::{decode_frame, Frame, FrameDecoder, JobSummary, ProtoError, MAX_FRAME};
pub use server::{MappingServer, ServerConfig, ServerCtl};
// The adaptive-serve surface: re-exported so callers configuring
// `with_adaptive` need not depend on mg-tuning directly.
pub use mg_tuning::{ControllerConfig, ControllerStats, KnobBounds, KnobState};
pub use transport::{pipe, Conn, PipeReader, PipeWriter, ReadOutcome, TimedRead};
