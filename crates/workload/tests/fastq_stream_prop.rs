//! Property suite: the streaming FASTQ reader and the batch `read_fastq`
//! must agree on arbitrary well-formed *and* malformed inputs — same
//! records, same error, same error position — including CRLF line endings,
//! blank lines between records, and every corruption the parser rejects.
//!
//! `read_fastq` is built on the streaming core, so this suite is the lock
//! that keeps a future divergence (a separate fast path, a rewritten batch
//! loop) from silently changing intake semantics.

use mg_workload::{read_fastq, FastqReader, FastqRecord};
use proptest::prelude::*;

/// One generated input segment. `kind` picks the shape, `len` the sequence
/// length, `seed` the base content, `crlf` the line terminator.
type Segment = (usize, usize, u64, usize);

const KINDS: usize = 10;

/// Renders a segment as FASTQ bytes. Kinds 0–4 are valid records (majority
/// weight, so most generated files parse clean for a while); the rest cover
/// each rejection path the parser has.
fn render(out: &mut Vec<u8>, idx: usize, (kind, len, seed, crlf): Segment) {
    let eol: &[u8] = if crlf == 1 { b"\r\n" } else { b"\n" };
    let len = len.max(1);
    let bases: Vec<u8> = (0..len).map(|i| b"ACGTN"[((seed >> (i % 16)) as usize + i) % 5]).collect();
    let qual = vec![b'F'; len];
    let name = format!("r{idx}");
    let mut record = |bases: &[u8], plus: &[u8], qual: &[u8]| {
        out.extend_from_slice(format!("@{name}").as_bytes());
        out.extend_from_slice(eol);
        out.extend_from_slice(bases);
        out.extend_from_slice(eol);
        out.extend_from_slice(plus);
        out.extend_from_slice(eol);
        out.extend_from_slice(qual);
        out.extend_from_slice(eol);
    };
    match kind {
        0..=4 => record(&bases, b"+", &qual),
        5 => out.extend_from_slice(eol), // blank line between records
        6 => {
            // Invalid base somewhere in the sequence.
            let mut bad = bases.clone();
            bad[seed as usize % len] = b'!';
            record(&bad, b"+", &qual);
        }
        7 => record(&bases, b"+", &qual[..len - 1]), // quality too short
        8 => record(&bases, b"x", &qual),            // missing '+' separator
        _ => record(b"", b"+", b""),                 // blank sequence line
    }
}

fn render_all(segments: &[Segment]) -> Vec<u8> {
    let mut out = Vec::new();
    for (idx, seg) in segments.iter().enumerate() {
        render(&mut out, idx, *seg);
    }
    out
}

/// Collects the streaming reader's output: the record prefix plus the
/// first error, if any.
fn stream_outcome(bytes: &[u8]) -> (Vec<FastqRecord>, Option<String>) {
    let mut records = Vec::new();
    let mut error = None;
    for item in FastqReader::new(bytes) {
        match item {
            Ok(r) => records.push(r),
            Err(e) => {
                error = Some(e.to_string());
                break;
            }
        }
    }
    (records, error)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn streaming_and_batch_reader_agree(
        segments in proptest::collection::vec(
            (0usize..KINDS, 0usize..12, any::<u64>(), 0usize..2),
            0..20,
        ),
        batch_size in 1usize..6,
    ) {
        let bytes = render_all(&segments);
        let (streamed, stream_err) = stream_outcome(&bytes);

        match read_fastq(&bytes[..]) {
            Ok(batch) => {
                prop_assert!(stream_err.is_none(), "batch Ok but stream errored: {stream_err:?}");
                prop_assert_eq!(&streamed, &batch);
                // Clean inputs have exactly the valid records, in order.
                let valid = segments.iter().filter(|(k, ..)| *k <= 4).count();
                prop_assert_eq!(batch.len(), valid);
            }
            Err(e) => {
                // Same error, same position (the message names the record
                // or line), after the same prefix of good records.
                prop_assert_eq!(stream_err.as_deref(), Some(e.to_string().as_str()));
                let malformed = segments.iter().position(|(k, ..)| *k >= 6)
                    .expect("an error implies a malformed segment");
                let good_before = segments[..malformed].iter().filter(|(k, ..)| *k <= 4).count();
                prop_assert_eq!(streamed.len(), good_before);
            }
        }

        // The batched view flattens to the same records and surfaces the
        // same error, regardless of batch size.
        let mut flat = Vec::new();
        let mut batched_err = None;
        for item in FastqReader::new(&bytes[..]).batches(batch_size) {
            match item {
                Ok(mut b) => {
                    prop_assert!(!b.is_empty(), "batches must never be empty");
                    prop_assert!(b.len() <= batch_size);
                    flat.append(&mut b);
                }
                Err(e) => {
                    batched_err = Some(e.to_string());
                    break;
                }
            }
        }
        prop_assert_eq!(flat, streamed);
        prop_assert_eq!(batched_err, stream_err);
    }

    #[test]
    fn streaming_reader_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        // Raw fuzz: any byte soup must parse or error, never panic, and
        // both entry points must agree on which.
        let (streamed, stream_err) = stream_outcome(&bytes);
        match read_fastq(&bytes[..]) {
            Ok(batch) => {
                prop_assert!(stream_err.is_none());
                prop_assert_eq!(streamed, batch);
            }
            Err(e) => {
                prop_assert_eq!(stream_err.as_deref(), Some(e.to_string().as_str()));
            }
        }
    }
}
