//! Synthetic workloads: pangenomes, reads, and the paper's input sets.
//!
//! The paper evaluates on real data (HPRC pangenomes, 1000 Genomes, yeast,
//! Illumina reads) that is tens of gigabytes; this crate synthesizes
//! statistically analogous inputs at laptop scale:
//!
//! - [`genome`]: seeded random references, variant models, haplotype panels;
//! - [`reads`]: single- and paired-end read simulation with errors;
//! - [`inputset`]: the four Table III profiles (**A-human**, **B-yeast**,
//!   **C-HPRC**, **D-HPRC**) and [`SyntheticInput::generate`], which builds
//!   pangenome + GBZ + minimizer index + seed dump in one call.
//!
//! # Examples
//!
//! ```
//! use mg_workload::{InputSetSpec, SyntheticInput};
//!
//! let input = SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), 42);
//! assert!(input.dump.total_seeds() > 0);
//! ```

pub mod fastq;
pub mod genome;
pub mod inputset;
pub mod reads;

pub use inputset::{InputSetSpec, SyntheticInput};
pub use fastq::{read_fastq, write_fastq, FastqBatches, FastqReader, FastqRecord};
pub use reads::{ReadSimParams, SimulatedRead};
