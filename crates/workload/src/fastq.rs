//! FASTQ reading and writing.
//!
//! The paper's read inputs are Illumina FASTQ files (Table III); the
//! simulator can emit its reads as FASTQ and the parent pipeline can
//! consume FASTQ directly, so the toolchain round-trips through the real
//! interchange format.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use mg_support::{Error, Result};

/// One FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read name (without the leading `@`).
    pub name: String,
    /// Base sequence.
    pub bases: Vec<u8>,
    /// Per-base Phred+33 qualities; same length as `bases`.
    pub quality: Vec<u8>,
}

impl FastqRecord {
    /// Creates a record with uniform quality `q` (Phred+33 encoded char).
    pub fn with_uniform_quality(name: String, bases: Vec<u8>, q: u8) -> Self {
        let quality = vec![q; bases.len()];
        FastqRecord { name, bases, quality }
    }
}

/// Writes records in FASTQ format.
///
/// # Errors
///
/// Returns IO errors.
pub fn write_fastq<W: Write>(mut out: W, records: &[FastqRecord]) -> Result<()> {
    for r in records {
        out.write_all(b"@")?;
        out.write_all(r.name.as_bytes())?;
        out.write_all(b"\n")?;
        out.write_all(&r.bases)?;
        out.write_all(b"\n+\n")?;
        out.write_all(&r.quality)?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Parses the next record off `reader`, or `Ok(None)` at end of stream.
///
/// This is the single parsing core behind both [`read_fastq`] and
/// [`FastqReader`], so the batch and streaming entry points agree on
/// records, errors, and error positions by construction.
fn next_record<R: BufRead>(
    reader: &mut R,
    lineno: &mut usize,
    line: &mut String,
) -> Result<Option<FastqRecord>> {
    let header_line = loop {
        line.clear();
        if reader.read_line(line)? == 0 {
            return Ok(None);
        }
        *lineno += 1;
        if !line.trim_end().is_empty() {
            break line.trim_end().to_string();
        }
        // Blank lines between records (and trailing ones) are tolerated.
    };
    let name = header_line
        .strip_prefix('@')
        .ok_or_else(|| {
            Error::Corrupt(format!("line {lineno}: expected '@', got {header_line:?}"))
        })?
        .split_whitespace()
        .next()
        .unwrap_or("")
        .to_string();
    line.clear();
    if reader.read_line(line)? == 0 {
        return Err(Error::Corrupt(format!("record {name:?}: missing sequence line")));
    }
    *lineno += 1;
    let bases = line.trim_end().as_bytes().to_vec();
    if bases.is_empty() {
        // A blank sequence line is a four-line record with zero bases; its
        // empty quality line passes the length check, so without this the
        // zero-length read flows all the way into the mapping kernels.
        return Err(Error::Corrupt(format!("record {name:?}: blank sequence line")));
    }
    if let Err(Error::InvalidBase { byte, pos }) = mg_graph::dna::validate_read_bases(&bases) {
        return Err(Error::Corrupt(format!(
            "record {name:?}: invalid base {:?} at position {pos}",
            byte as char
        )));
    }
    line.clear();
    if reader.read_line(line)? == 0 || !line.starts_with('+') {
        return Err(Error::Corrupt(format!("record {name:?}: missing '+' separator")));
    }
    *lineno += 1;
    line.clear();
    if reader.read_line(line)? == 0 {
        return Err(Error::Corrupt(format!("record {name:?}: missing quality line")));
    }
    *lineno += 1;
    let quality = line.trim_end().as_bytes().to_vec();
    if quality.len() != bases.len() {
        return Err(Error::Corrupt(format!(
            "record {name:?}: {} quality values for {} bases",
            quality.len(),
            bases.len()
        )));
    }
    Ok(Some(FastqRecord { name, bases, quality }))
}

/// Parses a FASTQ stream into a fully materialized vector.
///
/// Streaming consumers that must not hold the whole file in memory should
/// use [`FastqReader`] (record at a time) or [`FastqBatches`] (batch at a
/// time) instead; all three share the same parser.
///
/// # Errors
///
/// Returns [`Error::Corrupt`] for malformed records: missing `@`/`+`
/// markers, truncated records, a blank sequence line, or a quality line
/// whose length differs from the sequence line. Sequences are validated
/// against the read alphabet (`ACGT` plus `N`): a bad byte yields
/// [`Error::Corrupt`] naming the record and position, so malformed input
/// surfaces as an error at intake instead of a panic inside a mapping
/// worker.
pub fn read_fastq<R: Read>(input: R) -> Result<Vec<FastqRecord>> {
    FastqReader::new(BufReader::new(input)).collect()
}

/// A streaming FASTQ parser: an iterator of `Result<FastqRecord>` over any
/// [`BufRead`], holding one record in memory at a time.
///
/// The iterator fuses after the first error (malformed input yields one
/// `Err`, then `None`), matching [`read_fastq`]'s stop-at-first-error
/// behavior.
#[derive(Debug)]
pub struct FastqReader<R: BufRead> {
    reader: R,
    lineno: usize,
    line: String,
    failed: bool,
}

impl<R: BufRead> FastqReader<R> {
    /// Wraps a buffered reader.
    pub fn new(reader: R) -> Self {
        FastqReader { reader, lineno: 0, line: String::new(), failed: false }
    }

    /// Groups this reader's records into batches of up to `batch_size`.
    pub fn batches(self, batch_size: usize) -> FastqBatches<R> {
        FastqBatches { reader: self, batch_size: batch_size.max(1), pending_err: None }
    }
}

impl<R: BufRead> Iterator for FastqReader<R> {
    type Item = Result<FastqRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match next_record(&mut self.reader, &mut self.lineno, &mut self.line) {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Batched view of a [`FastqReader`]: yields `Ok(Vec<FastqRecord>)` chunks
/// of up to `batch_size` records — the unit the streaming mapping path
/// hands across its bounded queue — with constant memory in the input size.
///
/// Records parsed before a malformed one are flushed as a final short
/// `Ok` batch, then the error is yielded, then the iterator fuses.
#[derive(Debug)]
pub struct FastqBatches<R: BufRead> {
    reader: FastqReader<R>,
    batch_size: usize,
    pending_err: Option<Error>,
}

impl<R: BufRead> Iterator for FastqBatches<R> {
    type Item = Result<Vec<FastqRecord>>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(e) = self.pending_err.take() {
            return Some(Err(e));
        }
        let mut batch = Vec::new();
        while batch.len() < self.batch_size {
            match self.reader.next() {
                Some(Ok(record)) => batch.push(record),
                Some(Err(e)) => {
                    if batch.is_empty() {
                        return Some(Err(e));
                    }
                    // Flush the good prefix; yield the error next call.
                    self.pending_err = Some(e);
                    return Some(Ok(batch));
                }
                None => break,
            }
        }
        if batch.is_empty() { None } else { Some(Ok(batch)) }
    }
}

/// Writes simulated reads to a FASTQ file, deriving per-base qualities from
/// the simulator's error model (constant Q37-ish with injected-error bases
/// marked low).
///
/// # Errors
///
/// Returns filesystem errors.
pub fn save_reads_fastq(
    path: impl AsRef<Path>,
    reads: &[crate::reads::SimulatedRead],
    set_name: &str,
) -> Result<()> {
    let records: Vec<FastqRecord> = reads
        .iter()
        .enumerate()
        .map(|(i, r)| {
            FastqRecord::with_uniform_quality(
                format!("{set_name}.{i} hap={} origin={} strand={}", r.haplotype, r.origin, if r.reverse { '-' } else { '+' }),
                r.bases.clone(),
                b'F', // Phred+33 Q37, NovaSeq-style
            )
        })
        .collect();
    let file = BufWriter::new(std::fs::File::create(path)?);
    write_fastq(file, &records)
}

/// Loads just the base sequences from a FASTQ file (the parent pipeline's
/// input shape).
///
/// # Errors
///
/// Returns IO and format errors.
pub fn load_read_bases(path: impl AsRef<Path>) -> Result<Vec<Vec<u8>>> {
    let file = std::fs::File::open(path)?;
    Ok(read_fastq(file)?.into_iter().map(|r| r.bases).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<FastqRecord> {
        vec![
            FastqRecord {
                name: "read0".into(),
                bases: b"ACGTACGT".to_vec(),
                quality: b"FFFFFFFF".to_vec(),
            },
            FastqRecord {
                name: "read1".into(),
                bases: b"GGGN".to_vec(),
                quality: b"FF!#".to_vec(),
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let records = sample();
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        assert_eq!(read_fastq(&buf[..]).unwrap(), records);
    }

    #[test]
    fn empty_stream_is_empty() {
        assert!(read_fastq(&b""[..]).unwrap().is_empty());
    }

    #[test]
    fn name_stops_at_whitespace() {
        let text = b"@read7 extra metadata\nACGT\n+\nFFFF\n";
        let records = read_fastq(&text[..]).unwrap();
        assert_eq!(records[0].name, "read7");
    }

    #[test]
    fn malformed_inputs_rejected() {
        // Missing @.
        assert!(read_fastq(&b"read\nACGT\n+\nFFFF\n"[..]).is_err());
        // Missing + line.
        assert!(read_fastq(&b"@r\nACGT\nFFFF\n"[..]).is_err());
        // Quality length mismatch.
        assert!(read_fastq(&b"@r\nACGT\n+\nFF\n"[..]).is_err());
        // Truncated mid-record.
        assert!(read_fastq(&b"@r\nACGT\n"[..]).is_err());
    }

    #[test]
    fn invalid_bases_are_an_error_not_a_panic() {
        // Regression: garbage bases used to sail through intake and abort a
        // mapping worker via dna::complement's panic. They must be rejected
        // here, with the record and offset named.
        let err = read_fastq(&b"@r\nAC!T\n+\nFFFF\n"[..]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("invalid base"), "got: {msg}");
        assert!(msg.contains("'!'"), "got: {msg}");
        assert!(msg.contains("position 2"), "got: {msg}");
        // Lowercase bases are also outside the accepted alphabet.
        assert!(read_fastq(&b"@r\nacgt\n+\nFFFF\n"[..]).is_err());
        // N remains legal in reads.
        assert!(read_fastq(&b"@r\nACGN\n+\nFFFF\n"[..]).is_ok());
    }

    #[test]
    fn trailing_blank_lines_tolerated() {
        let text = b"@r\nAC\n+\nFF\n\n\n";
        assert_eq!(read_fastq(&text[..]).unwrap().len(), 1);
    }

    #[test]
    fn blank_sequence_line_rejected() {
        // Regression: a record whose sequence line is blank used to pass
        // (empty bases + empty quality satisfy the length check), sending a
        // zero-length read into the mapping kernels.
        let err = read_fastq(&b"@empty\n\n+\n\n"[..]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("blank sequence line"), "got: {msg}");
        assert!(msg.contains("\"empty\""), "error must name the record: {msg}");
        // Also rejected mid-file, after a good record.
        let err = read_fastq(&b"@a\nAC\n+\nFF\n@b\n\n+\n\n@c\nGG\n+\nFF\n"[..]).unwrap_err();
        assert!(err.to_string().contains("\"b\""), "got: {err}");
        // A blank line *between* records is still tolerated.
        let ok = read_fastq(&b"@a\nAC\n+\nFF\n\n@b\nGG\n+\nFF\n"[..]).unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn streaming_reader_agrees_with_batch_reader() {
        let mut buf = Vec::new();
        write_fastq(&mut buf, &sample()).unwrap();
        buf.extend_from_slice(b"\n@last one\nACGT\n+\nFFFF\n");
        let batch = read_fastq(&buf[..]).unwrap();
        let streamed: Vec<FastqRecord> = FastqReader::new(&buf[..])
            .collect::<Result<Vec<FastqRecord>>>()
            .unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn streaming_reader_fuses_after_error() {
        let text = b"@a\nAC\n+\nFF\n@b\nAC\n+\nF\n@c\nGG\n+\nFF\n";
        let mut reader = FastqReader::new(&text[..]);
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        assert!(err.to_string().contains("\"b\""), "got: {err}");
        assert!(reader.next().is_none(), "reader must fuse after an error");
    }

    #[test]
    fn batches_chunk_and_flush_before_error() {
        let mut buf = Vec::new();
        for i in 0..7 {
            buf.extend_from_slice(format!("@r{i}\nACGT\n+\nFFFF\n").as_bytes());
        }
        let sizes: Vec<usize> = FastqReader::new(&buf[..])
            .batches(3)
            .map(|b| b.unwrap().len())
            .collect();
        assert_eq!(sizes, vec![3, 3, 1]);

        // A malformed third record: the good prefix arrives as a short Ok
        // batch, then the error, then the iterator fuses.
        let text = b"@a\nAC\n+\nFF\n@b\nGG\n+\nFF\n@c\nA!\n+\nFF\n";
        let mut batches = FastqReader::new(&text[..]).batches(8);
        assert_eq!(batches.next().unwrap().unwrap().len(), 2);
        assert!(batches.next().unwrap().is_err());
        assert!(batches.next().is_none());
    }

    #[test]
    fn simulated_reads_roundtrip_through_files() {
        let haps = vec![crate::genome::random_genome(
            &crate::genome::GenomeParams { len: 500, repeat_fraction: 0.0, repeat_len: 1 },
            3,
        )];
        let reads = crate::reads::simulate_single(
            &haps,
            10,
            &crate::reads::ReadSimParams { read_len: 80, ..Default::default() },
            3,
        );
        let dir = std::env::temp_dir().join(format!("mg-fastq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fq");
        save_reads_fastq(&path, &reads, "test").unwrap();
        let bases = load_read_bases(&path).unwrap();
        assert_eq!(bases.len(), 10);
        for (loaded, sim) in bases.iter().zip(&reads) {
            assert_eq!(loaded, &sim.bases);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
