//! FASTQ reading and writing.
//!
//! The paper's read inputs are Illumina FASTQ files (Table III); the
//! simulator can emit its reads as FASTQ and the parent pipeline can
//! consume FASTQ directly, so the toolchain round-trips through the real
//! interchange format.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use mg_support::{Error, Result};

/// One FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read name (without the leading `@`).
    pub name: String,
    /// Base sequence.
    pub bases: Vec<u8>,
    /// Per-base Phred+33 qualities; same length as `bases`.
    pub quality: Vec<u8>,
}

impl FastqRecord {
    /// Creates a record with uniform quality `q` (Phred+33 encoded char).
    pub fn with_uniform_quality(name: String, bases: Vec<u8>, q: u8) -> Self {
        let quality = vec![q; bases.len()];
        FastqRecord { name, bases, quality }
    }
}

/// Writes records in FASTQ format.
///
/// # Errors
///
/// Returns IO errors.
pub fn write_fastq<W: Write>(mut out: W, records: &[FastqRecord]) -> Result<()> {
    for r in records {
        out.write_all(b"@")?;
        out.write_all(r.name.as_bytes())?;
        out.write_all(b"\n")?;
        out.write_all(&r.bases)?;
        out.write_all(b"\n+\n")?;
        out.write_all(&r.quality)?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Parses a FASTQ stream.
///
/// # Errors
///
/// Returns [`Error::Corrupt`] for malformed records: missing `@`/`+`
/// markers, truncated records, or a quality line whose length differs from
/// the sequence line. Sequences are validated against the read alphabet
/// (`ACGT` plus `N`): a bad byte yields [`Error::Corrupt`] naming the
/// record and position, so malformed input surfaces as an error at intake
/// instead of a panic inside a mapping worker.
pub fn read_fastq<R: Read>(input: R) -> Result<Vec<FastqRecord>> {
    let mut reader = BufReader::new(input);
    let mut records = Vec::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(records);
        }
        lineno += 1;
        let header = line.trim_end();
        if header.is_empty() {
            continue; // tolerate trailing blank lines
        }
        let name = header
            .strip_prefix('@')
            .ok_or_else(|| Error::Corrupt(format!("line {lineno}: expected '@', got {header:?}")))?
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_string();
        let mut seq = String::new();
        if reader.read_line(&mut seq)? == 0 {
            return Err(Error::Corrupt(format!("record {name:?}: missing sequence line")));
        }
        lineno += 1;
        let bases = seq.trim_end().as_bytes().to_vec();
        if let Err(Error::InvalidBase { byte, pos }) = mg_graph::dna::validate_read_bases(&bases) {
            return Err(Error::Corrupt(format!(
                "record {name:?}: invalid base {:?} at position {pos}",
                byte as char
            )));
        }
        let mut plus = String::new();
        if reader.read_line(&mut plus)? == 0 || !plus.starts_with('+') {
            return Err(Error::Corrupt(format!("record {name:?}: missing '+' separator")));
        }
        lineno += 1;
        let mut qual = String::new();
        if reader.read_line(&mut qual)? == 0 {
            return Err(Error::Corrupt(format!("record {name:?}: missing quality line")));
        }
        lineno += 1;
        let quality = qual.trim_end().as_bytes().to_vec();
        if quality.len() != bases.len() {
            return Err(Error::Corrupt(format!(
                "record {name:?}: {} quality values for {} bases",
                quality.len(),
                bases.len()
            )));
        }
        records.push(FastqRecord { name, bases, quality });
    }
}

/// Writes simulated reads to a FASTQ file, deriving per-base qualities from
/// the simulator's error model (constant Q37-ish with injected-error bases
/// marked low).
///
/// # Errors
///
/// Returns filesystem errors.
pub fn save_reads_fastq(
    path: impl AsRef<Path>,
    reads: &[crate::reads::SimulatedRead],
    set_name: &str,
) -> Result<()> {
    let records: Vec<FastqRecord> = reads
        .iter()
        .enumerate()
        .map(|(i, r)| {
            FastqRecord::with_uniform_quality(
                format!("{set_name}.{i} hap={} origin={} strand={}", r.haplotype, r.origin, if r.reverse { '-' } else { '+' }),
                r.bases.clone(),
                b'F', // Phred+33 Q37, NovaSeq-style
            )
        })
        .collect();
    let file = BufWriter::new(std::fs::File::create(path)?);
    write_fastq(file, &records)
}

/// Loads just the base sequences from a FASTQ file (the parent pipeline's
/// input shape).
///
/// # Errors
///
/// Returns IO and format errors.
pub fn load_read_bases(path: impl AsRef<Path>) -> Result<Vec<Vec<u8>>> {
    let file = std::fs::File::open(path)?;
    Ok(read_fastq(file)?.into_iter().map(|r| r.bases).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<FastqRecord> {
        vec![
            FastqRecord {
                name: "read0".into(),
                bases: b"ACGTACGT".to_vec(),
                quality: b"FFFFFFFF".to_vec(),
            },
            FastqRecord {
                name: "read1".into(),
                bases: b"GGGN".to_vec(),
                quality: b"FF!#".to_vec(),
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let records = sample();
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        assert_eq!(read_fastq(&buf[..]).unwrap(), records);
    }

    #[test]
    fn empty_stream_is_empty() {
        assert!(read_fastq(&b""[..]).unwrap().is_empty());
    }

    #[test]
    fn name_stops_at_whitespace() {
        let text = b"@read7 extra metadata\nACGT\n+\nFFFF\n";
        let records = read_fastq(&text[..]).unwrap();
        assert_eq!(records[0].name, "read7");
    }

    #[test]
    fn malformed_inputs_rejected() {
        // Missing @.
        assert!(read_fastq(&b"read\nACGT\n+\nFFFF\n"[..]).is_err());
        // Missing + line.
        assert!(read_fastq(&b"@r\nACGT\nFFFF\n"[..]).is_err());
        // Quality length mismatch.
        assert!(read_fastq(&b"@r\nACGT\n+\nFF\n"[..]).is_err());
        // Truncated mid-record.
        assert!(read_fastq(&b"@r\nACGT\n"[..]).is_err());
    }

    #[test]
    fn invalid_bases_are_an_error_not_a_panic() {
        // Regression: garbage bases used to sail through intake and abort a
        // mapping worker via dna::complement's panic. They must be rejected
        // here, with the record and offset named.
        let err = read_fastq(&b"@r\nAC!T\n+\nFFFF\n"[..]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("invalid base"), "got: {msg}");
        assert!(msg.contains("'!'"), "got: {msg}");
        assert!(msg.contains("position 2"), "got: {msg}");
        // Lowercase bases are also outside the accepted alphabet.
        assert!(read_fastq(&b"@r\nacgt\n+\nFFFF\n"[..]).is_err());
        // N remains legal in reads.
        assert!(read_fastq(&b"@r\nACGN\n+\nFFFF\n"[..]).is_ok());
    }

    #[test]
    fn trailing_blank_lines_tolerated() {
        let text = b"@r\nAC\n+\nFF\n\n\n";
        assert_eq!(read_fastq(&text[..]).unwrap().len(), 1);
    }

    #[test]
    fn simulated_reads_roundtrip_through_files() {
        let haps = vec![crate::genome::random_genome(
            &crate::genome::GenomeParams { len: 500, repeat_fraction: 0.0, repeat_len: 1 },
            3,
        )];
        let reads = crate::reads::simulate_single(
            &haps,
            10,
            &crate::reads::ReadSimParams { read_len: 80, ..Default::default() },
            3,
        );
        let dir = std::env::temp_dir().join(format!("mg-fastq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fq");
        save_reads_fastq(&path, &reads, "test").unwrap();
        let bases = load_read_bases(&path).unwrap();
        assert_eq!(bases.len(), 10);
        for (loaded, sim) in bases.iter().zip(&reads) {
            assert_eq!(loaded, &sim.bases);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
