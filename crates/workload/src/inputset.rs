//! The paper's four input sets, scaled to laptop size.
//!
//! Table III combines short-read sets with pangenome references:
//!
//! | set     | workflow | reads  | pangenome            |
//! |---------|----------|--------|----------------------|
//! | A-human | single   | 1.0 M  | 1000GPlons (18 GB)   |
//! | B-yeast | single   | 24.5 M | yeast_all (0.1 GB)   |
//! | C-HPRC  | paired   | 8.0 M  | hprc-v1.1 GRCh38     |
//! | D-HPRC  | paired   | 71.1 M | hprc-v1.0 CHM13      |
//!
//! We keep the *relative* shape — A has the biggest graph but fewest reads,
//! B a tiny graph with many reads, C and D paired workflows with D by far
//! the largest read count — at roughly 1/4000 of the read counts and
//! laptop-sized graphs.

use mg_core::dump::SeedDump;
use mg_core::types::{ReadInput, Seed, Workflow};
use mg_gbwt::Gbz;
use mg_graph::pangenome::PangenomeBuilder;
use mg_index::{MinimizerIndex, MinimizerParams};
use mg_support::Result;

use crate::genome::{random_genome, random_panel, random_variants, GenomeParams, VariantParams};
use crate::reads::{simulate_paired, simulate_single, ReadSimParams, SimulatedRead};

/// Full description of a synthetic input set.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSetSpec {
    /// Short name ("A-human", ...).
    pub name: &'static str,
    /// Single- or paired-end workflow.
    pub workflow: Workflow,
    /// Reference genome parameters.
    pub genome: GenomeParams,
    /// Variant model.
    pub variants: VariantParams,
    /// Number of haplotypes in the panel.
    pub haplotypes: usize,
    /// Number of reads (for paired workflows this counts reads, and must be
    /// even: `reads / 2` fragments are simulated).
    pub reads: usize,
    /// Read simulator parameters.
    pub read_sim: ReadSimParams,
    /// Minimizer scheme used to produce seeds.
    pub minimizer: MinimizerParams,
    /// Seeds with more hits than this are dropped (repeat filter).
    pub hard_hit_cap: usize,
    /// Maximum node length of the constructed graph. Giraffe's GBZ caps
    /// nodes at 1024 bases, so real graphs carry long unary runs between
    /// variant sites; the paper sets use that cap (node lengths are then
    /// bounded by variant spacing), while the tiny test set keeps the
    /// vg-chop 32 so every span fits one packed word and golden snapshots
    /// stay put.
    pub max_node_len: usize,
}

impl InputSetSpec {
    /// Input set A-human: biggest graph, fewest reads, single-end.
    pub fn a_human() -> Self {
        InputSetSpec {
            name: "A-human",
            workflow: Workflow::Single,
            genome: GenomeParams { len: 120_000, repeat_fraction: 0.06, repeat_len: 400 },
            variants: VariantParams { mean_spacing: 90, ..Default::default() },
            haplotypes: 24,
            reads: 250,
            read_sim: ReadSimParams { read_len: 148, ..Default::default() },
            minimizer: MinimizerParams::new(29, 11),
            hard_hit_cap: 64,
            max_node_len: 1024,
        }
    }

    /// Input set B-yeast: small graph, many reads, single-end.
    pub fn b_yeast() -> Self {
        InputSetSpec {
            name: "B-yeast",
            workflow: Workflow::Single,
            genome: GenomeParams { len: 30_000, repeat_fraction: 0.04, repeat_len: 250 },
            variants: VariantParams { mean_spacing: 150, ..Default::default() },
            haplotypes: 8,
            reads: 6_000,
            read_sim: ReadSimParams { read_len: 150, ..Default::default() },
            minimizer: MinimizerParams::new(29, 11),
            hard_hit_cap: 64,
            max_node_len: 1024,
        }
    }

    /// Input set C-HPRC: medium graph, paired-end.
    pub fn c_hprc() -> Self {
        InputSetSpec {
            name: "C-HPRC",
            workflow: Workflow::Paired,
            genome: GenomeParams { len: 80_000, repeat_fraction: 0.05, repeat_len: 350 },
            variants: VariantParams { mean_spacing: 110, ..Default::default() },
            haplotypes: 16,
            reads: 2_000,
            read_sim: ReadSimParams { read_len: 148, ..Default::default() },
            minimizer: MinimizerParams::new(29, 11),
            hard_hit_cap: 64,
            max_node_len: 1024,
        }
    }

    /// Input set D-HPRC: the largest read count, paired-end.
    pub fn d_hprc() -> Self {
        InputSetSpec {
            name: "D-HPRC",
            workflow: Workflow::Paired,
            genome: GenomeParams { len: 100_000, repeat_fraction: 0.05, repeat_len: 350 },
            variants: VariantParams { mean_spacing: 100, ..Default::default() },
            haplotypes: 16,
            reads: 18_000,
            read_sim: ReadSimParams { read_len: 148, ..Default::default() },
            minimizer: MinimizerParams::new(29, 11),
            hard_hit_cap: 64,
            max_node_len: 1024,
        }
    }

    /// All four paper input sets, in Table III order.
    pub fn all() -> Vec<InputSetSpec> {
        vec![
            Self::a_human(),
            Self::b_yeast(),
            Self::c_hprc(),
            Self::d_hprc(),
        ]
    }

    /// A tiny spec for unit tests and doc examples (fractions of a second).
    pub fn tiny_for_tests() -> Self {
        InputSetSpec {
            name: "tiny",
            workflow: Workflow::Single,
            genome: GenomeParams { len: 3_000, repeat_fraction: 0.0, repeat_len: 100 },
            variants: VariantParams { mean_spacing: 150, ..Default::default() },
            haplotypes: 4,
            reads: 40,
            read_sim: ReadSimParams { read_len: 60, error_rate: 0.001, ..Default::default() },
            minimizer: MinimizerParams::new(15, 5),
            hard_hit_cap: 128,
            max_node_len: 32,
        }
    }

    /// Scales the read count by `factor`, leaving the pangenome unchanged
    /// (autotuning uses 0.1-ish subsampling; benches use small factors for
    /// quick runs).
    ///
    /// # Panics
    ///
    /// Panics unless `factor > 0`.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.reads = ((self.reads as f64 * factor).round() as usize).max(2);
        if self.workflow == Workflow::Paired {
            self.reads = self.reads.next_multiple_of(2);
        }
        self
    }
}

/// A fully generated input: pangenome, seed dump, and provenance.
#[derive(Debug, Clone)]
pub struct SyntheticInput {
    /// The spec this was generated from.
    pub spec: InputSetSpec,
    /// The pangenome reference (graph + GBWT).
    pub gbz: Gbz,
    /// The proxy input: reads + seeds.
    pub dump: SeedDump,
    /// Raw simulated reads with provenance (for the parent pipeline and
    /// analyses).
    pub sim_reads: Vec<SimulatedRead>,
    /// The minimizer index used for seeding (the parent pipeline reuses it).
    pub minimizer_index: MinimizerIndex,
}

impl SyntheticInput {
    /// Generates the complete input set deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is internally inconsistent (e.g. reads longer
    /// than every haplotype).
    pub fn generate(spec: &InputSetSpec, seed: u64) -> Self {
        Self::try_generate(spec, seed).expect("spec produces a valid pangenome")
    }

    /// Fallible version of [`SyntheticInput::generate`].
    ///
    /// # Errors
    ///
    /// Returns construction errors from the pangenome builder or GBWT.
    pub fn try_generate(spec: &InputSetSpec, seed: u64) -> Result<Self> {
        let reference = random_genome(&spec.genome, seed);
        let variants = random_variants(&reference, &spec.variants, seed);
        let panel = random_panel(spec.haplotypes, &variants, seed);
        let pangenome = PangenomeBuilder::new(reference)
            .variants(variants)
            .haplotypes(panel)
            .max_node_len(spec.max_node_len)
            .build()?;
        let hap_seqs: Vec<Vec<u8>> = pangenome
            .paths()
            .iter()
            .map(|p| p.sequence(pangenome.graph()))
            .collect();
        let minimizer_index = MinimizerIndex::build(
            pangenome.graph(),
            pangenome.paths().iter().map(|p| p.handles.as_slice()),
            spec.minimizer,
        );
        let gbz = Gbz::from_pangenome(pangenome)?;

        let sim_reads = match spec.workflow {
            Workflow::Single => simulate_single(&hap_seqs, spec.reads, &spec.read_sim, seed),
            Workflow::Paired => {
                simulate_paired(&hap_seqs, spec.reads / 2, &spec.read_sim, seed)
            }
        };
        let reads = sim_reads
            .iter()
            .map(|r| {
                let seeds = minimizer_index
                    .query(&r.bases, spec.hard_hit_cap)
                    .into_iter()
                    .map(|(off, pos)| Seed::new(off, pos))
                    .collect();
                ReadInput { bases: r.bases.clone(), seeds }
            })
            .collect();
        Ok(SyntheticInput {
            spec: spec.clone(),
            gbz,
            dump: SeedDump::new(spec.workflow, reads),
            sim_reads,
            minimizer_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_core::{run_mapping, MappingOptions};

    #[test]
    fn tiny_input_generates_and_maps() {
        let input = SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), 42);
        assert_eq!(input.dump.reads.len(), 40);
        assert!(input.dump.total_seeds() > 0, "reads must have seeds");
        let results = run_mapping(&input.dump, &input.gbz, &MappingOptions::default());
        // Most low-error reads map with a near-full-length extension.
        let good = results
            .per_read
            .iter()
            .filter(|r| r.best_score().unwrap_or(0) >= 40)
            .count();
        assert!(
            good * 10 >= results.per_read.len() * 7,
            "only {good}/{} reads mapped well",
            results.per_read.len()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = InputSetSpec::tiny_for_tests();
        let a = SyntheticInput::generate(&spec, 7);
        let b = SyntheticInput::generate(&spec, 7);
        assert_eq!(a.dump, b.dump);
        assert_eq!(a.gbz, b.gbz);
        let c = SyntheticInput::generate(&spec, 8);
        assert_ne!(a.dump, c.dump);
    }

    #[test]
    fn paired_spec_produces_even_reads() {
        let mut spec = InputSetSpec::tiny_for_tests();
        spec.workflow = Workflow::Paired;
        spec.reads = 10;
        spec.read_sim.fragment_len = 200;
        spec.read_sim.fragment_jitter = 20;
        let input = SyntheticInput::generate(&spec, 1);
        assert_eq!(input.dump.reads.len(), 10);
        assert_eq!(input.dump.workflow, Workflow::Paired);
    }

    #[test]
    fn all_specs_have_distinct_shapes() {
        let specs = InputSetSpec::all();
        assert_eq!(specs.len(), 4);
        // A has the largest genome, D the most reads, B the smallest genome.
        let a = &specs[0];
        let b = &specs[1];
        let d = &specs[3];
        assert!(a.genome.len > b.genome.len);
        assert!(d.reads > a.reads);
        assert!(d.reads > b.reads);
        assert_eq!(a.workflow, Workflow::Single);
        assert_eq!(d.workflow, Workflow::Paired);
    }

    #[test]
    fn scaled_preserves_pairing() {
        let spec = InputSetSpec::c_hprc().scaled(0.01);
        assert_eq!(spec.reads % 2, 0);
        assert!(spec.reads >= 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_zero() {
        let _ = InputSetSpec::tiny_for_tests().scaled(0.0);
    }
}
