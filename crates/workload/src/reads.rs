//! Short-read simulation.
//!
//! Samples reads from haplotype path sequences — forward or reverse strand,
//! single- or paired-end — and injects sequencing errors, standing in for
//! the Illumina FASTQ inputs of Table III.

use mg_graph::dna;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the read simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadSimParams {
    /// Read length in bases (Giraffe targets 50–300 bp short reads).
    pub read_len: usize,
    /// Per-base substitution error probability.
    pub error_rate: f64,
    /// Per-base probability of an unreadable base (`N`).
    pub n_rate: f64,
    /// Mean fragment length for paired-end simulation.
    pub fragment_len: usize,
    /// Fragment length jitter (uniform ±).
    pub fragment_jitter: usize,
}

impl Default for ReadSimParams {
    fn default() -> Self {
        ReadSimParams {
            read_len: 148,
            error_rate: 0.002,
            n_rate: 0.0005,
            fragment_len: 420,
            fragment_jitter: 60,
        }
    }
}

/// A simulated read with its provenance (for analyses, not given to the
/// mapper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulatedRead {
    /// The read bases as sequenced.
    pub bases: Vec<u8>,
    /// Index of the source haplotype.
    pub haplotype: usize,
    /// Offset of the read's first base in the haplotype sequence (on the
    /// forward strand of the haplotype).
    pub origin: usize,
    /// Whether the read is the reverse complement of the haplotype segment.
    pub reverse: bool,
    /// Number of injected errors (substitutions + Ns).
    pub errors: u32,
}

/// Samples `count` single-end reads from `haplotype_seqs`.
///
/// Haplotypes are chosen round-robin so coverage is even; position and
/// strand are random.
pub fn simulate_single(
    haplotype_seqs: &[Vec<u8>],
    count: usize,
    params: &ReadSimParams,
    seed: u64,
) -> Vec<SimulatedRead> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EAD_0001);
    let mut reads = Vec::with_capacity(count);
    let usable: Vec<usize> = haplotype_seqs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.len() >= params.read_len)
        .map(|(i, _)| i)
        .collect();
    assert!(!usable.is_empty(), "no haplotype long enough for read_len");
    for i in 0..count {
        let hap = usable[i % usable.len()];
        reads.push(sample_read(&mut rng, haplotype_seqs, hap, params));
    }
    reads
}

/// Samples `pairs` read pairs (2 × `pairs` reads). Mates come from the two
/// ends of a fragment; the second mate is reverse-complemented, matching
/// Illumina paired-end chemistry.
pub fn simulate_paired(
    haplotype_seqs: &[Vec<u8>],
    pairs: usize,
    params: &ReadSimParams,
    seed: u64,
) -> Vec<SimulatedRead> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EAD_0002);
    let mut reads = Vec::with_capacity(pairs * 2);
    let min_len = params.fragment_len + params.fragment_jitter;
    let usable: Vec<usize> = haplotype_seqs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.len() >= min_len)
        .map(|(i, _)| i)
        .collect();
    assert!(!usable.is_empty(), "no haplotype long enough for fragments");
    for i in 0..pairs {
        let hap = usable[i % usable.len()];
        let seq = &haplotype_seqs[hap];
        let jitter = rng.random_range(0..=2 * params.fragment_jitter) as i64
            - params.fragment_jitter as i64;
        let frag_len = ((params.fragment_len as i64 + jitter) as usize)
            .clamp(params.read_len, seq.len());
        let start = rng.random_range(0..=seq.len() - frag_len);
        // R1: forward from fragment start.
        let r1 = finish_read(
            &mut rng,
            seq[start..start + params.read_len.min(frag_len)].to_vec(),
            hap,
            start,
            false,
            params,
        );
        // R2: reverse complement from fragment end.
        let r2_start = start + frag_len - params.read_len.min(frag_len);
        let r2_seq =
            dna::reverse_complement(&seq[r2_start..r2_start + params.read_len.min(frag_len)]);
        let r2 = finish_read(&mut rng, r2_seq, hap, r2_start, true, params);
        reads.push(r1);
        reads.push(r2);
    }
    reads
}

fn sample_read(
    rng: &mut StdRng,
    haplotype_seqs: &[Vec<u8>],
    hap: usize,
    params: &ReadSimParams,
) -> SimulatedRead {
    let seq = &haplotype_seqs[hap];
    let start = rng.random_range(0..=seq.len() - params.read_len);
    let reverse = rng.random::<bool>();
    let bases = if reverse {
        dna::reverse_complement(&seq[start..start + params.read_len])
    } else {
        seq[start..start + params.read_len].to_vec()
    };
    finish_read(rng, bases, hap, start, reverse, params)
}

fn finish_read(
    rng: &mut StdRng,
    mut bases: Vec<u8>,
    hap: usize,
    origin: usize,
    reverse: bool,
    params: &ReadSimParams,
) -> SimulatedRead {
    let mut errors = 0u32;
    for b in bases.iter_mut() {
        let roll = rng.random::<f64>();
        if roll < params.n_rate {
            *b = b'N';
            errors += 1;
        } else if roll < params.n_rate + params.error_rate {
            let current = *b;
            *b = loop {
                let candidate = dna::BASES[rng.random_range(0..4)];
                if candidate != current {
                    break candidate;
                }
            };
            errors += 1;
        }
    }
    SimulatedRead {
        bases,
        haplotype: hap,
        origin,
        reverse,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn haps() -> Vec<Vec<u8>> {
        vec![
            mg_workload_test_genome(2000, 1),
            mg_workload_test_genome(1800, 2),
        ]
    }

    fn mg_workload_test_genome(len: usize, seed: u64) -> Vec<u8> {
        crate::genome::random_genome(
            &crate::genome::GenomeParams { len, repeat_fraction: 0.0, repeat_len: 1 },
            seed,
        )
    }

    #[test]
    fn single_reads_have_correct_length_and_origin() {
        let haps = haps();
        let params = ReadSimParams { read_len: 100, error_rate: 0.0, n_rate: 0.0, ..Default::default() };
        let reads = simulate_single(&haps, 50, &params, 7);
        assert_eq!(reads.len(), 50);
        for r in &reads {
            assert_eq!(r.bases.len(), 100);
            assert_eq!(r.errors, 0);
            // With no errors, the read matches its origin exactly.
            let segment = &haps[r.haplotype][r.origin..r.origin + 100];
            if r.reverse {
                assert_eq!(r.bases, mg_graph::dna::reverse_complement(segment));
            } else {
                assert_eq!(r.bases, segment);
            }
        }
        // Round-robin covers both haplotypes.
        assert!(reads.iter().any(|r| r.haplotype == 0));
        assert!(reads.iter().any(|r| r.haplotype == 1));
    }

    #[test]
    fn error_rate_injects_errors() {
        let haps = haps();
        let params = ReadSimParams { read_len: 120, error_rate: 0.1, n_rate: 0.01, ..Default::default() };
        let reads = simulate_single(&haps, 100, &params, 11);
        let total_errors: u32 = reads.iter().map(|r| r.errors).sum();
        // Expect ~ 0.11 * 120 * 100 = 1320; allow a wide band.
        assert!(total_errors > 600, "errors {total_errors}");
        assert!(total_errors < 2600, "errors {total_errors}");
        assert!(reads.iter().any(|r| r.bases.contains(&b'N')));
    }

    #[test]
    fn paired_reads_come_in_mate_pairs() {
        let haps = haps();
        let params = ReadSimParams {
            read_len: 100,
            error_rate: 0.0,
            n_rate: 0.0,
            fragment_len: 300,
            fragment_jitter: 40,
        };
        let reads = simulate_paired(&haps, 20, &params, 3);
        assert_eq!(reads.len(), 40);
        for pair in reads.chunks(2) {
            let (r1, r2) = (&pair[0], &pair[1]);
            assert_eq!(r1.haplotype, r2.haplotype);
            assert!(!r1.reverse);
            assert!(r2.reverse);
            // Mates bracket a fragment: R2 starts at or after R1.
            assert!(r2.origin >= r1.origin);
            assert!(r2.origin - r1.origin <= 300 + 40);
            // R2 is the reverse complement of its haplotype segment.
            let segment = &haps[r2.haplotype][r2.origin..r2.origin + 100];
            assert_eq!(r2.bases, mg_graph::dna::reverse_complement(segment));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let haps = haps();
        let params = ReadSimParams::default();
        let a = simulate_single(&haps, 30, &params, 99);
        let b = simulate_single(&haps, 30, &params, 99);
        assert_eq!(a, b);
        let c = simulate_single(&haps, 30, &params, 100);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "long enough")]
    fn rejects_too_short_haplotypes() {
        let short = vec![b"ACGT".to_vec()];
        simulate_single(&short, 1, &ReadSimParams::default(), 0);
    }
}
