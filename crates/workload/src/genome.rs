//! Synthetic genome and variant synthesis.
//!
//! Stands in for the real references behind the paper's input sets
//! (GRCh38/CHM13-based HPRC graphs, 1000GP, yeast): a seeded random genome
//! with tunable repeat content, a variant model with SNP/insertion/deletion
//! mix, and a haplotype panel that assigns alleles by population frequency.

use mg_graph::dna::BASES;
use mg_graph::pangenome::Variant;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the random genome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenomeParams {
    /// Genome length in bases.
    pub len: usize,
    /// Fraction of the genome covered by copied repeats (0.0–0.5). Repeats
    /// create multi-hit minimizers, exercising the seed hit cap like real
    /// genomes do.
    pub repeat_fraction: f64,
    /// Length of each repeated segment.
    pub repeat_len: usize,
}

impl Default for GenomeParams {
    fn default() -> Self {
        GenomeParams {
            len: 10_000,
            repeat_fraction: 0.05,
            repeat_len: 300,
        }
    }
}

/// Generates a random genome.
///
/// ```
/// use mg_workload::genome::{random_genome, GenomeParams};
/// let g = random_genome(&GenomeParams { len: 1000, ..Default::default() }, 7);
/// assert_eq!(g.len(), 1000);
/// assert!(mg_graph::dna::is_valid_sequence(&g));
/// ```
pub fn random_genome(params: &GenomeParams, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut genome: Vec<u8> = (0..params.len)
        .map(|_| BASES[rng.random_range(0..4)])
        .collect();
    // Paste copies of a few source segments to create repeats.
    if params.repeat_fraction > 0.0 && params.len > 2 * params.repeat_len {
        let copies = ((params.len as f64 * params.repeat_fraction) / params.repeat_len as f64)
            .floor() as usize;
        for _ in 0..copies {
            let src = rng.random_range(0..params.len - params.repeat_len);
            let dst = rng.random_range(0..params.len - params.repeat_len);
            let segment: Vec<u8> = genome[src..src + params.repeat_len].to_vec();
            genome[dst..dst + params.repeat_len].copy_from_slice(&segment);
        }
    }
    genome
}

/// Parameters of the variant model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantParams {
    /// Average bases between variant sites.
    pub mean_spacing: usize,
    /// Probability a site is a SNP (the rest split between indels).
    pub snp_fraction: f64,
    /// Maximum indel length.
    pub max_indel: usize,
}

impl Default for VariantParams {
    fn default() -> Self {
        VariantParams {
            mean_spacing: 120,
            snp_fraction: 0.85,
            max_indel: 6,
        }
    }
}

/// Generates non-overlapping variants along `genome`.
pub fn random_variants(genome: &[u8], params: &VariantParams, seed: u64) -> Vec<Variant> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED);
    let mut variants = Vec::new();
    let mut pos = rng.random_range(1..=params.mean_spacing.max(2));
    while pos + params.max_indel + 2 < genome.len() {
        let kind = rng.random::<f64>();
        let v = if kind < params.snp_fraction {
            // SNP to a different base.
            let current = genome[pos];
            let alt = loop {
                let b = BASES[rng.random_range(0..4)];
                if b != current {
                    break b;
                }
            };
            Variant::snp(pos, alt)
        } else if kind < params.snp_fraction + (1.0 - params.snp_fraction) / 2.0 {
            let len = rng.random_range(1..=params.max_indel);
            let ins: Vec<u8> = (0..len).map(|_| BASES[rng.random_range(0..4)]).collect();
            Variant::insertion(pos, ins)
        } else {
            let len = rng.random_range(1..=params.max_indel);
            Variant::deletion(pos, len)
        };
        let end = v.ref_end().max(v.position + 1);
        variants.push(v);
        pos = end + 2 + rng.random_range(1..=params.mean_spacing.max(2));
    }
    variants
}

/// Generates a haplotype panel: each haplotype picks an allele per variant,
/// with per-variant alternate-allele frequencies drawn from a skewed
/// distribution (most variants rare, some common — like real cohorts).
pub fn random_panel(
    n_haplotypes: usize,
    variants: &[Variant],
    seed: u64,
) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0A11_E1E5);
    // Per-variant alt frequency: Beta-ish via squaring a uniform.
    let freqs: Vec<f64> = variants
        .iter()
        .map(|_| {
            let u = rng.random::<f64>();
            (u * u).clamp(0.02, 0.95)
        })
        .collect();
    (0..n_haplotypes)
        .map(|_| {
            variants
                .iter()
                .zip(&freqs)
                .map(|(v, &f)| {
                    if rng.random::<f64>() < f {
                        // Uniform among alternates.
                        1 + rng.random_range(0..v.alt_alleles.len())
                    } else {
                        0
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_graph::pangenome::PangenomeBuilder;

    #[test]
    fn genome_is_valid_and_deterministic() {
        let p = GenomeParams { len: 5000, ..Default::default() };
        let a = random_genome(&p, 42);
        let b = random_genome(&p, 42);
        let c = random_genome(&p, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 5000);
        assert!(mg_graph::dna::is_valid_sequence(&a));
    }

    #[test]
    fn repeats_duplicate_content() {
        let with = random_genome(
            &GenomeParams { len: 20_000, repeat_fraction: 0.3, repeat_len: 500 },
            1,
        );
        let without = random_genome(
            &GenomeParams { len: 20_000, repeat_fraction: 0.0, repeat_len: 500 },
            1,
        );
        // Count distinct 16-mers: repeats must reduce distinctness.
        let distinct = |g: &[u8]| {
            let mut set = std::collections::HashSet::new();
            for w in g.windows(16) {
                set.insert(w.to_vec());
            }
            set.len()
        };
        assert!(distinct(&with) < distinct(&without));
    }

    #[test]
    fn variants_fit_the_builder() {
        let genome = random_genome(&GenomeParams { len: 8000, ..Default::default() }, 5);
        let variants = random_variants(&genome, &VariantParams::default(), 5);
        assert!(!variants.is_empty());
        let panel = random_panel(6, &variants, 5);
        assert_eq!(panel.len(), 6);
        // The builder accepts the whole combination.
        let p = PangenomeBuilder::new(genome)
            .variants(variants)
            .haplotypes(panel)
            .build()
            .unwrap();
        assert_eq!(p.paths().len(), 6);
    }

    #[test]
    fn variant_density_tracks_spacing() {
        let genome = random_genome(&GenomeParams { len: 50_000, repeat_fraction: 0.0, repeat_len: 1 }, 9);
        let dense = random_variants(&genome, &VariantParams { mean_spacing: 40, ..Default::default() }, 9);
        let sparse = random_variants(&genome, &VariantParams { mean_spacing: 400, ..Default::default() }, 9);
        assert!(dense.len() > sparse.len() * 3);
    }

    #[test]
    fn panel_frequencies_are_sane() {
        let genome = random_genome(&GenomeParams { len: 20_000, ..Default::default() }, 3);
        let variants = random_variants(&genome, &VariantParams::default(), 3);
        let panel = random_panel(50, &variants, 3);
        // Some variant should be carried by >1 haplotype (common variants
        // exist) and the panel is not all-reference.
        let mut any_common = false;
        let mut any_alt = false;
        for v in 0..variants.len() {
            let carriers = panel.iter().filter(|h| h[v] > 0).count();
            if carriers > 1 {
                any_common = true;
            }
            if carriers > 0 {
                any_alt = true;
            }
        }
        assert!(any_common);
        assert!(any_alt);
    }

    #[test]
    fn snp_alt_differs_from_reference() {
        let genome = random_genome(&GenomeParams { len: 30_000, ..Default::default() }, 11);
        let variants = random_variants(&genome, &VariantParams { snp_fraction: 1.0, ..Default::default() }, 11);
        for v in &variants {
            assert_eq!(v.ref_len, 1);
            assert_ne!(v.alt_alleles[0][0], genome[v.position]);
        }
    }
}
