//! Post-processing: extension scoring, filtering, and alignment emission.
//!
//! Giraffe refines the raw extensions after the critical functions: it
//! rescores them, discards low-scoring ones, and emits alignments (the part
//! miniGiraffe deliberately does *not* replicate). The parent pipeline
//! implements it so the proxy's input/output boundary sits exactly where
//! the paper cut it.

use mg_core::types::{Extension, ReadResult};
use mg_index::GraphPos;

/// Parameters of the post-processing stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignParams {
    /// Extensions scoring below `keep_fraction × best` are dropped.
    pub keep_fraction: f64,
    /// Alignments with score below this are dropped outright.
    pub min_score: i32,
    /// Scale from score gap to mapping quality.
    pub mapq_scale: f64,
}

impl Default for AlignParams {
    fn default() -> Self {
        AlignParams {
            keep_fraction: 0.8,
            min_score: 8,
            mapq_scale: 2.0,
        }
    }
}

/// A finished alignment record (the parent's output unit).
#[derive(Debug, Clone, PartialEq)]
pub struct Alignment {
    /// Read index.
    pub read_id: u64,
    /// Graph position of the alignment start.
    pub pos: GraphPos,
    /// Covered read interval.
    pub read_start: u32,
    /// Covered read interval end (exclusive).
    pub read_end: u32,
    /// Alignment score.
    pub score: i32,
    /// Mismatches inside the alignment.
    pub mismatches: u32,
    /// Mapping quality (0–60), from the gap to the second-best candidate.
    pub mapq: u8,
    /// Whether the mate-pair distance check passed (paired workflows only;
    /// `true` for single-end).
    pub properly_paired: bool,
    /// GBWT sequence ids of haplotypes supporting the alignment's path
    /// (capped; empty when annotation is off).
    pub haplotypes: Vec<u64>,
    /// CIGAR of a gapped tail alignment appended by the fallback aligner,
    /// when gapless extension left read bases uncovered.
    pub tail_cigar: Option<String>,
}

/// Scores and filters one read's extensions into alignments, best first.
pub fn align_read(result: &ReadResult, params: &AlignParams) -> Vec<Alignment> {
    let Some(best) = result.extensions.first().map(|e| e.score) else {
        return Vec::new();
    };
    let second = result.extensions.get(1).map_or(0, |e| e.score);
    let cutoff = ((best as f64) * params.keep_fraction).floor() as i32;
    result
        .extensions
        .iter()
        .filter(|e| e.score >= cutoff && e.score >= params.min_score)
        .map(|e| make_alignment(e, best, second, params))
        .collect()
}

fn make_alignment(e: &Extension, best: i32, second: i32, params: &AlignParams) -> Alignment {
    let mapq = if e.score < best {
        0
    } else {
        (((best - second).max(0) as f64) * params.mapq_scale).min(60.0) as u8
    };
    Alignment {
        read_id: e.read_id,
        pos: e.pos,
        read_start: e.read_start,
        read_end: e.read_end,
        score: e.score,
        mismatches: e.mismatches,
        mapq,
        properly_paired: true,
        haplotypes: Vec::new(),
        tail_cigar: None,
    }
}

/// Annotates an alignment with the haplotypes whose paths contain its walk,
/// using the GBWT `locate` query (at most `limit` ids). An empty result
/// means the path is not fully haplotype-consistent (possible after
/// max-score trimming at node boundaries).
pub fn annotate_haplotypes(
    gbwt: &mg_gbwt::Gbwt,
    alignment: &mut Alignment,
    path: &[mg_graph::Handle],
    limit: usize,
) {
    let Some((&first, rest)) = path.split_first() else {
        return;
    };
    let mut state = gbwt.find(first.to_gbwt());
    for h in rest {
        state = gbwt.extend(&state, h.to_gbwt());
    }
    alignment.haplotypes = gbwt.locate_state(&state, limit);
}

/// Checks fragment-length consistency for a mate pair: the best alignments
/// of both mates must be within `max_fragment` bases in the graph.
pub fn pair_check(
    graph: &mg_graph::VariationGraph,
    dist: &mg_index::DistanceIndex,
    first: &mut [Alignment],
    second: &mut [Alignment],
    max_fragment: u64,
) {
    let ok = match (first.first(), second.first()) {
        (Some(a), Some(b)) => {
            // R2 is reverse-complemented, so its graph position sits on the
            // flipped strand; compare against the flipped position.
            let b_pos = GraphPos::new(b.pos.handle.flip(), 0);
            dist.min_undirected_distance(graph, a.pos, b_pos, max_fragment)
                .is_some()
                || dist
                    .min_undirected_distance(graph, a.pos, b.pos, max_fragment)
                    .is_some()
        }
        _ => false,
    };
    for a in first.iter_mut().chain(second.iter_mut()) {
        a.properly_paired = ok;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_graph::{Handle, NodeId};

    fn ext(score: i32, start: u32) -> Extension {
        Extension {
            read_id: 0,
            read_start: start,
            read_end: start + 50,
            pos: GraphPos::new(Handle::forward(NodeId::new(1)), start),
            path: vec![],
            score,
            mismatches: 0,
        }
    }

    #[test]
    fn empty_result_gives_no_alignments() {
        let r = ReadResult { read_id: 0, extensions: vec![] };
        assert!(align_read(&r, &AlignParams::default()).is_empty());
    }

    #[test]
    fn low_scores_filtered() {
        let r = ReadResult {
            read_id: 0,
            extensions: vec![ext(50, 0), ext(45, 1), ext(20, 2)],
        };
        let aligns = align_read(&r, &AlignParams::default());
        // 20 < 0.8 * 50 = 40: dropped.
        assert_eq!(aligns.len(), 2);
        assert_eq!(aligns[0].score, 50);
    }

    #[test]
    fn min_score_applies() {
        let r = ReadResult { read_id: 0, extensions: vec![ext(5, 0)] };
        assert!(align_read(&r, &AlignParams::default()).is_empty());
    }

    #[test]
    fn mapq_reflects_score_gap() {
        let unique = ReadResult { read_id: 0, extensions: vec![ext(50, 0)] };
        let ambiguous = ReadResult {
            read_id: 0,
            extensions: vec![ext(50, 0), ext(50, 40)],
        };
        let u = align_read(&unique, &AlignParams::default());
        let a = align_read(&ambiguous, &AlignParams::default());
        assert_eq!(u[0].mapq, 60);
        assert_eq!(a[0].mapq, 0);
        // Non-best alignments always get mapq 0.
        assert_eq!(a[1].mapq, 0);
    }

    #[test]
    fn pair_check_marks_consistent_pairs() {
        use mg_graph::pangenome::PangenomeBuilder;
        let p = PangenomeBuilder::new(vec![b'A'; 1000])
            .haplotypes(vec![vec![]])
            .max_node_len(10)
            .build()
            .unwrap();
        let dist = mg_index::DistanceIndex::build(p.graph());
        let mk = |node: u64| Alignment {
            read_id: 0,
            pos: GraphPos::new(Handle::forward(NodeId::new(node)), 0),
            read_start: 0,
            read_end: 50,
            score: 50,
            mismatches: 0,
            mapq: 60,
            properly_paired: false,
            haplotypes: Vec::new(),
            tail_cigar: None,
        };
        // Nodes 1 and 30: 290 bases apart; fragment limit 500 passes.
        let mut a = vec![mk(1)];
        let mut b = vec![mk(30)];
        pair_check(p.graph(), &dist, &mut a, &mut b, 500);
        assert!(a[0].properly_paired && b[0].properly_paired);
        // Nodes 1 and 90: 890 bases apart; limit 500 fails.
        let mut c = vec![mk(1)];
        let mut d = vec![mk(90)];
        pair_check(p.graph(), &dist, &mut c, &mut d, 500);
        assert!(!c[0].properly_paired && !d[0].properly_paired);
    }

    #[test]
    fn pair_check_with_missing_mate_fails() {
        use mg_graph::pangenome::PangenomeBuilder;
        let p = PangenomeBuilder::new(vec![b'A'; 100])
            .haplotypes(vec![vec![]])
            .build()
            .unwrap();
        let dist = mg_index::DistanceIndex::build(p.graph());
        let mut a = vec![Alignment {
            read_id: 0,
            pos: GraphPos::new(Handle::forward(NodeId::new(1)), 0),
            read_start: 0,
            read_end: 50,
            score: 50,
            mismatches: 0,
            mapq: 60,
            properly_paired: true,
            haplotypes: Vec::new(),
            tail_cigar: None,
        }];
        let mut b: Vec<Alignment> = vec![];
        pair_check(p.graph(), &dist, &mut a, &mut b, 500);
        assert!(!a[0].properly_paired);
    }
}

#[cfg(test)]
mod annotate_tests {
    use super::*;
    use mg_core::types::ReadResult;
    use mg_graph::pangenome::{PangenomeBuilder, Variant};
    use mg_graph::{Handle, NodeId};

    #[test]
    fn annotation_names_supporting_haplotypes() {
        // Two haplotypes: only haplotype 1 takes the alt allele.
        let p = PangenomeBuilder::new(b"AAAACCCCGGGGTTTT".to_vec())
            .variants(vec![Variant::snp(6, b'G')])
            .haplotypes(vec![vec![0], vec![1]])
            .max_node_len(4)
            .build()
            .unwrap();
        let paths = p.paths().to_vec();
        let gbz = mg_gbwt::Gbz::from_pangenome(p).unwrap();
        // Annotate an alignment whose path is haplotype 1's full walk.
        let path = &paths[1].handles;
        let ext = mg_core::types::Extension {
            read_id: 0,
            read_start: 0,
            read_end: 16,
            pos: mg_index::GraphPos::new(Handle::forward(NodeId::new(1)), 0),
            path: path.clone(),
            score: 16,
            mismatches: 0,
        };
        let result = ReadResult { read_id: 0, extensions: vec![ext] };
        let mut aligns = align_read(&result, &AlignParams::default());
        annotate_haplotypes(gbz.gbwt(), &mut aligns[0], path, 16);
        // Haplotype 1 forward = sequence 2.
        assert_eq!(aligns[0].haplotypes, vec![2]);
        // A shared prefix (first node only) is supported by both forwards.
        let mut shared = aligns[0].clone();
        annotate_haplotypes(gbz.gbwt(), &mut shared, &path[..1], 16);
        assert_eq!(shared.haplotypes, vec![0, 2]);
        // Empty path leaves annotation untouched.
        let mut untouched = aligns[0].clone();
        let before = untouched.haplotypes.clone();
        annotate_haplotypes(gbz.gbwt(), &mut untouched, &[], 16);
        assert_eq!(untouched.haplotypes, before);
    }
}
