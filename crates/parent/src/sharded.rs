//! The sharded parent pipeline: minimizer-hit routing over partitioned
//! pangenome shards.
//!
//! [`ShardedParent`] wraps a monolithic [`Parent`] plus a
//! [`mg_core::shard::ShardSet`] and maps each read by routing instead of
//! whole-index seeding: the read's minimizers are extracted once, candidate
//! shards are scored through the manifest's Bloom summaries, and — when
//! every surviving seed lands in a single shard core and the read's
//! clustering radius fits inside the shard's halo — only that shard's
//! kernel state (subgraph, minimizer slice, distance slice, projected
//! GBWT) is touched. Extensions come back in window-local coordinates and
//! are shifted to global ids before post-processing, so everything
//! downstream of the kernel (rescoring, gapped tails, rescue, pair check,
//! GAF) runs the exact monolithic code on exactly the monolithic data.
//!
//! Reads the router cannot prove resident fall back to the monolithic
//! per-read path ([`Parent::map_read_full_obs`]), which makes output
//! equality unconditional: the sharded pipeline is byte-identical to the
//! unsharded parent on every input, and the routing statistics
//! ([`Ctr::RouteResidentReads`] vs [`Ctr::RouteFallbackReads`]) say how
//! much of the work actually stayed shard-local.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use mg_core::dump::SeedDump;
use mg_core::shard::{extension_to_global, RouteScratch, ShardSet};
use mg_core::types::{ReadInput, ReadResult, Seed, Workflow};
use mg_core::{MapScratch, Mapper, StreamOptions, ThreadPersist};
use mg_gbwt::{CacheState, CachedGbwt, HotTier};
use mg_index::GraphPos;
use mg_obs::{Ctr, Gauge, Hist, Metrics, ObsShard, Stage};
use mg_sched::{AnyScheduler, PoolCell, PoolTask};
use mg_support::probe::NoProbe;
use mg_support::regions::{NullSink, RegionSink, RegionTimer};
use mg_support::{Error, Result};

use crate::align::{align_read, pair_check, Alignment};
use crate::pipeline::{
    stream_chunks, ChunkRun, Parent, ParentOptions, ParentRun, ParentStreamSummary,
};
use crate::rescue::rescue_mate;

/// One read's mapped record plus the shard that produced it (`None` when
/// the monolithic fallback mapped it).
type Mapped = (ReadInput, ReadResult, Vec<Alignment>, Option<u32>);

/// A parent mapper that dispatches reads to partitioned shards.
///
/// Holds one kernel [`Mapper`] per shard (over the shard's own `.mgi`
/// bundle) next to the monolithic parent it falls back to. Construction is
/// cheap — the shard bundles were already loaded by
/// [`ShardSet::open_dir`]; only the per-shard distance indices are cloned
/// out of the bundles so each mapper owns its slice.
pub struct ShardedParent<'a> {
    parent: &'a Parent<'a>,
    set: &'a ShardSet,
    mappers: Vec<Mapper<'a>>,
}

impl<'a> ShardedParent<'a> {
    /// Wires a shard set to the monolithic parent it shards.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] when the shard manifest disagrees with
    /// the parent's pangenome or minimizer scheme — routing decisions made
    /// against the wrong index would silently produce wrong seeds.
    pub fn new(parent: &'a Parent<'a>, set: &'a ShardSet) -> Result<Self> {
        let node_count = parent.mapper().gbz().graph().node_count() as u64;
        if set.manifest.node_count != node_count {
            return Err(Error::Corrupt(format!(
                "shard manifest partitions {} nodes but the pangenome has {node_count}",
                set.manifest.node_count
            )));
        }
        if set.manifest.params != parent.minimizer().params() {
            return Err(Error::Corrupt(
                "shard manifest minimizer scheme disagrees with the parent index".into(),
            ));
        }
        let mappers = set
            .shards
            .iter()
            .map(|s| Mapper::with_distance(s.bundle.gbz(), s.bundle.distance().clone()))
            .collect();
        Ok(ShardedParent { parent, set, mappers })
    }

    /// The monolithic parent this dispatcher falls back to.
    pub fn parent(&self) -> &'a Parent<'a> {
        self.parent
    }

    /// The shard set being routed over.
    pub fn set(&self) -> &'a ShardSet {
        self.set
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.mappers.len()
    }

    /// Runs the full sharded pipeline over raw reads without
    /// instrumentation. Output is byte-identical to [`Parent::run`].
    pub fn run(&self, reads: &[Vec<u8>], options: &ParentOptions) -> ParentRun {
        self.run_with_sink_metrics(reads, options, &NullSink, Metrics::off_ref())
    }

    /// [`ShardedParent::run`] recording routing counters and stage spans.
    pub fn run_with_metrics(
        &self,
        reads: &[Vec<u8>],
        options: &ParentOptions,
        metrics: &Metrics,
    ) -> ParentRun {
        self.run_with_sink_metrics(reads, options, &NullSink, metrics)
    }

    /// Runs the full sharded pipeline with a region sink and metrics
    /// registry — the sharded analog of [`Parent::run_with_sink_metrics`].
    pub fn run_with_sink_metrics(
        &self,
        reads: &[Vec<u8>],
        options: &ParentOptions,
        sink: &(impl RegionSink + ?Sized),
        metrics: &Metrics,
    ) -> ParentRun {
        let start = Instant::now();
        let hot = self.parent.mapper().warm_hot_tier(&options.mapping);
        metrics.gauge_max(
            Gauge::HotTierBytes,
            hot.as_deref().map_or(0, HotTier::heap_bytes) as u64,
        );
        let chunk = self.run_chunk(reads, 0, options, sink, hot.as_ref(), metrics);
        if hot.is_none() {
            let _ = self
                .parent
                .mapper()
                .build_hot_tier(&chunk.dump_reads, &options.mapping);
        }
        let wall = start.elapsed();
        ParentRun {
            kernel_results: chunk.kernel_results,
            alignments: chunk.alignments,
            dump: SeedDump::new(self.parent.workflow(), chunk.dump_reads),
            rescued: chunk.rescued,
            wall,
        }
    }

    /// Maps one chunk of reads (global ids `base_id..`) on the parent
    /// mapper's persistent pool — the serving entry point, signature-
    /// compatible with [`Parent::map_chunk`] so the serving executor can
    /// swap pipelines per job. The `hot` tier is the *global* tier used by
    /// fallback reads and rescue; per-shard tiers are managed internally.
    pub fn map_chunk(
        &self,
        reads: &[Vec<u8>],
        base_id: u64,
        options: &ParentOptions,
        hot: Option<&Arc<HotTier>>,
        metrics: &Metrics,
    ) -> ChunkRun {
        self.run_chunk(reads, base_id, options, &NullSink, hot, metrics)
    }

    /// Streaming ingestion over the sharded pipeline. Chunking, pair
    /// alignment and GAF rendering are shared with the monolithic
    /// [`Parent::run_streaming`] (one loop, two pipelines), so the emitted
    /// GAF is byte-identical to the unsharded stream over the same input.
    pub fn run_streaming<I, W>(
        &self,
        batches: I,
        options: &ParentOptions,
        stream: &StreamOptions,
        set_name: &str,
        gaf_out: &mut W,
    ) -> Result<ParentStreamSummary>
    where
        I: Iterator<Item = Result<Vec<Vec<u8>>>> + Send,
        W: std::io::Write,
    {
        self.run_streaming_with_sink_metrics(
            batches,
            options,
            stream,
            set_name,
            gaf_out,
            &NullSink,
            Metrics::off_ref(),
        )
    }

    /// [`ShardedParent::run_streaming`] with a region sink and metrics.
    #[allow(clippy::too_many_arguments)]
    pub fn run_streaming_with_sink_metrics<I, W>(
        &self,
        batches: I,
        options: &ParentOptions,
        stream: &StreamOptions,
        set_name: &str,
        gaf_out: &mut W,
        sink: &(impl RegionSink + ?Sized),
        metrics: &Metrics,
    ) -> Result<ParentStreamSummary>
    where
        I: Iterator<Item = Result<Vec<Vec<u8>>>> + Send,
        W: std::io::Write,
    {
        let mut hot = self.parent.mapper().warm_hot_tier(&options.mapping);
        let result = stream_chunks(
            self.parent.workflow(),
            self.parent.mapper().gbz(),
            options,
            stream,
            set_name,
            batches,
            gaf_out,
            metrics,
            |chunk, base| {
                let out = self.run_chunk(chunk, base, options, sink, hot.as_ref(), metrics);
                if hot.is_none() {
                    hot = self
                        .parent
                        .mapper()
                        .build_hot_tier(&out.dump_reads, &options.mapping);
                }
                out
            },
        );
        metrics.gauge_max(
            Gauge::HotTierBytes,
            hot.as_deref().map_or(0, HotTier::heap_bytes) as u64,
        );
        result
    }

    /// Maps `reads` through route-dispatch-merge plus the pair-local tail.
    /// Mirrors `Parent::run_chunk`: same pool, same scheduler, same slot
    /// assembly, same rescue and pair check (both run on the *global*
    /// index — rescue windows and fragment distances cross shard
    /// boundaries by construction), so the only difference is which kernel
    /// state each resident read touches.
    fn run_chunk(
        &self,
        reads: &[Vec<u8>],
        base_id: u64,
        options: &ParentOptions,
        sink: &(impl RegionSink + ?Sized),
        hot: Option<&Arc<HotTier>>,
        metrics: &Metrics,
    ) -> ChunkRun {
        let n = reads.len();
        let k = self.shard_count();
        // Per-shard hot tiers warm independently of the global one: a
        // shard's tier counts only the GBWT rows its resident reads touch.
        let shard_hots: Vec<Option<Arc<HotTier>>> = self
            .mappers
            .iter()
            .map(|m| m.warm_hot_tier(&options.mapping))
            .collect();
        let slots: Vec<OnceLock<Mapped>> = (0..n).map(|_| OnceLock::new()).collect();
        let scheduler: Box<dyn AnyScheduler> =
            options.mapping.scheduler.build(options.mapping.batch_size);
        // Dispatch on the *parent* mapper's resident pool: sharded and
        // monolithic jobs interleave on one set of threads, which is the
        // whole point of shard-tagged tasks (no per-shard thread pools).
        let mut pool = self.parent.mapper().lock_pool();
        scheduler.run_pooled_erased_obs(
            &mut pool,
            n,
            options.mapping.threads.max(1),
            metrics,
            &|thread, cell| {
                let persist = match cell.downcast_mut::<ShardThreadPersist>() {
                    Some(p) => std::mem::take(p),
                    None => ShardThreadPersist::default(),
                };
                let mut shard_states = persist.shards;
                shard_states.resize_with(k, CacheState::default);
                Box::new(ShardWorker {
                    sp: self,
                    reads,
                    base_id,
                    options,
                    sink,
                    thread,
                    slots: &slots,
                    cache: CachedGbwt::with_state(
                        self.parent.mapper().gbz().gbwt(),
                        options.mapping.cache_capacity,
                        persist.global.cache,
                    )
                    .with_hot(hot.map(Arc::clone)),
                    shard_caches: (0..k).map(|_| None).collect(),
                    shard_states,
                    shard_hots: &shard_hots,
                    scratch: persist.global.scratch,
                    route: persist.route,
                    seed_buf: Vec::new(),
                    metrics,
                    obs: metrics.shard(),
                })
            },
        );
        drop(pool);
        let mut dump_reads = Vec::with_capacity(n);
        let mut kernel_results = Vec::with_capacity(n);
        let mut alignments = Vec::with_capacity(n);
        let mut shard_of = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            let (input, result, aligns, shard) = slot
                .into_inner()
                .unwrap_or_else(|| panic!("read {i} not mapped"));
            dump_reads.push(input);
            kernel_results.push(result);
            alignments.push(aligns);
            shard_of.push(shard);
        }
        // Freeze cold per-shard hot tiers from this chunk's resident reads,
        // the same chunk-0-seeds-the-tier policy the monolithic path uses.
        // Tiers only steer cache decode order, never results.
        for (s, shard_hot) in shard_hots.iter().enumerate() {
            if shard_hot.is_some() {
                continue;
            }
            let window = self.set.shards[s].meta.window;
            let locals: Vec<ReadInput> = dump_reads
                .iter()
                .zip(&shard_of)
                .filter(|&(_, sh)| *sh == Some(s as u32))
                .map(|(input, _)| ReadInput {
                    bases: Vec::new(),
                    seeds: input
                        .seeds
                        .iter()
                        .map(|sd| {
                            Seed::new(
                                sd.read_offset,
                                GraphPos::new(window.to_local(sd.pos.handle), sd.pos.offset),
                            )
                        })
                        .collect(),
                })
                .collect();
            if !locals.is_empty() {
                let _ = self.mappers[s].build_hot_tier(&locals, &options.mapping);
            }
        }
        // Paired tail: rescue and pair check run against the global index —
        // a rescued mate can land in any shard's territory, and fragment
        // distances are global-coordinate questions.
        let mut rescued: Vec<Option<ReadResult>> = vec![None; n];
        if self.parent.workflow() == Workflow::Paired && options.enable_rescue {
            let _t = RegionTimer::start(sink, 0, "pair_rescue");
            let mut cache = CachedGbwt::new(
                self.parent.mapper().gbz().gbwt(),
                options.mapping.cache_capacity,
            )
            .with_hot(hot.map(Arc::clone));
            let mut scratch = MapScratch::default();
            for pair_start in (0..n.saturating_sub(1)).step_by(2) {
                let (a, b) = (pair_start, pair_start + 1);
                let (mapped, unmapped) =
                    match (alignments[a].is_empty(), alignments[b].is_empty()) {
                        (false, true) => (a, b),
                        (true, false) => (b, a),
                        _ => continue,
                    };
                let anchor = alignments[mapped][0].pos;
                if let Some(result) = rescue_mate(
                    self.parent.mapper(),
                    self.parent.minimizer(),
                    &mut cache,
                    base_id + unmapped as u64,
                    &dump_reads[unmapped],
                    anchor,
                    &options.mapping,
                    &options.rescue,
                    sink,
                    0,
                    &mut NoProbe,
                    &mut scratch,
                ) {
                    alignments[unmapped] = align_read(&result, &options.align);
                    rescued[unmapped] = Some(result);
                }
            }
        }
        if self.parent.workflow() == Workflow::Paired {
            let _t = RegionTimer::start(sink, 0, "pair_check");
            let mut iter = alignments.chunks_mut(2);
            for pair in &mut iter {
                if pair.len() == 2 {
                    let (first, second) = pair.split_at_mut(1);
                    pair_check(
                        self.parent.mapper().gbz().graph(),
                        self.parent.mapper().distance_index(),
                        &mut first[0],
                        &mut second[0],
                        options.max_fragment,
                    );
                }
            }
        }
        ChunkRun { dump_reads, kernel_results, alignments, rescued }
    }
}

/// Per-thread state the sharded dispatcher parks in its pool cell between
/// chunks: the monolithic cache/scratch (for fallback reads and their
/// warmth across chunks) plus one cache state per shard and the routing
/// buffers. Replaces the plain [`ThreadPersist`] cell; alternating
/// monolithic and sharded dispatches on one pool therefore restarts the
/// other pipeline's caches cold, which costs warmth but never correctness.
#[derive(Default)]
struct ShardThreadPersist {
    global: ThreadPersist,
    shards: Vec<CacheState>,
    route: RouteScratch,
}

/// One pool thread's worker for a sharded chunk: routes each assigned
/// read, runs the resident shard's kernel (or the monolithic fallback),
/// and translates shard-local output back to global coordinates.
struct ShardWorker<'e, 'g, S: RegionSink + ?Sized> {
    sp: &'e ShardedParent<'g>,
    reads: &'e [Vec<u8>],
    base_id: u64,
    options: &'e ParentOptions,
    sink: &'e S,
    thread: usize,
    slots: &'e [OnceLock<Mapped>],
    /// Monolithic cache for fallback reads.
    cache: CachedGbwt<'g>,
    /// Per-shard caches, created lazily on first resident read — a thread
    /// that never touches shard `s` never pays for its cache.
    shard_caches: Vec<Option<CachedGbwt<'g>>>,
    /// Parked cache states for shards whose cache is not yet rebound.
    shard_states: Vec<CacheState>,
    shard_hots: &'e [Option<Arc<HotTier>>],
    scratch: MapScratch,
    route: RouteScratch,
    seed_buf: Vec<Seed>,
    metrics: &'e Metrics,
    obs: ObsShard,
}

impl<S: RegionSink + ?Sized> PoolTask for ShardWorker<'_, '_, S> {
    fn run(&mut self, i: usize) {
        let read_id = self.base_id + i as u64;
        if self.options.fault_read == Some(read_id) {
            panic!("injected fault mapping read {read_id}");
        }
        let bases = &self.reads[i];
        let t_route = self.obs.now();
        let outcome = self.sp.set.route_read(
            bases,
            self.options.hard_hit_cap,
            &mut self.route,
            &mut self.seed_buf,
        );
        self.obs.inc(Ctr::RouteReadsTotal);
        self.obs.add(Ctr::RouteShardsProbed, outcome.probed as u64);
        self.obs.observe(Hist::RouteFanout, outcome.fanout as u64);
        // Residency needs more than single-shard seeds: the clustering
        // radius (and thus any graph walk the kernel can make) must fit
        // inside the shard's halo, or local distances could diverge.
        let radius = (bases.len() as u64).max(self.options.mapping.cluster.distance_limit);
        let resident = outcome
            .resident
            .filter(|_| radius <= self.sp.set.manifest.resident_limit);
        let Some(s) = resident else {
            self.obs.inc(Ctr::RouteFallbackReads);
            // The router already swept this read's minimizers; seed the
            // whole-index fallback from them instead of extracting twice.
            let (input, result, aligns) = self.sp.parent.map_read_routed_obs(
                &mut self.cache,
                read_id,
                bases,
                self.route.minimizers(),
                self.options,
                self.sink,
                self.thread,
                &mut NoProbe,
                &mut self.scratch,
                &mut self.obs,
            );
            self.slots[i]
                .set((input, result, aligns, None))
                .expect("each read mapped once");
            return;
        };
        self.obs.inc(Ctr::RouteResidentReads);
        self.obs.stage(Stage::Seeding, t_route);
        let window = self.sp.set.shards[s].meta.window;
        // The routed seed list is already shard-local and ordered exactly
        // as the monolithic query would order these seeds.
        // Clone the routed seeds (exact-size allocation) rather than moving
        // the buffer out: `seed_buf` keeps its capacity, so routing the next
        // read appends without regrowing from zero.
        let mut input = ReadInput { bases: bases.clone(), seeds: self.seed_buf.clone() };
        if self.shard_caches[s].is_none() {
            let state = std::mem::take(&mut self.shard_states[s]);
            self.shard_caches[s] = Some(
                CachedGbwt::with_state(
                    self.sp.set.shards[s].bundle.gbz().gbwt(),
                    self.options.mapping.cache_capacity,
                    state,
                )
                .with_hot(self.shard_hots[s].clone()),
            );
        }
        let cache = self.shard_caches[s].as_mut().expect("cache just created");
        let local = self.sp.mappers[s].map_read_with_scratch(
            cache,
            read_id,
            &input,
            &self.options.mapping,
            self.sink,
            self.thread,
            &mut NoProbe,
            &mut self.scratch,
            &mut self.obs,
        );
        // Merge: shift extensions and the dump seeds back to global ids so
        // every consumer downstream sees monolithic-identical records.
        let t_merge = self.obs.is_on().then(Instant::now);
        let result = ReadResult {
            read_id,
            extensions: local
                .extensions
                .iter()
                .map(|e| extension_to_global(window, e))
                .collect(),
        };
        for sd in &mut input.seeds {
            sd.pos = GraphPos::new(window.to_global(sd.pos.handle), sd.pos.offset);
        }
        if let Some(t) = t_merge {
            self.obs.add(Ctr::ShardMergeNs, t.elapsed().as_nanos() as u64);
        }
        let t0 = self.obs.now();
        let aligns = self
            .sp
            .parent
            .post_process(&input, &result, self.options, self.sink, self.thread);
        self.obs.stage(Stage::Rescoring, t0);
        self.slots[i]
            .set((input, result, aligns, Some(s as u32)))
            .expect("each read mapped once");
    }

    fn finish(self: Box<Self>, cell: &mut PoolCell) {
        let this = *self;
        this.metrics.absorb(&this.obs);
        let mut shards = this.shard_states;
        for (s, cache) in this.shard_caches.into_iter().enumerate() {
            if let Some(c) = cache {
                shards[s] = c.into_state();
            }
        }
        *cell = Box::new(ShardThreadPersist {
            global: ThreadPersist {
                cache: this.cache.into_state(),
                scratch: this.scratch,
            },
            shards,
            route: this.route,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_core::shard::ShardParams;
    use mg_workload::{InputSetSpec, SyntheticInput};

    fn tiny_input() -> SyntheticInput {
        SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), 11)
    }

    #[test]
    fn sharded_matches_monolithic_end_to_end() {
        let input = tiny_input();
        let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let set = ShardSet::build(
            &input.gbz,
            &input.minimizer_index,
            parent.mapper().distance_index(),
            &ShardParams::default(),
        )
        .unwrap();
        let sharded = ShardedParent::new(&parent, &set).unwrap();
        let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
        let options = ParentOptions::default();
        let mono = parent.run(&reads, &options);
        let shard = sharded.run(&reads, &options);
        assert_eq!(mono.kernel_results, shard.kernel_results);
        assert_eq!(mono.alignments, shard.alignments);
        assert_eq!(mono.dump, shard.dump);
        assert_eq!(mono.rescued, shard.rescued);
    }

    #[test]
    fn routing_metrics_account_for_every_read() {
        let input = tiny_input();
        let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let set = ShardSet::build(
            &input.gbz,
            &input.minimizer_index,
            parent.mapper().distance_index(),
            &ShardParams::default(),
        )
        .unwrap();
        let sharded = ShardedParent::new(&parent, &set).unwrap();
        let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
        let metrics = Metrics::new();
        let _ = sharded.run_with_metrics(&reads, &ParentOptions::default(), &metrics);
        let rep = metrics.report();
        let n = reads.len() as u64;
        assert_eq!(rep.counter(Ctr::RouteReadsTotal), n);
        assert_eq!(
            rep.counter(Ctr::RouteResidentReads) + rep.counter(Ctr::RouteFallbackReads),
            n
        );
        // Routing must keep most tiny-workload reads resident; the bound
        // here is deliberately loose (the bench gate enforces the real
        // thresholds on larger inputs).
        assert!(
            rep.counter(Ctr::RouteResidentReads) > 0,
            "no read stayed resident"
        );
        assert!(rep.counter(Ctr::RouteShardsProbed) >= n);
    }

    #[test]
    fn rejects_mismatched_manifest() {
        let input = tiny_input();
        let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let mut set = ShardSet::build(
            &input.gbz,
            &input.minimizer_index,
            parent.mapper().distance_index(),
            &ShardParams::default(),
        )
        .unwrap();
        set.manifest.node_count += 1;
        assert!(ShardedParent::new(&parent, &set).is_err());
    }
}
