//! Gapped alignment: the fallback alignment phase.
//!
//! Gapless extension cannot cross indels. When the best extension leaves
//! read bases uncovered, Giraffe hands the tails to a gapped aligner
//! (dozeu/gssw banded Smith-Waterman). This module implements the same
//! role: a banded global aligner with affine gap penalties (Gotoh's three
//! matrices), used by the parent's post-processing to stitch uncovered read
//! tails onto the graph walk.

/// Scoring parameters (Giraffe's defaults: match 1, mismatch 4, gap open
/// 6, gap extend 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapParams {
    /// Score added per matching base.
    pub match_score: i32,
    /// Penalty subtracted per mismatching base.
    pub mismatch: i32,
    /// Penalty for opening a gap (first gapped base).
    pub gap_open: i32,
    /// Penalty for each additional gapped base.
    pub gap_extend: i32,
    /// Band half-width: cells with `|i - j| > band` are not computed.
    pub band: usize,
}

impl Default for GapParams {
    fn default() -> Self {
        GapParams {
            match_score: 1,
            mismatch: 4,
            gap_open: 6,
            gap_extend: 1,
            band: 16,
        }
    }
}

/// One CIGAR run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CigarOp {
    /// Matching bases (`=`).
    Match(u32),
    /// Substitutions (`X`).
    Mismatch(u32),
    /// Bases present in the read but not the reference (`I`).
    Insertion(u32),
    /// Reference bases skipped by the read (`D`).
    Deletion(u32),
}

impl CigarOp {
    fn len(self) -> u32 {
        match self {
            CigarOp::Match(n) | CigarOp::Mismatch(n) | CigarOp::Insertion(n) | CigarOp::Deletion(n) => n,
        }
    }

    fn symbol(self) -> char {
        match self {
            CigarOp::Match(_) => '=',
            CigarOp::Mismatch(_) => 'X',
            CigarOp::Insertion(_) => 'I',
            CigarOp::Deletion(_) => 'D',
        }
    }
}

/// Renders a CIGAR string (`12=1X3I4=`).
pub fn cigar_string(ops: &[CigarOp]) -> String {
    ops.iter().map(|op| format!("{}{}", op.len(), op.symbol())).collect()
}

/// A finished gapped alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GappedAlignment {
    /// Total alignment score.
    pub score: i32,
    /// Edit script, read against reference.
    pub cigar: Vec<CigarOp>,
}

impl GappedAlignment {
    /// Number of read bases consumed by the CIGAR.
    pub fn read_len(&self) -> u32 {
        self.cigar
            .iter()
            .map(|op| match op {
                CigarOp::Match(n) | CigarOp::Mismatch(n) | CigarOp::Insertion(n) => *n,
                CigarOp::Deletion(_) => 0,
            })
            .sum()
    }

    /// Number of reference bases consumed by the CIGAR.
    pub fn ref_len(&self) -> u32 {
        self.cigar
            .iter()
            .map(|op| match op {
                CigarOp::Match(n) | CigarOp::Mismatch(n) | CigarOp::Deletion(n) => *n,
                CigarOp::Insertion(_) => 0,
            })
            .sum()
    }
}

const NEG: i32 = i32::MIN / 4;

/// Globally aligns `read` against `reference` inside a diagonal band.
///
/// Returns `None` when the length difference exceeds the band (the global
/// path would leave the band) or either sequence is empty.
pub fn banded_global(read: &[u8], reference: &[u8], params: &GapParams) -> Option<GappedAlignment> {
    let (n, m) = (read.len(), reference.len());
    if n == 0 || m == 0 || n.abs_diff(m) > params.band {
        return None;
    }
    let band = params.band;
    let width = 2 * band + 1;
    let idx = |i: usize, j: usize| -> Option<usize> {
        // Column j sits at offset j - i + band within row i's band window.
        let lo = i.saturating_sub(band);
        if j < lo || j > i + band || j > m {
            None
        } else {
            Some(j + band - i)
        }
    };
    // Three Gotoh matrices, band-compressed rows: M (diagonal), X (gap in
    // reference: insertion), Y (gap in read: deletion).
    let rows = n + 1;
    let mut matrix_m = vec![NEG; rows * width];
    let mut matrix_x = vec![NEG; rows * width];
    let mut matrix_y = vec![NEG; rows * width];
    // Tracebacks: 0 = from M, 1 = from X, 2 = from Y.
    let mut back_m = vec![0u8; rows * width];
    let mut back_x = vec![0u8; rows * width];
    let mut back_y = vec![0u8; rows * width];

    let at = |i: usize, k: usize| i * width + k;
    matrix_m[at(0, band)] = 0;
    // First row: deletions only.
    for j in 1..=m.min(band) {
        let k = idx(0, j).expect("in band");
        matrix_y[at(0, k)] = -(params.gap_open + (j as i32 - 1) * params.gap_extend);
        back_y[at(0, k)] = if j == 1 { 0 } else { 2 };
    }
    for i in 1..=n {
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(m);
        for j in lo..=hi {
            let k = idx(i, j).expect("in band");
            // X: gap in reference (consume read base i).
            if let Some(pk) = idx(i - 1, j) {
                let open = matrix_m[at(i - 1, pk)] - params.gap_open;
                let extend = matrix_x[at(i - 1, pk)] - params.gap_extend;
                if open >= extend {
                    matrix_x[at(i, k)] = open;
                    back_x[at(i, k)] = 0;
                } else {
                    matrix_x[at(i, k)] = extend;
                    back_x[at(i, k)] = 1;
                }
            }
            // Y: gap in read (consume reference base j).
            if j >= 1 {
                if let Some(pk) = idx(i, j - 1) {
                    let open = matrix_m[at(i, pk)] - params.gap_open;
                    let extend = matrix_y[at(i, pk)] - params.gap_extend;
                    if open >= extend {
                        matrix_y[at(i, k)] = open;
                        back_y[at(i, k)] = 0;
                    } else {
                        matrix_y[at(i, k)] = extend;
                        back_y[at(i, k)] = 2;
                    }
                }
            }
            // M: diagonal.
            if j >= 1 {
                if let Some(pk) = idx(i - 1, j - 1) {
                    let sub = if read[i - 1] == reference[j - 1] {
                        params.match_score
                    } else {
                        -params.mismatch
                    };
                    let from_m = matrix_m[at(i - 1, pk)];
                    let from_x = matrix_x[at(i - 1, pk)];
                    let from_y = matrix_y[at(i - 1, pk)];
                    let (best, who) = if from_m >= from_x && from_m >= from_y {
                        (from_m, 0)
                    } else if from_x >= from_y {
                        (from_x, 1)
                    } else {
                        (from_y, 2)
                    };
                    if best > NEG {
                        matrix_m[at(i, k)] = best + sub;
                        back_m[at(i, k)] = who;
                    }
                }
            }
        }
    }

    // Final cell.
    let k_end = idx(n, m)?;
    let (mut state, score) = {
        let m_score = matrix_m[at(n, k_end)];
        let x_score = matrix_x[at(n, k_end)];
        let y_score = matrix_y[at(n, k_end)];
        if m_score >= x_score && m_score >= y_score {
            (0u8, m_score)
        } else if x_score >= y_score {
            (1, x_score)
        } else {
            (2, y_score)
        }
    };
    if score <= NEG {
        return None;
    }

    // Traceback.
    let (mut i, mut j) = (n, m);
    let mut ops_rev: Vec<CigarOp> = Vec::new();
    let push = |ops: &mut Vec<CigarOp>, op: CigarOp| match (ops.last_mut(), op) {
        (Some(CigarOp::Match(n)), CigarOp::Match(d)) => *n += d,
        (Some(CigarOp::Mismatch(n)), CigarOp::Mismatch(d)) => *n += d,
        (Some(CigarOp::Insertion(n)), CigarOp::Insertion(d)) => *n += d,
        (Some(CigarOp::Deletion(n)), CigarOp::Deletion(d)) => *n += d,
        _ => ops.push(op),
    };
    while i > 0 || j > 0 {
        let k = idx(i, j).expect("traceback stays in band");
        match state {
            0 => {
                let op = if read[i - 1] == reference[j - 1] {
                    CigarOp::Match(1)
                } else {
                    CigarOp::Mismatch(1)
                };
                push(&mut ops_rev, op);
                state = back_m[at(i, k)];
                i -= 1;
                j -= 1;
            }
            1 => {
                push(&mut ops_rev, CigarOp::Insertion(1));
                state = back_x[at(i, k)];
                i -= 1;
            }
            _ => {
                push(&mut ops_rev, CigarOp::Deletion(1));
                state = back_y[at(i, k)];
                j -= 1;
            }
        }
    }
    ops_rev.reverse();
    Some(GappedAlignment { score, cigar: ops_rev })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p() -> GapParams {
        GapParams::default()
    }

    #[test]
    fn identical_sequences_align_perfectly() {
        let a = banded_global(b"ACGTACGT", b"ACGTACGT", &p()).unwrap();
        assert_eq!(a.score, 8);
        assert_eq!(a.cigar, vec![CigarOp::Match(8)]);
        assert_eq!(cigar_string(&a.cigar), "8=");
    }

    #[test]
    fn single_substitution() {
        let a = banded_global(b"ACGTACGT", b"ACGAACGT", &p()).unwrap();
        assert_eq!(a.score, 7 - 4);
        assert_eq!(cigar_string(&a.cigar), "3=1X4=");
    }

    #[test]
    fn single_insertion_in_read() {
        let a = banded_global(b"ACGTTACGT", b"ACGTACGT", &p()).unwrap();
        // 8 matches, one 1-base gap: 8 - 6.
        assert_eq!(a.score, 8 - 6);
        assert_eq!(a.read_len(), 9);
        assert_eq!(a.ref_len(), 8);
        assert!(a.cigar.iter().any(|op| matches!(op, CigarOp::Insertion(1))));
    }

    #[test]
    fn single_deletion_from_read() {
        let a = banded_global(b"ACGACGT", b"ACGTACGT", &p()).unwrap();
        assert_eq!(a.score, 7 - 6);
        assert!(a.cigar.iter().any(|op| matches!(op, CigarOp::Deletion(1))));
    }

    #[test]
    fn affine_gaps_prefer_one_long_gap() {
        // Read missing 3 consecutive bases: one open + two extends beats
        // three opens.
        let a = banded_global(b"AAAATTTT", b"AAAACCCTTTT", &p()).unwrap();
        assert_eq!(a.score, 8 - (6 + 2));
        assert_eq!(cigar_string(&a.cigar), "4=3D4=");
    }

    #[test]
    fn empty_or_out_of_band_inputs() {
        assert!(banded_global(b"", b"ACGT", &p()).is_none());
        assert!(banded_global(b"ACGT", b"", &p()).is_none());
        // Length difference beyond the band.
        let long = vec![b'A'; 100];
        assert!(banded_global(b"ACGT", &long, &p()).is_none());
    }

    #[test]
    fn cigar_lengths_partition_both_sequences() {
        let read = b"ACGTGGTACCA";
        let reference = b"ACGTGTACGCA";
        let a = banded_global(read, reference, &p()).unwrap();
        assert_eq!(a.read_len() as usize, read.len());
        assert_eq!(a.ref_len() as usize, reference.len());
    }

    /// Unbanded reference implementation for cross-checking scores.
    fn full_global(read: &[u8], reference: &[u8], params: &GapParams) -> i32 {
        let (n, m) = (read.len(), reference.len());
        let mut m_mat = vec![vec![NEG; m + 1]; n + 1];
        let mut x_mat = vec![vec![NEG; m + 1]; n + 1];
        let mut y_mat = vec![vec![NEG; m + 1]; n + 1];
        m_mat[0][0] = 0;
        for i in 1..=n {
            x_mat[i][0] = -(params.gap_open + (i as i32 - 1) * params.gap_extend);
        }
        for j in 1..=m {
            y_mat[0][j] = -(params.gap_open + (j as i32 - 1) * params.gap_extend);
        }
        for i in 1..=n {
            for j in 0..=m {
                if j >= 1 {
                    let sub = if read[i - 1] == reference[j - 1] {
                        params.match_score
                    } else {
                        -params.mismatch
                    };
                    let best = m_mat[i - 1][j - 1].max(x_mat[i - 1][j - 1]).max(y_mat[i - 1][j - 1]);
                    if best > NEG {
                        m_mat[i][j] = best + sub;
                    }
                    y_mat[i][j] = (m_mat[i][j - 1] - params.gap_open)
                        .max(y_mat[i][j - 1] - params.gap_extend);
                }
                x_mat[i][j] =
                    (m_mat[i - 1][j] - params.gap_open).max(x_mat[i - 1][j] - params.gap_extend);
            }
        }
        m_mat[n][m].max(x_mat[n][m]).max(y_mat[n][m])
    }

    proptest! {
        /// With a band at least as wide as both sequences, the banded score
        /// equals the unbanded optimum, and the CIGAR reproduces it.
        #[test]
        fn prop_matches_unbanded_dp(
            read in proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 1..18),
            reference in proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 1..18),
        ) {
            let params = GapParams { band: 20, ..Default::default() };
            let banded = banded_global(&read, &reference, &params).unwrap();
            prop_assert_eq!(banded.score, full_global(&read, &reference, &params));
            // CIGAR partitions both sequences.
            prop_assert_eq!(banded.read_len() as usize, read.len());
            prop_assert_eq!(banded.ref_len() as usize, reference.len());
            // Recomputing the score from the CIGAR agrees.
            let mut score = 0i32;
            for op in &banded.cigar {
                score += match *op {
                    CigarOp::Match(n) => n as i32 * params.match_score,
                    CigarOp::Mismatch(n) => -(n as i32) * params.mismatch,
                    CigarOp::Insertion(n) | CigarOp::Deletion(n) => {
                        -(params.gap_open + (n as i32 - 1) * params.gap_extend)
                    }
                };
            }
            prop_assert_eq!(score, banded.score);
        }
    }
}

/// Aligns an uncovered read tail against the graph continuation beyond an
/// extension's walk.
///
/// The reference is spelled by following the extension's last handle
/// greedily (first graph successor) until `tail.len() + band` bases are
/// gathered. Returns the alignment plus the number of read bases it
/// consumed, or `None` when no continuation exists or the aligner scores
/// the tail negatively (keeping the trimmed gapless result is better).
pub fn align_tail(
    graph: &mg_graph::VariationGraph,
    extension: &mg_core::types::Extension,
    tail: &[u8],
    params: &GapParams,
) -> Option<(GappedAlignment, u32)> {
    if tail.is_empty() {
        return None;
    }
    let last = *extension.path.last()?;
    // Bases of the last node already consumed by the extension: its length
    // minus whatever the walk left unread. The walk consumed read bases
    // from `pos.offset` across the whole path; the leftover on the last
    // node is derivable from the covered span.
    let covered = (extension.read_end - extension.read_start) as usize;
    let path_before_last: usize = extension.path[..extension.path.len() - 1]
        .iter()
        .map(|h| graph.node_len(h.node()))
        .sum::<usize>()
        .saturating_sub(extension.pos.offset as usize);
    let used_on_last = covered.saturating_sub(path_before_last);
    // Spell the continuation: rest of the last node, then greedy first
    // successors.
    let want = tail.len() + params.band;
    let mut reference = Vec::with_capacity(want);
    // `oriented_sequence` borrows from the per-strand arenas, so spelling
    // the continuation allocates nothing even across reverse handles.
    let last_seq = graph.oriented_sequence(last);
    if used_on_last < last_seq.len() {
        reference.extend_from_slice(&last_seq[used_on_last..]);
    }
    let mut cursor = last;
    while reference.len() < want {
        let Some(&next) = graph.successors(cursor).first() else {
            break;
        };
        reference.extend_from_slice(graph.oriented_sequence(next));
        cursor = next;
    }
    if reference.is_empty() {
        return None;
    }
    reference.truncate(want);
    // Global over the tail, semi-global over the reference: trim the
    // reference to the tail's length window that fits the band.
    let ref_len = reference.len().min(tail.len() + params.band);
    let aligned = banded_global(tail, &reference[..ref_len.min(reference.len())], params)?;
    (aligned.score > 0).then_some((aligned, tail.len() as u32))
}

#[cfg(test)]
mod tail_tests {
    use super::*;
    use mg_core::types::Extension;
    use mg_graph::pangenome::PangenomeBuilder;
    use mg_graph::{Handle, NodeId};
    use mg_index::GraphPos;

    #[test]
    fn tail_aligns_against_graph_continuation() {
        // Linear graph AAAACCCCGGGGTTTT in 4-base nodes; extension covered
        // the first 8 bases, tail = GGGGTTTT continues exactly.
        let p = PangenomeBuilder::new(b"AAAACCCCGGGGTTTT".to_vec())
            .haplotypes(vec![vec![]])
            .max_node_len(4)
            .build()
            .unwrap();
        let ext = Extension {
            read_id: 0,
            read_start: 0,
            read_end: 8,
            pos: GraphPos::new(Handle::forward(NodeId::new(1)), 0),
            path: vec![Handle::forward(NodeId::new(1)), Handle::forward(NodeId::new(2))],
            score: 8,
            mismatches: 0,
        };
        let (aligned, consumed) =
            align_tail(p.graph(), &ext, b"GGGGTTTT", &GapParams::default()).unwrap();
        assert_eq!(consumed, 8);
        assert!(aligned.score >= 6, "score {}", aligned.score);
        assert!(matches!(aligned.cigar.first(), Some(CigarOp::Match(_))));
    }

    #[test]
    fn dead_end_or_negative_tails_rejected() {
        let p = PangenomeBuilder::new(b"AAAACCCC".to_vec())
            .haplotypes(vec![vec![]])
            .max_node_len(4)
            .build()
            .unwrap();
        // Extension already at the graph's end: nothing to align against.
        let ext = Extension {
            read_id: 0,
            read_start: 0,
            read_end: 8,
            pos: GraphPos::new(Handle::forward(NodeId::new(1)), 0),
            path: vec![Handle::forward(NodeId::new(1)), Handle::forward(NodeId::new(2))],
            score: 8,
            mismatches: 0,
        };
        assert!(align_tail(p.graph(), &ext, b"TTTT", &GapParams::default()).is_none());
        // Empty tail.
        assert!(align_tail(p.graph(), &ext, b"", &GapParams::default()).is_none());
        // Garbage tail scores negative against a real continuation.
        let ext2 = Extension { read_end: 4, path: vec![Handle::forward(NodeId::new(1))], ..ext };
        assert!(align_tail(p.graph(), &ext2, b"TTTT", &GapParams::default()).is_none());
    }
}
