//! GAF output: the Graph Alignment Format Giraffe emits.
//!
//! GAF is the graph analog of PAF: one tab-separated line per alignment
//! with the path written as `>`/`<`-oriented node steps. The parent
//! pipeline renders its alignments as GAF so downstream pangenome tools
//! (and eyeballs) can consume them.

use std::fmt::Write as _;

use mg_core::types::Extension;
use mg_graph::{Handle, Orientation};

use crate::align::Alignment;

/// Renders one path as GAF step syntax (`>12<13>14`).
pub fn path_to_gaf(path: &[Handle]) -> String {
    let mut out = String::new();
    for h in path {
        let sign = match h.orientation() {
            Orientation::Forward => '>',
            Orientation::Reverse => '<',
        };
        let _ = write!(out, "{sign}{}", h.node());
    }
    out
}

/// Renders an alignment (plus the extension that produced it, for the path
/// and read length) as a GAF line.
///
/// Columns: name, read length, read start, read end, strand, path, path
/// length, path start, path end, matches, alignment block length, mapq,
/// plus `AS`/`NM`/`pp` typed tags.
pub fn alignment_to_gaf(
    graph: &mg_graph::VariationGraph,
    read_name: &str,
    read_len: usize,
    alignment: &Alignment,
    extension: &Extension,
) -> String {
    let path = path_to_gaf(&extension.path);
    let path_len: usize = extension
        .path
        .iter()
        .map(|h| graph.node_len(h.node()))
        .sum();
    let block = (alignment.read_end - alignment.read_start) as usize;
    let matches = block - alignment.mismatches as usize;
    let path_start = extension.pos.offset as usize;
    let path_end = (path_start + block).min(path_len);
    let strand = match extension.pos.handle.orientation() {
        Orientation::Forward => '+',
        Orientation::Reverse => '-',
    };
    let mut line = format!(
        "{read_name}\t{read_len}\t{}\t{}\t{strand}\t{path}\t{path_len}\t{path_start}\t{path_end}\t{matches}\t{block}\t{}",
        alignment.read_start, alignment.read_end, alignment.mapq
    );
    let _ = write!(
        line,
        "\tAS:i:{}\tNM:i:{}\tpp:A:{}",
        alignment.score,
        alignment.mismatches,
        if alignment.properly_paired { '1' } else { '0' }
    );
    if !alignment.haplotypes.is_empty() {
        let ids: Vec<String> = alignment.haplotypes.iter().map(|h| h.to_string()).collect();
        let _ = write!(line, "\thp:Z:{}", ids.join(","));
    }
    if let Some(cigar) = &alignment.tail_cigar {
        let _ = write!(line, "\tcg:Z:{cigar}");
    }
    line
}

/// Renders one mapped chunk as GAF text, one line per emitted alignment,
/// unmapped reads skipped. `reads`, `kernel_results`, and `alignments` are
/// parallel slices covering reads `base_id..base_id + reads.len()` of the
/// run (read names stay global: `{set_name}.{read_id}`), so the streaming
/// pipeline's per-chunk output concatenates to exactly the batch
/// [`run_to_gaf`] text.
pub fn chunk_to_gaf(
    graph: &mg_graph::VariationGraph,
    set_name: &str,
    base_id: u64,
    reads: &[mg_core::types::ReadInput],
    kernel_results: &[mg_core::types::ReadResult],
    alignments: &[Vec<Alignment>],
) -> String {
    let mut out = String::new();
    for (result, alignments) in kernel_results.iter().zip(alignments) {
        for alignment in alignments {
            // Find the extension this alignment came from. The gapped tail
            // fallback may have advanced read_end past the extension's, so
            // match on start + position only.
            let Some(extension) = result.extensions.iter().find(|e| {
                e.read_start == alignment.read_start && e.pos == alignment.pos
            }) else {
                continue;
            };
            let read_len = reads[(result.read_id - base_id) as usize].bases.len();
            out.push_str(&alignment_to_gaf(
                graph,
                &format!("{set_name}.{}", result.read_id),
                read_len,
                alignment,
                extension,
            ));
            out.push('\n');
        }
    }
    out
}

/// Renders a whole run (alignments zipped with their kernel extensions) as
/// GAF text, one line per emitted alignment, unmapped reads skipped.
pub fn run_to_gaf(graph: &mg_graph::VariationGraph, run: &crate::ParentRun, set_name: &str) -> String {
    chunk_to_gaf(
        graph,
        set_name,
        0,
        &run.dump.reads,
        &run.kernel_results,
        &run.alignments,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Parent, ParentOptions};
    use mg_graph::NodeId;
    use mg_workload::{InputSetSpec, SyntheticInput};

    #[test]
    fn path_syntax() {
        let path = vec![
            Handle::forward(NodeId::new(12)),
            Handle::reverse(NodeId::new(13)),
            Handle::forward(NodeId::new(14)),
        ];
        assert_eq!(path_to_gaf(&path), ">12<13>14");
        assert_eq!(path_to_gaf(&[]), "");
    }

    #[test]
    fn full_run_renders_valid_gaf() {
        let input = SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), 8);
        let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
        let run = parent.run(&reads, &ParentOptions::default());
        let gaf = run_to_gaf(input.gbz.graph(), &run, "tiny");
        assert!(!gaf.is_empty());
        for line in gaf.lines() {
            let cols: Vec<&str> = line.split('\t').collect();
            assert!(cols.len() >= 12, "GAF line has {} columns: {line}", cols.len());
            // Read length and coordinates are consistent.
            let read_len: usize = cols[1].parse().unwrap();
            let start: usize = cols[2].parse().unwrap();
            let end: usize = cols[3].parse().unwrap();
            assert!(start < end && end <= read_len, "{line}");
            // Strand column and path syntax.
            assert!(cols[4] == "+" || cols[4] == "-");
            assert!(cols[5].starts_with('>') || cols[5].starts_with('<'));
            // Matches never exceed the block length.
            let matches: usize = cols[9].parse().unwrap();
            let block: usize = cols[10].parse().unwrap();
            assert!(matches <= block);
            // Tags present.
            assert!(line.contains("AS:i:"));
            assert!(line.contains("NM:i:"));
        }
        // Every line corresponds to an emitted alignment.
        assert_eq!(gaf.lines().count(), run.total_alignments());
    }
}

#[cfg(test)]
mod tail_gaf_tests {
    use super::*;
    use crate::{Parent, ParentOptions};
    use mg_workload::{InputSetSpec, SyntheticInput};

    #[test]
    fn tail_extended_alignments_stay_in_gaf() {
        // Error-dense reads force trimmed extensions + gapped tails; every
        // emitted alignment must still render (the fallback changes
        // read_end, which must not break extension matching).
        let mut spec = InputSetSpec::tiny_for_tests();
        spec.read_sim.error_rate = 0.04;
        let input = SyntheticInput::generate(&spec, 29);
        let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
        let run = parent.run(&reads, &ParentOptions::default());
        let gaf = run_to_gaf(input.gbz.graph(), &run, "e");
        assert_eq!(gaf.lines().count(), run.total_alignments());
        // At least one alignment used the gapped tail (cg tag present) for
        // this error rate and seed; if not, the fallback never fired, which
        // would itself be suspicious at 4% errors.
        let tails = run
            .alignments
            .iter()
            .flatten()
            .filter(|a| a.tail_cigar.is_some())
            .count();
        if tails > 0 {
            assert!(gaf.contains("cg:Z:"), "tail CIGARs must reach the GAF");
        }
    }
}
