//! The parent pipeline: a Giraffe-like end-to-end mapper.
//!
//! Where the proxy starts from a seed dump, the parent starts from raw
//! reads and runs the whole workflow the paper characterizes:
//!
//! 1. `parse_input` — read intake;
//! 2. `minimizer_seeding` — minimizer lookup producing seeds;
//! 3. `cluster_seeds` — the first critical function (shared with the proxy);
//! 4. `process_until_threshold_c` — the second critical function (shared);
//! 5. `score_extensions` / `emit_alignment` — post-processing;
//! 6. `pair_check` — fragment consistency for paired workflows.
//!
//! Work is distributed by the VG-style batch scheduler. Every region is
//! instrumented through [`mg_support::regions::RegionSink`], which is what
//! regenerates Figures 2–4.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use mg_core::dump::SeedDump;
use mg_core::types::{ReadInput, ReadResult, Seed, Workflow};
use mg_core::{MapScratch, Mapper, MappingOptions, StreamOptions, ThreadPersist};
use mg_gbwt::{CachedGbwt, Gbz, HotTier};
use mg_index::minimizer::Minimizer;
use mg_index::{DistanceIndex, MinimizerIndex};
use mg_obs::{Ctr, Gauge, Hist, Metrics, ObsShard, Stage};
use mg_sched::{bounded_queue, AnyScheduler, PoolCell, PoolTask, SchedulerKind};
use mg_support::probe::{MemProbe, NoProbe};
use mg_support::regions::{NullSink, RegionSink, RegionTimer};

use crate::align::{align_read, pair_check, AlignParams, Alignment};
use crate::rescue::{rescue_mate, RescueParams};

/// Parent-pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParentOptions {
    /// Kernel options (threads, batch, cache capacity, kernels). The
    /// parent's scheduler defaults to the VG batch dispatcher.
    pub mapping: MappingOptions,
    /// Post-processing parameters.
    pub align: AlignParams,
    /// Seeds with more minimizer hits than this are dropped.
    pub hard_hit_cap: usize,
    /// Maximum mate-pair fragment distance (paired workflows).
    pub max_fragment: u64,
    /// Attempt mate rescue for half-mapped pairs (paired workflows).
    pub enable_rescue: bool,
    /// Rescue configuration.
    pub rescue: RescueParams,
    /// Fault injection for resilience tests: panic inside the pool worker
    /// mapping this global read id. `None` (the default, and the only
    /// sensible production value) injects nothing. The serving tests use
    /// this to prove a panicking job fails alone while the shared pool
    /// survives.
    pub fault_read: Option<u64>,
}

impl Default for ParentOptions {
    fn default() -> Self {
        ParentOptions {
            mapping: MappingOptions {
                scheduler: SchedulerKind::Vg,
                ..Default::default()
            },
            align: AlignParams::default(),
            hard_hit_cap: 64,
            max_fragment: 1200,
            enable_rescue: true,
            rescue: RescueParams::default(),
            fault_read: None,
        }
    }
}

/// Everything one parent run produces.
#[derive(Debug, Clone)]
pub struct ParentRun {
    /// Raw kernel outputs (one per read) — the data the proxy must match
    /// bit-for-bit in functional validation.
    pub kernel_results: Vec<ReadResult>,
    /// Post-processed alignments per read.
    pub alignments: Vec<Vec<Alignment>>,
    /// The captured proxy input: reads plus the seeds the parent computed,
    /// exactly what miniGiraffe's `.bin` dumps hold.
    pub dump: SeedDump,
    /// Mates recovered by rescue (index = read id). Kept separate from
    /// `kernel_results` so functional validation still compares the
    /// un-rescued critical-function outputs, like the paper's capture
    /// boundary.
    pub rescued: Vec<Option<ReadResult>>,
    /// Wall-clock time of the parallel mapping loop.
    pub wall: Duration,
}

impl ParentRun {
    /// Total alignments across reads.
    pub fn total_alignments(&self) -> usize {
        self.alignments.iter().map(|a| a.len()).sum()
    }
}

/// The parent mapper: pangenome + minimizer index + distance index.
pub struct Parent<'a> {
    mapper: Mapper<'a>,
    minimizer: &'a MinimizerIndex,
    workflow: Workflow,
}

impl<'a> Parent<'a> {
    /// Builds the parent from a pangenome and its minimizer index,
    /// computing the distance index from the graph.
    pub fn new(gbz: &'a Gbz, minimizer: &'a MinimizerIndex, workflow: Workflow) -> Self {
        Self::with_distance(gbz, minimizer, DistanceIndex::build(gbz.graph()), workflow)
    }

    /// Builds the parent around a prebuilt distance index — e.g. one
    /// borrowed out of a mapped `.mgi` bundle — skipping the
    /// [`DistanceIndex::build`] graph traversal entirely.
    pub fn with_distance(
        gbz: &'a Gbz,
        minimizer: &'a MinimizerIndex,
        distance: DistanceIndex,
        workflow: Workflow,
    ) -> Self {
        Parent {
            mapper: Mapper::with_distance(gbz, distance),
            minimizer,
            workflow,
        }
    }

    /// The shared kernel mapper.
    pub fn mapper(&self) -> &Mapper<'a> {
        &self.mapper
    }

    /// The minimizer index this parent seeds from.
    pub fn minimizer(&self) -> &'a MinimizerIndex {
        self.minimizer
    }

    /// The workflow this parent was built for.
    pub fn workflow(&self) -> Workflow {
        self.workflow
    }

    /// Maps one read end-to-end: seeding, kernels, post-processing.
    /// Returns the captured [`ReadInput`] (the dump record), the raw kernel
    /// result, and the alignments.
    #[allow(clippy::too_many_arguments)]
    pub fn map_read_full<P: MemProbe>(
        &self,
        cache: &mut CachedGbwt<'_>,
        read_id: u64,
        bases: &[u8],
        options: &ParentOptions,
        sink: &(impl RegionSink + ?Sized),
        thread: usize,
        probe: &mut P,
    ) -> (ReadInput, ReadResult, Vec<Alignment>) {
        self.map_read_full_obs(
            cache,
            read_id,
            bases,
            options,
            sink,
            thread,
            probe,
            &mut MapScratch::default(),
            &mut ObsShard::disabled(),
        )
    }

    /// [`Parent::map_read_full`] with a metrics shard and caller-owned
    /// scratch: records the seeding span, the kernel spans and counters
    /// (via the shared mapper), the rescoring span, and the per-read
    /// cache-statistics delta. The scratch carries the kernel buffers *and*
    /// the seeding buffers, so a worker that holds one maps every read —
    /// extraction, query, clustering, extension — without per-read heap
    /// allocation.
    #[allow(clippy::too_many_arguments)]
    pub fn map_read_full_obs<P: MemProbe>(
        &self,
        cache: &mut CachedGbwt<'_>,
        read_id: u64,
        bases: &[u8],
        options: &ParentOptions,
        sink: &(impl RegionSink + ?Sized),
        thread: usize,
        probe: &mut P,
        scratch: &mut MapScratch,
        obs: &mut ObsShard,
    ) -> (ReadInput, ReadResult, Vec<Alignment>) {
        self.map_read_obs_inner(
            cache, read_id, bases, None, options, sink, thread, probe, scratch, obs,
        )
    }

    /// [`Parent::map_read_full_obs`] with the extraction sweep already paid:
    /// seeding queries the whole-index table from `mins` (the shard
    /// router's minimizers for this read) through the same hard-hit-cap
    /// filter, so a routing miss costs one extraction, not two. Everything
    /// downstream is byte-identical to the unrouted path.
    #[allow(clippy::too_many_arguments)]
    pub fn map_read_routed_obs<P: MemProbe>(
        &self,
        cache: &mut CachedGbwt<'_>,
        read_id: u64,
        bases: &[u8],
        mins: &[Minimizer],
        options: &ParentOptions,
        sink: &(impl RegionSink + ?Sized),
        thread: usize,
        probe: &mut P,
        scratch: &mut MapScratch,
        obs: &mut ObsShard,
    ) -> (ReadInput, ReadResult, Vec<Alignment>) {
        self.map_read_obs_inner(
            cache,
            read_id,
            bases,
            Some(mins),
            options,
            sink,
            thread,
            probe,
            scratch,
            obs,
        )
    }

    // Inlined into both public wrappers so the `mins` Option constant-folds
    // away and neither entry point pays for the other's seeding source.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn map_read_obs_inner<P: MemProbe>(
        &self,
        cache: &mut CachedGbwt<'_>,
        read_id: u64,
        bases: &[u8],
        mins: Option<&[Minimizer]>,
        options: &ParentOptions,
        sink: &(impl RegionSink + ?Sized),
        thread: usize,
        probe: &mut P,
        scratch: &mut MapScratch,
        obs: &mut ObsShard,
    ) -> (ReadInput, ReadResult, Vec<Alignment>) {
        let stats_before = if obs.is_on() { Some(cache.stats()) } else { None };
        let input = {
            let _t = RegionTimer::start(sink, thread, "parse_input");
            // Intake: validate/copy the read (standing in for FASTQ
            // parsing, which the characterization excludes from kernels).
            bases.to_vec()
        };
        let seeds: Vec<Seed> = {
            let _t = RegionTimer::start(sink, thread, "minimizer_seeding");
            let t0 = obs.now();
            // The seeding stage's memory traffic goes through the probe too:
            // this is the work Giraffe interleaves with the critical
            // functions, and it is what perturbs the parent's counters away
            // from the proxy's in the paper's Table V.
            probe.touch(0x6000_0000_0000 + read_id * 4096, input.len() as u32);
            probe.instret(4 * input.len() as u64);
            match mins {
                Some(ms) => self.minimizer.query_minimizers_into(
                    ms,
                    options.hard_hit_cap,
                    &mut scratch.seed_hits,
                ),
                None => self.minimizer.query_into(
                    &input,
                    options.hard_hit_cap,
                    &mut scratch.seeding,
                    &mut scratch.seed_hits,
                ),
            }
            // The seed list itself moves into the dump record below, so this
            // one Vec per read is part of the output, not scratch churn.
            let seeds: Vec<Seed> = scratch
                .seed_hits
                .iter()
                .map(|&(off, pos)| Seed::new(off, pos))
                .collect();
            probe.touch(
                0x7000_0000_0000 + (read_id % 512) * 65536,
                (seeds.len() * std::mem::size_of::<Seed>()).max(16) as u32,
            );
            probe.instret(20 * seeds.len() as u64 + 10);
            obs.stage(Stage::Seeding, t0);
            seeds
        };
        let read_input = ReadInput { bases: input, seeds };
        let result = self.mapper.map_read_with_scratch(
            cache,
            read_id,
            &read_input,
            &options.mapping,
            sink,
            thread,
            probe,
            scratch,
            obs,
        );
        let t0 = obs.now();
        let alignments = self.post_process(&read_input, &result, options, sink, thread);
        obs.stage(Stage::Rescoring, t0);
        if let Some(before) = stats_before {
            let after = cache.stats();
            obs.add(Ctr::CacheHits, after.hits - before.hits);
            obs.add(Ctr::CacheMisses, after.misses - before.misses);
            obs.add(Ctr::CacheEvictions, after.evictions - before.evictions);
            obs.add(Ctr::CacheResizes, after.rehashes - before.rehashes);
            obs.add(Ctr::CacheRehashedSlots, after.rehashed_slots - before.rehashed_slots);
            obs.add(Ctr::CacheHotHits, after.hot_hits - before.hot_hits);
            obs.add(Ctr::CacheHotMisses, after.hot_misses - before.hot_misses);
            obs.add(Ctr::CacheDecodesSaved, after.decodes_saved - before.decodes_saved);
        }
        (read_input, result, alignments)
    }

    /// Post-processes one read's raw kernel output into alignments:
    /// `score_extensions` plus the gapped fallback for uncovered tails
    /// (Giraffe's alignment phase after seed-and-extend).
    ///
    /// Public so validation harnesses can post-process proxy kernel output
    /// through the exact code path the parent uses and compare final
    /// alignments byte-for-byte.
    pub fn post_process(
        &self,
        read_input: &ReadInput,
        result: &ReadResult,
        options: &ParentOptions,
        sink: &(impl RegionSink + ?Sized),
        thread: usize,
    ) -> Vec<Alignment> {
        let mut alignments = {
            let _t = RegionTimer::start(sink, thread, "score_extensions");
            align_read(result, &options.align)
        };
        // Gapped fallback: when the best extension leaves a read tail
        // uncovered, align the tail against the graph walk's continuation.
        if let (Some(alignment), Some(extension)) =
            (alignments.first_mut(), result.extensions.first())
        {
            let read_len = read_input.bases.len() as u32;
            if alignment.read_end < read_len {
                let _t = RegionTimer::start(sink, thread, "gapped_fallback");
                let tail = &read_input.bases[alignment.read_end as usize..];
                if let Some((gapped, consumed)) = crate::gapped::align_tail(
                    self.mapper.gbz().graph(),
                    extension,
                    tail,
                    &crate::gapped::GapParams::default(),
                ) {
                    alignment.score += gapped.score;
                    alignment.read_end += consumed;
                    alignment.tail_cigar = Some(crate::gapped::cigar_string(&gapped.cigar));
                }
            }
        }
        alignments
    }

    /// Runs the full pipeline over raw reads without instrumentation.
    pub fn run(&self, reads: &[Vec<u8>], options: &ParentOptions) -> ParentRun {
        self.run_with_sink(reads, options, &NullSink)
    }

    /// Runs the full pipeline, recording per-stage spans, counters, and
    /// scheduler activity in `metrics`.
    pub fn run_with_metrics(
        &self,
        reads: &[Vec<u8>],
        options: &ParentOptions,
        metrics: &Metrics,
    ) -> ParentRun {
        self.run_with_sink_metrics(reads, options, &NullSink, metrics)
    }

    /// Runs the full pipeline, reporting regions to `sink`.
    pub fn run_with_sink(
        &self,
        reads: &[Vec<u8>],
        options: &ParentOptions,
        sink: &(impl RegionSink + ?Sized),
    ) -> ParentRun {
        self.run_with_sink_metrics(reads, options, sink, Metrics::off_ref())
    }

    /// [`Parent::run_with_sink`] plus a metrics registry. Each scoped
    /// worker records into a [`mg_obs::ShardGuard`] whose drop folds the
    /// shard into the registry, so shards survive even if a worker panics.
    pub fn run_with_sink_metrics(
        &self,
        reads: &[Vec<u8>],
        options: &ParentOptions,
        sink: &(impl RegionSink + ?Sized),
        metrics: &Metrics,
    ) -> ParentRun {
        let start = Instant::now();
        // The parent computes seeds *during* the run, so a cold first run
        // maps single-tier; its captured dump then freezes the tier later
        // runs (and the streaming chunks) share.
        let hot = self.mapper.warm_hot_tier(&options.mapping);
        metrics.gauge_max(
            Gauge::HotTierBytes,
            hot.as_deref().map_or(0, HotTier::heap_bytes) as u64,
        );
        let chunk = self.run_chunk(reads, 0, options, sink, hot.as_ref(), metrics);
        if hot.is_none() {
            let _ = self.mapper.build_hot_tier(&chunk.dump_reads, &options.mapping);
        }
        let wall = start.elapsed();
        ParentRun {
            kernel_results: chunk.kernel_results,
            alignments: chunk.alignments,
            dump: SeedDump::new(self.workflow, chunk.dump_reads),
            rescued: chunk.rescued,
            wall,
        }
    }

    /// Maps one chunk of reads (global ids `base_id..base_id + reads.len()`)
    /// through the full per-read workflow plus the pair-local
    /// post-processing, on the mapper's persistent worker pool, without
    /// region instrumentation.
    ///
    /// This is the serving entry point: a long-lived executor calls it
    /// once per (job, chunk), interleaving chunks of different jobs on the
    /// same pool, and renders each returned [`ChunkRun`] with
    /// [`crate::gaf::chunk_to_gaf`]. Because read ids are global and
    /// per-read work is deterministic and cache-independent, the
    /// concatenated chunk GAF is byte-identical to a batch run over the
    /// same reads regardless of how jobs were interleaved. For paired
    /// workflows `reads` must start on a pair boundary (`base_id` even)
    /// so rescue and pair check see whole pairs.
    pub fn map_chunk(
        &self,
        reads: &[Vec<u8>],
        base_id: u64,
        options: &ParentOptions,
        hot: Option<&Arc<HotTier>>,
        metrics: &Metrics,
    ) -> ChunkRun {
        self.run_chunk(reads, base_id, options, &NullSink, hot, metrics)
    }

    /// Maps `reads` (global ids `base_id..`) through the full per-read
    /// workflow plus the pair-local post-processing (rescue + pair check).
    /// Both the batch path (whole input, base 0) and the streaming path
    /// (one chunk at a time, on even pair boundaries) go through here, so
    /// results cannot diverge between them: pairs are read-id-local
    /// (`2i`/`2i+1`) and per-read work is deterministic, independent of any
    /// cache state carried between chunks.
    fn run_chunk(
        &self,
        reads: &[Vec<u8>],
        base_id: u64,
        options: &ParentOptions,
        sink: &(impl RegionSink + ?Sized),
        hot: Option<&Arc<HotTier>>,
        metrics: &Metrics,
    ) -> ChunkRun {
        let n = reads.len();
        let slots: Vec<OnceLock<(ReadInput, ReadResult, Vec<Alignment>)>> =
            (0..n).map(|_| OnceLock::new()).collect();
        let scheduler: Box<dyn AnyScheduler> =
            options.mapping.scheduler.build(options.mapping.batch_size);
        // Dispatch onto the mapper's persistent pool: each pool thread
        // rebinds its kept cache storage warm (same pangenome, same
        // capacity) and reuses its scratch, sharing the cells the proxy
        // loop stashes. Parent runs on one mapper serialize on the pool
        // lock, which is what lets a long-lived server interleave many
        // jobs chunk-by-chunk on one set of threads.
        let mut pool = self.mapper.lock_pool();
        scheduler.run_pooled_erased_obs(
            &mut pool,
            n,
            options.mapping.threads.max(1),
            metrics,
            &|thread, cell| {
                let persist = match cell.downcast_mut::<ThreadPersist>() {
                    Some(p) => std::mem::take(p),
                    None => ThreadPersist::default(),
                };
                Box::new(ParentWorker {
                    parent: self,
                    reads,
                    base_id,
                    options,
                    sink,
                    thread,
                    slots: &slots,
                    cache: CachedGbwt::with_state(
                        self.mapper.gbz().gbwt(),
                        options.mapping.cache_capacity,
                        persist.cache,
                    )
                    .with_hot(hot.map(Arc::clone)),
                    scratch: persist.scratch,
                    metrics,
                    obs: metrics.shard(),
                })
            },
        );
        drop(pool);
        let mut dump_reads = Vec::with_capacity(n);
        let mut kernel_results = Vec::with_capacity(n);
        let mut alignments = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            let (input, result, aligns) = slot
                .into_inner()
                .unwrap_or_else(|| panic!("read {i} not mapped"));
            dump_reads.push(input);
            kernel_results.push(result);
            alignments.push(aligns);
        }
        // Paired post-processing: rescue half-mapped pairs, then mate
        // consistency via the distance index.
        let mut rescued: Vec<Option<ReadResult>> = vec![None; n];
        if self.workflow == Workflow::Paired && options.enable_rescue {
            let _t = RegionTimer::start(sink, 0, "pair_rescue");
            let mut cache =
                CachedGbwt::new(self.mapper.gbz().gbwt(), options.mapping.cache_capacity)
                    .with_hot(hot.map(Arc::clone));
            let mut scratch = MapScratch::default();
            for pair_start in (0..n.saturating_sub(1)).step_by(2) {
                let (a, b) = (pair_start, pair_start + 1);
                let (mapped, unmapped) = match (
                    alignments[a].is_empty(),
                    alignments[b].is_empty(),
                ) {
                    (false, true) => (a, b),
                    (true, false) => (b, a),
                    _ => continue,
                };
                let anchor = alignments[mapped][0].pos;
                if let Some(result) = rescue_mate(
                    &self.mapper,
                    self.minimizer,
                    &mut cache,
                    base_id + unmapped as u64,
                    &dump_reads[unmapped],
                    anchor,
                    &options.mapping,
                    &options.rescue,
                    sink,
                    0,
                    &mut NoProbe,
                    &mut scratch,
                ) {
                    alignments[unmapped] = align_read(&result, &options.align);
                    rescued[unmapped] = Some(result);
                }
            }
        }
        if self.workflow == Workflow::Paired {
            let _t = RegionTimer::start(sink, 0, "pair_check");
            let mut iter = alignments.chunks_mut(2);
            for pair in &mut iter {
                if pair.len() == 2 {
                    let (first, second) = pair.split_at_mut(1);
                    pair_check(
                        self.mapper.gbz().graph(),
                        self.mapper.distance_index(),
                        &mut first[0],
                        &mut second[0],
                        options.max_fragment,
                    );
                }
            }
        }
        ChunkRun { dump_reads, kernel_results, alignments, rescued }
    }

    /// Runs the full pipeline over raw-read batches as they arrive,
    /// rendering GAF incrementally, without instrumentation. See
    /// [`Parent::run_streaming_with_sink_metrics`].
    pub fn run_streaming<I, W>(
        &self,
        batches: I,
        options: &ParentOptions,
        stream: &StreamOptions,
        set_name: &str,
        gaf_out: &mut W,
    ) -> mg_support::Result<ParentStreamSummary>
    where
        I: Iterator<Item = mg_support::Result<Vec<Vec<u8>>>> + Send,
        W: std::io::Write,
    {
        self.run_streaming_with_sink_metrics(
            batches,
            options,
            stream,
            set_name,
            gaf_out,
            &NullSink,
            Metrics::off_ref(),
        )
    }

    /// Streaming ingestion for the parent pipeline: a producer thread pulls
    /// raw-read batches (e.g. [`mg_workload::FastqBatches`](../mg_workload/fastq))
    /// into a bounded queue — blocking on a full queue, which is what
    /// bounds ingestion memory — while the calling thread maps chunks of
    /// [`StreamOptions::chunk_target`] reads and appends each chunk's GAF
    /// lines to `gaf_out`.
    ///
    /// For paired workflows chunks split on even read indexes, so every
    /// mate pair (`2i`, `2i+1`) is rescued and pair-checked inside one
    /// chunk and the emitted GAF is byte-identical to the batch
    /// [`crate::run_to_gaf`] over the concatenated input.
    ///
    /// On a producer error the good prefix is still mapped and emitted,
    /// then the error is returned.
    #[allow(clippy::too_many_arguments)]
    pub fn run_streaming_with_sink_metrics<I, W>(
        &self,
        batches: I,
        options: &ParentOptions,
        stream: &StreamOptions,
        set_name: &str,
        gaf_out: &mut W,
        sink: &(impl RegionSink + ?Sized),
        metrics: &Metrics,
    ) -> mg_support::Result<ParentStreamSummary>
    where
        I: Iterator<Item = mg_support::Result<Vec<Vec<u8>>>> + Send,
        W: std::io::Write,
    {
        // Chunk 0 maps with a warm tier when an earlier run froze one;
        // otherwise single-tier, and its computed seeds freeze the tier the
        // chunks after it share.
        let mut hot = self.mapper.warm_hot_tier(&options.mapping);
        let result = stream_chunks(
            self.workflow,
            self.mapper.gbz(),
            options,
            stream,
            set_name,
            batches,
            gaf_out,
            metrics,
            |chunk, base| {
                let out = self.run_chunk(chunk, base, options, sink, hot.as_ref(), metrics);
                if hot.is_none() {
                    hot = self.mapper.build_hot_tier(&out.dump_reads, &options.mapping);
                }
                out
            },
        );
        metrics.gauge_max(
            Gauge::HotTierBytes,
            hot.as_deref().map_or(0, HotTier::heap_bytes) as u64,
        );
        result
    }
}

/// The shared streaming loop both the monolithic and the sharded parent
/// drive: a producer thread pulls raw-read batches into a bounded queue
/// (blocking on a full queue, which is what bounds ingestion memory) while
/// the calling thread maps [`StreamOptions::chunk_target`]-read chunks via
/// `map_chunk` and appends each chunk's GAF to `gaf_out`. Chunking, pair
/// alignment, id assignment, and error handling live here exactly once, so
/// the two pipelines cannot diverge in stream shape.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stream_chunks<I, W, F>(
    workflow: Workflow,
    gbz: &Gbz,
    options: &ParentOptions,
    stream: &StreamOptions,
    set_name: &str,
    batches: I,
    gaf_out: &mut W,
    metrics: &Metrics,
    mut map_chunk: F,
) -> mg_support::Result<ParentStreamSummary>
where
    I: Iterator<Item = mg_support::Result<Vec<Vec<u8>>>> + Send,
    W: std::io::Write,
    F: FnMut(&[Vec<u8>], u64) -> ChunkRun,
{
    let mut chunk_target = stream.chunk_target(&options.mapping).max(1);
    if workflow == Workflow::Paired {
        // Chunks must break on pair boundaries so rescue and pair_check
        // see whole pairs.
        chunk_target = (chunk_target & !1usize).max(2);
    }
    let (tx, rx) = bounded_queue(stream.queue_batches.max(1));
    let start = Instant::now();

    let mut reads = 0u64;
    let mut batches_consumed = 0u64;
    let mut chunks = 0u64;
    let mut failure: Option<mg_support::Error> = None;
    let mut write_failure: Option<std::io::Error> = None;
    let mut pending: Vec<Vec<u8>> = Vec::new();
    let mut next_id = 0u64;

    let queue_stats = std::thread::scope(|scope| {
        let producer = scope.spawn(move || {
            for item in batches {
                let stop = item.is_err();
                if tx.send(item).is_err() || stop {
                    break;
                }
            }
            tx.stats()
        });

        let mut map_pending = |pending: &mut Vec<Vec<u8>>,
                               next_id: &mut u64,
                               chunks: &mut u64,
                               map_chunk: &mut F,
                               write_failure: &mut Option<std::io::Error>,
                               take: usize| {
            let rest = pending.split_off(take.min(pending.len()));
            let chunk = std::mem::replace(pending, rest);
            if chunk.is_empty() {
                return;
            }
            let base = *next_id;
            metrics.observe(Hist::StreamChunkReads, chunk.len() as u64);
            let out = map_chunk(&chunk, base);
            *next_id += chunk.len() as u64;
            *chunks += 1;
            let gaf = crate::gaf::chunk_to_gaf(
                gbz.graph(),
                set_name,
                base,
                &out.dump_reads,
                &out.kernel_results,
                &out.alignments,
            );
            if write_failure.is_none() {
                if let Err(e) = gaf_out.write_all(gaf.as_bytes()) {
                    *write_failure = Some(e);
                }
            }
        };

        while let Some(item) = rx.recv() {
            if write_failure.is_some() {
                // The output is gone; stop pulling so the producer
                // unblocks and the error surfaces.
                break;
            }
            match item {
                Ok(batch) => {
                    batches_consumed += 1;
                    reads += batch.len() as u64;
                    pending.extend(batch);
                    while pending.len() >= chunk_target {
                        map_pending(
                            &mut pending,
                            &mut next_id,
                            &mut chunks,
                            &mut map_chunk,
                            &mut write_failure,
                            chunk_target,
                        );
                    }
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        // Flush the tail (or, on error, the good prefix read so far) —
        // including a trailing unpaired read, which the batch path also
        // leaves unpaired.
        let take = pending.len();
        map_pending(
            &mut pending,
            &mut next_id,
            &mut chunks,
            &mut map_chunk,
            &mut write_failure,
            take,
        );
        drop(rx);
        producer.join().expect("streaming producer panicked")
    });

    metrics.add(Ctr::StreamBatches, batches_consumed);
    metrics.add(Ctr::StreamReads, reads);
    metrics.add(Ctr::StreamProducerBlockedNs, queue_stats.blocked_ns);
    metrics.gauge_max(Gauge::StreamQueueDepthMax, queue_stats.high_water as u64);

    if let Some(e) = write_failure {
        return Err(e.into());
    }
    if let Some(e) = failure {
        return Err(e);
    }
    Ok(ParentStreamSummary {
        reads,
        batches: batches_consumed,
        chunks,
        wall: start.elapsed(),
        queue_high_water: queue_stats.high_water,
        producer_blocked_ns: queue_stats.blocked_ns,
    })
}

/// One mapped chunk of a parent run: everything
/// [`Parent::map_chunk`] produces for `reads[i]` at global id
/// `base_id + i`. The batch path assembles these into a [`ParentRun`];
/// the serving executor renders each one to GAF with
/// [`crate::gaf::chunk_to_gaf`] and streams it out.
#[derive(Debug, Clone)]
pub struct ChunkRun {
    /// Captured dump records (read bases + computed seeds), one per read.
    pub dump_reads: Vec<ReadInput>,
    /// Raw kernel outputs, one per read.
    pub kernel_results: Vec<ReadResult>,
    /// Post-processed alignments per read.
    pub alignments: Vec<Vec<Alignment>>,
    /// Mates recovered by rescue (index = read offset in the chunk).
    pub rescued: Vec<Option<ReadResult>>,
}

/// Per-thread mapping state for one parent chunk on the mapper's worker
/// pool: owns the thread's warm-rebound `CachedGbwt` and scratch, maps the
/// reads the scheduler assigns it, and at `finish` merges its metrics
/// shard and stashes the warm state back into the thread's pool cell (the
/// same [`ThreadPersist`] cell the proxy loop uses, so warmth carries
/// across proxy and parent dispatches).
struct ParentWorker<'e, 'g, S: RegionSink + ?Sized> {
    parent: &'e Parent<'g>,
    reads: &'e [Vec<u8>],
    base_id: u64,
    options: &'e ParentOptions,
    sink: &'e S,
    thread: usize,
    slots: &'e [OnceLock<(ReadInput, ReadResult, Vec<Alignment>)>],
    cache: CachedGbwt<'g>,
    scratch: MapScratch,
    metrics: &'e Metrics,
    obs: ObsShard,
}

impl<S: RegionSink + ?Sized> PoolTask for ParentWorker<'_, '_, S> {
    fn run(&mut self, i: usize) {
        let read_id = self.base_id + i as u64;
        if self.options.fault_read == Some(read_id) {
            panic!("injected fault mapping read {read_id}");
        }
        let out = self.parent.map_read_full_obs(
            &mut self.cache,
            read_id,
            &self.reads[i],
            self.options,
            self.sink,
            self.thread,
            &mut NoProbe,
            &mut self.scratch,
            &mut self.obs,
        );
        self.slots[i].set(out).expect("each read mapped once");
    }

    fn finish(self: Box<Self>, cell: &mut PoolCell) {
        let this = *self;
        this.metrics.absorb(&this.obs);
        *cell = Box::new(ThreadPersist {
            cache: this.cache.into_state(),
            scratch: this.scratch,
        });
    }
}

/// What a streaming parent run reports; the per-read outputs left through
/// `gaf_out` as they were produced.
#[derive(Debug, Clone)]
pub struct ParentStreamSummary {
    /// Reads mapped.
    pub reads: u64,
    /// Ingestion batches consumed from the queue.
    pub batches: u64,
    /// Parallel mapping chunks dispatched.
    pub chunks: u64,
    /// Wall-clock time of the whole streaming run.
    pub wall: Duration,
    /// Deepest hand-off queue occupancy observed, in batches.
    pub queue_high_water: usize,
    /// Nanoseconds the producer spent blocked on a full queue.
    pub producer_blocked_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_core::{run_mapping, validate};
    use mg_perf::Profiler;
    use mg_workload::{InputSetSpec, SyntheticInput};

    fn tiny_input() -> SyntheticInput {
        SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), 123)
    }

    #[test]
    fn parent_maps_synthetic_reads() {
        let input = tiny_input();
        let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
        let run = parent.run(&reads, &ParentOptions::default());
        assert_eq!(run.kernel_results.len(), reads.len());
        assert_eq!(run.dump.reads.len(), reads.len());
        // Most reads align.
        let aligned = run.alignments.iter().filter(|a| !a.is_empty()).count();
        assert!(aligned * 10 >= reads.len() * 6, "only {aligned}/{} aligned", reads.len());
    }

    #[test]
    fn proxy_reproduces_parent_kernel_output_exactly() {
        // The paper's functional validation: run the parent, capture its
        // dump, feed the dump to the proxy, compare kernel outputs.
        let input = tiny_input();
        let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
        let options = ParentOptions::default();
        let run = parent.run(&reads, &options);
        let proxy = run_mapping(&run.dump, &input.gbz, &options.mapping);
        let report = validate(&run.kernel_results, &proxy.per_read);
        assert!(report.is_exact(), "validation failed: {report}");
        assert!(report.matched > 0, "validation must compare something");
    }

    #[test]
    fn parent_regions_cover_the_whole_workflow() {
        let input = tiny_input();
        let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
        let profiler = Profiler::new();
        let _ = parent.run_with_sink(&reads, &ParentOptions::default(), &profiler);
        let regions: std::collections::HashSet<&str> = profiler
            .region_summary()
            .iter()
            .map(|s| s.region)
            .collect();
        for expected in [
            "parse_input",
            "minimizer_seeding",
            "cluster_seeds",
            "process_until_threshold_c",
            "score_extensions",
        ] {
            assert!(regions.contains(expected), "missing region {expected}");
        }
    }

    #[test]
    fn paired_workflow_runs_pair_check() {
        let mut spec = InputSetSpec::tiny_for_tests();
        spec.workflow = Workflow::Paired;
        spec.reads = 20;
        spec.read_sim.fragment_len = 300;
        spec.read_sim.fragment_jitter = 30;
        let input = SyntheticInput::generate(&spec, 5);
        let parent = Parent::new(&input.gbz, &input.minimizer_index, Workflow::Paired);
        let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
        let profiler = Profiler::new();
        let run = parent.run_with_sink(&reads, &ParentOptions::default(), &profiler);
        assert_eq!(run.dump.workflow, Workflow::Paired);
        let regions: Vec<&str> = profiler.region_summary().iter().map(|s| s.region).collect();
        assert!(regions.contains(&"pair_check"));
        // At least one pair is properly paired (mates from one fragment).
        let proper = run
            .alignments
            .iter()
            .flatten()
            .filter(|a| a.properly_paired)
            .count();
        assert!(proper > 0, "no properly paired alignments");
    }

    #[test]
    fn parent_metrics_cover_all_stages_and_reconcile() {
        use mg_obs::Stage;
        let input = tiny_input();
        let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
        let metrics = Metrics::new();
        let run = parent.run_with_metrics(&reads, &ParentOptions::default(), &metrics);
        let rep = metrics.report();
        let n = reads.len() as u64;
        assert_eq!(rep.counter(Ctr::ReadsMapped), n);
        assert_eq!(rep.counter(Ctr::PoolTasksCompleted), n);
        for stage in [Stage::Seeding, Stage::Clustering, Stage::Extension, Stage::Rescoring] {
            assert_eq!(rep.stage_count(stage), n, "stage {} count", stage.name());
        }
        assert!(rep.counter(Ctr::CacheHits) + rep.counter(Ctr::CacheMisses) > 0);
        // Instrumentation must not change behavior.
        let plain = parent.run(&reads, &ParentOptions::default());
        assert_eq!(plain.kernel_results, run.kernel_results);
        assert_eq!(plain.alignments, run.alignments);
    }

    #[test]
    fn parent_parallel_matches_sequential() {
        let input = tiny_input();
        let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
        let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
        let seq = parent.run(&reads, &ParentOptions::default());
        let mut par_options = ParentOptions::default();
        par_options.mapping.threads = 4;
        par_options.mapping.batch_size = 3;
        let par = parent.run(&reads, &par_options);
        assert_eq!(seq.kernel_results, par.kernel_results);
        assert_eq!(seq.alignments, par.alignments);
        assert_eq!(seq.dump, par.dump);
    }
}
