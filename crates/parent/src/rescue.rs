//! Mate rescue: Giraffe's paired-end fallback.
//!
//! When one mate of a pair aligns and the other does not, Giraffe attempts
//! *rescue*: it searches for the missing mate only in the graph
//! neighbourhood where the fragment model says it must lie, with relaxed
//! seed filters. This recovers pairs whose second mate seeds poorly
//! (repeats suppressed by the hit cap, or error-dense reads).

use mg_core::types::{ReadInput, ReadResult, Seed};
use mg_core::{MapScratch, Mapper, MappingOptions};
use mg_gbwt::CachedGbwt;
use mg_index::{GraphPos, MinimizerIndex};
use mg_obs::ObsShard;
use mg_support::probe::MemProbe;
use mg_support::regions::RegionSink;

/// Rescue configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RescueParams {
    /// Maximum graph distance from the mapped mate's position.
    pub max_fragment: u64,
    /// Relaxed hit cap used when re-seeding the unmapped mate (Giraffe
    /// loosens its repeat filter during rescue).
    pub rescue_hit_cap: usize,
}

impl Default for RescueParams {
    fn default() -> Self {
        RescueParams {
            max_fragment: 1200,
            rescue_hit_cap: 1024,
        }
    }
}

/// Attempts to rescue an unmapped mate near its mapped partner.
///
/// Re-seeds `mate_input` with the relaxed hit cap, keeps only seeds within
/// `max_fragment` of `anchor` (either direction, either strand), and runs
/// the normal kernels on the filtered seed set. Returns the new result if
/// any extension was found.
#[allow(clippy::too_many_arguments)]
pub fn rescue_mate<P: MemProbe>(
    mapper: &Mapper<'_>,
    minimizer: &MinimizerIndex,
    cache: &mut CachedGbwt<'_>,
    mate_id: u64,
    mate_input: &ReadInput,
    anchor: GraphPos,
    options: &MappingOptions,
    params: &RescueParams,
    sink: &(impl RegionSink + ?Sized),
    thread: usize,
    probe: &mut P,
    scratch: &mut MapScratch,
) -> Option<ReadResult> {
    let graph = mapper.gbz().graph();
    let dist = mapper.distance_index();
    // Relaxed re-seed into the scratch buffers, restricted to the fragment
    // neighbourhood.
    minimizer.query_into(
        &mate_input.bases,
        params.rescue_hit_cap,
        &mut scratch.seeding,
        &mut scratch.seed_hits,
    );
    let seeds: Vec<Seed> = scratch
        .seed_hits
        .iter()
        .filter_map(|&(off, pos)| {
            let near = [pos, GraphPos::new(pos.handle.flip(), 0)]
                .iter()
                .any(|&candidate| {
                    dist.maybe_within(anchor, candidate, params.max_fragment)
                        && dist
                            .min_undirected_distance(graph, anchor, candidate, params.max_fragment)
                            .is_some()
                });
            near.then_some(Seed::new(off, pos))
        })
        .collect();
    if seeds.is_empty() {
        return None;
    }
    let rescoped = ReadInput {
        bases: mate_input.bases.clone(),
        seeds,
    };
    let result = mapper.map_read_with_scratch(
        cache,
        mate_id,
        &rescoped,
        options,
        sink,
        thread,
        probe,
        scratch,
        &mut ObsShard::disabled(),
    );
    (!result.extensions.is_empty()).then_some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_core::types::Workflow;
    use mg_support::probe::NoProbe;
    use mg_support::regions::NullSink;
    use mg_workload::{InputSetSpec, SyntheticInput};

    fn paired_input() -> SyntheticInput {
        let mut spec = InputSetSpec::tiny_for_tests();
        spec.workflow = Workflow::Paired;
        spec.reads = 30;
        spec.read_sim.fragment_len = 250;
        spec.read_sim.fragment_jitter = 25;
        SyntheticInput::generate(&spec, 17)
    }

    #[test]
    fn rescue_recovers_a_seedless_mate() {
        let input = paired_input();
        let mapper = Mapper::new(&input.gbz);
        let options = MappingOptions::default();
        let mut cache = CachedGbwt::new(input.gbz.gbwt(), 256);
        // Take a pair where both mates map normally; strip the second
        // mate's seeds to simulate hit-cap suppression, then rescue it from
        // the first mate's position.
        for pair_start in (0..input.dump.reads.len()).step_by(2) {
            let r1 = &input.dump.reads[pair_start];
            let r2 = &input.dump.reads[pair_start + 1];
            if r1.seeds.is_empty() || r2.seeds.is_empty() {
                continue;
            }
            let r1_result = mapper.map_read(
                &mut cache,
                pair_start as u64,
                r1,
                &options,
                &NullSink,
                0,
                &mut NoProbe,
            );
            let Some(best) = r1_result.extensions.first() else {
                continue;
            };
            let anchor = best.pos;
            let stripped = ReadInput { bases: r2.bases.clone(), seeds: Vec::new() };
            // Without seeds, the normal path finds nothing.
            let unmapped = mapper.map_read(
                &mut cache,
                (pair_start + 1) as u64,
                &stripped,
                &options,
                &NullSink,
                0,
                &mut NoProbe,
            );
            assert!(unmapped.extensions.is_empty());
            // Rescue finds it again near the mate.
            let rescued = rescue_mate(
                &mapper,
                &input.minimizer_index,
                &mut cache,
                (pair_start + 1) as u64,
                &stripped,
                anchor,
                &options,
                &RescueParams::default(),
                &NullSink,
                0,
                &mut NoProbe,
                &mut MapScratch::default(),
            );
            let rescued = rescued.expect("mate rescued");
            assert!(!rescued.extensions.is_empty());
            // The rescued alignment scores like the direct one.
            let direct = mapper.map_read(
                &mut cache,
                (pair_start + 1) as u64,
                r2,
                &options,
                &NullSink,
                0,
                &mut NoProbe,
            );
            assert_eq!(rescued.best_score(), direct.best_score());
            return; // one demonstrated pair is enough
        }
        panic!("no usable pair found in the synthetic input");
    }

    #[test]
    fn rescue_rejects_far_anchors() {
        // A mate anchored in a different component cannot be rescued.
        let input = paired_input();
        let mapper = Mapper::new(&input.gbz);
        let options = MappingOptions::default();
        let mut cache = CachedGbwt::new(input.gbz.gbwt(), 256);
        let r2 = input
            .dump
            .reads
            .iter()
            .find(|r| !r.seeds.is_empty())
            .expect("seeded read");
        // Anchor at an absurd distance limit of zero: nothing qualifies
        // except seeds at the anchor itself.
        let params = RescueParams { max_fragment: 0, rescue_hit_cap: 1024 };
        let far_anchor = GraphPos::new(r2.seeds[0].pos.handle, r2.seeds[0].pos.offset);
        let rescued = rescue_mate(
            &mapper,
            &input.minimizer_index,
            &mut cache,
            0,
            &ReadInput { bases: r2.bases.clone(), seeds: Vec::new() },
            far_anchor,
            &options,
            &params,
            &NullSink,
            0,
            &mut NoProbe,
            &mut MapScratch::default(),
        );
        // With limit 0 only the anchor position itself qualifies; a result,
        // if any, must start exactly there.
        if let Some(result) = rescued {
            for e in &result.extensions {
                assert_eq!(e.path.first(), Some(&far_anchor.handle));
            }
        }
    }
}
