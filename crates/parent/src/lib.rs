//! The Giraffe-like parent pipeline.
//!
//! miniGiraffe is validated against the application it was extracted from.
//! We cannot ship vg Giraffe, so this crate is the stand-in parent: a full
//! short-read-to-pangenome mapper that (a) contains the *same* critical
//! kernels as the proxy (shared code in [`mg_core`]), (b) surrounds them
//! with realistic preprocessing (minimizer seeding) and post-processing
//! (rescoring, filtering, alignment emission, mate-pair checks), (c) runs
//! under the VG-style batch scheduler, and (d) exports the proxy's seed
//! dumps at exactly the paper's capture boundary.
//!
//! # Examples
//!
//! ```
//! use mg_parent::{Parent, ParentOptions};
//! use mg_workload::{InputSetSpec, SyntheticInput};
//!
//! let input = SyntheticInput::generate(&InputSetSpec::tiny_for_tests(), 1);
//! let parent = Parent::new(&input.gbz, &input.minimizer_index, input.spec.workflow);
//! let reads: Vec<Vec<u8>> = input.sim_reads.iter().map(|r| r.bases.clone()).collect();
//! let run = parent.run(&reads, &ParentOptions::default());
//! assert_eq!(run.dump.reads.len(), reads.len());
//! ```

pub mod align;
pub mod gaf;
pub mod gapped;
pub mod pipeline;
pub mod rescue;
pub mod sharded;

pub use align::{align_read, annotate_haplotypes, pair_check, AlignParams, Alignment};
pub use gaf::{alignment_to_gaf, chunk_to_gaf, path_to_gaf, run_to_gaf};
pub use gapped::{banded_global, cigar_string, CigarOp, GapParams, GappedAlignment};
pub use pipeline::{ChunkRun, Parent, ParentOptions, ParentRun, ParentStreamSummary};
pub use rescue::{rescue_mate, RescueParams};
pub use sharded::ShardedParent;
