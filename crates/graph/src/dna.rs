//! DNA alphabet utilities.
//!
//! Sequences are stored as ASCII bytes over the uppercase alphabet `ACGT`
//! (plus `N` for unknown bases in reads). These helpers validate, complement,
//! and pack bases.

/// The four DNA bases in code order (`A=0, C=1, G=2, T=3`).
pub const BASES: [u8; 4] = *b"ACGT";

/// Sentinel code returned by [`encode2`] for bytes outside `ACGT`.
pub const INVALID_CODE: u8 = 0xFF;

/// Byte → 2-bit code table: the one encoder shared by the packed sequence
/// store, the extension kernel's read packer, and the minimizer's rolling
/// k-mer construction. Invalid bytes (including `N`) map to
/// [`INVALID_CODE`].
const ENCODE_LUT: [u8; 256] = {
    let mut lut = [INVALID_CODE; 256];
    lut[b'A' as usize] = 0;
    lut[b'C' as usize] = 1;
    lut[b'G' as usize] = 2;
    lut[b'T' as usize] = 3;
    lut
};

/// Byte → complement table. Complementing in code space is `code ^ 0b11`
/// (A↔T, C↔G); this table is that identity lifted back to ASCII, with `N`
/// fixed and a `0` sentinel for invalid bytes.
const COMPLEMENT_LUT: [u8; 256] = {
    let mut lut = [0u8; 256];
    let mut code = 0usize;
    while code < 4 {
        lut[BASES[code] as usize] = BASES[code ^ 0b11];
        code += 1;
    }
    lut[b'N' as usize] = b'N';
    lut
};

/// Branchless byte → 2-bit code lookup; [`INVALID_CODE`] for non-`ACGT`
/// bytes (including `N`).
#[inline(always)]
pub fn encode2(b: u8) -> u8 {
    ENCODE_LUT[b as usize]
}

/// Returns `true` for an uppercase `A`, `C`, `G`, or `T`.
#[inline]
pub fn is_base(b: u8) -> bool {
    ENCODE_LUT[b as usize] != INVALID_CODE
}

/// Returns `true` if every byte of `seq` is a valid base.
pub fn is_valid_sequence(seq: &[u8]) -> bool {
    seq.iter().all(|&b| is_base(b))
}

/// Maps a base to its 2-bit code.
///
/// # Panics
///
/// Panics if `b` is not a valid base; use [`encode_base_checked`] for
/// untrusted input.
pub fn encode_base(b: u8) -> u8 {
    encode_base_checked(b).unwrap_or_else(|| panic!("invalid base {:?}", b as char))
}

/// Maps a base to its 2-bit code, or `None` for non-bases (including `N`).
#[inline]
pub fn encode_base_checked(b: u8) -> Option<u8> {
    let code = encode2(b);
    (code != INVALID_CODE).then_some(code)
}

/// Maps a 2-bit code back to its base.
///
/// # Panics
///
/// Panics if `code > 3`.
pub fn decode_base(code: u8) -> u8 {
    BASES[code as usize]
}

/// Returns `true` for a byte allowed in read sequences: a base or `N`.
pub fn is_read_base(b: u8) -> bool {
    is_base(b) || b == b'N'
}

/// Checks that every byte of a read sequence is in the accepted alphabet
/// (`ACGT` plus `N`), reporting the first offender.
///
/// # Errors
///
/// Returns [`Error::InvalidBase`](mg_support::Error::InvalidBase) with the
/// offending byte and its offset.
pub fn validate_read_bases(seq: &[u8]) -> mg_support::Result<()> {
    match seq.iter().position(|&b| !is_read_base(b)) {
        None => Ok(()),
        Some(pos) => Err(mg_support::Error::InvalidBase { byte: seq[pos], pos }),
    }
}

/// Watson–Crick complement of a base, or `None` for bytes that are neither
/// bases nor `N`. Use this on untrusted input instead of [`complement`].
#[inline]
pub fn complement_checked(b: u8) -> Option<u8> {
    let c = COMPLEMENT_LUT[b as usize];
    (c != 0).then_some(c)
}

/// Watson–Crick complement of a base; `N` stays `N`.
///
/// # Panics
///
/// Panics on bytes that are neither bases nor `N`; untrusted input should
/// be screened with [`validate_read_bases`] at intake (the FASTQ reader
/// does this) or use [`complement_checked`].
pub fn complement(b: u8) -> u8 {
    complement_checked(b).unwrap_or_else(|| panic!("invalid base {:?}", b as char))
}

/// Reverse complement of a sequence, rejecting invalid bytes instead of
/// panicking. Validates and complements in one pass over the table, then
/// reverses in place — no separate validation sweep.
///
/// # Errors
///
/// Returns [`Error::InvalidBase`](mg_support::Error::InvalidBase) for the
/// first byte that is neither a base nor `N` (position given in the
/// original, un-reversed sequence).
pub fn try_reverse_complement(seq: &[u8]) -> mg_support::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(seq.len());
    for (pos, &b) in seq.iter().enumerate() {
        let c = COMPLEMENT_LUT[b as usize];
        if c == 0 {
            return Err(mg_support::Error::InvalidBase { byte: b, pos });
        }
        out.push(c);
    }
    out.reverse();
    Ok(out)
}

/// Reverse complement of a sequence.
///
/// ```
/// assert_eq!(mg_graph::dna::reverse_complement(b"ACGT"), b"ACGT");
/// assert_eq!(mg_graph::dna::reverse_complement(b"AACG"), b"CGTT");
/// ```
pub fn reverse_complement(seq: &[u8]) -> Vec<u8> {
    seq.iter().rev().map(|&b| complement(b)).collect()
}

/// Reverse-complements `seq` in place without allocating.
pub fn reverse_complement_in_place(seq: &mut [u8]) {
    seq.reverse();
    for b in seq.iter_mut() {
        *b = complement(*b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn base_predicates() {
        for b in BASES {
            assert!(is_base(b));
        }
        for b in [b'N', b'a', b'X', 0u8] {
            assert!(!is_base(b));
        }
        assert!(is_valid_sequence(b"ACGTACGT"));
        assert!(!is_valid_sequence(b"ACGN"));
        assert!(is_valid_sequence(b""));
    }

    #[test]
    fn encode_decode_roundtrip() {
        for (code, b) in BASES.iter().enumerate() {
            assert_eq!(encode_base(*b), code as u8);
            assert_eq!(decode_base(code as u8), *b);
        }
        assert_eq!(encode_base_checked(b'N'), None);
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(complement(b'A'), b'T');
        assert_eq!(complement(b'T'), b'A');
        assert_eq!(complement(b'C'), b'G');
        assert_eq!(complement(b'G'), b'C');
        assert_eq!(complement(b'N'), b'N');
    }

    #[test]
    fn revcomp_empty() {
        assert_eq!(reverse_complement(b""), Vec::<u8>::new());
    }

    #[test]
    fn revcomp_in_place_matches_allocating() {
        let mut buf = b"GATTACA".to_vec();
        let expect = reverse_complement(&buf);
        reverse_complement_in_place(&mut buf);
        assert_eq!(buf, expect);
    }

    #[test]
    #[should_panic(expected = "invalid base")]
    fn complement_rejects_garbage() {
        complement(b'Q');
    }

    #[test]
    fn checked_complement_returns_none_instead_of_panicking() {
        assert_eq!(complement_checked(b'Q'), None);
        assert_eq!(complement_checked(b'a'), None);
        assert_eq!(complement_checked(b'A'), Some(b'T'));
        assert_eq!(complement_checked(b'N'), Some(b'N'));
    }

    #[test]
    fn read_base_validation_reports_offender() {
        assert!(validate_read_bases(b"ACGTN").is_ok());
        assert!(validate_read_bases(b"").is_ok());
        match validate_read_bases(b"ACxGT") {
            Err(mg_support::Error::InvalidBase { byte, pos }) => {
                assert_eq!(byte, b'x');
                assert_eq!(pos, 2);
            }
            other => panic!("expected InvalidBase, got {other:?}"),
        }
    }

    #[test]
    fn encode2_agrees_with_checked_over_all_bytes() {
        for b in 0u8..=255 {
            match encode_base_checked(b) {
                Some(code) => assert_eq!(encode2(b), code),
                None => assert_eq!(encode2(b), INVALID_CODE),
            }
        }
    }

    #[test]
    fn complement_in_code_space_is_xor() {
        // The LUT complement is exactly `code ^ 0b11` lifted to ASCII.
        for code in 0u8..4 {
            assert_eq!(complement(decode_base(code)), decode_base(code ^ 0b11));
        }
    }

    #[test]
    fn try_revcomp_errors_instead_of_aborting() {
        assert_eq!(try_reverse_complement(b"AACG").unwrap(), b"CGTT");
        assert!(matches!(
            try_reverse_complement(b"AC!T"),
            Err(mg_support::Error::InvalidBase { byte: b'!', pos: 2 })
        ));
    }

    fn dna_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(proptest::sample::select(BASES.to_vec()), 0..max_len)
    }

    proptest! {
        #[test]
        fn prop_revcomp_is_involution(seq in dna_strategy(300)) {
            prop_assert_eq!(reverse_complement(&reverse_complement(&seq)), seq);
        }

        #[test]
        fn prop_revcomp_preserves_validity(seq in dna_strategy(300)) {
            prop_assert!(is_valid_sequence(&reverse_complement(&seq)));
        }

        #[test]
        fn prop_try_revcomp_single_pass_matches_two_pass(
            seq in proptest::collection::vec(proptest::sample::select(b"ACGTN".to_vec()), 0..300)
        ) {
            prop_assert_eq!(try_reverse_complement(&seq).unwrap(), reverse_complement(&seq));
        }
    }
}
