//! Contiguous-range subgraph projection: the graph layer of pangenome
//! sharding.
//!
//! A shard's graph is the induced subgraph over a contiguous node-id
//! window `[lo, hi]`, renumbered to local ids `1..=hi-lo+1`. Node ids in
//! our graphs are allocated along the reference coordinate (the pangenome
//! builder emits backbone and allele nodes in positional order), so a
//! contiguous id range is a genomic region and the local/global
//! translation is pure arithmetic:
//!
//! ```text
//! local_id     = global_id - (lo - 1)
//! local packed = global packed - 2 * (lo - 1)      (orientation bit kept)
//! ```
//!
//! Edges with both endpoints inside the window are kept; edges crossing
//! the window boundary are returned separately (in global coordinates) so
//! the shard manifest can record them as boundary links.

use mg_support::Result;

use crate::handle::{Handle, NodeId};
use crate::graph::VariationGraph;

/// A window `[lo, hi]` of global node ids, with the arithmetic to move
/// handles between global and local coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdWindow {
    /// First global node id in the window (inclusive, >= 1).
    pub lo: u64,
    /// Last global node id in the window (inclusive).
    pub hi: u64,
}

impl IdWindow {
    /// Creates a window; `lo` must be >= 1 and <= `hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo >= 1 && lo <= hi, "invalid id window [{lo}, {hi}]");
        IdWindow { lo, hi }
    }

    /// Number of nodes in the window.
    pub fn len(&self) -> u64 {
        self.hi - self.lo + 1
    }

    /// Whether the window is empty (never true for a constructed window).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether a global node id falls inside the window.
    pub fn contains(&self, node: NodeId) -> bool {
        (self.lo..=self.hi).contains(&node.value())
    }

    /// The packed-handle shift between global and local coordinates.
    pub fn packed_shift(&self) -> u64 {
        2 * (self.lo - 1)
    }

    /// Translates a global handle into window-local coordinates.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the handle's node is outside the window.
    pub fn to_local(&self, global: Handle) -> Handle {
        debug_assert!(self.contains(global.node()), "{global} outside {self:?}");
        Handle::new(
            NodeId::new(global.node().value() - (self.lo - 1)),
            global.orientation(),
        )
    }

    /// Translates a window-local handle back into global coordinates.
    pub fn to_global(&self, local: Handle) -> Handle {
        Handle::new(
            NodeId::new(local.node().value() + (self.lo - 1)),
            local.orientation(),
        )
    }
}

/// The result of projecting a graph onto an id window.
#[derive(Debug, Clone)]
pub struct Projection {
    /// The induced subgraph, renumbered to dense local ids.
    pub graph: VariationGraph,
    /// Edges with exactly one endpoint inside the window, in global
    /// coordinates and the graph's canonical edge direction.
    pub boundary: Vec<(Handle, Handle)>,
}

/// Projects `graph` onto the induced subgraph over `window`.
///
/// Node sequences are copied (the projection owns its packed arenas), and
/// every edge with both endpoints inside the window is re-added, so for a
/// node whose full neighborhood lies inside the window the local successor
/// rows are the global rows shifted by [`IdWindow::packed_shift`] — the
/// invariant the sharded mapping kernel relies on.
///
/// # Errors
///
/// Returns an error if the window exceeds the graph's node range.
pub fn project_range(graph: &VariationGraph, window: IdWindow) -> Result<Projection> {
    if window.hi > graph.node_count() as u64 {
        return Err(mg_support::Error::Corrupt(format!(
            "window [{}, {}] exceeds node count {}",
            window.lo,
            window.hi,
            graph.node_count()
        )));
    }
    let mut local = VariationGraph::new();
    for id in window.lo..=window.hi {
        local.add_node(graph.forward_sequence(NodeId::new(id)))?;
    }
    let mut boundary = Vec::new();
    for (from, to) in graph.edges() {
        let from_in = window.contains(from.node());
        let to_in = window.contains(to.node());
        match (from_in, to_in) {
            (true, true) => local.add_edge(window.to_local(from), window.to_local(to)),
            (false, false) => {}
            _ => boundary.push((from, to)),
        }
    }
    Ok(Projection { graph: local, boundary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pangenome::{PangenomeBuilder, Variant};

    fn sample() -> VariationGraph {
        let p = PangenomeBuilder::new(b"ACGTACGTACGTACGTAACCGGTT".to_vec())
            .variants(vec![Variant::snp(4, b'T'), Variant::deletion(12, 2)])
            .haplotypes(vec![vec![0, 0], vec![1, 1]])
            .max_node_len(4)
            .build()
            .unwrap();
        p.into_parts().0
    }

    #[test]
    fn full_window_projection_is_identity() {
        let g = sample();
        let window = IdWindow::new(1, g.node_count() as u64);
        let p = project_range(&g, window).unwrap();
        assert_eq!(p.graph.node_count(), g.node_count());
        assert_eq!(p.graph.edge_count(), g.edge_count());
        assert!(p.boundary.is_empty());
        for id in g.node_ids() {
            assert_eq!(p.graph.forward_sequence(id), g.forward_sequence(id));
            for h in [Handle::forward(id), Handle::reverse(id)] {
                assert_eq!(p.graph.successors(h), g.successors(h));
            }
        }
    }

    #[test]
    fn interior_nodes_keep_shifted_successor_rows() {
        let g = sample();
        let n = g.node_count() as u64;
        assert!(n >= 4, "sample too small");
        let window = IdWindow::new(2, n - 1);
        let p = project_range(&g, window).unwrap();
        assert_eq!(p.graph.node_count() as u64, window.len());
        // Every global edge is either present locally (translated) or a
        // recorded boundary link.
        let mut kept = 0usize;
        for (from, to) in g.edges() {
            if window.contains(from.node()) && window.contains(to.node()) {
                assert!(
                    p.graph.has_edge(window.to_local(from), window.to_local(to)),
                    "missing edge {from} -> {to}"
                );
                kept += 1;
            } else {
                assert!(
                    p.boundary.contains(&(from, to))
                        || (!window.contains(from.node()) && !window.contains(to.node())),
                    "unrecorded boundary edge {from} -> {to}"
                );
            }
        }
        assert_eq!(p.graph.edge_count(), kept);
        // Sequences carried over.
        for id in 2..n {
            assert_eq!(
                p.graph.forward_sequence(NodeId::new(id - 1)),
                g.forward_sequence(NodeId::new(id))
            );
        }
    }

    #[test]
    fn window_translation_roundtrips() {
        let w = IdWindow::new(5, 9);
        for id in 5..=9u64 {
            for h in [
                Handle::forward(NodeId::new(id)),
                Handle::reverse(NodeId::new(id)),
            ] {
                assert_eq!(w.to_global(w.to_local(h)), h);
                assert_eq!(h.packed() - w.to_local(h).packed(), w.packed_shift());
            }
        }
    }

    #[test]
    fn rejects_out_of_range_window() {
        let g = sample();
        let window = IdWindow::new(1, g.node_count() as u64 + 5);
        assert!(project_range(&g, window).is_err());
    }
}
