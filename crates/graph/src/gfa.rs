//! GFA-flavoured text serialization for inspection and debugging.
//!
//! The dump follows GFA 1.0 conventions closely enough to eyeball in any GFA
//! viewer: `S` lines for segments, `L` lines for links (always `0M` overlap),
//! and `P` lines for haplotype paths.

use std::fmt::Write as _;

use crate::graph::VariationGraph;
use crate::pangenome::Pangenome;

/// Renders a graph (without paths) as GFA text.
///
/// ```
/// use mg_graph::{VariationGraph, Handle};
///
/// let mut g = VariationGraph::new();
/// let a = g.add_node(b"ACG").unwrap();
/// let b = g.add_node(b"T").unwrap();
/// g.add_edge(Handle::forward(a), Handle::forward(b));
/// let text = mg_graph::gfa::graph_to_gfa(&g);
/// assert!(text.contains("S\t1\tACG"));
/// assert!(text.contains("L\t1\t+\t2\t+\t0M"));
/// ```
pub fn graph_to_gfa(graph: &VariationGraph) -> String {
    let mut out = String::from("H\tVN:Z:1.0\n");
    for id in graph.node_ids() {
        let seq = graph.forward_sequence(id);
        let _ = writeln!(out, "S\t{id}\t{}", String::from_utf8_lossy(seq));
    }
    for (from, to) in graph.edges() {
        let _ = writeln!(
            out,
            "L\t{}\t{}\t{}\t{}\t0M",
            from.node(),
            from.orientation(),
            to.node(),
            to.orientation()
        );
    }
    out
}

/// Renders a pangenome as GFA text including `P` lines for haplotype paths.
pub fn pangenome_to_gfa(pangenome: &Pangenome) -> String {
    let mut out = graph_to_gfa(pangenome.graph());
    for path in pangenome.paths() {
        let steps: Vec<String> = path
            .handles
            .iter()
            .map(|h| format!("{}{}", h.node(), h.orientation()))
            .collect();
        let _ = writeln!(out, "P\thap{}\t{}\t*", path.haplotype, steps.join(","));
    }
    out
}


/// Errors are [`mg_support::Error::Corrupt`] with the offending line number.
type ParseResult<T> = mg_support::Result<T>;

/// Named paths as parsed from `P` lines: `(name, oriented steps)`.
pub type NamedPaths = Vec<(String, Vec<crate::Handle>)>;

/// Parses GFA 1.0 text into a graph plus named paths.
///
/// Supports the subset the writer emits — `H`, `S`, `L` (with `0M`
/// overlap), and `P` lines — which is also the subset vg's text dumps use
/// for simple graphs. Segment names must be the integer node ids.
///
/// # Errors
///
/// Returns [`mg_support::Error::Corrupt`] for malformed lines, unknown
/// record types, non-integer segment names, dangling links, or paths
/// referencing missing segments.
pub fn parse_gfa(text: &str) -> ParseResult<(VariationGraph, NamedPaths)> {
    use mg_support::Error;

    let corrupt = |lineno: usize, message: &str| -> Error {
        Error::Corrupt(format!("GFA line {lineno}: {message}"))
    };
    // First pass: segments, in id order (GFA has no ordering guarantee).
    let mut segments: Vec<(u64, Vec<u8>)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if !line.starts_with("S\t") {
            continue;
        }
        let mut cols = line.split('\t');
        cols.next();
        let id: u64 = cols
            .next()
            .ok_or_else(|| corrupt(lineno, "S line missing name"))?
            .parse()
            .map_err(|_| corrupt(lineno, "segment name must be an integer id"))?;
        let seq = cols
            .next()
            .ok_or_else(|| corrupt(lineno, "S line missing sequence"))?;
        segments.push((id, seq.as_bytes().to_vec()));
    }
    segments.sort_by_key(|&(id, _)| id);
    let mut graph = VariationGraph::new();
    for (expect, (id, seq)) in segments.iter().enumerate() {
        if *id != expect as u64 + 1 {
            return Err(Error::Corrupt(format!(
                "segment ids must be dense 1..n; found {id} at position {}",
                expect + 1
            )));
        }
        graph.add_node(seq)?;
    }

    fn parse_step(
        graph: &VariationGraph,
        name: &str,
        orient: &str,
        lineno: usize,
    ) -> ParseResult<crate::Handle> {
        let id: u64 = name.parse().map_err(|_| {
            mg_support::Error::Corrupt(format!(
                "GFA line {lineno}: segment reference must be an integer id"
            ))
        })?;
        if id == 0 || !graph.has_node(crate::NodeId::new(id.max(1))) {
            return Err(mg_support::Error::Corrupt(format!(
                "GFA line {lineno}: reference to missing segment"
            )));
        }
        let node = crate::NodeId::new(id);
        match orient {
            "+" => Ok(crate::Handle::forward(node)),
            "-" => Ok(crate::Handle::reverse(node)),
            other => Err(mg_support::Error::Corrupt(format!(
                "GFA line {lineno}: bad orientation {other:?}"
            ))),
        }
    }

    // Second pass: links and paths.
    let mut paths = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let mut cols = line.split('\t');
        match cols.next() {
            Some("H") | Some("S") | Some("") | None => {}
            Some("L") => {
                let from_name = cols.next().ok_or_else(|| corrupt(lineno, "L missing from"))?;
                let from_orient = cols.next().ok_or_else(|| corrupt(lineno, "L missing from orient"))?;
                let to_name = cols.next().ok_or_else(|| corrupt(lineno, "L missing to"))?;
                let to_orient = cols.next().ok_or_else(|| corrupt(lineno, "L missing to orient"))?;
                let from = parse_step(&graph, from_name, from_orient, lineno)?;
                let to = parse_step(&graph, to_name, to_orient, lineno)?;
                graph.add_edge(from, to);
            }
            Some("P") => {
                let name = cols.next().ok_or_else(|| corrupt(lineno, "P missing name"))?;
                let steps_text = cols.next().ok_or_else(|| corrupt(lineno, "P missing steps"))?;
                let mut steps = Vec::new();
                for step in steps_text.split(',') {
                    if step.len() < 2 {
                        return Err(corrupt(lineno, "empty path step"));
                    }
                    let (id_text, orient) = step.split_at(step.len() - 1);
                    steps.push(parse_step(&graph, id_text, orient, lineno)?);
                }
                paths.push((name.to_string(), steps));
            }
            Some(other) => {
                return Err(corrupt(lineno, &format!("unknown record type {other:?}")));
            }
        }
    }
    Ok((graph, paths))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::Handle;
    use crate::pangenome::{PangenomeBuilder, Variant};

    #[test]
    fn empty_graph_has_header_only() {
        let g = VariationGraph::new();
        assert_eq!(graph_to_gfa(&g), "H\tVN:Z:1.0\n");
    }

    #[test]
    fn segment_and_link_lines() {
        let mut g = VariationGraph::new();
        let a = g.add_node(b"AC").unwrap();
        let b = g.add_node(b"GT").unwrap();
        g.add_edge(Handle::forward(a), Handle::reverse(b));
        let text = graph_to_gfa(&g);
        assert!(text.contains("S\t1\tAC\n"));
        assert!(text.contains("S\t2\tGT\n"));
        assert!(text.contains("L\t1\t+\t2\t-\t0M\n"));
    }

    #[test]
    fn pangenome_path_lines() {
        let p = PangenomeBuilder::new(b"AAAATTTT".to_vec())
            .variants(vec![Variant::snp(4, b'G')])
            .haplotypes(vec![vec![0], vec![1]])
            .build()
            .unwrap();
        let text = pangenome_to_gfa(&p);
        assert_eq!(text.matches("\nP\t").count(), 2);
        assert!(text.contains("P\thap0\t"));
        assert!(text.contains("P\thap1\t"));
    }

    #[test]
    fn line_counts_match_graph() {
        let p = PangenomeBuilder::new(b"ACGTACGTACGTACGT".to_vec())
            .variants(vec![Variant::snp(3, b'A'), Variant::deletion(9, 2)])
            .haplotypes(vec![vec![1, 0]])
            .build()
            .unwrap();
        let text = pangenome_to_gfa(&p);
        let s_lines = text.lines().filter(|l| l.starts_with("S\t")).count();
        let l_lines = text.lines().filter(|l| l.starts_with("L\t")).count();
        assert_eq!(s_lines, p.graph().node_count());
        assert_eq!(l_lines, p.graph().edge_count());
    }
}

#[cfg(test)]
mod parse_tests {
    use super::*;
    use crate::pangenome::{PangenomeBuilder, Variant};

    #[test]
    fn writer_output_round_trips() {
        let p = PangenomeBuilder::new(b"ACGTACGTACGTACGTAACC".to_vec())
            .variants(vec![Variant::snp(4, b'T'), Variant::deletion(10, 2)])
            .haplotypes(vec![vec![0, 0], vec![1, 1]])
            .max_node_len(6)
            .build()
            .unwrap();
        let text = pangenome_to_gfa(&p);
        let (graph, paths) = parse_gfa(&text).unwrap();
        assert_eq!(&graph, p.graph());
        assert_eq!(paths.len(), p.paths().len());
        for ((name, steps), original) in paths.iter().zip(p.paths()) {
            assert_eq!(name, &format!("hap{}", original.haplotype));
            assert_eq!(steps, &original.handles);
        }
    }

    #[test]
    fn minimal_hand_written_gfa() {
        let text = "H\tVN:Z:1.0\nS\t1\tACG\nS\t2\tT\nL\t1\t+\t2\t-\t0M\nP\tx\t1+,2-\t*\n";
        let (graph, paths) = parse_gfa(text).unwrap();
        assert_eq!(graph.node_count(), 2);
        assert_eq!(graph.edge_count(), 1);
        assert_eq!(paths[0].0, "x");
        assert_eq!(paths[0].1.len(), 2);
        assert!(paths[0].1[1].orientation().is_reverse());
    }

    #[test]
    fn malformed_inputs_rejected() {
        // Unknown record type.
        assert!(parse_gfa("Z\tgarbage\n").is_err());
        // Non-integer segment name.
        assert!(parse_gfa("S\tfoo\tACGT\n").is_err());
        // Sparse ids.
        assert!(parse_gfa("S\t1\tAC\nS\t5\tGT\n").is_err());
        // Link to a missing segment.
        assert!(parse_gfa("S\t1\tAC\nL\t1\t+\t9\t+\t0M\n").is_err());
        // Bad orientation.
        assert!(parse_gfa("S\t1\tAC\nS\t2\tGT\nL\t1\t*\t2\t+\t0M\n").is_err());
        // Path step referencing a missing segment.
        assert!(parse_gfa("S\t1\tAC\nP\tp\t7+\t*\n").is_err());
        // Invalid bases in a segment.
        assert!(parse_gfa("S\t1\tAXGT\n").is_err());
    }
}
