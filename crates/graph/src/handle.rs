//! Node identifiers and oriented handles.
//!
//! A [`Handle`] packs a node id and an orientation into one `u64`, the same
//! `2 * id + orientation` encoding the GBWT uses for its node space, so
//! handles convert to GBWT symbols for free.

use std::fmt;

/// Identifier of a graph node. Node ids start at 1; 0 is reserved so the
/// GBWT can use symbol 0 as its endmarker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The smallest valid node id.
    pub const MIN: NodeId = NodeId(1);

    /// Creates a node id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is 0 (reserved for the GBWT endmarker).
    pub fn new(id: u64) -> Self {
        assert!(id != 0, "node id 0 is reserved");
        NodeId(id)
    }

    /// The raw integer value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> u64 {
        id.0
    }
}

/// Direction in which a node is traversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Orientation {
    /// The node's sequence as stored.
    #[default]
    Forward,
    /// The reverse complement of the node's sequence.
    Reverse,
}

impl Orientation {
    /// The opposite orientation.
    pub fn flip(self) -> Self {
        match self {
            Orientation::Forward => Orientation::Reverse,
            Orientation::Reverse => Orientation::Forward,
        }
    }

    /// `true` for [`Orientation::Reverse`].
    pub fn is_reverse(self) -> bool {
        matches!(self, Orientation::Reverse)
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Orientation::Forward => write!(f, "+"),
            Orientation::Reverse => write!(f, "-"),
        }
    }
}

/// An oriented node: the unit of graph traversal.
///
/// Packed as `2 * node_id + is_reverse`, which is also the GBWT symbol for
/// the traversal, so [`Handle::to_gbwt`] / [`Handle::from_gbwt`] are free.
///
/// # Examples
///
/// ```
/// use mg_graph::{Handle, NodeId, Orientation};
///
/// let h = Handle::new(NodeId::new(7), Orientation::Reverse);
/// assert_eq!(h.node(), NodeId::new(7));
/// assert!(h.orientation().is_reverse());
/// assert_eq!(h.flip().orientation(), Orientation::Forward);
/// assert_eq!(Handle::from_gbwt(h.to_gbwt()), Some(h));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Handle(u64);

// A handle is layout-identical to its packed `u64`, so slices of handles
// can be borrowed straight out of a mapped `.mgi` section. Any bit pattern
// is structurally valid; semantic validity (the node exists) is checked by
// the container readers.
unsafe impl mg_support::mgi::Pod for Handle {}

impl Handle {
    /// Creates a handle from a node id and orientation.
    pub fn new(node: NodeId, orientation: Orientation) -> Self {
        Handle(node.0 * 2 + orientation.is_reverse() as u64)
    }

    /// Shorthand for a forward handle.
    pub fn forward(node: NodeId) -> Self {
        Handle::new(node, Orientation::Forward)
    }

    /// Shorthand for a reverse handle.
    pub fn reverse(node: NodeId) -> Self {
        Handle::new(node, Orientation::Reverse)
    }

    /// The node this handle traverses.
    pub fn node(self) -> NodeId {
        NodeId(self.0 / 2)
    }

    /// The traversal orientation.
    pub fn orientation(self) -> Orientation {
        if self.0 & 1 == 1 {
            Orientation::Reverse
        } else {
            Orientation::Forward
        }
    }

    /// The same node in the opposite orientation.
    pub fn flip(self) -> Self {
        Handle(self.0 ^ 1)
    }

    /// The GBWT symbol encoding this traversal.
    pub fn to_gbwt(self) -> u64 {
        self.0
    }

    /// Decodes a GBWT symbol; returns `None` for the endmarker (0/1),
    /// which encodes no node.
    pub fn from_gbwt(symbol: u64) -> Option<Self> {
        if symbol < 2 {
            None
        } else {
            Some(Handle(symbol))
        }
    }

    /// The raw packed value (`2 * id + orient`).
    pub fn packed(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.node(), self.orientation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn handle_packs_and_unpacks() {
        let h = Handle::new(NodeId::new(123), Orientation::Forward);
        assert_eq!(h.node().value(), 123);
        assert_eq!(h.orientation(), Orientation::Forward);
        assert_eq!(h.packed(), 246);
        let r = h.flip();
        assert_eq!(r.node().value(), 123);
        assert!(r.orientation().is_reverse());
        assert_eq!(r.packed(), 247);
    }

    #[test]
    fn flip_is_involution() {
        let h = Handle::reverse(NodeId::new(9));
        assert_eq!(h.flip().flip(), h);
    }

    #[test]
    fn gbwt_symbol_roundtrip() {
        let h = Handle::forward(NodeId::new(1));
        assert_eq!(h.to_gbwt(), 2);
        assert_eq!(Handle::from_gbwt(2), Some(h));
        assert_eq!(Handle::from_gbwt(0), None);
        assert_eq!(Handle::from_gbwt(1), None);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn node_id_zero_panics() {
        NodeId::new(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Handle::forward(NodeId::new(5)).to_string(), "5+");
        assert_eq!(Handle::reverse(NodeId::new(5)).to_string(), "5-");
    }

    #[test]
    fn ordering_follows_packed_value() {
        let a = Handle::forward(NodeId::new(3));
        let b = Handle::reverse(NodeId::new(3));
        let c = Handle::forward(NodeId::new(4));
        assert!(a < b && b < c);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(id in 1u64..u64::MAX / 2, rev: bool) {
            let o = if rev { Orientation::Reverse } else { Orientation::Forward };
            let h = Handle::new(NodeId::new(id), o);
            prop_assert_eq!(h.node().value(), id);
            prop_assert_eq!(h.orientation(), o);
            prop_assert_eq!(Handle::from_gbwt(h.to_gbwt()), Some(h));
            prop_assert_eq!(h.flip().flip(), h);
            prop_assert_ne!(h.flip(), h);
        }
    }
}
