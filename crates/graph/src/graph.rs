//! The variation graph: sequence-labelled nodes with oriented edges.
//!
//! Nodes have dense ids `1..=node_count`. Edges connect oriented handles;
//! adding `a -> b` implicitly adds the symmetric traversal
//! `b.flip() -> a.flip()`, so walking the graph backwards is walking the
//! flipped handles forwards. Sequences are stored in one flat byte buffer so
//! node access is a slice, matching the cache behaviour of a real graph
//! implementation.

use std::borrow::Cow;

use mg_support::varint::{self, Cursor};
use mg_support::{Error, Result};

use crate::dna;
use crate::handle::{Handle, NodeId, Orientation};
use crate::packed::{PackedSeqStore, PackedView};

/// A sequence-labelled bidirected variation graph.
///
/// # Examples
///
/// ```
/// use mg_graph::{VariationGraph, Handle, Orientation};
///
/// let mut g = VariationGraph::new();
/// let a = g.add_node(b"ACG").unwrap();
/// let b = g.add_node(b"T").unwrap();
/// g.add_edge(Handle::forward(a), Handle::forward(b));
/// assert_eq!(g.sequence(Handle::forward(a)).as_ref(), b"ACG");
/// assert_eq!(g.sequence(Handle::reverse(a)).as_ref(), b"CGT");
/// assert_eq!(g.successors(Handle::forward(a)), &[Handle::forward(b)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VariationGraph {
    /// Concatenated forward sequences of all nodes.
    seq_data: Vec<u8>,
    /// Concatenated reverse-complement sequences, same offsets as
    /// `seq_data`: the precomputed arena that makes [`VariationGraph::sequence`]
    /// on a reverse handle a borrow instead of an allocation.
    rc_seq_data: Vec<u8>,
    /// 2-bit packed arenas (both strands, word-aligned per node) backing
    /// [`VariationGraph::packed_view`].
    packed: PackedSeqStore,
    /// `seq_offsets[i]..seq_offsets[i + 1]` is the sequence of node `i + 1`.
    seq_offsets: Vec<usize>,
    /// Successor handles per oriented handle, indexed by `packed - 2`.
    adjacency: Vec<Vec<Handle>>,
    /// Total number of distinct (unoriented) edges.
    edge_count: usize,
}

impl VariationGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        VariationGraph {
            seq_data: Vec::new(),
            rc_seq_data: Vec::new(),
            packed: PackedSeqStore::new(),
            seq_offsets: vec![0],
            adjacency: Vec::new(),
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.seq_offsets.len() - 1
    }

    /// Number of (unoriented) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Total bases stored across all nodes.
    pub fn total_sequence_len(&self) -> usize {
        self.seq_data.len()
    }

    /// The largest valid node id, or `None` for an empty graph.
    pub fn max_node_id(&self) -> Option<NodeId> {
        (self.node_count() > 0).then(|| NodeId::new(self.node_count() as u64))
    }

    /// Returns `true` if `node` exists in the graph.
    pub fn has_node(&self, node: NodeId) -> bool {
        (node.value() as usize) <= self.node_count()
    }

    /// Adds a node with the given forward sequence, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if the sequence is empty or contains
    /// non-`ACGT` bytes.
    pub fn add_node(&mut self, sequence: &[u8]) -> Result<NodeId> {
        if sequence.is_empty() {
            return Err(Error::Corrupt("empty node sequence".into()));
        }
        if !dna::is_valid_sequence(sequence) {
            return Err(Error::Corrupt("node sequence contains non-ACGT bytes".into()));
        }
        self.seq_data.extend_from_slice(sequence);
        self.rc_seq_data.extend(sequence.iter().rev().map(|&b| dna::complement(b)));
        self.packed.push_node(sequence);
        self.seq_offsets.push(self.seq_data.len());
        self.adjacency.push(Vec::new()); // forward
        self.adjacency.push(Vec::new()); // reverse
        Ok(NodeId::new(self.node_count() as u64))
    }

    /// Adds the edge `from -> to` (and its mirror `to.flip() -> from.flip()`).
    /// Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint node does not exist.
    pub fn add_edge(&mut self, from: Handle, to: Handle) {
        assert!(self.has_node(from.node()), "edge from missing node {}", from.node());
        assert!(self.has_node(to.node()), "edge to missing node {}", to.node());
        let fwd = self.adj_index(from);
        if self.adjacency[fwd].contains(&to) {
            return;
        }
        self.adjacency[fwd].push(to);
        self.adjacency[fwd].sort_unstable();
        // Mirror edge for backward traversal; identical when the edge is a
        // self-inverse (from == to.flip()).
        let back = self.adj_index(to.flip());
        if !self.adjacency[back].contains(&from.flip()) {
            self.adjacency[back].push(from.flip());
            self.adjacency[back].sort_unstable();
        }
        self.edge_count += 1;
    }

    fn adj_index(&self, handle: Handle) -> usize {
        (handle.packed() - 2) as usize
    }

    /// Length in bases of `node`'s sequence.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    pub fn node_len(&self, node: NodeId) -> usize {
        let i = node.value() as usize;
        assert!(i <= self.node_count(), "missing node {node}");
        self.seq_offsets[i] - self.seq_offsets[i - 1]
    }

    /// The forward-strand sequence of `node` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    pub fn forward_sequence(&self, node: NodeId) -> &[u8] {
        let i = node.value() as usize;
        assert!(i <= self.node_count(), "missing node {node}");
        &self.seq_data[self.seq_offsets[i - 1]..self.seq_offsets[i]]
    }

    /// The sequence read along `handle`: always a borrow. Forward handles
    /// slice the forward arena; reverse handles slice the precomputed
    /// reverse-complement arena, so no per-call allocation happens on
    /// either strand.
    ///
    /// The `Cow` return type is kept for API stability; the value is always
    /// `Cow::Borrowed`.
    ///
    /// # Panics
    ///
    /// Panics if the handle's node does not exist.
    pub fn sequence(&self, handle: Handle) -> Cow<'_, [u8]> {
        Cow::Borrowed(self.oriented_sequence(handle))
    }

    /// [`VariationGraph::sequence`] as a plain borrowed slice.
    ///
    /// # Panics
    ///
    /// Panics if the handle's node does not exist.
    #[inline]
    pub fn oriented_sequence(&self, handle: Handle) -> &[u8] {
        let i = handle.node().value() as usize;
        assert!(i <= self.node_count(), "missing node {}", handle.node());
        let range = self.seq_offsets[i - 1]..self.seq_offsets[i];
        match handle.orientation() {
            Orientation::Forward => &self.seq_data[range],
            Orientation::Reverse => &self.rc_seq_data[range],
        }
    }

    /// The word-aligned 2-bit packed view of the sequence read along
    /// `handle` (reverse handles read the packed reverse-complement arena;
    /// no per-call work on either strand).
    ///
    /// # Panics
    ///
    /// Panics if the handle's node does not exist.
    #[inline]
    pub fn packed_view(&self, handle: Handle) -> PackedView<'_> {
        let i = handle.node().value() as usize;
        assert!(i <= self.node_count(), "missing node {}", handle.node());
        let len = self.seq_offsets[i] - self.seq_offsets[i - 1];
        self.packed.view(i, len, handle.orientation() == Orientation::Reverse)
    }

    /// The base at `offset` along `handle`, without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or `offset` is out of range.
    #[inline]
    pub fn base(&self, handle: Handle, offset: usize) -> u8 {
        self.oriented_sequence(handle)[offset]
    }

    /// Handles reachable by one edge from `handle`, in sorted order.
    ///
    /// # Panics
    ///
    /// Panics if the handle's node does not exist.
    pub fn successors(&self, handle: Handle) -> &[Handle] {
        assert!(self.has_node(handle.node()), "missing node {}", handle.node());
        &self.adjacency[self.adj_index(handle)]
    }

    /// Handles with an edge into `handle` (computed via the mirror edges).
    ///
    /// # Panics
    ///
    /// Panics if the handle's node does not exist.
    pub fn predecessors(&self, handle: Handle) -> Vec<Handle> {
        self.successors(handle.flip())
            .iter()
            .map(|h| h.flip())
            .collect()
    }

    /// Out-degree of `handle`.
    pub fn degree(&self, handle: Handle) -> usize {
        self.successors(handle).len()
    }

    /// Returns `true` if the edge `from -> to` exists.
    pub fn has_edge(&self, from: Handle, to: Handle) -> bool {
        self.has_node(from.node())
            && self.has_node(to.node())
            && self.adjacency[self.adj_index(from)].binary_search(&to).is_ok()
    }

    /// Iterates over all node ids in ascending order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..=self.node_count() as u64).map(NodeId::new)
    }

    /// Iterates over all distinct edges as `(from, to)` pairs, each edge
    /// reported once in its canonical direction (smaller packed endpoint
    /// first).
    pub fn edges(&self) -> impl Iterator<Item = (Handle, Handle)> + '_ {
        self.node_ids().flat_map(move |id| {
            [Handle::forward(id), Handle::reverse(id)]
                .into_iter()
                .flat_map(move |from| {
                    self.successors(from)
                        .iter()
                        .filter(move |&&to| {
                            // Keep the canonical direction of each edge pair;
                            // self-inverse edges (from == to.flip()) have only
                            // one representation and are always kept.
                            from.packed() <= to.flip().packed()
                        })
                        .map(move |&to| (from, to))
                })
        })
    }

    /// Approximate heap usage in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.seq_data.capacity()
            + self.rc_seq_data.capacity()
            + self.packed.heap_bytes()
            + self.seq_offsets.capacity() * std::mem::size_of::<usize>()
            + self
                .adjacency
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<Handle>() + std::mem::size_of::<Vec<Handle>>())
                .sum::<usize>()
    }

    /// Serializes the graph to a byte payload (for container sections).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        varint::write_u64(&mut out, self.node_count() as u64);
        for id in self.node_ids() {
            let seq = self.forward_sequence(id);
            varint::write_u64(&mut out, seq.len() as u64);
            out.extend_from_slice(seq);
        }
        // Edges in canonical direction only; the mirror is re-derived.
        let edges: Vec<(Handle, Handle)> = self.edges().collect();
        varint::write_u64(&mut out, edges.len() as u64);
        for (from, to) in edges {
            varint::write_u64(&mut out, from.packed());
            varint::write_u64(&mut out, to.packed());
        }
        out
    }

    /// Deserializes a graph written by [`VariationGraph::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns decoding errors and [`Error::Corrupt`] for invalid structure.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let mut cur = Cursor::new(data);
        let node_count = cur.read_u64()?;
        let mut graph = VariationGraph::new();
        for _ in 0..node_count {
            let len = cur.read_u64()? as usize;
            let seq = cur.read_bytes(len)?;
            graph.add_node(seq)?;
        }
        let edge_count = cur.read_u64()?;
        for _ in 0..edge_count {
            let from = Handle::from_gbwt(cur.read_u64()?)
                .ok_or_else(|| Error::Corrupt("edge endpoint encodes endmarker".into()))?;
            let to = Handle::from_gbwt(cur.read_u64()?)
                .ok_or_else(|| Error::Corrupt("edge endpoint encodes endmarker".into()))?;
            if !graph.has_node(from.node()) || !graph.has_node(to.node()) {
                return Err(Error::Corrupt("edge references missing node".into()));
            }
            graph.add_edge(from, to);
        }
        if !cur.is_at_end() {
            return Err(Error::Corrupt("trailing bytes after graph".into()));
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn diamond() -> (VariationGraph, [NodeId; 4]) {
        // 1: ACG -> {2: T, 3: G} -> 4: AA
        let mut g = VariationGraph::new();
        let a = g.add_node(b"ACG").unwrap();
        let b = g.add_node(b"T").unwrap();
        let c = g.add_node(b"G").unwrap();
        let d = g.add_node(b"AA").unwrap();
        g.add_edge(Handle::forward(a), Handle::forward(b));
        g.add_edge(Handle::forward(a), Handle::forward(c));
        g.add_edge(Handle::forward(b), Handle::forward(d));
        g.add_edge(Handle::forward(c), Handle::forward(d));
        (g, [a, b, c, d])
    }

    #[test]
    fn counts() {
        let (g, _) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.total_sequence_len(), 7);
        assert_eq!(g.max_node_id(), Some(NodeId::new(4)));
    }

    #[test]
    fn sequences_and_bases() {
        let (g, [a, ..]) = diamond();
        assert_eq!(g.sequence(Handle::forward(a)).as_ref(), b"ACG");
        assert_eq!(g.sequence(Handle::reverse(a)).as_ref(), b"CGT");
        for (i, &want) in b"ACG".iter().enumerate() {
            assert_eq!(g.base(Handle::forward(a), i), want);
        }
        for (i, &want) in b"CGT".iter().enumerate() {
            assert_eq!(g.base(Handle::reverse(a), i), want);
        }
    }

    #[test]
    fn successors_sorted_and_mirrored() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(
            g.successors(Handle::forward(a)),
            &[Handle::forward(b), Handle::forward(c)]
        );
        // Mirror: from 4's reverse we reach 2- and 3-.
        assert_eq!(
            g.successors(Handle::reverse(d)),
            &[Handle::reverse(b), Handle::reverse(c)]
        );
        // Predecessors of 4+ are 2+ and 3+.
        let mut preds = g.predecessors(Handle::forward(d));
        preds.sort();
        assert_eq!(preds, vec![Handle::forward(b), Handle::forward(c)]);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = VariationGraph::new();
        let a = g.add_node(b"A").unwrap();
        let b = g.add_node(b"C").unwrap();
        g.add_edge(Handle::forward(a), Handle::forward(b));
        g.add_edge(Handle::forward(a), Handle::forward(b));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(Handle::forward(a)), 1);
    }

    #[test]
    fn has_edge_queries() {
        let (g, [a, b, _, d]) = diamond();
        assert!(g.has_edge(Handle::forward(a), Handle::forward(b)));
        assert!(g.has_edge(Handle::reverse(b), Handle::reverse(a)));
        assert!(!g.has_edge(Handle::forward(a), Handle::forward(d)));
    }

    #[test]
    fn reverse_orientation_edges() {
        // Inversion-style edge: 1+ -> 2-.
        let mut g = VariationGraph::new();
        let a = g.add_node(b"AC").unwrap();
        let b = g.add_node(b"GG").unwrap();
        g.add_edge(Handle::forward(a), Handle::reverse(b));
        assert_eq!(g.successors(Handle::forward(a)), &[Handle::reverse(b)]);
        // Mirror: 2+ -> 1-.
        assert_eq!(g.successors(Handle::forward(b)), &[Handle::reverse(a)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_invalid_sequences() {
        let mut g = VariationGraph::new();
        assert!(g.add_node(b"").is_err());
        assert!(g.add_node(b"ACGN").is_err());
        assert!(g.add_node(b"acgt").is_err());
    }

    #[test]
    fn edges_iterator_reports_each_once() {
        let (g, _) = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
    }

    #[test]
    fn serialization_roundtrip() {
        let (g, _) = diamond();
        let bytes = g.to_bytes();
        let g2 = VariationGraph::from_bytes(&bytes).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn deserialize_rejects_trailing_garbage() {
        let (g, _) = diamond();
        let mut bytes = g.to_bytes();
        bytes.push(0);
        assert!(VariationGraph::from_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = VariationGraph::new();
        let g2 = VariationGraph::from_bytes(&g.to_bytes()).unwrap();
        assert_eq!(g2.node_count(), 0);
        assert_eq!(g2.edge_count(), 0);
    }

    /// Random small graphs for property tests.
    fn graph_strategy() -> impl Strategy<Value = VariationGraph> {
        let seqs = proptest::collection::vec(
            proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 1..8),
            1..20,
        );
        (seqs, proptest::collection::vec((any::<u64>(), any::<u64>(), any::<bool>(), any::<bool>()), 0..40))
            .prop_map(|(seqs, raw_edges)| {
                let mut g = VariationGraph::new();
                let ids: Vec<NodeId> = seqs.iter().map(|s| g.add_node(s).unwrap()).collect();
                for (f, t, fr, tr) in raw_edges {
                    let from = ids[(f % ids.len() as u64) as usize];
                    let to = ids[(t % ids.len() as u64) as usize];
                    let from = if fr { Handle::reverse(from) } else { Handle::forward(from) };
                    let to = if tr { Handle::reverse(to) } else { Handle::forward(to) };
                    g.add_edge(from, to);
                }
                g
            })
    }

    proptest! {
        #[test]
        fn prop_serialization_roundtrip(g in graph_strategy()) {
            let g2 = VariationGraph::from_bytes(&g.to_bytes()).unwrap();
            prop_assert_eq!(g, g2);
        }

        #[test]
        fn prop_mirror_edges_consistent(g in graph_strategy()) {
            for id in g.node_ids() {
                for from in [Handle::forward(id), Handle::reverse(id)] {
                    for &to in g.successors(from) {
                        // Every successor edge has its mirror.
                        prop_assert!(g.successors(to.flip()).contains(&from.flip()));
                        prop_assert!(g.has_edge(from, to));
                    }
                }
            }
        }

        #[test]
        fn prop_base_matches_sequence(g in graph_strategy()) {
            for id in g.node_ids() {
                for h in [Handle::forward(id), Handle::reverse(id)] {
                    let seq = g.sequence(h);
                    for (i, &b) in seq.iter().enumerate() {
                        prop_assert_eq!(g.base(h, i), b);
                    }
                }
            }
        }

        #[test]
        fn prop_sequence_never_allocates(g in graph_strategy()) {
            for id in g.node_ids() {
                for h in [Handle::forward(id), Handle::reverse(id)] {
                    prop_assert!(
                        matches!(g.sequence(h), Cow::Borrowed(_)),
                        "sequence({h:?}) allocated"
                    );
                }
            }
        }

        #[test]
        fn prop_packed_view_matches_ascii(g in graph_strategy()) {
            for id in g.node_ids() {
                for h in [Handle::forward(id), Handle::reverse(id)] {
                    let seq = g.sequence(h);
                    let view = g.packed_view(h);
                    prop_assert_eq!(view.len(), seq.len());
                    for (i, &b) in seq.iter().enumerate() {
                        prop_assert_eq!(dna::decode_base(view.code(i)), b);
                    }
                }
            }
        }
    }

    #[test]
    fn reverse_sequence_borrows_the_revcomp_arena() {
        let mut g = VariationGraph::new();
        // 70 bases: exercises multi-word packing per node.
        let seq: Vec<u8> = (0..70).map(|i| dna::BASES[(i * 7 + 3) % 4]).collect();
        let a = g.add_node(&seq).unwrap();
        let h = Handle::reverse(a);
        assert!(matches!(g.sequence(h), Cow::Borrowed(_)));
        assert_eq!(g.sequence(h).as_ref(), dna::reverse_complement(&seq));
        let view = g.packed_view(h);
        let spelled: Vec<u8> = (0..view.len()).map(|i| dna::decode_base(view.code(i))).collect();
        assert_eq!(spelled, dna::reverse_complement(&seq));
    }
}
