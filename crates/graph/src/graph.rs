//! The variation graph: sequence-labelled nodes with oriented edges.
//!
//! Nodes have dense ids `1..=node_count`. Edges connect oriented handles;
//! adding `a -> b` implicitly adds the symmetric traversal
//! `b.flip() -> a.flip()`, so walking the graph backwards is walking the
//! flipped handles forwards. Sequences are stored in one flat byte buffer so
//! node access is a slice, matching the cache behaviour of a real graph
//! implementation.

use std::borrow::Cow;

use mg_support::mgi::{
    self, FixedReader, MgiFile, MgiWriter, Storage, TAG_GRAPH_ADJ_OFFSETS, TAG_GRAPH_ADJ_TARGETS,
    TAG_GRAPH_META, TAG_GRAPH_SEQ, TAG_GRAPH_SEQ_OFFSETS, TAG_GRAPH_SEQ_RC, TAG_PACKED_OFFSETS,
    TAG_PACKED_RC_WORDS, TAG_PACKED_WORDS,
};
use mg_support::varint::{self, Cursor};
use mg_support::{Error, Result};

use crate::dna;
use crate::handle::{Handle, NodeId, Orientation};
use crate::packed::{PackedSeqStore, PackedView, BASES_PER_WORD};

/// Successor lists per oriented handle: nested vectors while the graph is
/// being built, a flat CSR borrowed from a mapped `.mgi` afterwards. Both
/// forms serve [`VariationGraph::successors`] as a plain slice.
#[derive(Debug, Clone)]
enum AdjStore {
    /// Mutable per-handle vectors (build path, legacy deserializers).
    Dynamic(Vec<Vec<Handle>>),
    /// Flat compressed-sparse-row form (zero-copy path).
    Csr {
        /// `offsets[i]..offsets[i + 1]` indexes row `i` in `targets`.
        offsets: Storage<u64>,
        /// Concatenated successor handles, each row sorted ascending.
        targets: Storage<Handle>,
    },
}

impl AdjStore {
    fn row_count(&self) -> usize {
        match self {
            AdjStore::Dynamic(rows) => rows.len(),
            AdjStore::Csr { offsets, .. } => offsets.len().saturating_sub(1),
        }
    }

    fn row(&self, i: usize) -> &[Handle] {
        match self {
            AdjStore::Dynamic(rows) => &rows[i],
            AdjStore::Csr { offsets, targets } => {
                &targets[offsets[i] as usize..offsets[i + 1] as usize]
            }
        }
    }
}

// Semantic equality: the same successor lists, regardless of backing.
impl PartialEq for AdjStore {
    fn eq(&self, other: &Self) -> bool {
        self.row_count() == other.row_count()
            && (0..self.row_count()).all(|i| self.row(i) == other.row(i))
    }
}

impl Eq for AdjStore {}

/// A sequence-labelled bidirected variation graph.
///
/// # Examples
///
/// ```
/// use mg_graph::{VariationGraph, Handle, Orientation};
///
/// let mut g = VariationGraph::new();
/// let a = g.add_node(b"ACG").unwrap();
/// let b = g.add_node(b"T").unwrap();
/// g.add_edge(Handle::forward(a), Handle::forward(b));
/// assert_eq!(g.sequence(Handle::forward(a)).as_ref(), b"ACG");
/// assert_eq!(g.sequence(Handle::reverse(a)).as_ref(), b"CGT");
/// assert_eq!(g.successors(Handle::forward(a)), &[Handle::forward(b)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariationGraph {
    /// Concatenated forward sequences of all nodes.
    seq_data: Storage<u8>,
    /// Concatenated reverse-complement sequences, same offsets as
    /// `seq_data`: the precomputed arena that makes [`VariationGraph::sequence`]
    /// on a reverse handle a borrow instead of an allocation.
    rc_seq_data: Storage<u8>,
    /// 2-bit packed arenas (both strands, word-aligned per node) backing
    /// [`VariationGraph::packed_view`].
    packed: PackedSeqStore,
    /// `seq_offsets[i]..seq_offsets[i + 1]` is the sequence of node `i + 1`.
    seq_offsets: Storage<u64>,
    /// Successor handles per oriented handle, indexed by `packed - 2`.
    adjacency: AdjStore,
    /// Total number of distinct (unoriented) edges.
    edge_count: usize,
}

impl Default for VariationGraph {
    fn default() -> Self {
        VariationGraph::new()
    }
}

impl VariationGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        VariationGraph {
            seq_data: Storage::default(),
            rc_seq_data: Storage::default(),
            packed: PackedSeqStore::new(),
            seq_offsets: vec![0u64].into(),
            adjacency: AdjStore::Dynamic(Vec::new()),
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.seq_offsets.len() - 1
    }

    /// Number of (unoriented) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Total bases stored across all nodes.
    pub fn total_sequence_len(&self) -> usize {
        self.seq_data.len()
    }

    /// The largest valid node id, or `None` for an empty graph.
    pub fn max_node_id(&self) -> Option<NodeId> {
        (self.node_count() > 0).then(|| NodeId::new(self.node_count() as u64))
    }

    /// Returns `true` if `node` exists in the graph.
    pub fn has_node(&self, node: NodeId) -> bool {
        (node.value() as usize) <= self.node_count()
    }

    /// Adds a node with the given forward sequence, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if the sequence is empty or contains
    /// non-`ACGT` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the graph is backed by a memory map (mapped graphs are
    /// immutable).
    pub fn add_node(&mut self, sequence: &[u8]) -> Result<NodeId> {
        if sequence.is_empty() {
            return Err(Error::Corrupt("empty node sequence".into()));
        }
        if !dna::is_valid_sequence(sequence) {
            return Err(Error::Corrupt("node sequence contains non-ACGT bytes".into()));
        }
        self.seq_data.vec_mut().extend_from_slice(sequence);
        self.rc_seq_data
            .vec_mut()
            .extend(sequence.iter().rev().map(|&b| dna::complement(b)));
        self.packed.push_node(sequence);
        let total = self.seq_data.len() as u64;
        self.seq_offsets.vec_mut().push(total);
        let rows = self.dynamic_rows();
        rows.push(Vec::new()); // forward
        rows.push(Vec::new()); // reverse
        Ok(NodeId::new(self.node_count() as u64))
    }

    fn dynamic_rows(&mut self) -> &mut Vec<Vec<Handle>> {
        match &mut self.adjacency {
            AdjStore::Dynamic(rows) => rows,
            AdjStore::Csr { .. } => panic!("cannot mutate a mapped graph"),
        }
    }

    /// Adds the edge `from -> to` (and its mirror `to.flip() -> from.flip()`).
    /// Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint node does not exist, or if the graph is
    /// backed by a memory map.
    pub fn add_edge(&mut self, from: Handle, to: Handle) {
        assert!(self.has_node(from.node()), "edge from missing node {}", from.node());
        assert!(self.has_node(to.node()), "edge to missing node {}", to.node());
        let fwd = self.adj_index(from);
        let back = self.adj_index(to.flip());
        let rows = self.dynamic_rows();
        if rows[fwd].contains(&to) {
            return;
        }
        rows[fwd].push(to);
        rows[fwd].sort_unstable();
        // Mirror edge for backward traversal; identical when the edge is a
        // self-inverse (from == to.flip()).
        if !rows[back].contains(&from.flip()) {
            rows[back].push(from.flip());
            rows[back].sort_unstable();
        }
        self.edge_count += 1;
    }

    fn adj_index(&self, handle: Handle) -> usize {
        (handle.packed() - 2) as usize
    }

    /// Length in bases of `node`'s sequence.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    pub fn node_len(&self, node: NodeId) -> usize {
        let i = node.value() as usize;
        assert!(i <= self.node_count(), "missing node {node}");
        (self.seq_offsets[i] - self.seq_offsets[i - 1]) as usize
    }

    /// The forward-strand sequence of `node` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    pub fn forward_sequence(&self, node: NodeId) -> &[u8] {
        let i = node.value() as usize;
        assert!(i <= self.node_count(), "missing node {node}");
        &self.seq_data[self.seq_offsets[i - 1] as usize..self.seq_offsets[i] as usize]
    }

    /// The sequence read along `handle`: always a borrow. Forward handles
    /// slice the forward arena; reverse handles slice the precomputed
    /// reverse-complement arena, so no per-call allocation happens on
    /// either strand.
    ///
    /// The `Cow` return type is kept for API stability; the value is always
    /// `Cow::Borrowed`.
    ///
    /// # Panics
    ///
    /// Panics if the handle's node does not exist.
    pub fn sequence(&self, handle: Handle) -> Cow<'_, [u8]> {
        Cow::Borrowed(self.oriented_sequence(handle))
    }

    /// [`VariationGraph::sequence`] as a plain borrowed slice.
    ///
    /// # Panics
    ///
    /// Panics if the handle's node does not exist.
    #[inline]
    pub fn oriented_sequence(&self, handle: Handle) -> &[u8] {
        let i = handle.node().value() as usize;
        assert!(i <= self.node_count(), "missing node {}", handle.node());
        let range = self.seq_offsets[i - 1] as usize..self.seq_offsets[i] as usize;
        match handle.orientation() {
            Orientation::Forward => &self.seq_data[range],
            Orientation::Reverse => &self.rc_seq_data[range],
        }
    }

    /// The word-aligned 2-bit packed view of the sequence read along
    /// `handle` (reverse handles read the packed reverse-complement arena;
    /// no per-call work on either strand).
    ///
    /// # Panics
    ///
    /// Panics if the handle's node does not exist.
    #[inline]
    pub fn packed_view(&self, handle: Handle) -> PackedView<'_> {
        let i = handle.node().value() as usize;
        assert!(i <= self.node_count(), "missing node {}", handle.node());
        let len = (self.seq_offsets[i] - self.seq_offsets[i - 1]) as usize;
        self.packed.view(i, len, handle.orientation() == Orientation::Reverse)
    }

    /// The base at `offset` along `handle`, without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or `offset` is out of range.
    #[inline]
    pub fn base(&self, handle: Handle, offset: usize) -> u8 {
        self.oriented_sequence(handle)[offset]
    }

    /// Handles reachable by one edge from `handle`, in sorted order.
    ///
    /// # Panics
    ///
    /// Panics if the handle's node does not exist.
    pub fn successors(&self, handle: Handle) -> &[Handle] {
        assert!(self.has_node(handle.node()), "missing node {}", handle.node());
        self.adjacency.row(self.adj_index(handle))
    }

    /// Handles with an edge into `handle` (computed via the mirror edges).
    ///
    /// # Panics
    ///
    /// Panics if the handle's node does not exist.
    pub fn predecessors(&self, handle: Handle) -> Vec<Handle> {
        self.successors(handle.flip())
            .iter()
            .map(|h| h.flip())
            .collect()
    }

    /// Out-degree of `handle`.
    pub fn degree(&self, handle: Handle) -> usize {
        self.successors(handle).len()
    }

    /// Returns `true` if the edge `from -> to` exists.
    pub fn has_edge(&self, from: Handle, to: Handle) -> bool {
        self.has_node(from.node())
            && self.has_node(to.node())
            && self.adjacency.row(self.adj_index(from)).binary_search(&to).is_ok()
    }

    /// Iterates over all node ids in ascending order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..=self.node_count() as u64).map(NodeId::new)
    }

    /// Iterates over all distinct edges as `(from, to)` pairs, each edge
    /// reported once in its canonical direction (smaller packed endpoint
    /// first).
    pub fn edges(&self) -> impl Iterator<Item = (Handle, Handle)> + '_ {
        self.node_ids().flat_map(move |id| {
            [Handle::forward(id), Handle::reverse(id)]
                .into_iter()
                .flat_map(move |from| {
                    self.successors(from)
                        .iter()
                        .filter(move |&&to| {
                            // Keep the canonical direction of each edge pair;
                            // self-inverse edges (from == to.flip()) have only
                            // one representation and are always kept.
                            from.packed() <= to.flip().packed()
                        })
                        .map(move |&to| (from, to))
                })
        })
    }

    /// Approximate heap usage in bytes (mapped backings count as zero).
    pub fn heap_bytes(&self) -> usize {
        let adj = match &self.adjacency {
            AdjStore::Dynamic(rows) => rows
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<Handle>() + std::mem::size_of::<Vec<Handle>>())
                .sum::<usize>(),
            AdjStore::Csr { offsets, targets } => offsets.heap_bytes() + targets.heap_bytes(),
        };
        self.seq_data.heap_bytes()
            + self.rc_seq_data.heap_bytes()
            + self.packed.heap_bytes()
            + self.seq_offsets.heap_bytes()
            + adj
    }

    /// Serializes the graph to a byte payload (for container sections).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        varint::write_u64(&mut out, self.node_count() as u64);
        for id in self.node_ids() {
            let seq = self.forward_sequence(id);
            varint::write_u64(&mut out, seq.len() as u64);
            out.extend_from_slice(seq);
        }
        // Edges in canonical direction only; the mirror is re-derived.
        let edges: Vec<(Handle, Handle)> = self.edges().collect();
        varint::write_u64(&mut out, edges.len() as u64);
        for (from, to) in edges {
            varint::write_u64(&mut out, from.packed());
            varint::write_u64(&mut out, to.packed());
        }
        out
    }

    /// Deserializes a graph written by [`VariationGraph::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns decoding errors and [`Error::Corrupt`] for invalid structure.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let mut cur = Cursor::new(data);
        let node_count = cur.read_u64()?;
        let mut graph = VariationGraph::new();
        for _ in 0..node_count {
            let len = cur.read_u64()? as usize;
            let seq = cur.read_bytes(len)?;
            graph.add_node(seq)?;
        }
        let edge_count = cur.read_u64()?;
        for _ in 0..edge_count {
            let from = Handle::from_gbwt(cur.read_u64()?)
                .ok_or_else(|| Error::Corrupt("edge endpoint encodes endmarker".into()))?;
            let to = Handle::from_gbwt(cur.read_u64()?)
                .ok_or_else(|| Error::Corrupt("edge endpoint encodes endmarker".into()))?;
            if !graph.has_node(from.node()) || !graph.has_node(to.node()) {
                return Err(Error::Corrupt("edge references missing node".into()));
            }
            graph.add_edge(from, to);
        }
        if !cur.is_at_end() {
            return Err(Error::Corrupt("trailing bytes after graph".into()));
        }
        Ok(graph)
    }

    /// Emits the graph's `.mgi` sections: both ASCII arenas, the packed
    /// 2-bit arenas, and the adjacency lists flattened to CSR — each in its
    /// in-memory little-endian layout.
    pub fn write_mgi(&self, w: &mut MgiWriter) {
        let mut meta = Vec::new();
        mgi::put_u64(&mut meta, self.node_count() as u64);
        mgi::put_u64(&mut meta, self.edge_count as u64);
        mgi::put_u64(&mut meta, self.seq_data.len() as u64);
        w.section(TAG_GRAPH_META, meta);
        w.section(TAG_GRAPH_SEQ, self.seq_data.to_vec());
        w.section(TAG_GRAPH_SEQ_RC, self.rc_seq_data.to_vec());
        let mut offs = Vec::new();
        mgi::put_u64_slice(&mut offs, &self.seq_offsets);
        w.section(TAG_GRAPH_SEQ_OFFSETS, offs);
        let rows = self.adjacency.row_count();
        let mut adj_offsets = Vec::with_capacity((rows + 1) * 8);
        let mut targets = Vec::new();
        let mut total = 0u64;
        mgi::put_u64(&mut adj_offsets, 0);
        for i in 0..rows {
            let row = self.adjacency.row(i);
            total += row.len() as u64;
            mgi::put_u64(&mut adj_offsets, total);
            for h in row {
                mgi::put_u64(&mut targets, h.packed());
            }
        }
        w.section(TAG_GRAPH_ADJ_OFFSETS, adj_offsets);
        w.section(TAG_GRAPH_ADJ_TARGETS, targets);
        let mut words = Vec::new();
        mgi::put_u64_slice(&mut words, self.packed.words());
        w.section(TAG_PACKED_WORDS, words);
        let mut rc_words = Vec::new();
        mgi::put_u64_slice(&mut rc_words, self.packed.rc_words());
        w.section(TAG_PACKED_RC_WORDS, rc_words);
        let mut word_offsets = Vec::new();
        mgi::put_u64_slice(&mut word_offsets, self.packed.word_offsets());
        w.section(TAG_PACKED_OFFSETS, word_offsets);
    }

    /// Rebuilds a graph from a mapped `.mgi`, borrowing every arena
    /// zero-copy and validating the structural invariants the accessors
    /// rely on (offset monotonicity, alphabet, packed-word consistency,
    /// sorted in-bounds adjacency rows) instead of decoding elements.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] (or missing-section / cast errors) if any
    /// invariant fails.
    pub fn from_mgi(f: &MgiFile) -> Result<Self> {
        let mut meta = FixedReader::new(f.section(TAG_GRAPH_META)?);
        let node_count = meta.read_u64()? as usize;
        let edge_count = meta.read_u64()? as usize;
        let seq_len = meta.read_u64()? as usize;
        if !meta.is_at_end() {
            return Err(Error::Corrupt("trailing bytes in graph metadata".into()));
        }
        let seq_data: Storage<u8> = f.section_storage(TAG_GRAPH_SEQ)?;
        let rc_seq_data: Storage<u8> = f.section_storage(TAG_GRAPH_SEQ_RC)?;
        let seq_offsets: Storage<u64> = f.section_storage(TAG_GRAPH_SEQ_OFFSETS)?;
        if seq_data.len() != seq_len || rc_seq_data.len() != seq_len {
            return Err(Error::Corrupt(format!(
                "sequence arenas of {} / {} bytes, metadata says {seq_len}",
                seq_data.len(),
                rc_seq_data.len()
            )));
        }
        if seq_offsets.len() != node_count + 1 || seq_offsets.first() != Some(&0) {
            return Err(Error::Corrupt("sequence offsets do not cover the node set".into()));
        }
        if seq_offsets.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::Corrupt("sequence offsets not strictly increasing".into()));
        }
        if *seq_offsets.last().expect("nonempty offsets") != seq_len as u64 {
            return Err(Error::Corrupt("last sequence offset does not close the arena".into()));
        }
        if !dna::is_valid_sequence(&seq_data) || !dna::is_valid_sequence(&rc_seq_data) {
            return Err(Error::Corrupt("sequence arena contains non-ACGT bytes".into()));
        }
        let words: Storage<u64> = f.section_storage(TAG_PACKED_WORDS)?;
        let rc_words: Storage<u64> = f.section_storage(TAG_PACKED_RC_WORDS)?;
        let word_offsets: Storage<u64> = f.section_storage(TAG_PACKED_OFFSETS)?;
        if words.len() != rc_words.len() {
            return Err(Error::Corrupt("packed strand arenas differ in length".into()));
        }
        if word_offsets.len() != node_count + 1
            || word_offsets.first() != Some(&0)
            || *word_offsets.last().expect("nonempty offsets") != words.len() as u64
        {
            return Err(Error::Corrupt("packed word offsets do not cover the arena".into()));
        }
        for i in 0..node_count {
            let bases = (seq_offsets[i + 1] - seq_offsets[i]) as usize;
            let want = bases.div_ceil(BASES_PER_WORD) as u64;
            if word_offsets[i + 1] - word_offsets[i] != want {
                return Err(Error::Corrupt(format!(
                    "node {}: {bases} bases but {} packed words",
                    i + 1,
                    word_offsets[i + 1] - word_offsets[i]
                )));
            }
        }
        let adj_offsets: Storage<u64> = f.section_storage(TAG_GRAPH_ADJ_OFFSETS)?;
        let targets: Storage<Handle> = f.section_storage(TAG_GRAPH_ADJ_TARGETS)?;
        if adj_offsets.len() != 2 * node_count + 1 || adj_offsets.first() != Some(&0) {
            return Err(Error::Corrupt("adjacency offsets do not cover the handle set".into()));
        }
        if adj_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(Error::Corrupt("adjacency offsets decrease".into()));
        }
        if *adj_offsets.last().expect("nonempty offsets") != targets.len() as u64 {
            return Err(Error::Corrupt("last adjacency offset does not close the rows".into()));
        }
        let max_symbol = 2 * node_count as u64 + 1;
        for row in 0..2 * node_count {
            let slice = &targets[adj_offsets[row] as usize..adj_offsets[row + 1] as usize];
            for h in slice {
                if h.packed() < 2 || h.packed() > max_symbol {
                    return Err(Error::Corrupt(format!(
                        "adjacency target {} outside the node set",
                        h.packed()
                    )));
                }
            }
            // `has_edge` binary-searches rows: sorted and duplicate-free is
            // a load-bearing invariant, not a style preference.
            if slice.windows(2).any(|w| w[0] >= w[1]) {
                return Err(Error::Corrupt("adjacency row not strictly sorted".into()));
            }
        }
        if edge_count > targets.len() {
            return Err(Error::Corrupt("edge count exceeds adjacency entries".into()));
        }
        Ok(VariationGraph {
            seq_data,
            rc_seq_data,
            packed: PackedSeqStore::from_parts(words, rc_words, word_offsets),
            seq_offsets,
            adjacency: AdjStore::Csr { offsets: adj_offsets, targets },
            edge_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn diamond() -> (VariationGraph, [NodeId; 4]) {
        // 1: ACG -> {2: T, 3: G} -> 4: AA
        let mut g = VariationGraph::new();
        let a = g.add_node(b"ACG").unwrap();
        let b = g.add_node(b"T").unwrap();
        let c = g.add_node(b"G").unwrap();
        let d = g.add_node(b"AA").unwrap();
        g.add_edge(Handle::forward(a), Handle::forward(b));
        g.add_edge(Handle::forward(a), Handle::forward(c));
        g.add_edge(Handle::forward(b), Handle::forward(d));
        g.add_edge(Handle::forward(c), Handle::forward(d));
        (g, [a, b, c, d])
    }

    #[test]
    fn counts() {
        let (g, _) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.total_sequence_len(), 7);
        assert_eq!(g.max_node_id(), Some(NodeId::new(4)));
    }

    #[test]
    fn sequences_and_bases() {
        let (g, [a, ..]) = diamond();
        assert_eq!(g.sequence(Handle::forward(a)).as_ref(), b"ACG");
        assert_eq!(g.sequence(Handle::reverse(a)).as_ref(), b"CGT");
        for (i, &want) in b"ACG".iter().enumerate() {
            assert_eq!(g.base(Handle::forward(a), i), want);
        }
        for (i, &want) in b"CGT".iter().enumerate() {
            assert_eq!(g.base(Handle::reverse(a), i), want);
        }
    }

    #[test]
    fn successors_sorted_and_mirrored() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(
            g.successors(Handle::forward(a)),
            &[Handle::forward(b), Handle::forward(c)]
        );
        // Mirror: from 4's reverse we reach 2- and 3-.
        assert_eq!(
            g.successors(Handle::reverse(d)),
            &[Handle::reverse(b), Handle::reverse(c)]
        );
        // Predecessors of 4+ are 2+ and 3+.
        let mut preds = g.predecessors(Handle::forward(d));
        preds.sort();
        assert_eq!(preds, vec![Handle::forward(b), Handle::forward(c)]);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = VariationGraph::new();
        let a = g.add_node(b"A").unwrap();
        let b = g.add_node(b"C").unwrap();
        g.add_edge(Handle::forward(a), Handle::forward(b));
        g.add_edge(Handle::forward(a), Handle::forward(b));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(Handle::forward(a)), 1);
    }

    #[test]
    fn has_edge_queries() {
        let (g, [a, b, _, d]) = diamond();
        assert!(g.has_edge(Handle::forward(a), Handle::forward(b)));
        assert!(g.has_edge(Handle::reverse(b), Handle::reverse(a)));
        assert!(!g.has_edge(Handle::forward(a), Handle::forward(d)));
    }

    #[test]
    fn reverse_orientation_edges() {
        // Inversion-style edge: 1+ -> 2-.
        let mut g = VariationGraph::new();
        let a = g.add_node(b"AC").unwrap();
        let b = g.add_node(b"GG").unwrap();
        g.add_edge(Handle::forward(a), Handle::reverse(b));
        assert_eq!(g.successors(Handle::forward(a)), &[Handle::reverse(b)]);
        // Mirror: 2+ -> 1-.
        assert_eq!(g.successors(Handle::forward(b)), &[Handle::reverse(a)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_invalid_sequences() {
        let mut g = VariationGraph::new();
        assert!(g.add_node(b"").is_err());
        assert!(g.add_node(b"ACGN").is_err());
        assert!(g.add_node(b"acgt").is_err());
    }

    #[test]
    fn edges_iterator_reports_each_once() {
        let (g, _) = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
    }

    #[test]
    fn serialization_roundtrip() {
        let (g, _) = diamond();
        let bytes = g.to_bytes();
        let g2 = VariationGraph::from_bytes(&bytes).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn deserialize_rejects_trailing_garbage() {
        let (g, _) = diamond();
        let mut bytes = g.to_bytes();
        bytes.push(0);
        assert!(VariationGraph::from_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = VariationGraph::new();
        let g2 = VariationGraph::from_bytes(&g.to_bytes()).unwrap();
        assert_eq!(g2.node_count(), 0);
        assert_eq!(g2.edge_count(), 0);
    }

    /// Random small graphs for property tests.
    fn graph_strategy() -> impl Strategy<Value = VariationGraph> {
        let seqs = proptest::collection::vec(
            proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 1..8),
            1..20,
        );
        (seqs, proptest::collection::vec((any::<u64>(), any::<u64>(), any::<bool>(), any::<bool>()), 0..40))
            .prop_map(|(seqs, raw_edges)| {
                let mut g = VariationGraph::new();
                let ids: Vec<NodeId> = seqs.iter().map(|s| g.add_node(s).unwrap()).collect();
                for (f, t, fr, tr) in raw_edges {
                    let from = ids[(f % ids.len() as u64) as usize];
                    let to = ids[(t % ids.len() as u64) as usize];
                    let from = if fr { Handle::reverse(from) } else { Handle::forward(from) };
                    let to = if tr { Handle::reverse(to) } else { Handle::forward(to) };
                    g.add_edge(from, to);
                }
                g
            })
    }

    fn mgi_roundtrip(g: &VariationGraph) -> VariationGraph {
        let mut w = MgiWriter::new();
        g.write_mgi(&mut w);
        let f = MgiFile::open_bytes(w.finish()).unwrap();
        VariationGraph::from_mgi(&f).unwrap()
    }

    #[test]
    fn mgi_roundtrip_preserves_everything() {
        let (g, [a, b, _, d]) = diamond();
        let back = mgi_roundtrip(&g);
        assert_eq!(back, g);
        assert_eq!(back.successors(Handle::forward(a)), g.successors(Handle::forward(a)));
        assert!(back.has_edge(Handle::forward(b), Handle::forward(d)));
        assert_eq!(back.sequence(Handle::reverse(a)).as_ref(), b"CGT");
        let view = back.packed_view(Handle::forward(a));
        let spelled: Vec<u8> = (0..view.len()).map(|i| dna::decode_base(view.code(i))).collect();
        assert_eq!(spelled, b"ACG");
        // Mapped graphs are immutable.
        let mut mapped = mgi_roundtrip(&g);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mapped.add_edge(Handle::forward(a), Handle::forward(d));
        }))
        .is_err());
    }

    proptest! {
        #[test]
        fn prop_serialization_roundtrip(g in graph_strategy()) {
            let g2 = VariationGraph::from_bytes(&g.to_bytes()).unwrap();
            prop_assert_eq!(g, g2);
        }

        #[test]
        fn prop_mgi_roundtrip(g in graph_strategy()) {
            let back = mgi_roundtrip(&g);
            prop_assert_eq!(&back, &g);
            // Semantic equality across backings: same successors, bases.
            for id in g.node_ids() {
                for h in [Handle::forward(id), Handle::reverse(id)] {
                    prop_assert_eq!(back.successors(h), g.successors(h));
                    prop_assert_eq!(back.oriented_sequence(h), g.oriented_sequence(h));
                }
            }
        }

        #[test]
        fn prop_mirror_edges_consistent(g in graph_strategy()) {
            for id in g.node_ids() {
                for from in [Handle::forward(id), Handle::reverse(id)] {
                    for &to in g.successors(from) {
                        // Every successor edge has its mirror.
                        prop_assert!(g.successors(to.flip()).contains(&from.flip()));
                        prop_assert!(g.has_edge(from, to));
                    }
                }
            }
        }

        #[test]
        fn prop_base_matches_sequence(g in graph_strategy()) {
            for id in g.node_ids() {
                for h in [Handle::forward(id), Handle::reverse(id)] {
                    let seq = g.sequence(h);
                    for (i, &b) in seq.iter().enumerate() {
                        prop_assert_eq!(g.base(h, i), b);
                    }
                }
            }
        }

        #[test]
        fn prop_sequence_never_allocates(g in graph_strategy()) {
            for id in g.node_ids() {
                for h in [Handle::forward(id), Handle::reverse(id)] {
                    prop_assert!(
                        matches!(g.sequence(h), Cow::Borrowed(_)),
                        "sequence({h:?}) allocated"
                    );
                }
            }
        }

        #[test]
        fn prop_packed_view_matches_ascii(g in graph_strategy()) {
            for id in g.node_ids() {
                for h in [Handle::forward(id), Handle::reverse(id)] {
                    let seq = g.sequence(h);
                    let view = g.packed_view(h);
                    prop_assert_eq!(view.len(), seq.len());
                    for (i, &b) in seq.iter().enumerate() {
                        prop_assert_eq!(dna::decode_base(view.code(i)), b);
                    }
                }
            }
        }
    }

    #[test]
    fn reverse_sequence_borrows_the_revcomp_arena() {
        let mut g = VariationGraph::new();
        // 70 bases: exercises multi-word packing per node.
        let seq: Vec<u8> = (0..70).map(|i| dna::BASES[(i * 7 + 3) % 4]).collect();
        let a = g.add_node(&seq).unwrap();
        let h = Handle::reverse(a);
        assert!(matches!(g.sequence(h), Cow::Borrowed(_)));
        assert_eq!(g.sequence(h).as_ref(), dna::reverse_complement(&seq));
        let view = g.packed_view(h);
        let spelled: Vec<u8> = (0..view.len()).map(|i| dna::decode_base(view.code(i))).collect();
        assert_eq!(spelled, dna::reverse_complement(&seq));
    }
}
