//! 2-bit packed sequence storage and word-parallel comparison primitives.
//!
//! Bases pack LSB-first into `u64` words, 32 bases per word: base `j` of a
//! buffer occupies bits `2*(j % 32)..2*(j % 32) + 2` of word `j / 32`, so
//! ascending base order is ascending bit order and a window of 32 bases at
//! any offset is two shifts away ([`word_at`]). The graph keeps one packed
//! arena per strand ([`PackedSeqStore`]) with every node aligned to a fresh
//! word boundary; reads pack per-read into a reusable [`PackedReadPair`]
//! together with a forced-mismatch lane mask for `N` (and any other
//! non-`ACGT`) bytes.
//!
//! The comparison primitive: XOR two packed windows, fold each 2-bit lane
//! to its low bit with [`mismatch_lanes`], OR in the read's `N` mask, and
//! the set bits are exactly the mismatching bases — popcount gives the
//! count, `trailing_zeros` walks them in order.

use mg_support::mgi::Storage;

use crate::dna;

// The word-level comparison primitives (and their 256-bit wide variants)
// live in `mg-kernels` so the extension walk, the minimizer hasher, and
// the dispatch ladder share one definition; re-exported here because this
// module is their historical home and every packed-buffer consumer already
// imports them from `mg_graph::packed`.
pub use mg_kernels::{keep_lanes, mismatch_lanes, word_at, BASES_PER_WORD, LANES_LO};

use mg_kernels::WORDS_PER_BLOCK;

/// Packs `seq` into `words` (cleared first). Non-`ACGT` bytes pack as code
/// `0` with their lane set in `nmask`, so a comparison against them is
/// forced to mismatch — exactly the ASCII-compare semantics, where a read
/// `N` never equals a graph base. Both buffers carry [`WORDS_PER_BLOCK`]
/// trailing zero words of padding so the vector block gather
/// ([`mg_kernels::block_at_avx2`]) always finds its five source words in
/// bounds; zero padding reads exactly like the out-of-bounds zeros
/// [`word_at`] already synthesizes, so nothing downstream can tell.
fn pack_into(seq: &[u8], rc: bool, words: &mut Vec<u64>, nmask: &mut Vec<u64>) -> bool {
    words.clear();
    nmask.clear();
    let n_words = seq.len().div_ceil(BASES_PER_WORD);
    words.resize(n_words + WORDS_PER_BLOCK, 0);
    nmask.resize(n_words + WORDS_PER_BLOCK, 0);
    let mut any_n = false;
    for j in 0..seq.len() {
        let b = if rc { seq[seq.len() - 1 - j] } else { seq[j] };
        let code = dna::encode2(b);
        let shift = 2 * (j % BASES_PER_WORD);
        if code == dna::INVALID_CODE {
            nmask[j / BASES_PER_WORD] |= 1u64 << shift;
            any_n = true;
        } else {
            let code = if rc { code ^ 0b11 } else { code };
            words[j / BASES_PER_WORD] |= (code as u64) << shift;
        }
    }
    any_n
}

/// A packed buffer plus its `N` lane mask: one strand of a packed read.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedBuf {
    words: Vec<u64>,
    nmask: Vec<u64>,
    len: usize,
    any_n: bool,
}

impl PackedBuf {
    /// Bases stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no bases are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// 32 bases starting at `start` (see [`word_at`]).
    #[inline(always)]
    pub fn word(&self, start: usize) -> u64 {
        word_at(&self.words, start)
    }

    /// The `N`-mask lanes aligned with [`PackedBuf::word`]: lane `j` is
    /// `0b01` iff base `start + j` must mismatch.
    #[inline(always)]
    pub fn nmask_word(&self, start: usize) -> u64 {
        word_at(&self.nmask, start)
    }

    /// Whether any base packed as a forced mismatch. `false` (the usual
    /// case — clean `ACGT` reads) means every [`PackedBuf::nmask_word`] is
    /// zero, so comparison loops can skip the mask gather entirely.
    #[inline(always)]
    pub fn has_n(&self) -> bool {
        self.any_n
    }

    /// The packed words, including the [`WORDS_PER_BLOCK`] zero-padding
    /// words that keep the vector block gather in bounds at any offset.
    #[inline(always)]
    pub fn raw_words(&self) -> &[u64] {
        &self.words
    }
}

/// Both strands of a read, packed once and reused across every seed of that
/// read (held inside the extension kernel's scratch).
#[derive(Debug, Clone, Default)]
pub struct PackedReadPair {
    /// Copy of the last packed read; repacking is skipped when the next
    /// read compares equal (one memcmp instead of two packing passes).
    src: Vec<u8>,
    /// The read as given, ascending.
    pub fwd: PackedBuf,
    /// The reverse complement, ascending: `rc[j]` is the complement of
    /// `read[len - 1 - j]`, so a leftward walk over the read becomes a
    /// rightward walk over `rc`.
    pub rc: PackedBuf,
}

impl PackedReadPair {
    /// Packs `read` into both strand buffers, skipping the work when the
    /// buffers already hold this read.
    pub fn prepare(&mut self, read: &[u8]) {
        if self.src == read && self.fwd.len == read.len() {
            return;
        }
        self.src.clear();
        self.src.extend_from_slice(read);
        self.fwd.any_n = pack_into(read, false, &mut self.fwd.words, &mut self.fwd.nmask);
        self.fwd.len = read.len();
        self.rc.any_n = pack_into(read, true, &mut self.rc.words, &mut self.rc.nmask);
        self.rc.len = read.len();
    }
}

/// Word-aligned packed arenas of a graph's node sequences, one per strand.
///
/// Every node begins at a fresh word boundary, so a node's packed view is a
/// plain word-slice and never aliases its neighbours. The reverse arena
/// stores each node's reverse complement in ascending order, making the
/// oriented view of `Handle::reverse` as cheap as the forward one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSeqStore {
    /// Forward-strand words of all nodes.
    words: Storage<u64>,
    /// Reverse-complement words of all nodes, same offsets as `words`.
    rc_words: Storage<u64>,
    /// `word_offsets[i]..word_offsets[i + 1]` are the words of node `i + 1`.
    word_offsets: Storage<u64>,
}

impl Default for PackedSeqStore {
    fn default() -> Self {
        PackedSeqStore::new()
    }
}

impl PackedSeqStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PackedSeqStore {
            words: Storage::default(),
            rc_words: Storage::default(),
            word_offsets: vec![0u64].into(),
        }
    }

    /// Rebuilds a store from its three arrays (the zero-copy `.mgi` path).
    /// The caller is responsible for structural validation; see
    /// `VariationGraph::from_mgi`.
    pub(crate) fn from_parts(
        words: Storage<u64>,
        rc_words: Storage<u64>,
        word_offsets: Storage<u64>,
    ) -> Self {
        PackedSeqStore { words, rc_words, word_offsets }
    }

    /// The forward word arena.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// The reverse-complement word arena.
    pub(crate) fn rc_words(&self) -> &[u64] {
        &self.rc_words
    }

    /// The per-node word offsets (one trailing sentinel).
    pub(crate) fn word_offsets(&self) -> &[u64] {
        &self.word_offsets
    }

    /// Appends a node's sequence (already validated as `ACGT`) to both
    /// strand arenas.
    ///
    /// # Panics
    ///
    /// Panics if the store is backed by a memory map (mapped stores are
    /// immutable).
    pub fn push_node(&mut self, sequence: &[u8]) {
        let n_words = sequence.len().div_ceil(BASES_PER_WORD);
        let base = *self.word_offsets.last().expect("offset sentinel") as usize;
        let words = self.words.vec_mut();
        let rc_words = self.rc_words.vec_mut();
        words.resize(words.len() + n_words, 0);
        rc_words.resize(rc_words.len() + n_words, 0);
        let last = sequence.len() - 1;
        for (j, &b) in sequence.iter().enumerate() {
            let code = dna::encode2(b) as u64;
            words[base + j / BASES_PER_WORD] |= code << (2 * (j % BASES_PER_WORD));
            let rj = last - j;
            rc_words[base + rj / BASES_PER_WORD] |= (code ^ 0b11) << (2 * (rj % BASES_PER_WORD));
        }
        self.word_offsets.vec_mut().push((base + n_words) as u64);
    }

    /// The packed view of node `node_id`'s sequence read along
    /// `orientation_reverse ? reverse : forward`, with `len` bases.
    #[inline]
    pub fn view(&self, node_index: usize, len: usize, reverse: bool) -> PackedView<'_> {
        let start = self.word_offsets[node_index - 1] as usize;
        let end = self.word_offsets[node_index] as usize;
        let arena: &[u64] = if reverse { &self.rc_words } else { &self.words };
        PackedView {
            words: &arena[start..end],
            // Up to WORDS_PER_BLOCK of the following nodes' words ride
            // along so the vector block gather stays on its fast path deep
            // into the node; see `PackedView::raw_words` for the masking
            // contract.
            padded: &arena[start..(end + WORDS_PER_BLOCK).min(arena.len())],
            len,
        }
    }

    /// Approximate heap usage in bytes (zero for mapped arenas).
    pub fn heap_bytes(&self) -> usize {
        self.words.heap_bytes() + self.rc_words.heap_bytes() + self.word_offsets.heap_bytes()
    }
}

/// A borrowed, word-aligned packed view of one oriented node sequence.
#[derive(Debug, Clone, Copy)]
pub struct PackedView<'a> {
    words: &'a [u64],
    /// `words` plus up to [`WORDS_PER_BLOCK`] following arena words
    /// (neighbouring nodes' bases, clamped at the arena end).
    padded: &'a [u64],
    len: usize,
}

impl PackedView<'_> {
    /// Bases in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for a zero-length view.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// 32 bases starting at base offset `start` (cheap sub-slicing: any
    /// offset, two shifts). Bases past `len` read as zero.
    #[inline(always)]
    pub fn word(&self, start: usize) -> u64 {
        word_at(self.words, start)
    }

    /// The node's words extended by the padding tail, for the vector block
    /// gather ([`mg_kernels::block_at_avx2`]). Unlike [`PackedView::word`],
    /// lanes past `len` may spell *neighbouring nodes'* bases rather than
    /// zeros — the caller must mask every chunk to its live span (the
    /// comparison loops already bound each chunk with [`keep_lanes`]).
    #[inline(always)]
    pub fn raw_words(&self) -> &[u64] {
        self.padded
    }

    /// The 2-bit code of base `offset`.
    #[inline]
    pub fn code(&self, offset: usize) -> u8 {
        debug_assert!(offset < self.len);
        ((self.words[offset / BASES_PER_WORD] >> (2 * (offset % BASES_PER_WORD))) & 0b11) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spell(view: &PackedView<'_>) -> Vec<u8> {
        (0..view.len()).map(|i| dna::decode_base(view.code(i))).collect()
    }

    #[test]
    fn store_views_match_both_strands() {
        let mut store = PackedSeqStore::new();
        store.push_node(b"ACGT");
        store.push_node(b"GGGTTTAACC");
        let v = store.view(1, 4, false);
        assert_eq!(spell(&v), b"ACGT");
        let v = store.view(1, 4, true);
        assert_eq!(spell(&v), b"ACGT"); // ACGT is its own revcomp
        let v = store.view(2, 10, false);
        assert_eq!(spell(&v), b"GGGTTTAACC");
        let v = store.view(2, 10, true);
        assert_eq!(spell(&v), dna::reverse_complement(b"GGGTTTAACC"));
    }

    #[test]
    fn word_extraction_crosses_boundaries() {
        // 40 bases: word 1 holds the last 8; extraction at offset 30 must
        // stitch both words.
        let seq: Vec<u8> = (0..40).map(|i| dna::BASES[i % 4]).collect();
        let mut store = PackedSeqStore::new();
        store.push_node(&seq);
        let view = store.view(1, 40, false);
        for start in 0..40 {
            let w = view.word(start);
            for j in 0..BASES_PER_WORD.min(40 - start) {
                let code = ((w >> (2 * j)) & 0b11) as u8;
                assert_eq!(code, dna::encode2(seq[start + j]), "start {start} lane {j}");
            }
        }
    }

    #[test]
    fn read_pair_packs_n_as_forced_mismatch() {
        let mut pair = PackedReadPair::default();
        pair.prepare(b"ACNGT");
        assert_eq!(pair.fwd.len(), 5);
        // Lane 2 of the forward mask is set, nothing else.
        assert_eq!(pair.fwd.nmask_word(0), 0b01 << 4);
        // rc: N lands at index 5 - 1 - 2 = 2 as well.
        assert_eq!(pair.rc.nmask_word(0), 0b01 << 4);
        // rc spells the reverse complement where defined: AC?GT -> AC?GT.
        for (j, &want) in b"ACAGT".iter().enumerate() {
            let code = ((pair.rc.word(0) >> (2 * j)) & 0b11) as u8;
            // N packed as code 0 (A); the mask is what forces the mismatch.
            assert_eq!(dna::decode_base(code), want);
        }
    }

    #[test]
    fn prepare_is_idempotent_and_detects_change() {
        let mut pair = PackedReadPair::default();
        pair.prepare(b"ACGTACGT");
        let before = pair.fwd.clone();
        pair.prepare(b"ACGTACGT");
        assert_eq!(pair.fwd, before);
        pair.prepare(b"TTTT");
        assert_eq!(pair.fwd.len(), 4);
    }

    #[test]
    fn mismatch_lane_fold() {
        // Lanes from the LSB: a = T G C A, b = A G T A.
        let a = 0b_00_01_10_11u64;
        let b = 0b_00_11_10_00u64;
        let lanes = mismatch_lanes(a ^ b);
        assert_eq!(lanes, (1 << 0) | (1 << 4), "lanes 0 and 2 differ");
        assert_eq!(lanes.count_ones(), 2);
        assert_eq!(keep_lanes(lanes, 1), 1 << 0);
        assert_eq!(keep_lanes(lanes, 2), 1 << 0);
        assert_eq!(keep_lanes(lanes, 3), (1 << 0) | (1 << 4));
        assert_eq!(keep_lanes(lanes, 32), lanes);
    }

    proptest! {
        #[test]
        fn prop_views_spell_the_node(
            seqs in proptest::collection::vec(
                proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 1..100),
                1..12,
            )
        ) {
            let mut store = PackedSeqStore::new();
            for s in &seqs {
                store.push_node(s);
            }
            for (i, s) in seqs.iter().enumerate() {
                let fwd = store.view(i + 1, s.len(), false);
                prop_assert_eq!(spell(&fwd), s.clone());
                let rc = store.view(i + 1, s.len(), true);
                prop_assert_eq!(spell(&rc), dna::reverse_complement(s));
            }
        }

        #[test]
        fn prop_word_parallel_mismatch_count_matches_scalar(
            a in proptest::collection::vec(proptest::sample::select(b"ACGTN".to_vec()), 1..200),
            b_seed in proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 1..200),
        ) {
            // Compare read `a` (N allowed) against graph sequence `b`
            // truncated to a common span, lane-by-lane vs byte-by-byte.
            let span = a.len().min(b_seed.len());
            let mut pair = PackedReadPair::default();
            pair.prepare(&a);
            let mut store = PackedSeqStore::new();
            store.push_node(&b_seed);
            let view = store.view(1, b_seed.len(), false);
            let mut packed_mismatches = 0u32;
            let mut i = 0;
            while i < span {
                let chunk = (span - i).min(BASES_PER_WORD);
                let x = pair.fwd.word(i) ^ view.word(i);
                let lanes = keep_lanes(mismatch_lanes(x) | pair.fwd.nmask_word(i), chunk);
                packed_mismatches += lanes.count_ones();
                i += chunk;
            }
            let scalar: u32 = (0..span).filter(|&i| a[i] != b_seed[i]).count() as u32;
            prop_assert_eq!(packed_mismatches, scalar);
        }
    }
}
