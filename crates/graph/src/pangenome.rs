//! Pangenome construction from a linear reference plus variation.
//!
//! A pangenome graph is built the way the HPRC / 1000GP graphs the paper
//! uses are: start from a linear reference, cut it at variant boundaries,
//! and add alternative-allele nodes. Each haplotype in the panel picks one
//! allele per variant, yielding a path through the graph; those paths are
//! exactly what the GBWT indexes.

use mg_support::{Error, Result};

use crate::dna;
use crate::graph::VariationGraph;
use crate::handle::{Handle, NodeId};

/// A single variant site against the reference.
///
/// `position` is the 0-based reference offset of the first affected base.
/// Allele 0 is always the reference allele.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// 0-based reference position of the variant site.
    pub position: usize,
    /// Length of the replaced reference span (0 for a pure insertion).
    pub ref_len: usize,
    /// Alternative alleles (allele numbers 1..). May be empty sequences only
    /// for deletions (`ref_len > 0`).
    pub alt_alleles: Vec<Vec<u8>>,
}

impl Variant {
    /// A single-nucleotide polymorphism replacing one base with `alt`.
    pub fn snp(position: usize, alt: u8) -> Self {
        Variant {
            position,
            ref_len: 1,
            alt_alleles: vec![vec![alt]],
        }
    }

    /// An insertion of `sequence` *before* the base at `position`.
    pub fn insertion(position: usize, sequence: Vec<u8>) -> Self {
        Variant {
            position,
            ref_len: 0,
            alt_alleles: vec![sequence],
        }
    }

    /// A deletion of `len` reference bases starting at `position`.
    pub fn deletion(position: usize, len: usize) -> Self {
        Variant {
            position,
            ref_len: len,
            alt_alleles: vec![Vec::new()],
        }
    }

    /// Total number of alleles including the reference allele.
    pub fn allele_count(&self) -> usize {
        self.alt_alleles.len() + 1
    }

    /// End of the replaced reference span (exclusive).
    pub fn ref_end(&self) -> usize {
        self.position + self.ref_len
    }
}

/// A haplotype's walk through the pangenome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaplotypePath {
    /// Index of the haplotype in the panel.
    pub haplotype: usize,
    /// The oriented nodes visited, in order.
    pub handles: Vec<Handle>,
}

impl HaplotypePath {
    /// Spells out the DNA sequence of this path in `graph`.
    pub fn sequence(&self, graph: &VariationGraph) -> Vec<u8> {
        let mut out = Vec::new();
        for &h in &self.handles {
            out.extend_from_slice(graph.sequence(h).as_ref());
        }
        out
    }
}

/// A pangenome: the variation graph plus the haplotype paths through it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pangenome {
    graph: VariationGraph,
    paths: Vec<HaplotypePath>,
    /// Node ids of the reference-allele backbone, in reference order.
    reference_backbone: Vec<NodeId>,
}

impl Pangenome {
    /// The underlying variation graph.
    pub fn graph(&self) -> &VariationGraph {
        &self.graph
    }

    /// All haplotype paths.
    pub fn paths(&self) -> &[HaplotypePath] {
        &self.paths
    }

    /// The reference backbone node ids, in order.
    pub fn reference_backbone(&self) -> &[NodeId] {
        &self.reference_backbone
    }

    /// Decomposes into `(graph, paths)`, giving up the backbone.
    pub fn into_parts(self) -> (VariationGraph, Vec<HaplotypePath>) {
        (self.graph, self.paths)
    }
}

/// Builds a [`Pangenome`] from a reference, variants, and a haplotype panel.
///
/// # Examples
///
/// ```
/// use mg_graph::pangenome::{PangenomeBuilder, Variant};
///
/// let p = PangenomeBuilder::new(b"AAAACCCCGGGG".to_vec())
///     .variants(vec![Variant::snp(4, b'T'), Variant::deletion(8, 2)])
///     .haplotypes(vec![vec![0, 0], vec![1, 1]])
///     .build()
///     .unwrap();
/// assert_eq!(p.paths()[0].sequence(p.graph()), b"AAAACCCCGGGG");
/// assert_eq!(p.paths()[1].sequence(p.graph()), b"AAAATCCCGG");
/// ```
#[derive(Debug, Clone)]
pub struct PangenomeBuilder {
    reference: Vec<u8>,
    variants: Vec<Variant>,
    /// `haplotypes[h][v]` = allele chosen by haplotype `h` at variant `v`.
    haplotypes: Vec<Vec<usize>>,
    max_node_len: usize,
}

impl PangenomeBuilder {
    /// Starts a builder for the given reference sequence.
    pub fn new(reference: Vec<u8>) -> Self {
        PangenomeBuilder {
            reference,
            variants: Vec::new(),
            haplotypes: Vec::new(),
            max_node_len: 32,
        }
    }

    /// Sets the variant sites (will be sorted by position).
    pub fn variants(mut self, variants: Vec<Variant>) -> Self {
        self.variants = variants;
        self
    }

    /// Sets the haplotype panel: one allele choice per variant per haplotype.
    pub fn haplotypes(mut self, haplotypes: Vec<Vec<usize>>) -> Self {
        self.haplotypes = haplotypes;
        self
    }

    /// Caps node sequence length; longer reference chunks are split into
    /// several nodes (default 32, like typical vg graphs' short nodes).
    pub fn max_node_len(mut self, len: usize) -> Self {
        assert!(len > 0, "max node length must be positive");
        self.max_node_len = len;
        self
    }

    /// Builds the pangenome.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if the reference or an allele contains
    /// invalid bases, variants overlap or run past the reference end, a
    /// haplotype's allele vector has the wrong length, or an allele index is
    /// out of range.
    pub fn build(self) -> Result<Pangenome> {
        if !dna::is_valid_sequence(&self.reference) {
            return Err(Error::Corrupt("reference contains non-ACGT bytes".into()));
        }
        if self.reference.is_empty() {
            return Err(Error::Corrupt("empty reference".into()));
        }
        let mut variants = self.variants;
        variants.sort_by_key(|v| v.position);
        // Validate variants: in-bounds, non-overlapping, valid alleles.
        let mut prev_end = 0usize;
        for (i, v) in variants.iter().enumerate() {
            if v.ref_end() > self.reference.len() {
                return Err(Error::Corrupt(format!(
                    "variant {i} spans past reference end"
                )));
            }
            // Insertions at the same position as a previous site's end are
            // fine; true overlaps are not. Also forbid adjacent sites with no
            // reference base between them when both need an anchor.
            if v.position < prev_end {
                return Err(Error::Corrupt(format!("variant {i} overlaps previous site")));
            }
            if v.alt_alleles.is_empty() {
                return Err(Error::Corrupt(format!("variant {i} has no alt alleles")));
            }
            for alt in &v.alt_alleles {
                if !dna::is_valid_sequence(alt) {
                    return Err(Error::Corrupt(format!("variant {i} allele has invalid bases")));
                }
                if alt.is_empty() && v.ref_len == 0 {
                    return Err(Error::Corrupt(format!(
                        "variant {i} is a no-op (empty insertion)"
                    )));
                }
            }
            prev_end = v.ref_end().max(v.position + 1);
        }
        for (h, alleles) in self.haplotypes.iter().enumerate() {
            if alleles.len() != variants.len() {
                return Err(Error::Corrupt(format!(
                    "haplotype {h} chooses {} alleles for {} variants",
                    alleles.len(),
                    variants.len()
                )));
            }
            for (v, &a) in alleles.iter().enumerate() {
                if a >= variants[v].allele_count() {
                    return Err(Error::Corrupt(format!(
                        "haplotype {h} picks allele {a} of variant {v} which has only {} alleles",
                        variants[v].allele_count()
                    )));
                }
            }
        }

        let mut graph = VariationGraph::new();
        // Per reference chunk between variants: the chain of node ids.
        // allele_nodes[v][a] = node chain for allele a of variant v.
        let mut backbone_chunks: Vec<Vec<NodeId>> = Vec::new();
        let mut allele_nodes: Vec<Vec<Vec<NodeId>>> = Vec::new();

        let add_chunk = |graph: &mut VariationGraph, seq: &[u8]| -> Result<Vec<NodeId>> {
            let mut chain = Vec::new();
            for piece in seq.chunks(self.max_node_len) {
                let id = graph.add_node(piece)?;
                if let Some(&prev) = chain.last() {
                    graph.add_edge(Handle::forward(prev), Handle::forward(id));
                }
                chain.push(id);
            }
            Ok(chain)
        };

        let mut cursor = 0usize;
        for v in &variants {
            // Reference chunk before the site (may be empty).
            let before = add_chunk(&mut graph, &self.reference[cursor..v.position])?;
            backbone_chunks.push(before);
            // Allele 0: the reference span; alleles 1..: alternatives.
            let mut site_alleles = Vec::with_capacity(v.allele_count());
            site_alleles.push(add_chunk(
                &mut graph,
                &self.reference[v.position..v.ref_end()],
            )?);
            for alt in &v.alt_alleles {
                site_alleles.push(add_chunk(&mut graph, alt)?);
            }
            allele_nodes.push(site_alleles);
            cursor = v.ref_end();
        }
        let tail = add_chunk(&mut graph, &self.reference[cursor..])?;
        backbone_chunks.push(tail);

        // Trace every haplotype path (and the reference backbone) through the
        // chunk/site structure, adding edges as we go. Empty chains (empty
        // chunks or deletion alleles) are bridged through because the edge is
        // always added between consecutive *visited* nodes.
        let trace = |graph: &mut VariationGraph,
                     alleles: Option<&[usize]>|
         -> Vec<NodeId> {
            let mut path: Vec<NodeId> = Vec::new();
            for (site, chunk) in backbone_chunks.iter().enumerate() {
                for &id in chunk {
                    if let Some(&prev) = path.last() {
                        graph.add_edge(Handle::forward(prev), Handle::forward(id));
                    }
                    path.push(id);
                }
                if site < allele_nodes.len() {
                    let allele = alleles.map_or(0, |a| a[site]);
                    for &id in &allele_nodes[site][allele] {
                        if let Some(&prev) = path.last() {
                            graph.add_edge(Handle::forward(prev), Handle::forward(id));
                        }
                        path.push(id);
                    }
                }
            }
            path
        };

        let reference_backbone = trace(&mut graph, None);
        let mut paths = Vec::with_capacity(self.haplotypes.len());
        for (h, alleles) in self.haplotypes.iter().enumerate() {
            let nodes = trace(&mut graph, Some(alleles));
            paths.push(HaplotypePath {
                haplotype: h,
                handles: nodes.into_iter().map(Handle::forward).collect(),
            });
        }

        Ok(Pangenome {
            graph,
            paths,
            reference_backbone,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_variants_is_linear_chain() {
        let p = PangenomeBuilder::new(b"ACGTACGTACGT".to_vec())
            .max_node_len(5)
            .haplotypes(vec![vec![], vec![]])
            .build()
            .unwrap();
        // 12 bases at max 5 per node = 3 nodes.
        assert_eq!(p.graph().node_count(), 3);
        assert_eq!(p.graph().edge_count(), 2);
        for path in p.paths() {
            assert_eq!(path.sequence(p.graph()), b"ACGTACGTACGT");
        }
    }

    #[test]
    fn snp_creates_bubble() {
        let p = PangenomeBuilder::new(b"AAAATTTT".to_vec())
            .variants(vec![Variant::snp(4, b'G')])
            .haplotypes(vec![vec![0], vec![1]])
            .build()
            .unwrap();
        assert_eq!(p.paths()[0].sequence(p.graph()), b"AAAATTTT");
        assert_eq!(p.paths()[1].sequence(p.graph()), b"AAAAGTTT");
        // The two alleles are distinct single-base nodes feeding the tail.
        assert!(p.graph().node_count() >= 4);
    }

    #[test]
    fn insertion_and_deletion() {
        let p = PangenomeBuilder::new(b"AAAACCCC".to_vec())
            .variants(vec![
                Variant::insertion(4, b"GG".to_vec()),
                Variant::deletion(6, 2),
            ])
            .haplotypes(vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![1, 1]])
            .build()
            .unwrap();
        assert_eq!(p.paths()[0].sequence(p.graph()), b"AAAACCCC");
        assert_eq!(p.paths()[1].sequence(p.graph()), b"AAAAGGCCCC");
        assert_eq!(p.paths()[2].sequence(p.graph()), b"AAAACC");
        assert_eq!(p.paths()[3].sequence(p.graph()), b"AAAAGGCC");
    }

    #[test]
    fn multiallelic_site() {
        let variant = Variant {
            position: 2,
            ref_len: 1,
            alt_alleles: vec![vec![b'C'], vec![b'G'], b"TT".to_vec()],
        };
        let p = PangenomeBuilder::new(b"AAAAA".to_vec())
            .variants(vec![variant])
            .haplotypes(vec![vec![0], vec![1], vec![2], vec![3]])
            .build()
            .unwrap();
        let seqs: Vec<Vec<u8>> = p.paths().iter().map(|h| h.sequence(p.graph())).collect();
        assert_eq!(seqs[0], b"AAAAA");
        assert_eq!(seqs[1], b"AACAA");
        assert_eq!(seqs[2], b"AAGAA");
        assert_eq!(seqs[3], b"AATTAA");
    }

    #[test]
    fn reference_backbone_spells_reference() {
        let reference = b"ACGTACGTAACCGGTT".to_vec();
        let p = PangenomeBuilder::new(reference.clone())
            .variants(vec![Variant::snp(3, b'A'), Variant::deletion(8, 3)])
            .haplotypes(vec![vec![1, 1]])
            .build()
            .unwrap();
        let spelled: Vec<u8> = p
            .reference_backbone()
            .iter()
            .flat_map(|&id| p.graph().forward_sequence(id).to_vec())
            .collect();
        assert_eq!(spelled, reference);
    }

    #[test]
    fn rejects_overlapping_variants() {
        let err = PangenomeBuilder::new(b"ACGTACGT".to_vec())
            .variants(vec![Variant::deletion(2, 3), Variant::snp(4, b'A')])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("overlaps"));
    }

    #[test]
    fn rejects_out_of_bounds_variant() {
        assert!(PangenomeBuilder::new(b"ACGT".to_vec())
            .variants(vec![Variant::snp(4, b'A')])
            .build()
            .is_err());
    }

    #[test]
    fn rejects_wrong_allele_vector_length() {
        assert!(PangenomeBuilder::new(b"ACGTACGT".to_vec())
            .variants(vec![Variant::snp(1, b'C')])
            .haplotypes(vec![vec![0, 1]])
            .build()
            .is_err());
    }

    #[test]
    fn rejects_allele_out_of_range() {
        assert!(PangenomeBuilder::new(b"ACGTACGT".to_vec())
            .variants(vec![Variant::snp(1, b'C')])
            .haplotypes(vec![vec![2]])
            .build()
            .is_err());
    }

    #[test]
    fn rejects_empty_insertion() {
        assert!(PangenomeBuilder::new(b"ACGT".to_vec())
            .variants(vec![Variant::insertion(2, Vec::new())])
            .build()
            .is_err());
    }

    #[test]
    fn node_length_cap_respected() {
        let p = PangenomeBuilder::new(vec![b'A'; 1000])
            .max_node_len(17)
            .build()
            .unwrap();
        for id in p.graph().node_ids() {
            assert!(p.graph().node_len(id) <= 17);
        }
    }

    proptest! {
        /// Every haplotype path must spell exactly the sequence obtained by
        /// applying its chosen alleles to the reference.
        #[test]
        fn prop_paths_spell_applied_variants(
            ref_len in 20usize..200,
            seed in 0u64..1000,
        ) {
            // Deterministic pseudo-random reference and variants from seed.
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let reference: Vec<u8> = (0..ref_len).map(|_| dna::BASES[(next() % 4) as usize]).collect();
            // Non-overlapping variant sites every ~10 bases.
            let mut variants = Vec::new();
            let mut pos = (next() % 5) as usize;
            while pos + 3 < ref_len {
                let kind = next() % 3;
                let v = match kind {
                    0 => Variant::snp(pos, dna::BASES[(next() % 4) as usize]),
                    1 => Variant::insertion(pos, vec![dna::BASES[(next() % 4) as usize]; 1 + (next() % 3) as usize]),
                    _ => Variant::deletion(pos, 1 + (next() % 2) as usize),
                };
                let end = v.ref_end().max(v.position + 1);
                variants.push(v);
                pos = end + 3 + (next() % 7) as usize;
            }
            // Two haplotypes with random allele picks.
            let haps: Vec<Vec<usize>> = (0..2)
                .map(|_| variants.iter().map(|_| (next() % 2) as usize).collect())
                .collect();
            let p = PangenomeBuilder::new(reference.clone())
                .variants(variants.clone())
                .haplotypes(haps.clone())
                .max_node_len(8)
                .build()
                .unwrap();
            for (h, alleles) in haps.iter().enumerate() {
                // Expected sequence: apply alleles left to right.
                let mut expect = Vec::new();
                let mut cursor = 0usize;
                for (v, &a) in variants.iter().zip(alleles) {
                    expect.extend_from_slice(&reference[cursor..v.position]);
                    if a == 0 {
                        expect.extend_from_slice(&reference[v.position..v.ref_end()]);
                    } else {
                        expect.extend_from_slice(&v.alt_alleles[a - 1]);
                    }
                    cursor = v.ref_end();
                }
                expect.extend_from_slice(&reference[cursor..]);
                prop_assert_eq!(p.paths()[h].sequence(p.graph()), expect);
            }
        }
    }
}
