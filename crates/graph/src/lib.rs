//! Variation graphs and pangenome construction.
//!
//! A *variation graph* represents a reference genome plus the variation of a
//! population: nodes carry DNA sequence, edges connect consecutive pieces,
//! and *paths* through the graph spell out individual haplotypes. This crate
//! provides:
//!
//! - [`handle`]: node identifiers and oriented node handles;
//! - [`dna`]: base alphabet utilities (validation, complement);
//! - [`packed`]: 2-bit packed sequence arenas and the word-parallel
//!   mismatch-counting primitives the extension kernel builds on;
//! - [`graph::VariationGraph`]: the graph itself, with oriented traversal;
//! - [`pangenome`]: construction of a pangenome graph from a linear
//!   reference plus a set of variants and a haplotype panel (who carries
//!   which allele) — the synthetic stand-in for HPRC/1000GP graphs;
//! - [`gfa`]: a GFA-flavoured text dump for inspection and debugging.
//!
//! # Examples
//!
//! ```
//! use mg_graph::pangenome::{PangenomeBuilder, Variant};
//!
//! // A 20 bp reference with one SNP at position 5 carried by haplotype 1.
//! let reference = b"ACGTACGTACGTACGTACGT".to_vec();
//! let variants = vec![Variant::snp(5, b'C')];
//! let graph = PangenomeBuilder::new(reference)
//!     .variants(variants)
//!     .haplotypes(vec![vec![0], vec![1]])
//!     .build()
//!     .unwrap();
//! assert_eq!(graph.paths().len(), 2);
//! // Both haplotype paths spell 20 bases.
//! for path in graph.paths() {
//!     let len: usize = path.handles.iter()
//!         .map(|&h| graph.graph().sequence(h).len())
//!         .sum();
//!     assert_eq!(len, 20);
//! }
//! ```

pub mod dna;
pub mod gfa;
pub mod graph;
pub mod handle;
pub mod packed;
pub mod pangenome;
pub mod partition;

pub use graph::VariationGraph;
pub use partition::{project_range, IdWindow, Projection};
pub use packed::{PackedBuf, PackedReadPair, PackedView};
pub use handle::{Handle, NodeId, Orientation};
pub use pangenome::{HaplotypePath, Pangenome, PangenomeBuilder, Variant};
