//! Top-down microarchitecture analysis (Table IV), as an explicit model.
//!
//! VTune's top-down method attributes pipeline slots to Retiring, Bad
//! Speculation, Back-End Bound, and Front-End Bound. We cannot query a PMU,
//! so we derive the same breakdown from the cache simulator's counters:
//! retiring from achieved IPC against the issue width, bad speculation from
//! modelled branch mispredictions, back-end bound from memory stall cycles,
//! and front-end bound as the documented remainder. Absolute numbers are a
//! model; the *shape* (substantial retiring, meaningful FE/BE bounds, the
//! memory sub-component) is what Table IV's reproduction checks.

use crate::cachesim::HwCounters;

/// Sustainable issue width assumed for the top-down slot accounting
/// (below the 4-wide peak, as VTune's pipeline-slot accounting effectively
/// is for memory-heavy codes).
pub const ISSUE_WIDTH: f64 = 2.5;

/// The four top-level top-down categories (fractions of all slots), plus
/// the two second-level components the paper reports in parentheses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopDown {
    /// Slots that retired useful work.
    pub retiring: f64,
    /// Slots wasted on mispredicted paths.
    pub bad_speculation: f64,
    /// Slots stalled in the back end (memory + core).
    pub backend_bound: f64,
    /// Slots starved by the front end.
    pub frontend_bound: f64,
    /// Second level: memory-bound share of back-end stalls.
    pub backend_memory: f64,
    /// Second level: latency share of front-end stalls.
    pub frontend_latency: f64,
}

impl TopDown {
    /// Derives the breakdown from counters.
    pub fn from_counters(c: &HwCounters) -> Self {
        let slots = (c.cycles as f64 * ISSUE_WIDTH).max(1.0);
        let retiring = (c.instructions as f64 / slots).clamp(0.0, 1.0);
        // Mispredictions: the observed outcome flips plus a baseline rate
        // on all branches (aliasing and cold predictions the one-bit model
        // does not see). Each flush wastes ~14 slots.
        let mispredicts = c.branch_misses as f64 + 0.03 * c.branches as f64;
        let bad_speculation = (mispredicts * 14.0 * 0.75 / slots).clamp(0.0, 0.5);
        // Memory stalls block one issue slot per stall cycle... modelled as
        // a 0.9 occupancy of the stalled cycles.
        let backend_memory_slots = c.memory_stall_cycles as f64 * 0.9;
        // Core-bound back end: a fixed fraction of the remaining cycles
        // (dependency chains in scoring and run decoding).
        let used = (retiring + bad_speculation).min(1.0);
        let headroom = (1.0 - used).max(0.0);
        let backend_bound =
            ((backend_memory_slots / slots) + 0.35 * headroom).clamp(0.0, headroom);
        let frontend_bound = (1.0 - used - backend_bound).max(0.0);
        let backend_memory = if backend_bound > 0.0 {
            (backend_memory_slots / slots).min(backend_bound)
        } else {
            0.0
        };
        TopDown {
            retiring,
            bad_speculation,
            backend_bound,
            frontend_bound,
            backend_memory,
            // The paper attributes just under half of FE stalls to latency.
            frontend_latency: frontend_bound * 0.46,
        }
    }

    /// The four top-level categories as percentages, Table IV order:
    /// `[front-end, back-end, bad speculation, retiring]`.
    pub fn percentages(&self) -> [f64; 4] {
        [
            self.frontend_bound * 100.0,
            self.backend_bound * 100.0,
            self.bad_speculation * 100.0,
            self.retiring * 100.0,
        ]
    }
}

impl std::fmt::Display for TopDown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FE {:.1}% ({:.1}) | BE {:.1}% ({:.1}) | BadSpec {:.1}% | Retiring {:.1}%",
            self.frontend_bound * 100.0,
            self.frontend_latency * 100.0,
            self.backend_bound * 100.0,
            self.backend_memory * 100.0,
            self.bad_speculation * 100.0,
            self.retiring * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(instructions: u64, cycles: u64, stalls: u64, br_miss: u64) -> HwCounters {
        HwCounters {
            instructions,
            cycles,
            memory_stall_cycles: stalls,
            branch_misses: br_miss,
            ..Default::default()
        }
    }

    #[test]
    fn categories_sum_to_one() {
        let td = TopDown::from_counters(&counters(1_000_000, 600_000, 120_000, 5_000));
        let sum = td.retiring + td.bad_speculation + td.backend_bound + td.frontend_bound;
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(td.backend_memory <= td.backend_bound + 1e-12);
        assert!(td.frontend_latency <= td.frontend_bound + 1e-12);
    }

    #[test]
    fn high_ipc_means_high_retiring() {
        let fast = TopDown::from_counters(&counters(2_000_000, 1_000_000, 0, 0));
        let slow = TopDown::from_counters(&counters(500_000, 1_000_000, 0, 0));
        assert!(fast.retiring > slow.retiring);
        assert!((fast.retiring - 2.0 / ISSUE_WIDTH).abs() < 1e-9);
    }

    #[test]
    fn memory_stalls_drive_backend() {
        let bound = TopDown::from_counters(&counters(800_000, 1_000_000, 600_000, 0));
        let free = TopDown::from_counters(&counters(800_000, 1_000_000, 0, 0));
        assert!(bound.backend_bound > free.backend_bound);
        assert!(bound.backend_memory > 0.1);
    }

    #[test]
    fn branch_misses_drive_bad_speculation() {
        let wild = TopDown::from_counters(&counters(800_000, 1_000_000, 0, 50_000));
        let tame = TopDown::from_counters(&counters(800_000, 1_000_000, 0, 100));
        assert!(wild.bad_speculation > tame.bad_speculation);
    }

    #[test]
    fn realistic_profile_matches_table4_shape() {
        // A profile like the paper's A-human run: decent IPC, visible
        // memory stalls, some mispredicts. Table IV: FE 23.5, BE 22.8,
        // BadSpec 10.2, Retiring 43.4.
        let c = counters(1_100_000, 1_000_000, 180_000, 14_000);
        let td = TopDown::from_counters(&c);
        let [fe, be, bs, ret] = td.percentages();
        assert!((30.0..60.0).contains(&ret), "retiring {ret}");
        assert!((5.0..35.0).contains(&be), "backend {be}");
        assert!((2.0..25.0).contains(&bs), "badspec {bs}");
        assert!((5.0..40.0).contains(&fe), "frontend {fe}");
    }

    #[test]
    fn display_shows_all_categories() {
        let td = TopDown::from_counters(&counters(1_000_000, 600_000, 120_000, 5_000));
        let s = td.to_string();
        assert!(s.contains("FE"));
        assert!(s.contains("Retiring"));
    }
}
