//! Software cache-hierarchy simulation: the stand-in for `perf` counters.
//!
//! The paper validates miniGiraffe against Giraffe with hardware counters
//! (instructions, IPC, L1D/LLC accesses and misses — Table V). Without PMU
//! access we reproduce the measurement itself: kernels report every logical
//! memory access through [`mg_support::probe::MemProbe`], and
//! [`CacheSimProbe`] replays them through a three-level set-associative LRU
//! hierarchy, yielding the same counter vector for proxy and parent runs.

use mg_support::probe::MemProbe;

use crate::machine::MachineModel;

/// Cache line size used throughout (bytes).
pub const LINE_BYTES: u64 = 64;

/// One set-associative LRU cache level.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    /// Level name for reports ("L1D", "L2", "LLC").
    pub name: &'static str,
    sets: Vec<Vec<u64>>, // per set: tags, most recent last
    ways: usize,
    set_shift: u32,
    set_mask: u64,
    /// Total accesses at this level.
    pub accesses: u64,
    /// Total misses at this level.
    pub misses: u64,
}

impl CacheLevel {
    /// Creates a level of `size_bytes` with `ways` associativity. The set
    /// count is rounded *down* to a power of two, so the modelled capacity
    /// never exceeds the configured size; degenerate sizes get one set.
    pub fn new(name: &'static str, size_bytes: usize, ways: usize) -> Self {
        let lines = size_bytes / LINE_BYTES as usize;
        let raw_sets = (lines / ways).max(1);
        // Largest power of two <= raw_sets.
        let set_count = 1usize << (usize::BITS - 1 - raw_sets.leading_zeros());
        CacheLevel {
            name,
            sets: vec![Vec::with_capacity(ways); set_count],
            ways,
            set_shift: LINE_BYTES.trailing_zeros(),
            set_mask: set_count as u64 - 1,
            accesses: 0,
            misses: 0,
        }
    }

    /// Accesses one cache line; returns `true` on hit.
    pub fn access(&mut self, line_addr: u64) -> bool {
        self.accesses += 1;
        let set = ((line_addr >> self.set_shift) & self.set_mask) as usize;
        let tags = &mut self.sets[set];
        if let Some(pos) = tags.iter().position(|&t| t == line_addr) {
            let tag = tags.remove(pos);
            tags.push(tag);
            true
        } else {
            self.misses += 1;
            if tags.len() >= self.ways {
                tags.remove(0);
            }
            tags.push(line_addr);
            false
        }
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// The counter vector of Table V.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HwCounters {
    /// Abstract instructions retired.
    pub instructions: u64,
    /// Modelled cycles.
    pub cycles: u64,
    /// L1 data accesses.
    pub l1da: u64,
    /// L1 data misses.
    pub l1dm: u64,
    /// Last-level (L3) data accesses.
    pub llda: u64,
    /// Last-level data misses.
    pub lldm: u64,
    /// Branch instructions observed.
    pub branches: u64,
    /// Modelled branch mispredictions.
    pub branch_misses: u64,
    /// Memory-stall cycles (for the top-down model).
    pub memory_stall_cycles: u64,
}

impl HwCounters {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L1D miss rate.
    pub fn l1d_miss_rate(&self) -> f64 {
        if self.l1da == 0 { 0.0 } else { self.l1dm as f64 / self.l1da as f64 }
    }

    /// LLC miss rate.
    pub fn llc_miss_rate(&self) -> f64 {
        if self.llda == 0 { 0.0 } else { self.lldm as f64 / self.llda as f64 }
    }

    /// The vector compared by cosine similarity in the paper's validation:
    /// `[instructions, IPC, L1DA, L1DM, LLDA, LLDM]`.
    pub fn validation_vector(&self) -> [f64; 6] {
        [
            self.instructions as f64,
            self.ipc(),
            self.l1da as f64,
            self.l1dm as f64,
            self.llda as f64,
            self.lldm as f64,
        ]
    }
}

/// A [`MemProbe`] that drives the cache hierarchy of one machine model.
///
/// # Examples
///
/// ```
/// use mg_perf::cachesim::CacheSimProbe;
/// use mg_perf::machine::MachineModel;
/// use mg_support::probe::MemProbe;
///
/// let mut probe = CacheSimProbe::new(&MachineModel::local_intel());
/// probe.touch(0x1000, 64);
/// probe.touch(0x1000, 64); // second touch hits L1
/// probe.instret(10);
/// let counters = probe.counters();
/// assert_eq!(counters.l1da, 2);
/// assert_eq!(counters.l1dm, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheSimProbe {
    l1: CacheLevel,
    l2: CacheLevel,
    l3: CacheLevel,
    instructions: u64,
    branches: u64,
    branch_flips: u64,
    last_branch: bool,
    l2_penalty: f64,
    l3_penalty: f64,
    mem_penalty: f64,
    base_cpi: f64,
}

impl CacheSimProbe {
    /// Builds a probe with `machine`'s cache sizes and penalties
    /// (single-thread view: full L3).
    pub fn new(machine: &MachineModel) -> Self {
        CacheSimProbe {
            l1: CacheLevel::new("L1D", machine.l1d_kb * 1024, 8),
            l2: CacheLevel::new("L2", machine.l2_kb * 1024, 8),
            l3: CacheLevel::new("LLC", (machine.l3_mb * 1024.0 * 1024.0) as usize, 16),
            instructions: 0,
            branches: 0,
            branch_flips: 0,
            last_branch: false,
            l2_penalty: machine.l2_penalty,
            l3_penalty: machine.l3_penalty,
            mem_penalty: machine.mem_penalty,
            base_cpi: machine.base_cpi,
        }
    }

    /// The accumulated counter vector.
    pub fn counters(&self) -> HwCounters {
        // Branch misses: a one-bit last-outcome predictor — every outcome
        // flip mispredicts.
        let branch_misses = self.branch_flips;
        let l2_hits = self.l1.misses - self.l2.misses;
        let l3_hits = self.l2.misses - self.l3.misses;
        let memory_stall = self.l2_penalty * l2_hits as f64
            + self.l3_penalty * l3_hits as f64
            + self.mem_penalty * self.l3.misses as f64;
        let cycles =
            (self.base_cpi * self.instructions as f64 + memory_stall + 14.0 * branch_misses as f64)
                .round() as u64;
        HwCounters {
            instructions: self.instructions,
            cycles: cycles.max(1),
            l1da: self.l1.accesses,
            l1dm: self.l1.misses,
            llda: self.l3.accesses,
            lldm: self.l3.misses,
            branches: self.branches,
            branch_misses,
            memory_stall_cycles: memory_stall.round() as u64,
        }
    }

    /// Access to the raw levels (for reports).
    pub fn levels(&self) -> [&CacheLevel; 3] {
        [&self.l1, &self.l2, &self.l3]
    }
}

impl MemProbe for CacheSimProbe {
    /// The simulator consumes the full per-base access stream: kernels with
    /// a word-parallel fast path must fall back to their scalar loop under
    /// this probe so `REGION_READ`/`REGION_GRAPH_SEQ` traffic keeps base
    /// granularity (see DESIGN.md §8).
    const ACTIVE: bool = true;

    fn touch(&mut self, addr: u64, len: u32) {
        let first = addr / LINE_BYTES;
        let last = (addr + len.max(1) as u64 - 1) / LINE_BYTES;
        for line in first..=last {
            let line_addr = line * LINE_BYTES;
            if !self.l1.access(line_addr) && !self.l2.access(line_addr) {
                self.l3.access(line_addr);
            }
        }
        // Each load is also an instruction.
        self.instructions += (last - first + 1).max(1);
    }

    fn instret(&mut self, n: u64) {
        self.instructions += n;
    }

    fn branch(&mut self, taken: bool) {
        self.branches += 1;
        if self.branches > 1 && taken != self.last_branch {
            self.branch_flips += 1;
        }
        self.last_branch = taken;
    }
}

/// Cosine similarity between two counter vectors (the paper reports 0.9996
/// between proxy and parent).
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must have equal length");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return if na == nb { 1.0 } else { 0.0 };
    }
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn level_lru_eviction() {
        // 2-way, tiny: 2 sets of 2 ways = 256 bytes.
        let mut level = CacheLevel::new("t", 256, 2);
        let same_set = |i: u64| i * 2 * LINE_BYTES; // stride hits one set
        assert!(!level.access(same_set(0)));
        assert!(!level.access(same_set(1)));
        assert!(level.access(same_set(0))); // still resident
        assert!(!level.access(same_set(2))); // evicts LRU = 1
        assert!(level.access(same_set(0)));
        assert!(!level.access(same_set(1))); // 1 was evicted
    }

    #[test]
    fn hierarchy_counts_inclusive_behaviour() {
        let mut probe = CacheSimProbe::new(&MachineModel::local_intel());
        probe.touch(0, 64);
        probe.touch(0, 64);
        let c = probe.counters();
        assert_eq!(c.l1da, 2);
        assert_eq!(c.l1dm, 1);
        assert_eq!(c.llda, 1); // only the first miss reached L3
        assert_eq!(c.lldm, 1);
    }

    #[test]
    fn multi_line_touch_counts_every_line() {
        let mut probe = CacheSimProbe::new(&MachineModel::local_intel());
        probe.touch(0, 256); // 4 lines
        assert_eq!(probe.counters().l1da, 4);
        // Unaligned spanning touch.
        let mut probe2 = CacheSimProbe::new(&MachineModel::local_intel());
        probe2.touch(60, 8); // crosses a line boundary
        assert_eq!(probe2.counters().l1da, 2);
    }

    #[test]
    fn working_set_larger_than_l1_misses() {
        let machine = MachineModel::local_intel(); // 32 KiB L1
        let mut probe = CacheSimProbe::new(&machine);
        // Two passes over 128 KiB: second pass still misses L1, hits L2.
        for pass in 0..2 {
            for i in 0..(128 * 1024 / 64) {
                probe.touch(i * 64, 8);
            }
            let c = probe.counters();
            if pass == 1 {
                assert!(c.l1dm > c.l1da / 4, "L1 thrashing expected");
                assert_eq!(c.lldm, 2048, "L3 holds the whole set after pass 1");
            }
        }
    }

    #[test]
    fn ipc_reflects_memory_stalls() {
        let machine = MachineModel::local_intel();
        // Compute-only run.
        let mut fast = CacheSimProbe::new(&machine);
        fast.instret(1_000_000);
        fast.touch(0, 8);
        // Memory-bound run: random large strides.
        let mut slow = CacheSimProbe::new(&machine);
        slow.instret(1_000_000);
        let mut addr = 0u64;
        for _ in 0..100_000 {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
            slow.touch(addr % (1 << 32), 8);
        }
        assert!(fast.counters().ipc() > slow.counters().ipc() * 2.0);
    }

    #[test]
    fn branch_flip_mispredictions() {
        let mut probe = CacheSimProbe::new(&MachineModel::local_intel());
        for i in 0..100 {
            probe.branch(i % 2 == 0); // alternating: worst case
        }
        let alternating = probe.counters().branch_misses;
        let mut probe2 = CacheSimProbe::new(&MachineModel::local_intel());
        for _ in 0..100 {
            probe2.branch(true); // monotone: near-zero misses
        }
        assert!(alternating > 90);
        assert_eq!(probe2.counters().branch_misses, 0);
    }

    #[test]
    fn cosine_similarity_basics() {
        assert!((cosine_similarity(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 1.0], &[2.0, 2.0]) - 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0], &[0.0]), 1.0);
        assert_eq!(cosine_similarity(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn cosine_rejects_mismatched_lengths() {
        cosine_similarity(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn prop_misses_never_exceed_accesses(addrs in proptest::collection::vec(0u64..1 << 20, 1..500)) {
            let mut probe = CacheSimProbe::new(&MachineModel::chi_arm());
            for a in addrs {
                probe.touch(a, 8);
            }
            let c = probe.counters();
            prop_assert!(c.l1dm <= c.l1da);
            prop_assert!(c.lldm <= c.llda);
            prop_assert!(c.llda <= c.l1dm); // only L2 misses reach L3
            prop_assert!(c.ipc() > 0.0);
        }

        #[test]
        fn prop_cosine_in_unit_range(a in proptest::collection::vec(0.0f64..1e6, 6), b in proptest::collection::vec(0.0f64..1e6, 6)) {
            let s = cosine_similarity(&a, &b);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&s));
        }
    }
}
