//! Machine models: the four evaluation platforms of Table II.
//!
//! We cannot run on four physical servers; instead each platform is a
//! parameter set consumed by the cache simulator and the discrete-time
//! multicore executor. Structural parameters (sockets, cores, SMT, cache
//! sizes, frequency, DRAM) come straight from Table II; the per-machine
//! cost coefficients (base CPI, miss penalties, SMT slowdown) are chosen to
//! reproduce the paper's qualitative ranking: local-amd fastest with
//! near-linear scaling (huge L3), chi-arm slowest but linear (no SMT, weak
//! cores), both Intels plateauing at the SMT and socket boundaries.

/// One evaluation platform.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Short name used in result tables ("local-intel", ...).
    pub name: &'static str,
    /// CPU vendor (for Table II output).
    pub vendor: &'static str,
    /// Processor model string.
    pub processor: &'static str,
    /// Number of sockets.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Hardware threads per core (1 = no SMT).
    pub threads_per_core: usize,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// L1 data cache per core, KiB.
    pub l1d_kb: usize,
    /// L2 cache per core, KiB.
    pub l2_kb: usize,
    /// Shared L3 per socket, MiB.
    pub l3_mb: f64,
    /// DRAM capacity, GiB.
    pub dram_gb: usize,
    /// Average cycles per (abstract) instruction with all data in L1.
    pub base_cpi: f64,
    /// Extra cycles for an L1 miss that hits L2.
    pub l2_penalty: f64,
    /// Extra cycles for an L2 miss that hits L3.
    pub l3_penalty: f64,
    /// Extra cycles for an L3 miss (DRAM access).
    pub mem_penalty: f64,
    /// Combined throughput of two SMT threads on one core relative to one
    /// thread (1.0 = SMT useless, 2.0 = perfect scaling).
    pub smt_throughput: f64,
    /// Multiplier on memory penalties when a thread runs on socket > 0
    /// (remote L3/DRAM traffic).
    pub cross_socket_factor: f64,
}

impl MachineModel {
    /// local-intel: 2× Xeon 8260 (the host that also runs the parent).
    pub fn local_intel() -> Self {
        MachineModel {
            name: "local-intel",
            vendor: "Intel",
            processor: "Xeon 8260",
            sockets: 2,
            cores_per_socket: 24,
            threads_per_core: 2,
            freq_ghz: 2.4,
            l1d_kb: 32,
            l2_kb: 1024,
            l3_mb: 35.75,
            dram_gb: 768,
            base_cpi: 0.75,
            l2_penalty: 10.0,
            l3_penalty: 32.0,
            mem_penalty: 190.0,
            smt_throughput: 1.25,
            cross_socket_factor: 1.45,
        }
    }

    /// local-amd: 1× EPYC 9554 — the big-L3 machine.
    pub fn local_amd() -> Self {
        MachineModel {
            name: "local-amd",
            vendor: "AMD",
            processor: "EPYC 9554",
            sockets: 1,
            cores_per_socket: 64,
            threads_per_core: 2,
            freq_ghz: 3.1,
            l1d_kb: 32,
            l2_kb: 1024,
            l3_mb: 256.0,
            dram_gb: 768,
            base_cpi: 0.65,
            l2_penalty: 9.0,
            l3_penalty: 28.0,
            mem_penalty: 160.0,
            smt_throughput: 1.45,
            cross_socket_factor: 1.0,
        }
    }

    /// chi-arm: 2× Cavium ThunderX2 — weak cores, no SMT in the paper's
    /// configuration, tiny L2.
    pub fn chi_arm() -> Self {
        MachineModel {
            name: "chi-arm",
            vendor: "Cavium",
            processor: "ThunderX2 99xx",
            sockets: 2,
            cores_per_socket: 32,
            threads_per_core: 1,
            freq_ghz: 2.5,
            l1d_kb: 32,
            l2_kb: 256,
            l3_mb: 64.0,
            dram_gb: 256,
            base_cpi: 1.55,
            l2_penalty: 12.0,
            l3_penalty: 38.0,
            mem_penalty: 210.0,
            smt_throughput: 1.0,
            cross_socket_factor: 1.30,
        }
    }

    /// chi-intel: 2× Xeon 8380.
    pub fn chi_intel() -> Self {
        MachineModel {
            name: "chi-intel",
            vendor: "Intel",
            processor: "Xeon 8380",
            sockets: 2,
            cores_per_socket: 40,
            threads_per_core: 2,
            freq_ghz: 2.3,
            l1d_kb: 48,
            l2_kb: 1280,
            l3_mb: 60.0,
            dram_gb: 256,
            base_cpi: 0.72,
            l2_penalty: 10.0,
            l3_penalty: 34.0,
            mem_penalty: 185.0,
            smt_throughput: 1.28,
            cross_socket_factor: 1.45,
        }
    }

    /// All four platforms in Table II order.
    pub fn all() -> Vec<MachineModel> {
        vec![
            Self::local_intel(),
            Self::local_amd(),
            Self::chi_arm(),
            Self::chi_intel(),
        ]
    }

    /// Total hardware thread contexts (the autotuning thread count: 96,
    /// 128, 64, 160).
    pub fn total_threads(&self) -> usize {
        self.sockets * self.cores_per_socket * self.threads_per_core
    }

    /// Total physical cores.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Placement of logical thread `t` when `n` threads run: fill cores of
    /// socket 0 first, then socket 1, then second SMT contexts. Returns
    /// `(socket, core, smt_slot)`.
    pub fn place_thread(&self, t: usize) -> (usize, usize, usize) {
        let cores = self.total_cores();
        let smt_slot = t / cores;
        let core_index = t % cores;
        let socket = core_index / self.cores_per_socket;
        (socket, core_index % self.cores_per_socket, smt_slot)
    }

    /// Per-thread throughput factor when `threads_on_core` share one core.
    pub fn smt_factor(&self, threads_on_core: usize) -> f64 {
        if threads_on_core <= 1 {
            1.0
        } else {
            self.smt_throughput / threads_on_core as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_thread_counts() {
        assert_eq!(MachineModel::local_intel().total_threads(), 96);
        assert_eq!(MachineModel::local_amd().total_threads(), 128);
        assert_eq!(MachineModel::chi_arm().total_threads(), 64);
        assert_eq!(MachineModel::chi_intel().total_threads(), 160);
    }

    #[test]
    fn table2_structure() {
        let m = MachineModel::local_intel();
        assert_eq!(m.sockets, 2);
        assert_eq!(m.cores_per_socket, 24);
        assert_eq!(m.l3_mb, 35.75);
        let amd = MachineModel::local_amd();
        assert_eq!(amd.sockets, 1);
        assert_eq!(amd.l3_mb, 256.0);
        assert_eq!(MachineModel::chi_arm().threads_per_core, 1);
        assert_eq!(MachineModel::chi_intel().l1d_kb, 48);
    }

    #[test]
    fn placement_fills_cores_before_smt() {
        let m = MachineModel::local_intel(); // 2 x 24 x 2
        assert_eq!(m.place_thread(0), (0, 0, 0));
        assert_eq!(m.place_thread(23), (0, 23, 0));
        assert_eq!(m.place_thread(24), (1, 0, 0));
        assert_eq!(m.place_thread(47), (1, 23, 0));
        assert_eq!(m.place_thread(48), (0, 0, 1));
        assert_eq!(m.place_thread(95), (1, 23, 1));
    }

    #[test]
    fn smt_factor_behaviour() {
        let m = MachineModel::local_amd();
        assert_eq!(m.smt_factor(1), 1.0);
        assert!(m.smt_factor(2) < 1.0);
        assert!(m.smt_factor(2) > 0.5);
        assert_eq!(MachineModel::chi_arm().smt_factor(2), 0.5);
    }

    #[test]
    fn qualitative_ranking_encoded() {
        // AMD has the fastest single-core profile and the biggest L3; ARM
        // the weakest cores.
        let amd = MachineModel::local_amd();
        let arm = MachineModel::chi_arm();
        assert!(amd.base_cpi < arm.base_cpi);
        assert!(amd.l3_mb > MachineModel::chi_intel().l3_mb);
        assert!(arm.l2_kb < amd.l2_kb);
    }

    #[test]
    fn all_have_unique_names() {
        let names: std::collections::HashSet<_> =
            MachineModel::all().iter().map(|m| m.name).collect();
        assert_eq!(names.len(), 4);
    }
}
