//! Per-read task features: the bridge from real kernel execution to the
//! simulated-machine executor.
//!
//! Cross-machine experiments (Figures 5–8, Tables VII–VIII) need per-task
//! costs on machines we do not have. We run the *real* proxy kernels once,
//! single-threaded, recording per read the abstract instructions, bytes
//! touched, and CachedGBWT behaviour; [`crate::simexec`] then replays those
//! features under each machine model. Because the features come from real
//! kernel executions, parameter effects (batch size via scheduling, cache
//! capacity via rehash/decompression work) are captured faithfully.

use mg_core::dump::SeedDump;
use mg_core::{Mapper, MappingOptions};
use mg_gbwt::CachedGbwt;
use mg_support::probe::CountingProbe;
use mg_support::regions::NullSink;

/// Cost profile of mapping one read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskFeatures {
    /// Abstract instructions the kernels retired.
    pub instructions: u64,
    /// Bytes touched (reads of GBWT records, cache slots, sequences).
    pub bytes: u64,
    /// CachedGBWT hits while mapping this read.
    pub cache_hits: u64,
    /// CachedGBWT misses (decompressions) while mapping this read.
    pub cache_misses: u64,
}

/// A workload ready for the simulated executor.
#[derive(Debug, Clone, PartialEq)]
pub struct SimWorkload {
    /// Input-set name.
    pub name: String,
    /// Per-read features, in read order.
    pub tasks: Vec<TaskFeatures>,
    /// Size of the hot shared data (compressed GBWT + decoded cache),
    /// which competes for L3 across threads.
    pub hot_bytes: u64,
    /// Declared full-scale memory requirement in GiB (drives the
    /// out-of-memory outcomes of Figure 5: D-HPRC exceeds the 256 GiB
    /// machines).
    pub required_memory_gb: f64,
    /// One-time per-thread cost (CachedGBWT allocation and first touch),
    /// proportional to the configured capacity.
    pub setup_instructions_per_thread: u64,
    /// Per-thread private working set (cache table + decoded records); the
    /// executor models its pollution of the private L1/L2.
    pub private_hot_bytes: u64,
}

impl SimWorkload {
    /// Total instructions across tasks.
    pub fn total_instructions(&self) -> u64 {
        self.tasks.iter().map(|t| t.instructions).sum()
    }

    /// Mean bytes touched per task.
    pub fn mean_bytes(&self) -> f64 {
        if self.tasks.is_empty() {
            0.0
        } else {
            self.tasks.iter().map(|t| t.bytes).sum::<u64>() as f64 / self.tasks.len() as f64
        }
    }

    /// Replicates the task list `factor` times. The simulated experiments
    /// use this to reach paper-proportional read counts: per-task costs are
    /// measured from real kernel executions on the synthesized reads, then
    /// tiled — "more reads with this cost distribution" — so scheduling
    /// granularity effects (batches vs threads) match the paper's scale.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is 0.
    pub fn tiled(&self, factor: usize) -> SimWorkload {
        assert!(factor > 0, "tile factor must be positive");
        let mut tasks = Vec::with_capacity(self.tasks.len() * factor);
        for _ in 0..factor {
            tasks.extend_from_slice(&self.tasks);
        }
        SimWorkload {
            name: self.name.clone(),
            tasks,
            hot_bytes: self.hot_bytes,
            required_memory_gb: self.required_memory_gb,
            setup_instructions_per_thread: self.setup_instructions_per_thread,
            private_hot_bytes: self.private_hot_bytes,
        }
    }
}

/// Modelled one-time per-thread cost of building a CachedGBWT with the
/// given initial capacity (allocation, zeroing, first touch).
pub fn cache_setup_instructions(capacity: usize) -> u64 {
    12 * capacity as u64
}

/// Collects features from an arbitrary per-task function: `task(i, probe)`
/// performs task `i`, reporting its work to the probe. Used to profile the
/// *parent* pipeline (whose per-read work includes seeding and
/// post-processing) for the simulated strong-scaling runs of Figure 4.
pub fn collect_features_from(
    n: usize,
    hot_bytes: u64,
    required_memory_gb: f64,
    name: &str,
    setup_instructions_per_thread: u64,
    private_hot_bytes: u64,
    mut task: impl FnMut(usize, &mut CountingProbe) -> (u64, u64),
) -> SimWorkload {
    let mut tasks = Vec::with_capacity(n);
    let mut probe = CountingProbe::default();
    let mut prev = probe;
    for i in 0..n {
        let (cache_hits, cache_misses) = task(i, &mut probe);
        tasks.push(TaskFeatures {
            instructions: probe.instructions - prev.instructions,
            bytes: probe.bytes - prev.bytes,
            cache_hits,
            cache_misses,
        });
        prev = probe;
    }
    SimWorkload {
        name: name.to_string(),
        tasks,
        hot_bytes,
        required_memory_gb,
        setup_instructions_per_thread,
        private_hot_bytes,
    }
}

/// Runs the proxy kernels over `dump` single-threaded, extracting per-read
/// [`TaskFeatures`]. `required_memory_gb` is the full-scale footprint the
/// input set would need (Table III's real sizes).
pub fn collect_features(
    mapper: &Mapper<'_>,
    dump: &SeedDump,
    options: &MappingOptions,
    required_memory_gb: f64,
    name: &str,
) -> SimWorkload {
    let mut cache = CachedGbwt::new(mapper.gbz().gbwt(), options.cache_capacity);
    let mut tasks = Vec::with_capacity(dump.reads.len());
    let mut prev_probe = CountingProbe::default();
    let mut probe = CountingProbe::default();
    let mut prev_stats = cache.stats();
    for (i, read) in dump.reads.iter().enumerate() {
        let _ = mapper.map_read(
            &mut cache,
            i as u64,
            read,
            options,
            &NullSink,
            0,
            &mut probe,
        );
        let stats = cache.stats();
        tasks.push(TaskFeatures {
            instructions: probe.instructions - prev_probe.instructions,
            bytes: probe.bytes - prev_probe.bytes,
            cache_hits: stats.hits - prev_stats.hits,
            cache_misses: stats.misses - prev_stats.misses,
        });
        prev_probe = probe;
        prev_stats = stats;
    }
    let hot_bytes = mapper.gbz().gbwt().compressed_bytes() as u64;
    let setup = cache_setup_instructions(options.cache_capacity);
    SimWorkload {
        name: name.to_string(),
        tasks,
        hot_bytes,
        required_memory_gb,
        setup_instructions_per_thread: setup,
        private_hot_bytes: cache.heap_bytes() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_core::types::{ReadInput, Seed, Workflow};
    use mg_gbwt::Gbz;
    use mg_graph::pangenome::{PangenomeBuilder, Variant};
    use mg_graph::{Handle, NodeId};
    use mg_index::GraphPos;

    fn setup() -> (Gbz, SeedDump) {
        let p = PangenomeBuilder::new(b"AAAACCCCGGGGTTTTACGTACGTAACCGGTT".to_vec())
            .variants(vec![Variant::snp(6, b'T')])
            .haplotypes(vec![vec![0], vec![1]])
            .max_node_len(5)
            .build()
            .unwrap();
        let gbz = Gbz::from_pangenome(p).unwrap();
        let reads = (0..12)
            .map(|i| ReadInput {
                bases: b"AAAACCCCGGGGTTTT".to_vec(),
                seeds: vec![Seed::new(
                    0,
                    GraphPos::new(Handle::forward(NodeId::new(1)), (i % 3) as u32),
                )],
            })
            .collect();
        (gbz, SeedDump::new(Workflow::Single, reads))
    }

    #[test]
    fn features_cover_every_read() {
        let (gbz, dump) = setup();
        let mapper = Mapper::new(&gbz);
        let workload =
            collect_features(&mapper, &dump, &MappingOptions::default(), 40.0, "test");
        assert_eq!(workload.tasks.len(), 12);
        assert!(workload.tasks.iter().all(|t| t.instructions > 0));
        assert!(workload.tasks.iter().all(|t| t.bytes > 0));
        assert!(workload.hot_bytes > 0);
        assert!(workload.total_instructions() > 0);
        assert!(workload.mean_bytes() > 0.0);
    }

    #[test]
    fn later_reads_hit_the_warm_cache() {
        let (gbz, dump) = setup();
        let mapper = Mapper::new(&gbz);
        let workload =
            collect_features(&mapper, &dump, &MappingOptions::default(), 40.0, "test");
        let first = &workload.tasks[0];
        let last = &workload.tasks[11];
        assert!(first.cache_misses > 0, "cold cache misses");
        assert!(
            last.cache_misses <= first.cache_misses,
            "warm cache should not miss more"
        );
        assert!(last.cache_hits > 0);
    }

    #[test]
    fn small_capacity_costs_more_instructions() {
        let (gbz, dump) = setup();
        let mapper = Mapper::new(&gbz);
        let tiny = collect_features(
            &mapper,
            &dump,
            &MappingOptions { cache_capacity: 8, ..Default::default() },
            40.0,
            "tiny",
        );
        let big = collect_features(
            &mapper,
            &dump,
            &MappingOptions { cache_capacity: 4096, ..Default::default() },
            40.0,
            "big",
        );
        // The tiny cache may rehash; the big one never does. Either way the
        // feature collection must be deterministic per configuration.
        let tiny2 = collect_features(
            &mapper,
            &dump,
            &MappingOptions { cache_capacity: 8, ..Default::default() },
            40.0,
            "tiny",
        );
        assert_eq!(tiny.tasks, tiny2.tasks);
        assert!(big.hot_bytes >= tiny.hot_bytes, "bigger table, bigger footprint");
    }
}
