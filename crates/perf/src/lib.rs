//! Performance apparatus: profiling, counter simulation, machine models.
//!
//! This crate substitutes for everything the paper measures with hardware
//! it had and we do not:
//!
//! - [`profiler::Profiler`] — the timestamp-region instrumentation header
//!   (Figures 2–3);
//! - [`cachesim::CacheSimProbe`] — a three-level cache simulator consuming
//!   kernel memory probes, producing the Table V counter vector
//!   (instructions, IPC, L1DA/L1DM, LLDA/LLDM) and cosine-similarity
//!   comparisons;
//! - [`machine::MachineModel`] — the four Table II platforms as parameter
//!   sets;
//! - [`features`] + [`simexec`] — per-read costs measured from real kernel
//!   executions, replayed on a deterministic discrete-time multicore
//!   executor with SMT/L3/socket contention (Figures 5–8, Tables VII–VIII);
//! - [`topdown::TopDown`] — the Table IV top-down breakdown as a model over
//!   simulated counters.

pub mod cachesim;
pub mod features;
pub mod machine;
pub mod profiler;
pub mod simexec;
pub mod topdown;

pub use cachesim::{cosine_similarity, CacheSimProbe, HwCounters};
pub use features::{cache_setup_instructions, collect_features, collect_features_from, SimWorkload, TaskFeatures};
pub use machine::MachineModel;
pub use profiler::{Profiler, RegionEvent, RegionShare};
pub use simexec::{simulate, SimOutcome, SimSched};
pub use topdown::TopDown;
