//! The region profiler: the paper's instrumentation header.
//!
//! The methodology instruments Giraffe with timestamp collectors per named
//! region, buffered per thread and dumped after the run to avoid overhead.
//! [`Profiler`] implements [`RegionSink`] the same way and reconstructs:
//!
//! - the per-thread timeline of region intervals (Figure 2);
//! - the aggregate share of runtime per region (Figure 3).

use std::time::Instant;

use parking_lot::Mutex;

use mg_support::regions::RegionSink;

/// One recorded region interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionEvent {
    /// Worker thread index.
    pub thread: usize,
    /// Region name.
    pub region: &'static str,
    /// Microseconds from profiler start.
    pub start_us: u64,
    /// Microseconds from profiler start.
    pub end_us: u64,
}

impl RegionEvent {
    /// Interval length in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// Aggregate time of one region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionShare {
    /// Region name.
    pub region: &'static str,
    /// Total microseconds across all threads.
    pub total_us: u64,
    /// Number of interval events.
    pub count: u64,
    /// Fraction of the summed region time (Figure 3's percentage).
    pub share: f64,
}

/// Collects region events with per-record cost of one mutex push.
///
/// # Examples
///
/// ```
/// use mg_perf::profiler::Profiler;
/// use mg_support::regions::{RegionSink, RegionTimer};
///
/// let profiler = Profiler::new();
/// {
///     let _t = RegionTimer::start(&profiler, 0, "cluster_seeds");
/// }
/// assert_eq!(profiler.events().len(), 1);
/// ```
#[derive(Debug)]
pub struct Profiler {
    origin: Instant,
    events: Mutex<Vec<RegionEvent>>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// Starts a profiler; timestamps are relative to this call.
    pub fn new() -> Self {
        Profiler {
            origin: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// All events recorded so far, in arrival order.
    pub fn events(&self) -> Vec<RegionEvent> {
        self.events.lock().clone()
    }

    /// Clears recorded events.
    pub fn reset(&self) {
        self.events.lock().clear();
    }

    /// The per-thread timelines (events sorted by start time) — Figure 2.
    pub fn timeline(&self) -> Vec<(usize, Vec<RegionEvent>)> {
        let mut by_thread: std::collections::BTreeMap<usize, Vec<RegionEvent>> =
            std::collections::BTreeMap::new();
        for e in self.events.lock().iter() {
            by_thread.entry(e.thread).or_default().push(*e);
        }
        by_thread
            .into_iter()
            .map(|(t, mut events)| {
                events.sort_by_key(|e| e.start_us);
                (t, events)
            })
            .collect()
    }

    /// Aggregate per-region totals and shares — Figure 3. Shares are of the
    /// total instrumented time (I/O and parsing are simply not
    /// instrumented, matching the paper's exclusion).
    pub fn region_summary(&self) -> Vec<RegionShare> {
        let mut totals: std::collections::BTreeMap<&'static str, (u64, u64)> =
            std::collections::BTreeMap::new();
        for e in self.events.lock().iter() {
            let entry = totals.entry(e.region).or_insert((0, 0));
            entry.0 += e.duration_us();
            entry.1 += 1;
        }
        let grand: u64 = totals.values().map(|&(t, _)| t).sum();
        let mut shares: Vec<RegionShare> = totals
            .into_iter()
            .map(|(region, (total_us, count))| RegionShare {
                region,
                total_us,
                count,
                share: if grand == 0 { 0.0 } else { total_us as f64 / grand as f64 },
            })
            .collect();
        shares.sort_by_key(|s| std::cmp::Reverse(s.total_us));
        shares
    }

    /// Renders the timeline as CSV (`thread,region,start_us,end_us`).
    pub fn timeline_csv(&self) -> String {
        let mut out = String::from("thread,region,start_us,end_us\n");
        for (thread, events) in self.timeline() {
            for e in events {
                out.push_str(&format!("{thread},{},{},{}\n", e.region, e.start_us, e.end_us));
            }
        }
        out
    }
}

impl RegionSink for Profiler {
    fn record(&self, thread: usize, region: &'static str, start: Instant, end: Instant) {
        let start_us = start.duration_since(self.origin).as_micros() as u64;
        let end_us = end.duration_since(self.origin).as_micros() as u64;
        self.events.lock().push(RegionEvent {
            thread,
            region,
            start_us,
            end_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_support::regions::RegionTimer;

    #[test]
    fn records_events_with_monotonic_timestamps() {
        let p = Profiler::new();
        {
            let _a = RegionTimer::start(&p, 0, "outer");
            let _b = RegionTimer::start(&p, 0, "inner");
        }
        let events = p.events();
        assert_eq!(events.len(), 2);
        for e in &events {
            assert!(e.end_us >= e.start_us);
        }
    }

    #[test]
    fn timeline_groups_and_sorts_by_thread() {
        let p = Profiler::new();
        let t0 = Instant::now();
        let t1 = t0 + std::time::Duration::from_micros(100);
        let t2 = t0 + std::time::Duration::from_micros(300);
        p.record(1, "b", t1, t2);
        p.record(0, "a", t0, t1);
        p.record(1, "a", t0, t1);
        let timeline = p.timeline();
        assert_eq!(timeline.len(), 2);
        assert_eq!(timeline[0].0, 0);
        assert_eq!(timeline[1].0, 1);
        // Thread 1's events sorted by start.
        assert_eq!(timeline[1].1[0].region, "a");
        assert_eq!(timeline[1].1[1].region, "b");
    }

    #[test]
    fn region_summary_shares_sum_to_one() {
        let p = Profiler::new();
        let t0 = Instant::now();
        let us = |n: u64| t0 + std::time::Duration::from_micros(n);
        p.record(0, "extend", us(0), us(300));
        p.record(0, "cluster", us(300), us(400));
        p.record(1, "extend", us(0), us(300));
        let summary = p.region_summary();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].region, "extend");
        assert_eq!(summary[0].total_us, 600);
        assert_eq!(summary[0].count, 2);
        let total_share: f64 = summary.iter().map(|s| s.share).sum();
        assert!((total_share - 1.0).abs() < 1e-12);
        assert!((summary[0].share - 600.0 / 700.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profiler_summary() {
        let p = Profiler::new();
        assert!(p.region_summary().is_empty());
        assert_eq!(p.timeline_csv(), "thread,region,start_us,end_us\n");
    }

    #[test]
    fn reset_clears() {
        let p = Profiler::new();
        let t0 = Instant::now();
        p.record(0, "x", t0, t0);
        p.reset();
        assert!(p.events().is_empty());
    }

    #[test]
    fn csv_contains_rows() {
        let p = Profiler::new();
        let t0 = Instant::now();
        p.record(2, "extend", t0, t0 + std::time::Duration::from_micros(5));
        let csv = p.timeline_csv();
        assert!(csv.lines().count() == 2);
        assert!(csv.contains("2,extend,"));
    }
}
