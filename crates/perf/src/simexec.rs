//! Discrete-time multicore executor: cross-machine runs without the
//! machines.
//!
//! Replays a [`SimWorkload`] (per-read costs measured from real kernel
//! executions) on a [`MachineModel`]: threads are placed on cores/sockets,
//! SMT siblings share core throughput, co-resident threads share the
//! socket's L3, remote sockets pay a memory-latency factor, and the chosen
//! scheduler policy distributes read batches. The outcome is the makespan —
//! deterministic, so every figure regenerates bit-identically.

use crate::features::SimWorkload;
use crate::machine::MachineModel;

/// Scheduler policy in the simulated executor (mirrors
/// [`mg_sched::SchedulerKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimSched {
    /// Contiguous equal chunks.
    Static,
    /// Self-scheduling batches off a shared queue (OpenMP dynamic).
    Dynamic {
        /// Reads per batch.
        batch: usize,
    },
    /// Pre-split shares with round-robin batch stealing.
    WorkStealing {
        /// Reads per batch.
        batch: usize,
    },
    /// VG-style: dynamic plus a dispatch overhead paid by thread 0.
    Vg {
        /// Reads per batch.
        batch: usize,
    },
}

impl SimSched {
    /// Translates a runtime scheduler kind + batch size.
    pub fn from_kind(kind: mg_sched::SchedulerKind, batch: usize) -> Self {
        match kind {
            mg_sched::SchedulerKind::Static => SimSched::Static,
            mg_sched::SchedulerKind::Dynamic => SimSched::Dynamic { batch },
            mg_sched::SchedulerKind::WorkStealing => SimSched::WorkStealing { batch },
            mg_sched::SchedulerKind::Vg => SimSched::Vg { batch },
        }
    }

    fn batch(&self) -> usize {
        match *self {
            SimSched::Static => usize::MAX,
            SimSched::Dynamic { batch } | SimSched::WorkStealing { batch } | SimSched::Vg { batch } => {
                batch.max(1)
            }
        }
    }
}

/// Result of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// End-to-end wall time in seconds (the paper's makespan), or `None`
    /// when the workload does not fit in the machine's DRAM.
    pub makespan_s: Option<f64>,
    /// Busy seconds per thread.
    pub per_thread_busy_s: Vec<f64>,
    /// Total CPU seconds across threads.
    pub total_cpu_s: f64,
}

impl SimOutcome {
    /// `true` when the machine ran out of memory (Figure 5's missing
    /// D-HPRC points).
    pub fn is_oom(&self) -> bool {
        self.makespan_s.is_none()
    }
}

/// Per-thread execution-rate context derived from placement.
#[derive(Debug, Clone, Copy)]
struct ThreadContext {
    /// Seconds per abstract instruction (includes SMT sharing).
    sec_per_instr: f64,
    /// Seconds per memory "line cost unit" (includes L3 pressure and
    /// socket distance).
    sec_per_line: f64,
    /// Fixed per-batch scheduling overhead in seconds.
    batch_overhead_s: f64,
}

/// Upper bound on the fraction of lines served by the private L1/L2 when
/// the per-thread working set fits entirely (temporal locality of kernel
/// accesses).
const PRIVATE_HIT_CEILING: f64 = 0.85;
/// Floor on the private hit fraction even when the working set thrashes
/// (spatial locality within records and reads).
const PRIVATE_HIT_FLOOR: f64 = 0.35;

fn thread_contexts(
    machine: &MachineModel,
    workload: &SimWorkload,
    threads: usize,
    sched: SimSched,
) -> Vec<ThreadContext> {
    // Count core and socket occupancy.
    let mut per_core: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();
    let mut per_socket = vec![0usize; machine.sockets];
    let placements: Vec<(usize, usize, usize)> =
        (0..threads).map(|t| machine.place_thread(t)).collect();
    for &(socket, core, _) in &placements {
        *per_core.entry((socket, core)).or_insert(0) += 1;
        per_socket[socket] += 1;
    }
    let hz = machine.freq_ghz * 1e9;
    placements
        .iter()
        .map(|&(socket, core, _)| {
            let on_core = per_core[&(socket, core)];
            let smt = machine.smt_factor(on_core);
            let on_socket = per_socket[socket].max(1);
            // Private L1/L2 service fraction: degrades when the per-thread
            // working set (CachedGBWT table + decoded records) outgrows L2 —
            // this is how an oversized initial capacity pollutes the caches.
            let l2_bytes = machine.l2_kb as f64 * 1024.0;
            let fit = (l2_bytes / workload.private_hot_bytes.max(1) as f64).clamp(0.0, 1.0);
            let private_hit = PRIVATE_HIT_FLOOR + (PRIVATE_HIT_CEILING - PRIVATE_HIT_FLOOR) * fit;
            // L3 share of this thread's socket: each resident thread's
            // private set plus the shared compressed index compete.
            let l3_per_thread = machine.l3_mb * 1024.0 * 1024.0 / on_socket as f64;
            let pressure_bytes = workload.hot_bytes + workload.private_hot_bytes;
            let resident = (l3_per_thread / pressure_bytes.max(1) as f64).clamp(0.0, 1.0);
            let socket_factor = if socket > 0 { machine.cross_socket_factor } else { 1.0 };
            // Cycles for one touched line: private-hit portion pays the L2
            // penalty, the rest pays L3 or DRAM depending on residency.
            let line_cycles = private_hit * machine.l2_penalty
                + (1.0 - private_hit)
                    * (resident * machine.l3_penalty + (1.0 - resident) * machine.mem_penalty)
                    * socket_factor;
            let dispatch = match sched {
                SimSched::Vg { .. } => 3e-6,
                SimSched::WorkStealing { .. } => 4e-7,
                SimSched::Dynamic { .. } => 6e-7,
                SimSched::Static => 0.0,
            };
            ThreadContext {
                sec_per_instr: machine.base_cpi / (hz * smt),
                sec_per_line: line_cycles / (hz * smt),
                batch_overhead_s: dispatch,
            }
        })
        .collect()
}

fn task_seconds(task: &crate::features::TaskFeatures, ctx: &ThreadContext) -> f64 {
    let lines = (task.bytes / crate::cachesim::LINE_BYTES).max(1) as f64;
    task.instructions as f64 * ctx.sec_per_instr + lines * ctx.sec_per_line
}

/// Simulates one run; deterministic.
///
/// # Panics
///
/// Panics if `threads` is 0 or exceeds the machine's thread contexts.
pub fn simulate(
    machine: &MachineModel,
    workload: &SimWorkload,
    threads: usize,
    sched: SimSched,
) -> SimOutcome {
    assert!(threads >= 1, "at least one thread");
    assert!(
        threads <= machine.total_threads(),
        "{threads} threads exceed {}'s {} contexts",
        machine.name,
        machine.total_threads()
    );
    if workload.required_memory_gb > machine.dram_gb as f64 {
        return SimOutcome {
            makespan_s: None,
            per_thread_busy_s: vec![0.0; threads],
            total_cpu_s: 0.0,
        };
    }
    let contexts = thread_contexts(machine, workload, threads, sched);
    let n = workload.tasks.len();
    // Every thread pays the CachedGBWT setup (allocation + first touch)
    // before mapping its first batch.
    let mut clocks: Vec<f64> = contexts
        .iter()
        .map(|ctx| workload.setup_instructions_per_thread as f64 * ctx.sec_per_instr)
        .collect();
    match sched {
        SimSched::Static => {
            let chunk = n.div_ceil(threads.max(1));
            for (t, clock) in clocks.iter_mut().enumerate() {
                let start = (t * chunk).min(n);
                let end = ((t + 1) * chunk).min(n);
                for task in &workload.tasks[start..end] {
                    *clock += task_seconds(task, &contexts[t]);
                }
            }
        }
        SimSched::Dynamic { .. } | SimSched::Vg { .. } => {
            // Self-scheduling: each batch goes to the earliest-free thread.
            let batch = sched.batch();
            let mut next = 0usize;
            while next < n {
                let t = argmin(&clocks);
                let end = (next + batch).min(n);
                clocks[t] += contexts[t].batch_overhead_s;
                for task in &workload.tasks[next..end] {
                    clocks[t] += task_seconds(task, &contexts[t]);
                }
                next = end;
            }
            if let SimSched::Vg { .. } = sched {
                // Thread 0 also pays the dispatch loop for every batch.
                clocks[0] += (n.div_ceil(batch)) as f64 * 2e-6;
            }
        }
        SimSched::WorkStealing { batch } => {
            let batch = batch.max(1);
            // Pre-split shares, then event-driven consumption with stealing
            // from the most-loaded victim.
            let chunk = n.div_ceil(threads);
            let mut cursors: Vec<(usize, usize)> = (0..threads)
                .map(|t| ((t * chunk).min(n), ((t + 1) * chunk).min(n)))
                .collect();
            loop {
                let t = argmin(&clocks);
                // Own share first.
                let (start, end) = cursors[t];
                let (src, steal) = if start < end {
                    (t, false)
                } else {
                    // Steal round-robin starting from the next thread, the
                    // same victim order as mg_sched::WorkStealingScheduler.
                    match (1..threads)
                        .map(|d| (t + d) % threads)
                        .find(|&v| cursors[v].0 < cursors[v].1)
                    {
                        Some(v) => (v, true),
                        None => break,
                    }
                };
                let (s, e) = cursors[src];
                let take = (s + batch).min(e);
                cursors[src].0 = take;
                clocks[t] += contexts[t].batch_overhead_s * if steal { 2.0 } else { 1.0 };
                for task in &workload.tasks[s..take] {
                    clocks[t] += task_seconds(task, &contexts[t]);
                }
                // A thread with no work left and nothing to steal exits the
                // loop naturally when all cursors drain.
                if clocks[t].is_nan() {
                    break;
                }
            }
        }
    }
    let total: f64 = clocks.iter().sum();
    SimOutcome {
        makespan_s: Some(clocks.iter().copied().fold(0.0, f64::max)),
        per_thread_busy_s: clocks,
        total_cpu_s: total,
    }
}

fn argmin(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v < values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::TaskFeatures;

    fn uniform_workload(n: usize, instr: u64, bytes: u64) -> SimWorkload {
        SimWorkload {
            name: "uniform".into(),
            tasks: vec![
                TaskFeatures { instructions: instr, bytes, cache_hits: 10, cache_misses: 1 };
                n
            ],
            hot_bytes: 8 << 20,
            required_memory_gb: 32.0,
            setup_instructions_per_thread: 3_000,
            private_hot_bytes: 64 << 10,
        }
    }

    #[test]
    fn single_thread_time_is_sum() {
        let machine = MachineModel::local_amd();
        let w = uniform_workload(100, 10_000, 4_000);
        let out = simulate(&machine, &w, 1, SimSched::Dynamic { batch: 10 });
        let makespan = out.makespan_s.unwrap();
        assert!(makespan > 0.0);
        assert!((out.total_cpu_s - makespan).abs() / makespan < 1e-9);
    }

    #[test]
    fn more_threads_reduce_makespan() {
        let machine = MachineModel::local_amd();
        let w = uniform_workload(4096, 50_000, 16_000);
        let t1 = simulate(&machine, &w, 1, SimSched::Dynamic { batch: 16 }).makespan_s.unwrap();
        let t16 = simulate(&machine, &w, 16, SimSched::Dynamic { batch: 16 }).makespan_s.unwrap();
        let t64 = simulate(&machine, &w, 64, SimSched::Dynamic { batch: 16 }).makespan_s.unwrap();
        assert!(t16 < t1 / 8.0, "16 threads: {t16} vs {t1}");
        assert!(t64 < t16, "64 threads still faster");
        // Speedup at 64 physical cores is near-linear on the AMD model.
        let speedup = t1 / t64;
        assert!(speedup > 40.0, "speedup {speedup}");
    }

    #[test]
    fn smt_beyond_cores_gives_diminishing_returns() {
        let machine = MachineModel::local_intel(); // 48 cores, 96 contexts
        let w = uniform_workload(8192, 50_000, 16_000);
        let t48 = simulate(&machine, &w, 48, SimSched::Dynamic { batch: 16 }).makespan_s.unwrap();
        let t96 = simulate(&machine, &w, 96, SimSched::Dynamic { batch: 16 }).makespan_s.unwrap();
        let smt_gain = t48 / t96;
        assert!(smt_gain > 0.9, "SMT not catastrophic: {smt_gain}");
        assert!(smt_gain < 1.5, "SMT far from doubling: {smt_gain}");
    }

    #[test]
    fn oom_when_memory_exceeds_dram() {
        let machine = MachineModel::chi_intel(); // 256 GB
        let mut w = uniform_workload(100, 1000, 1000);
        w.required_memory_gb = 300.0;
        let out = simulate(&machine, &w, 8, SimSched::Dynamic { batch: 4 });
        assert!(out.is_oom());
        // Fits on the 768 GB machine.
        let ok = simulate(&MachineModel::local_amd(), &w, 8, SimSched::Dynamic { batch: 4 });
        assert!(!ok.is_oom());
    }

    #[test]
    fn amd_beats_arm_on_the_same_workload() {
        let w = uniform_workload(2048, 80_000, 30_000);
        let amd = simulate(&MachineModel::local_amd(), &w, 64, SimSched::Dynamic { batch: 16 })
            .makespan_s
            .unwrap();
        let arm = simulate(&MachineModel::chi_arm(), &w, 64, SimSched::Dynamic { batch: 16 })
            .makespan_s
            .unwrap();
        assert!(amd < arm, "amd {amd} vs arm {arm}");
    }

    #[test]
    fn skewed_tasks_favor_dynamic_over_static() {
        // A few huge tasks at the front of the range.
        let mut w = uniform_workload(1000, 10_000, 4_000);
        for t in w.tasks.iter_mut().take(10) {
            t.instructions = 2_000_000;
        }
        let machine = MachineModel::local_intel();
        let stat = simulate(&machine, &w, 8, SimSched::Static).makespan_s.unwrap();
        let dyna = simulate(&machine, &w, 8, SimSched::Dynamic { batch: 4 }).makespan_s.unwrap();
        assert!(dyna < stat, "dynamic {dyna} vs static {stat}");
    }

    #[test]
    fn all_schedulers_do_all_work() {
        let w = uniform_workload(777, 20_000, 8_000);
        let machine = MachineModel::chi_intel();
        let reference = simulate(&machine, &w, 1, SimSched::Static).total_cpu_s;
        for sched in [
            SimSched::Static,
            SimSched::Dynamic { batch: 32 },
            SimSched::WorkStealing { batch: 32 },
            SimSched::Vg { batch: 32 },
        ] {
            let out = simulate(&machine, &w, 4, sched);
            // Total CPU time within 2x of the single-thread reference (it
            // grows only with contention factors and overheads).
            assert!(out.total_cpu_s >= reference * 0.9, "{sched:?}");
            assert!(out.total_cpu_s <= reference * 3.0, "{sched:?}");
            assert!(out.makespan_s.unwrap() > 0.0);
        }
    }

    #[test]
    fn deterministic() {
        let w = uniform_workload(500, 30_000, 12_000);
        let machine = MachineModel::chi_arm();
        let a = simulate(&machine, &w, 32, SimSched::WorkStealing { batch: 8 });
        let b = simulate(&machine, &w, 32, SimSched::WorkStealing { batch: 8 });
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_threads_panics() {
        let w = uniform_workload(10, 100, 100);
        simulate(&MachineModel::chi_arm(), &w, 65, SimSched::Static);
    }
}

#[cfg(test)]
mod setup_tests {
    use super::*;
    use crate::features::{SimWorkload, TaskFeatures};

    fn workload(setup: u64, n: usize) -> SimWorkload {
        SimWorkload {
            name: "setup".into(),
            tasks: vec![TaskFeatures { instructions: 1000, bytes: 640, cache_hits: 0, cache_misses: 0 }; n],
            hot_bytes: 1 << 20,
            required_memory_gb: 1.0,
            setup_instructions_per_thread: setup,
            private_hot_bytes: 32 << 10,
        }
    }

    #[test]
    fn setup_cost_charges_every_thread() {
        let machine = MachineModel::local_amd();
        let cheap = simulate(&machine, &workload(0, 64), 8, SimSched::Static).makespan_s.unwrap();
        let costly = simulate(&machine, &workload(10_000_000, 64), 8, SimSched::Static)
            .makespan_s
            .unwrap();
        // Setup is per-thread and serial with the work: the makespan grows
        // by at least the setup time of one thread.
        let setup_s = 10_000_000.0 * machine.base_cpi / (machine.freq_ghz * 1e9);
        assert!(costly - cheap >= setup_s * 0.9, "cheap {cheap} costly {costly}");
    }

    #[test]
    fn tiled_workload_multiplies_makespan_roughly_linearly() {
        let machine = MachineModel::chi_intel();
        let base = workload(0, 500);
        let t1 = simulate(&machine, &base, 4, SimSched::Dynamic { batch: 16 }).makespan_s.unwrap();
        let t4 = simulate(&machine, &base.tiled(4), 4, SimSched::Dynamic { batch: 16 })
            .makespan_s
            .unwrap();
        let ratio = t4 / t1;
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn larger_private_working_set_slows_memory_bound_tasks() {
        let machine = MachineModel::chi_arm(); // small L2 feels pollution first
        let mut small = workload(0, 256);
        small.tasks.iter_mut().for_each(|t| t.bytes = 64_000);
        let mut big = small.clone();
        big.private_hot_bytes = 8 << 20; // far over the 256 KiB L2
        let fast = simulate(&machine, &small, 4, SimSched::Static).makespan_s.unwrap();
        let slow = simulate(&machine, &big, 4, SimSched::Static).makespan_s.unwrap();
        assert!(slow > fast * 1.3, "fast {fast} slow {slow}");
    }
}
