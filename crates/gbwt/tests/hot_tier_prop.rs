//! Property test for the two-tier cache: a [`CachedGbwt`] with a shared
//! pre-decoded hot tier attached must return exactly the records the
//! single-tier cache returns, for arbitrary path sets, arbitrary symbol
//! streams, arbitrary tier budgets, and across warm rebinds to a different
//! GBWT or capacity mid-stream.

use std::sync::Arc;

use mg_gbwt::{CacheState, CachedGbwt, Gbwt, GbwtBuilder, HotTier, HotTierBuilder};
use mg_graph::{Handle, NodeId};
use proptest::prelude::*;

fn fwd(ids: &[u64]) -> Vec<Handle> {
    ids.iter().map(|&i| Handle::forward(NodeId::new(i))).collect()
}

fn build_gbwt(paths: &[Vec<u64>]) -> Gbwt {
    let mut builder = GbwtBuilder::new();
    for ids in paths {
        builder = builder.insert(&fwd(ids));
    }
    builder.build().unwrap()
}

/// Builds a hot tier from the first `sample` symbols of the stream, the
/// same frequency-driven policy the pipeline uses.
fn tier_from_stream(gbwt: &Gbwt, stream: &[u64], sample: usize, budget: usize) -> Option<Arc<HotTier>> {
    let mut b = HotTierBuilder::new();
    for &sym in stream.iter().take(sample) {
        b.observe_bidir(sym);
    }
    if budget == 0 || b.distinct() == 0 {
        return None;
    }
    Some(Arc::new(b.build(gbwt, budget)))
}

/// Symbols that have records in a GBWT over node ids `1..max_id`: the
/// forward/reverse node symbols `2..2*max_id+2`, plus some that don't
/// (exercising the no-record path through both tiers).
fn symbol_stream(max_id: u64) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(2u64..(2 * max_id + 6), 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tiered and single-tier caches agree record-for-record over a random
    /// symbol stream, at every budget, and the tiered stats reconcile:
    /// every hot miss fell through to the private tier.
    #[test]
    fn prop_two_tier_matches_single_tier(
        paths in proptest::collection::vec(
            proptest::collection::vec(1u64..10, 1..12),
            1..8,
        ),
        stream in symbol_stream(10),
        budget in 0usize..32,
        capacity in proptest::sample::select(vec![2usize, 8, 64]),
    ) {
        let gbwt = build_gbwt(&paths);
        let tier = tier_from_stream(&gbwt, &stream, stream.len() / 2 + 1, budget);
        let mut single = CachedGbwt::new(&gbwt, capacity);
        let mut tiered = CachedGbwt::new(&gbwt, capacity).with_hot(tier.clone());
        for &sym in &stream {
            if !gbwt.has_record(sym) {
                continue;
            }
            let a = single.record(sym).clone();
            let b = tiered.record(sym).clone();
            prop_assert_eq!(a, b, "symbol {} diverged (budget {})", sym, budget);
        }
        let s = tiered.stats();
        if tier.is_some() {
            // Both caches saw the same lookups, and every hot miss (and only
            // those) fell through to the private tier.
            prop_assert_eq!(
                s.hot_hits + s.hot_misses,
                single.stats().hits + single.stats().misses
            );
            prop_assert_eq!(s.hits + s.misses, s.hot_misses);
        } else {
            prop_assert_eq!(s.hot_hits + s.hot_misses, 0);
        }
    }

    /// Mid-stream warm rebinds — same state carried to a different GBWT
    /// (different uid) and a different capacity, with the old tier still
    /// attached at rebind time — never produce a wrong record: the stale
    /// tier is rejected by uid and the private tier resets.
    #[test]
    fn prop_rebind_mid_stream_stays_correct(
        paths_a in proptest::collection::vec(
            proptest::collection::vec(1u64..9, 1..10),
            1..6,
        ),
        paths_b in proptest::collection::vec(
            proptest::collection::vec(1u64..9, 1..10),
            1..6,
        ),
        stream in symbol_stream(9),
        budget in 1usize..16,
    ) {
        let ga = build_gbwt(&paths_a);
        let gb = build_gbwt(&paths_b);
        let tier_a = tier_from_stream(&ga, &stream, stream.len(), budget);

        // First half against A with A's tier.
        let mut cache = CachedGbwt::new(&ga, 8).with_hot(tier_a.clone());
        let half = stream.len() / 2;
        for &sym in &stream[..half] {
            if ga.has_record(sym) {
                prop_assert_eq!(cache.record(sym).clone(), ga.record(sym));
            }
        }

        // Rebind the carried state to B at a different capacity. The tier
        // belongs to A, so attaching it to a B-bound cache must be refused.
        let state: CacheState = cache.into_state();
        let mut cache = CachedGbwt::with_state(&gb, 16, state).with_hot(tier_a);
        prop_assert!(cache.hot().is_none(), "stale tier survived a rebind to another GBWT");
        for &sym in &stream[half..] {
            if gb.has_record(sym) {
                prop_assert_eq!(cache.record(sym).clone(), gb.record(sym));
            }
        }

        // Rebind back to A with a fresh tier built for A: records still match.
        let tier_a2 = tier_from_stream(&ga, &stream, stream.len(), budget);
        let state = cache.into_state();
        let mut cache = CachedGbwt::with_state(&ga, 4, state).with_hot(tier_a2);
        for &sym in &stream {
            if ga.has_record(sym) {
                prop_assert_eq!(cache.record(sym).clone(), ga.record(sym));
            }
        }
    }
}
