//! `HotTier`: a shared, immutable, pre-decoded record table.
//!
//! The per-thread [`CachedGbwt`](crate::CachedGbwt) duplicates the hottest
//! GBWT records once per worker: pangenome traversal is heavily skewed
//! toward a small core of frequently visited nodes, so with N workers the
//! same records are decoded and stored N times. The hot tier deduplicates
//! that core. It is built **once per run** from node visit frequency (a
//! cheap pre-pass over the seed stream, or the previous chunk's counts in
//! streaming mode), frozen, and shared by `Arc` across all workers. Reads
//! are plain `&self` lookups on immutable storage — lock-free by
//! construction, no atomics on the read path.
//!
//! Lookup misses fall through to the per-thread tier, which behaves exactly
//! as before, so mapping output is byte-identical with the tier on or off.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::gbwt::Gbwt;
use crate::record::DecodedRecord;

/// Maximum load factor of the frozen table (num/den). Matches the
/// per-thread tier so an entry budget translates to comparable probe
/// lengths in both tiers.
const LOAD_NUM: usize = 3;
const LOAD_DEN: usize = 4;

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// A frozen open-addressed table of pre-decoded records, shared across
/// workers behind an `Arc`.
///
/// Immutable after [`HotTierBuilder::build`]; `Send + Sync` falls out of
/// that immutability, so worker threads read it without synchronization.
///
/// # Examples
///
/// ```
/// use mg_graph::{Handle, NodeId};
/// use mg_gbwt::{GbwtBuilder, HotTierBuilder};
///
/// let path: Vec<Handle> = [1u64, 2, 3].iter()
///     .map(|&i| Handle::forward(NodeId::new(i))).collect();
/// let gbwt = GbwtBuilder::new().insert(&path).build().unwrap();
/// let mut builder = HotTierBuilder::new();
/// builder.observe(2);
/// builder.observe(2);
/// builder.observe(4);
/// let tier = builder.build(&gbwt, 8);
/// assert_eq!(tier.len(), 2);
/// assert_eq!(*tier.get(2).unwrap(), gbwt.record(2));
/// assert!(tier.get(6).is_none()); // not observed: falls through
/// ```
#[derive(Debug)]
pub struct HotTier {
    /// [`Gbwt::uid`] of the index the records were decoded from.
    gbwt_uid: u64,
    /// Unique build identity, so a per-thread `CacheState` can tell "same
    /// tier as last run" (keep the seen-bits) from "new tier" (reset them).
    token: u64,
    /// `keys[i]` holds `symbol + 1`; key 0 means empty.
    keys: Vec<u64>,
    values: Vec<DecodedRecord>,
    capacity: usize,
    len: usize,
}

impl HotTier {
    /// [`Gbwt::uid`] of the index this tier was built from.
    pub fn gbwt_uid(&self) -> u64 {
        self.gbwt_uid
    }

    /// Unique identity of this build (distinct across all tiers in the
    /// process, like [`Gbwt::uid`]).
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Number of pre-decoded records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the tier holds no records (every lookup falls
    /// through).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Table capacity in slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn slot_of(&self, symbol: u64) -> usize {
        // Fibonacci hashing, identical to the per-thread tier.
        let h = symbol.wrapping_mul(0x9E3779B97F4A7C15);
        (h >> (64 - self.capacity.trailing_zeros())) as usize
    }

    /// Lock-free lookup. Returns the slot index alongside the record so the
    /// caller can attribute per-slot statistics (first-use tracking).
    #[inline]
    pub fn lookup(&self, symbol: u64) -> Option<(usize, &DecodedRecord)> {
        if self.len == 0 {
            return None;
        }
        let key = symbol + 1;
        let mut slot = self.slot_of(symbol);
        loop {
            let k = self.keys[slot];
            if k == key {
                return Some((slot, &self.values[slot]));
            }
            if k == 0 {
                return None;
            }
            slot = (slot + 1) & (self.capacity - 1);
        }
    }

    /// Lock-free lookup of `symbol`'s pre-decoded record.
    #[inline]
    pub fn get(&self, symbol: u64) -> Option<&DecodedRecord> {
        self.lookup(symbol).map(|(_, r)| r)
    }

    /// The record frozen in `slot` (as returned by [`HotTier::lookup`]).
    #[inline]
    pub fn slot_record(&self, slot: usize) -> &DecodedRecord {
        &self.values[slot]
    }

    /// Approximate heap footprint in bytes (same accounting as
    /// [`CachedGbwt::heap_bytes`](crate::CachedGbwt::heap_bytes), so the two
    /// tiers sum into one comparable figure).
    pub fn heap_bytes(&self) -> usize {
        self.keys.capacity() * 8
            + self.values.capacity() * std::mem::size_of::<DecodedRecord>()
            + self
                .values
                .iter()
                .map(|v| v.edges.capacity() * 16 + v.runs.capacity() * 16)
                .sum::<usize>()
    }
}

/// Accumulates node-visit frequencies and freezes the top records into a
/// [`HotTier`].
///
/// In batch mode the pipeline feeds it a pre-pass over the seed stream; in
/// streaming mode the previous chunk's seeds seed the tier used by the
/// chunks that follow.
#[derive(Debug, Default)]
pub struct HotTierBuilder {
    counts: HashMap<u64, u64>,
}

impl HotTierBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        HotTierBuilder::default()
    }

    /// Counts one visit of `symbol`.
    pub fn observe(&mut self, symbol: u64) {
        *self.counts.entry(symbol).or_insert(0) += 1;
    }

    /// Counts one visit of `symbol` *and* its opposite orientation
    /// (`symbol ^ 1`): the extension kernel looks up both at every anchor.
    pub fn observe_bidir(&mut self, symbol: u64) {
        self.observe(symbol);
        self.observe(symbol ^ 1);
    }

    /// Number of distinct symbols observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Decodes the `budget` most frequently observed symbols from `gbwt`
    /// and freezes them into a tier. Ties break toward the smaller symbol
    /// so the tier contents are deterministic regardless of observation
    /// order. A `budget` of 0 (or an empty builder) produces an empty tier.
    pub fn build(&self, gbwt: &Gbwt, budget: usize) -> HotTier {
        let mut ranked: Vec<(u64, u64)> = self.counts.iter().map(|(&s, &c)| (s, c)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(budget);
        let capacity = (ranked.len() * LOAD_DEN / LOAD_NUM + 1)
            .next_power_of_two()
            .max(8);
        let mut tier = HotTier {
            gbwt_uid: gbwt.uid(),
            token: NEXT_TOKEN.fetch_add(1, Ordering::Relaxed),
            keys: vec![0; capacity],
            values: vec![DecodedRecord::empty(); capacity],
            capacity,
            len: 0,
        };
        for (symbol, _) in ranked {
            let mut slot = tier.slot_of(symbol);
            while tier.keys[slot] != 0 {
                slot = (slot + 1) & (capacity - 1);
            }
            tier.keys[slot] = symbol + 1;
            tier.values[slot] = gbwt.record(symbol);
            tier.len += 1;
        }
        tier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::GbwtBuilder;
    use mg_graph::{Handle, NodeId};

    fn chain_gbwt(n: u64) -> Gbwt {
        let path: Vec<Handle> = (1..=n).map(|i| Handle::forward(NodeId::new(i))).collect();
        GbwtBuilder::new().insert(&path).build().unwrap()
    }

    #[test]
    fn serves_exact_records_for_observed_symbols() {
        let g = chain_gbwt(16);
        let mut b = HotTierBuilder::new();
        for sym in 2..g.alphabet_size() {
            b.observe(sym);
        }
        let tier = b.build(&g, usize::MAX);
        assert_eq!(tier.len() as u64, g.alphabet_size() - 2);
        for sym in 2..g.alphabet_size() {
            assert_eq!(*tier.get(sym).unwrap(), g.record(sym), "symbol {sym}");
        }
        assert!(tier.get(g.alphabet_size() + 7).is_none());
    }

    #[test]
    fn budget_keeps_the_most_frequent_symbols() {
        let g = chain_gbwt(8);
        let mut b = HotTierBuilder::new();
        for _ in 0..10 {
            b.observe(4);
        }
        for _ in 0..5 {
            b.observe(6);
        }
        b.observe(8);
        let tier = b.build(&g, 2);
        assert_eq!(tier.len(), 2);
        assert!(tier.get(4).is_some());
        assert!(tier.get(6).is_some());
        assert!(tier.get(8).is_none());
    }

    #[test]
    fn ties_break_deterministically() {
        let g = chain_gbwt(8);
        // Same counts observed in two different orders must freeze the
        // same tier contents.
        let mut a = HotTierBuilder::new();
        for sym in [10, 4, 8, 6] {
            a.observe(sym);
        }
        let mut b = HotTierBuilder::new();
        for sym in [6, 8, 4, 10] {
            b.observe(sym);
        }
        let ta = a.build(&g, 2);
        let tb = b.build(&g, 2);
        for sym in [4, 6, 8, 10] {
            assert_eq!(ta.get(sym).is_some(), tb.get(sym).is_some(), "symbol {sym}");
        }
        // Smallest symbols win the tie.
        assert!(ta.get(4).is_some() && ta.get(6).is_some());
    }

    #[test]
    fn observe_bidir_counts_both_orientations() {
        let g = chain_gbwt(4);
        let mut b = HotTierBuilder::new();
        b.observe_bidir(4);
        let tier = b.build(&g, usize::MAX);
        assert!(tier.get(4).is_some());
        assert!(tier.get(5).is_some());
        assert_eq!(tier.len(), 2);
    }

    #[test]
    fn zero_budget_and_empty_builder_yield_empty_tier() {
        let g = chain_gbwt(4);
        let mut b = HotTierBuilder::new();
        b.observe(2);
        let tier = b.build(&g, 0);
        assert!(tier.is_empty());
        assert!(tier.get(2).is_none());
        let empty = HotTierBuilder::new().build(&g, 64);
        assert!(empty.is_empty());
    }

    #[test]
    fn tokens_are_unique_and_uid_matches() {
        let g = chain_gbwt(4);
        let mut b = HotTierBuilder::new();
        b.observe(2);
        let t1 = b.build(&g, 8);
        let t2 = b.build(&g, 8);
        assert_ne!(t1.token(), t2.token());
        assert_eq!(t1.gbwt_uid(), g.uid());
    }

    #[test]
    fn tier_is_shareable_across_threads() {
        let g = chain_gbwt(32);
        let mut b = HotTierBuilder::new();
        for sym in 2..g.alphabet_size() {
            b.observe(sym);
        }
        let tier = std::sync::Arc::new(b.build(&g, usize::MAX));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let tier = std::sync::Arc::clone(&tier);
                let g = &g;
                s.spawn(move || {
                    for sym in 2..g.alphabet_size() {
                        assert_eq!(*tier.get(sym).unwrap(), g.record(sym));
                    }
                });
            }
        });
    }

    #[test]
    fn heap_bytes_counts_table_and_record_buffers() {
        let g = chain_gbwt(16);
        let mut b = HotTierBuilder::new();
        for sym in 2..g.alphabet_size() {
            b.observe(sym);
        }
        let tier = b.build(&g, usize::MAX);
        assert!(tier.heap_bytes() > tier.capacity() * 8);
    }
}
