//! The GBWT: a run-length compressed index of haplotype paths.
//!
//! The Graph Burrows–Wheeler Transform stores a collection of paths through
//! a variation graph as, per node, a run-length encoded list of "which edge
//! does each visiting haplotype take next". It supports:
//!
//! - following a single haplotype ([`Gbwt::follow`], [`Gbwt::sequence`]);
//! - counting haplotypes matching a path pattern ([`Gbwt::find`] /
//!   [`Gbwt::extend`]), including bidirectionally ([`Gbwt::find_bidir`],
//!   [`Gbwt::extend_forward`], [`Gbwt::extend_backward`]) — the query the
//!   seed-and-extend kernel makes on every step;
//! - the [`CachedGbwt`] decompressed-record cache whose initial capacity is
//!   one of miniGiraffe's three tuning parameters;
//! - the [`Gbz`] container (`.mgz`), our analog of the GBZ file format,
//!   bundling graph + index in one compressed, checksummed file.
//!
//! # Examples
//!
//! ```
//! use mg_graph::pangenome::{PangenomeBuilder, Variant};
//! use mg_gbwt::{CachedGbwt, Gbz};
//!
//! # fn main() -> mg_support::Result<()> {
//! let p = PangenomeBuilder::new(b"ACGTACGTACGT".to_vec())
//!     .variants(vec![Variant::snp(6, b'A')])
//!     .haplotypes(vec![vec![0], vec![1], vec![0]])
//!     .build()?;
//! let gbz = Gbz::from_pangenome(p)?;
//! let mut cache = CachedGbwt::new(gbz.gbwt(), 256);
//! // Count haplotypes through the first node.
//! let state = cache.gbwt().find(2);
//! assert_eq!(state.len(), 3);
//! # Ok(())
//! # }
//! ```

pub mod build;
pub mod cache;
pub mod gbwt;
pub mod gbz;
pub mod hot;
pub mod record;

pub use build::GbwtBuilder;
pub use cache::{CacheState, CacheStats, CachedGbwt};
pub use hot::{HotTier, HotTierBuilder};
pub use gbwt::{BidirState, Gbwt, GbwtStatistics, SearchState};
pub use gbz::Gbz;
pub use record::{DecodedRecord, RecordEdge, ENDMARKER};
